/**
 * @file
 * Compare the four accelerator architectures on one workload (default
 * LeNet-5; pass a workload name: PV, FR, LeNet-5, HG, AlexNet,
 * VGG-11): utilization, performance, traffic, power, energy, area.
 *
 * Usage:
 *     ./build/examples/compare_architectures [workload] [scale]
 */

#include <iostream>
#include <string>

#include "common/strutil.hh"
#include "common/table.hh"
#include "energy/area.hh"
#include "energy/power.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/workloads.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_model.hh"

using namespace flexsim;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "LeNet-5";
    const unsigned d = argc > 2 ? std::stoul(argv[2]) : 16;

    NetworkSpec net;
    bool found = false;
    for (const auto &w : workloads::all()) {
        if (toLower(w.name) == toLower(name)) {
            net = w;
            found = true;
        }
    }
    if (!found) {
        std::cerr << "unknown workload '" << name
                  << "'; choose from: PV FR LeNet-5 HG AlexNet "
                     "VGG-11\n";
        return 1;
    }

    const int ka = net.name == "AlexNet" ? 11 : 6;
    const SystolicModel systolic(SystolicConfig::forScale(d, ka));
    const Mapping2DModel mapping2d(Mapping2DConfig::forScale(d));
    const TilingModel tiling(TilingConfig::forScale(d));
    const FlexFlowModel flexflow(FlexFlowConfig::forScale(d));
    const std::pair<ArchKind, const AcceleratorModel *> archs[] = {
        {ArchKind::Systolic, &systolic},
        {ArchKind::Mapping2D, &mapping2d},
        {ArchKind::Tiling, &tiling},
        {ArchKind::FlexFlow, &flexflow},
    };

    const TechParams tech = TechParams::tsmc65();
    printBanner(std::cout, net.name + " on a " + std::to_string(d) +
                               "x" + std::to_string(d) +
                               "-scale engine");

    TextTable table;
    table.setHeader({"Architecture", "PEs", "Cycles", "Util",
                     "GOPs@1GHz", "Words moved", "Power mW",
                     "Energy uJ", "GOPs/W", "Area mm^2"});
    for (const auto &[kind, model] : archs) {
        const LayerResult total = model->runNetwork(net).total();
        const AreaBreakdown area =
            computeArea(defaultAreaConfig(kind, d), tech);
        const PowerReport report =
            computePower(total, kind, d, tech, area.total());
        table.addRow({model->name(),
                      std::to_string(model->peCount()),
                      formatCount(total.cycles),
                      formatPercent(total.utilization()),
                      formatDouble(total.gops(1.0), 1),
                      formatCount(total.traffic.total()),
                      formatDouble(report.power.total(), 0),
                      formatDouble(report.energyUj, 1),
                      formatDouble(report.gopsPerWatt, 0),
                      formatDouble(area.total(), 2)});
    }
    table.print(std::cout);

    std::cout << "\nPer-layer utilization:\n\n";
    TextTable layers;
    layers.setHeader({"Layer", "MACs", "Systolic", "2D-Mapping",
                      "Tiling", "FlexFlow"});
    for (const auto &stage : net.stages) {
        std::vector<std::string> row = {stage.conv.name,
                                        formatCount(stage.conv.macs())};
        for (const auto &[kind, model] : archs) {
            row.push_back(formatPercent(
                model->runLayer(stage.conv).utilization()));
        }
        layers.addRow(row);
    }
    layers.print(std::cout);
    return 0;
}
