/**
 * @file
 * Explore the unrolling-factor design space of one CONV layer: rank
 * the best factor mixes by utilization, show the complementary-
 * parallelism structure (which mixes of FP/NP/SP they use), and dump
 * the schedule the chosen factors imply.
 *
 * Usage:
 *     ./build/examples/design_space_explorer [M N S K stride] [D]
 * Defaults to LeNet-5 C3 (M=16 N=6 S=10 K=5) on a 16x16 engine.
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "arch/factor_search.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "flexflow/schedule.hh"
#include "nn/layer_spec.hh"

using namespace flexsim;

namespace {

/** Which parallelism types a factor mix exploits (Section 2.2). */
std::string
parallelismMix(const UnrollFactors &t)
{
    std::vector<std::string> kinds;
    if (t.tm > 1 || t.tn > 1)
        kinds.push_back("FP");
    if (t.tr > 1 || t.tc > 1)
        kinds.push_back("NP");
    if (t.ti > 1 || t.tj > 1)
        kinds.push_back("SP");
    if (kinds.empty())
        kinds.push_back("none");
    return join(kinds, "+");
}

} // namespace

int
main(int argc, char **argv)
{
    int m = 16, n = 6, s = 10, k = 5, stride = 1, d = 16;
    if (argc >= 6) {
        m = std::stoi(argv[1]);
        n = std::stoi(argv[2]);
        s = std::stoi(argv[3]);
        k = std::stoi(argv[4]);
        stride = std::stoi(argv[5]);
    }
    if (argc >= 7)
        d = std::stoi(argv[6]);

    const ConvLayerSpec spec =
        ConvLayerSpec::make("layer", n, m, s, k, stride);
    printBanner(std::cout,
                "Design space of " + std::to_string(n) + "x" +
                    std::to_string(m) + "@" + std::to_string(k) + "x" +
                    std::to_string(k) + " -> " + std::to_string(m) +
                    "@" + std::to_string(s) + "x" + std::to_string(s) +
                    " (stride " + std::to_string(stride) + ") on " +
                    std::to_string(d) + "x" + std::to_string(d) +
                    " PEs");

    // Enumerate and rank all feasible factor mixes.
    auto all = enumerateFeasible(spec, d, spec.outSize);
    std::sort(all.begin(), all.end(),
              [&](const UnrollFactors &a, const UnrollFactors &b) {
                  return utilizationTotal(a, spec, d) >
                         utilizationTotal(b, spec, d);
              });

    std::cout << "Feasible factor assignments: " << all.size()
              << "\n\nTop 10 by utilization:\n\n";
    TextTable top;
    top.setHeader({"#", "Factors", "Mix", "Ur", "Uc", "Ut"});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, all.size());
         ++i) {
        const UnrollFactors &t = all[i];
        top.addRow({std::to_string(i + 1), t.toString(),
                    parallelismMix(t),
                    formatPercent(utilizationRows(t, spec, d)),
                    formatPercent(utilizationCols(t, spec, d)),
                    formatPercent(utilizationTotal(t, spec, d))});
    }
    top.print(std::cout);

    // Contrast with the best single-parallelism (rigid) mappings.
    std::cout << "\nBest *single-parallelism* mixes (what the rigid "
                 "baselines are limited to):\n\n";
    TextTable rigid;
    rigid.setHeader({"Style", "Best factors", "Ut"});
    struct Style
    {
        const char *name;
        bool (*accept)(const UnrollFactors &);
    };
    const Style styles[] = {
        {"SP only (Systolic-like)",
         [](const UnrollFactors &t) {
             return t.tm == 1 && t.tn == 1 && t.tr == 1 && t.tc == 1;
         }},
        {"NP only (2D-Mapping-like)",
         [](const UnrollFactors &t) {
             return t.tm == 1 && t.tn == 1 && t.ti == 1 && t.tj == 1;
         }},
        {"FP only (Tiling-like)",
         [](const UnrollFactors &t) {
             return t.tr == 1 && t.tc == 1 && t.ti == 1 && t.tj == 1;
         }},
    };
    for (const Style &style : styles) {
        double best = -1.0;
        UnrollFactors best_t;
        for (const UnrollFactors &t : all) {
            if (!style.accept(t))
                continue;
            const double u = utilizationTotal(t, spec, d);
            if (u > best) {
                best = u;
                best_t = t;
            }
        }
        rigid.addRow({style.name,
                      best >= 0 ? best_t.toString() : "-",
                      best >= 0 ? formatPercent(best) : "-"});
    }
    rigid.print(std::cout);

    // Dump the schedule of the winner.
    const FactorChoice choice = searchBestFactors(spec, d);
    const FlexFlowSchedule sched =
        planSchedule(spec, choice.factors, FlexFlowConfig::forScale(d));
    std::cout << "\nChosen factors " << choice.factors.toString()
              << ":\n"
              << "  batches      = " << sched.mBlocks << " x "
              << sched.rBlocks << " x " << sched.cBlocks << "\n"
              << "  steps/batch  = " << sched.stepsTotal << " across "
              << sched.splits() << " input-map pass(es)\n"
              << "  kernel slice = " << sched.sliceWords
              << " words/PE (span " << sched.spanI << "x"
              << sched.spanJ << ")\n"
              << "  row band     = " << sched.bandWordsPerColumn
              << " words/column, retained across bands: "
              << (sched.bandRetention ? "yes" : "no") << "\n";
    return 0;
}
