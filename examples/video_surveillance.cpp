/**
 * @file
 * Domain scenario from the paper's introduction: a video-surveillance
 * pipeline running the PV (pedestrian and vehicle recognition) CNN on
 * a FlexFlow accelerator, frame after frame.
 *
 * The example compiles PV once, then streams a batch of synthetic
 * camera frames through the cycle-level accelerator, reporting
 * sustained frames/second at 1 GHz, energy per frame, and the DRAM
 * bandwidth the deployment would need.
 *
 * Usage:
 *     ./build/examples/video_surveillance [frames]
 */

#include <iostream>
#include <string>

#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "energy/power.hh"
#include "flexflow/accelerator.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

using namespace flexsim;

int
main(int argc, char **argv)
{
    const int frames = argc > 1 ? std::stoi(argv[1]) : 8;
    const NetworkSpec net = workloads::pv();
    const FlexFlowConfig config = FlexFlowConfig::forScale(16);
    const TechParams tech = TechParams::tsmc65();

    printBanner(std::cout,
                "Video surveillance: PV pedestrian/vehicle CNN, " +
                    std::to_string(frames) + " frames");

    // Compile once; the per-layer configuration is reused for every
    // frame.
    FlexFlowCompiler compiler(config);
    const CompilationResult compiled = compiler.compile(net);

    // Fixed trained kernels, fresh frame data per iteration.
    Rng rng(0xcafe);
    std::vector<Tensor4<>> kernels;
    for (const auto &stage : net.stages)
        kernels.push_back(makeRandomKernels(rng, stage.conv));

    FlexFlowAccelerator accelerator(config);
    accelerator.bindKernels(kernels);

    Cycle total_cycles = 0;
    double total_energy_uj = 0.0;
    WordCount total_dram = 0;
    for (int frame = 0; frame < frames; ++frame) {
        accelerator.bindInput(
            makeRandomInput(rng, net.stages[0].conv));
        NetworkResult result;
        accelerator.run(compiled.program, &result);
        const LayerResult total = result.total();
        total_cycles += total.cycles;
        const PowerReport report =
            computePower(total, ArchKind::FlexFlow, 16, tech);
        total_energy_uj += report.energyUj + report.dramEnergyUj;
        total_dram += accelerator.dramTraffic().total();
    }

    const double seconds =
        static_cast<double>(total_cycles) / (tech.freqGhz * 1e9);
    const double fps = frames / seconds;
    const double dram_gbps = static_cast<double>(total_dram) *
                             bytesPerWord / seconds / 1e9;

    TextTable table;
    table.setHeader({"Metric", "Value"});
    table.addRow({"Frames processed", std::to_string(frames)});
    table.addRow({"Total cycles", formatCount(total_cycles)});
    table.addRow({"Sustained throughput",
                  formatDouble(fps, 0) + " frames/s @ 1 GHz"});
    table.addRow({"Energy per frame",
                  formatDouble(total_energy_uj / frames, 2) +
                      " uJ (incl. DRAM)"});
    table.addRow({"DRAM bandwidth needed",
                  formatDouble(dram_gbps, 3) + " GB/s"});
    table.print(std::cout);

    std::cout << "\nPer-layer schedule (from the compiled program):\n\n";
    TextTable layers;
    layers.setHeader({"Layer", "Factors", "Utilization", "Coupled"});
    for (const LayerPlan &plan : compiled.layers) {
        layers.addRow({plan.spec.name, plan.factors.toString(),
                       formatPercent(plan.utilization),
                       plan.coupled ? "yes" : "no"});
    }
    layers.print(std::cout);
    return 0;
}
