/**
 * @file
 * Full classifier inference: LeNet-5 including its C5/F6/OUTPUT
 * classifier tail (fully-connected layers expressed as 1x1 CONVs),
 * compiled and executed end to end on the cycle-level accelerator,
 * ending in a 10-way digit score vector.
 *
 * Usage:
 *     ./build/examples/classifier_inference [seed]
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "flexflow/accelerator.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

using namespace flexsim;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::stoull(argv[1]) : 20170101ull;
    const NetworkSpec net = workloads::lenet5WithClassifier();
    const FlexFlowConfig config = FlexFlowConfig::forScale(16);

    printBanner(std::cout,
                "LeNet-5 with classifier tail on FlexFlow (seed " +
                    std::to_string(seed) + ")");

    FlexFlowCompiler compiler(config);
    const CompilationResult compiled = compiler.compile(net);

    Rng rng(seed);
    const Tensor3<> image = makeRandomInput(rng, net.stages[0].conv);
    std::vector<Tensor4<>> weights;
    for (const auto &stage : net.stages)
        weights.push_back(makeRandomKernels(rng, stage.conv));

    FlexFlowAccelerator accelerator(config);
    accelerator.bindInput(image);
    accelerator.bindKernels(weights);
    NetworkResult result;
    const Tensor3<> scores = accelerator.run(compiled.program, &result);

    // Verify against the golden chain.
    Tensor3<> golden = image;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        golden = cropTopLeft(golden, net.stages[i].conv.inSize);
        golden = goldenConv(net.stages[i].conv, golden, weights[i]);
        if (net.stages[i].poolAfter)
            golden = goldenPool(golden, *net.stages[i].poolAfter);
    }
    std::cout << "Accelerator output matches golden inference: "
              << (scores == golden ? "yes" : "NO") << "\n\n";

    // Report the class scores and the argmax "prediction".
    TextTable table;
    table.setHeader({"Class", "Score (Q7.8)"});
    int best = 0;
    for (int d = 0; d < scores.maps(); ++d) {
        table.addRow({std::to_string(d),
                      formatDouble(scores.at(d, 0, 0).toDouble(), 4)});
        if (scores.at(best, 0, 0) < scores.at(d, 0, 0))
            best = d;
    }
    table.print(std::cout);
    std::cout << "\nPredicted class: " << best
              << " (random weights, so the value is the plumbing, "
                 "not the digit)\n\n";

    // Per-layer record: note the FC layers keep the engine busy via
    // feature-map parallelism on both sides.
    TextTable layers;
    layers.setHeader(
        {"Layer", "Shape", "Factors", "Cycles", "Utilization"});
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
        const ConvLayerSpec &spec = net.stages[i].conv;
        layers.addRow({spec.name,
                       std::to_string(spec.inMaps) + "->" +
                           std::to_string(spec.outMaps) + "@" +
                           std::to_string(spec.outSize) + "x" +
                           std::to_string(spec.outSize),
                       compiled.layers[i].factors.toString(),
                       formatCount(result.layers[i].cycles),
                       formatPercent(
                           result.layers[i].utilization())});
    }
    layers.print(std::cout);
    return scores == golden ? 0 : 1;
}
