/**
 * @file
 * Quickstart: compile LeNet-5 for a 16x16 FlexFlow engine, run it
 * cycle by cycle on the accelerator, and verify the result against
 * the golden reference.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "flexflow/accelerator.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

using namespace flexsim;

int
main()
{
    // 1. Pick a workload and a target engine.
    const NetworkSpec net = workloads::lenet5();
    const FlexFlowConfig config = FlexFlowConfig::forScale(16);

    // 2. The workload analyzer determines the unrolling factors for
    //    each CONV layer and emits a configuration program.
    FlexFlowCompiler compiler(config);
    const CompilationResult compiled = compiler.compile(net);
    std::cout << "Compiled program:\n\n" << compiled.assembly << "\n";

    // 3. Bind synthetic data and execute the program cycle by cycle.
    Rng rng(2017);
    const Tensor3<> input = makeRandomInput(rng, net.stages[0].conv);
    std::vector<Tensor4<>> kernels;
    for (const auto &stage : net.stages)
        kernels.push_back(makeRandomKernels(rng, stage.conv));

    FlexFlowAccelerator accelerator(config);
    accelerator.bindInput(input);
    accelerator.bindKernels(kernels);
    NetworkResult result;
    const Tensor3<> output = accelerator.run(compiled.program, &result);

    // 4. Check bit-exactness against the golden reference.
    Tensor3<> golden = input;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        golden = goldenConv(net.stages[i].conv, golden, kernels[i]);
        if (net.stages[i].poolAfter)
            golden = goldenPool(golden, *net.stages[i].poolAfter);
    }
    std::cout << "Output matches golden reference: "
              << (output == golden ? "yes" : "NO") << "\n\n";

    // 5. Report the per-layer execution record.
    TextTable table;
    table.setHeader({"Layer", "Cycles", "MACs", "Utilization",
                     "GOPs@1GHz", "Buffer words"});
    for (const LayerResult &layer : result.layers) {
        table.addRow({layer.layerName, formatCount(layer.cycles),
                      formatCount(layer.macs),
                      formatPercent(layer.utilization()),
                      formatDouble(layer.gops(1.0), 1),
                      formatCount(layer.traffic.total())});
    }
    table.print(std::cout);
    std::cout << "\nDRAM words moved: "
              << formatCount(accelerator.dramTraffic().total()) << "\n";
    return 0;
}
