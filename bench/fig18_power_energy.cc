/**
 * @file
 * Figure 18: (a) power efficiency in GOPs/W, (b) energy to complete
 * each workload, (c) raw power, for the four baselines.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    const TechParams tech = TechParams::tsmc65();

    printBanner(std::cout,
                "Figure 18(a): Power efficiency, GOPs/W (16x16 scale, "
                "65 nm, 1 GHz)");
    TextTable eff;
    eff.setHeader({"Workload", "Systolic", "2D-Mapping", "Tiling",
                   "FlexFlow", "FF vs best baseline"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        double best_baseline = 0.0;
        std::vector<std::string> row = {net.name};
        double ff = 0.0;
        for (const auto &[kind, model] : set.all()) {
            const PowerReport report = computePower(
                networkTotal(*model, net), kind, 16, tech);
            row.push_back(formatDouble(report.gopsPerWatt, 0));
            if (kind == ArchKind::FlexFlow)
                ff = report.gopsPerWatt;
            else
                best_baseline =
                    std::max(best_baseline, report.gopsPerWatt);
        }
        row.push_back(formatDouble(ff / best_baseline, 2) + "x");
        eff.addRow(row);
    }
    eff.print(std::cout);

    printBanner(std::cout,
                "Figure 18(b): Energy per workload, microjoules");
    TextTable energy;
    energy.setHeader(
        {"Workload", "Systolic", "2D-Mapping", "Tiling", "FlexFlow"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        std::vector<std::string> row = {net.name};
        for (const auto &[kind, model] : set.all()) {
            const PowerReport report = computePower(
                networkTotal(*model, net), kind, 16, tech);
            row.push_back(formatDouble(report.energyUj, 1));
        }
        energy.addRow(row);
    }
    energy.print(std::cout);

    printBanner(std::cout, "Figure 18(c): Power, milliwatts");
    TextTable power;
    power.setHeader(
        {"Workload", "Systolic", "2D-Mapping", "Tiling", "FlexFlow"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        std::vector<std::string> row = {net.name};
        for (const auto &[kind, model] : set.all()) {
            const PowerReport report = computePower(
                networkTotal(*model, net), kind, 16, tech);
            row.push_back(formatDouble(report.power.total(), 0));
        }
        power.addRow(row);
    }
    power.print(std::cout);

    std::cout
        << "\nPaper: FlexFlow leads power efficiency (1.5-2.5x over "
           "Systolic/2D-Mapping, ~10x\nover Tiling in cases) and "
           "lowest energy, while drawing the highest raw power on\n"
           "the small workloads because its PEs actually stay busy "
           "(Section 6.2.5).\n";
    return 0;
}
