/**
 * @file
 * Figure 15: computing resource utilization of the four baselines
 * across the six workloads (work-weighted; per-layer detail printed
 * below the summary).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main(int argc, char **argv)
{
    const bool csv = csvMode(argc, argv);
    printBanner(std::cout,
                "Figure 15: Computing resource utilization (16x16 "
                "scale)");

    TextTable table;
    table.setHeader({"Workload", "Systolic", "2D-Mapping", "Tiling",
                     "FlexFlow"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        std::vector<std::string> row = {net.name};
        for (const auto &[kind, model] : set.all())
            row.push_back(
                formatPercent(networkUtilization(*model, net)));
        table.addRow(row);
    }
    emitTable(table, csv, std::cout);

    std::cout << "\nPer-layer detail (FlexFlow):\n\n";
    TextTable detail;
    detail.setHeader(
        {"Workload", "Layer", "Factors", "Ur", "Uc", "Ut"});
    for (const NetworkSpec &net : workloads::all()) {
        for (const auto &stage : net.stages) {
            const FactorChoice choice =
                searchBestFactors(stage.conv, 16);
            detail.addRow(
                {net.name, stage.conv.name,
                 choice.factors.toString(),
                 formatPercent(choice.utilizationRows),
                 formatPercent(choice.utilizationCols),
                 formatPercent(choice.utilization())});
        }
        detail.addSeparator();
    }
    emitTable(detail, csv, std::cout);

    std::cout << "\nPaper: FlexFlow > 80% on every workload; the "
                 "baselines mostly < 60% and volatile.\n";
    return 0;
}
