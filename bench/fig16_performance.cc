/**
 * @file
 * Figure 16: performance (GOPs at 1 GHz) of the four baselines across
 * the six workloads, with FlexFlow's speedups.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main(int argc, char **argv)
{
    const bool csv = csvMode(argc, argv);
    printBanner(std::cout,
                "Figure 16: Performance in GOPs (16x16 scale, 1 GHz)");

    TextTable table;
    table.setHeader({"Workload", "Systolic", "2D-Mapping", "Tiling",
                     "FlexFlow", "vs Sys", "vs 2D", "vs Tiling"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        const double sys = networkTotal(*set.systolic, net).gops();
        const double map = networkTotal(*set.mapping2d, net).gops();
        const double til = networkTotal(*set.tiling, net).gops();
        const double ff = networkTotal(*set.flexflow, net).gops();
        table.addRow({net.name, formatDouble(sys, 1),
                      formatDouble(map, 1), formatDouble(til, 1),
                      formatDouble(ff, 1),
                      formatDouble(ff / sys, 2) + "x",
                      formatDouble(ff / map, 2) + "x",
                      formatDouble(ff / til, 2) + "x"});
    }
    emitTable(table, csv, std::cout);

    std::cout
        << "\nPaper: FlexFlow constantly over ~420 GOPs; > 2x over "
           "Systolic/2D-Mapping and\nup to ~10x over Tiling in some "
           "cases.  Systolic additionally loses performance to\nits "
           "pipeline-fill cycles even where its utilization is "
           "decent (Section 6.2.3).\n";
    return 0;
}
