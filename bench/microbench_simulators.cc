/**
 * @file
 * google-benchmark microbenchmarks of the cycle-level simulators, the
 * analytic models, and the compiler's factor search.  These measure
 * simulator throughput (host-side), not modelled accelerator
 * performance.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "compiler/compiler.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_array.hh"
#include "nn/mac_kernels.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

namespace {

using namespace flexsim;

const ConvLayerSpec kLayer = ConvLayerSpec::make("C3", 6, 16, 10, 5);

struct LayerData
{
    Tensor3<> input;
    Tensor4<> kernels;

    LayerData(const ConvLayerSpec &spec, std::uint64_t seed)
    {
        Rng rng(seed);
        input = makeRandomInput(rng, spec);
        kernels = makeRandomKernels(rng, spec);
    }
};

const LayerData &
layerData()
{
    static const LayerData data(kLayer, 1234);
    return data;
}

// The Arg on every cycle-sim bench is the host worker-thread count
// fed to the shared sim::ThreadPool (1 = inline, no pool traffic).
void
BM_SystolicCycleSim(benchmark::State &state)
{
    SystolicConfig cfg;
    cfg.threads = static_cast<int>(state.range(0));
    SystolicArraySim sim(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.runLayer(kLayer, layerData().input,
                         layerData().kernels));
    }
    state.SetItemsProcessed(state.iterations() * kLayer.macs());
}
BENCHMARK(BM_SystolicCycleSim)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_Mapping2DCycleSim(benchmark::State &state)
{
    Mapping2DConfig cfg;
    cfg.threads = static_cast<int>(state.range(0));
    Mapping2DArraySim sim(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.runLayer(kLayer, layerData().input,
                         layerData().kernels));
    }
    state.SetItemsProcessed(state.iterations() * kLayer.macs());
}
BENCHMARK(BM_Mapping2DCycleSim)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_TilingCycleSim(benchmark::State &state)
{
    TilingConfig cfg;
    cfg.threads = static_cast<int>(state.range(0));
    TilingArraySim sim(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.runLayer(kLayer, layerData().input,
                         layerData().kernels));
    }
    state.SetItemsProcessed(state.iterations() * kLayer.macs());
}
BENCHMARK(BM_TilingCycleSim)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_FlexFlowCycleSim(benchmark::State &state)
{
    FlexFlowConvUnit unit{FlexFlowConfig{}};
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            unit.runLayer(kLayer, t, layerData().input,
                          layerData().kernels));
    }
    state.SetItemsProcessed(state.iterations() * kLayer.macs());
}
BENCHMARK(BM_FlexFlowCycleSim)->Unit(benchmark::kMillisecond);

// AlexNet C5: the largest Table-1 layer whose schedule splits into
// passes (the per-PE kernel slice overflows the kernel store).  The
// Arg is the host-side worker-thread count.
const ConvLayerSpec kConv5 = ConvLayerSpec::make("C5", 256, 192, 13, 3);

const LayerData &
conv5Data()
{
    static const LayerData data(kConv5, 5678);
    return data;
}

void
BM_FlexFlowCycleSimConv5(benchmark::State &state)
{
    FlexFlowConfig cfg;
    cfg.threads = static_cast<int>(state.range(0));
    FlexFlowConvUnit unit{cfg};
    const UnrollFactors t{16, 16, 1, 1, 1, 1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            unit.runLayer(kConv5, t, conv5Data().input,
                          conv5Data().kernels));
    }
    state.SetItemsProcessed(state.iterations() * kConv5.macs());
}
BENCHMARK(BM_FlexFlowCycleSimConv5)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_FlexFlowCycleSimThreads(benchmark::State &state)
{
    FlexFlowConfig cfg;
    cfg.threads = static_cast<int>(state.range(0));
    FlexFlowConvUnit unit{cfg};
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            unit.runLayer(kLayer, t, layerData().input,
                          layerData().kernels));
    }
    state.SetItemsProcessed(state.iterations() * kLayer.macs());
}
BENCHMARK(BM_FlexFlowCycleSimThreads)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Contiguous-span MAC kernels: the vectorizable unit every inner
// loop above compiles down to.  The Arg is the span length.
void
BM_DotSpan(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<Fixed16> a(n), b(n);
    Rng rng(91);
    for (int i = 0; i < n; ++i) {
        a[i] = Fixed16::fromRaw(static_cast<std::int16_t>(rng.next()));
        b[i] = Fixed16::fromRaw(static_cast<std::int16_t>(rng.next()));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(dotSpan(a.data(), b.data(), n));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotSpan)->Arg(16)->Arg(256)->Arg(4096);

void
BM_ScaleAccumSpan(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<Fixed16> b(n);
    std::vector<Acc> accs(n);
    Rng rng(92);
    for (int i = 0; i < n; ++i)
        b[i] = Fixed16::fromRaw(static_cast<std::int16_t>(rng.next()));
    for (auto _ : state) {
        scaleAccumSpan(accs.data(), 3, b.data(), n);
        benchmark::DoNotOptimize(accs.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScaleAccumSpan)->Arg(16)->Arg(256)->Arg(4096);

void
BM_FlexFlowAnalyticModel(benchmark::State &state)
{
    const FlexFlowModel model;
    const auto net = workloads::vgg11();
    for (auto _ : state) {
        for (const auto &stage : net.stages)
            benchmark::DoNotOptimize(model.runLayer(stage.conv));
    }
}
BENCHMARK(BM_FlexFlowAnalyticModel)->Unit(benchmark::kMicrosecond);

void
BM_FactorSearch(benchmark::State &state)
{
    const auto spec =
        ConvLayerSpec::make("C5", 256, 192, 13, 3);
    const int d = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(searchBestFactors(spec, d));
}
BENCHMARK(BM_FactorSearch)->Arg(16)->Arg(32)->Arg(64);

void
BM_CompileAlexNet(benchmark::State &state)
{
    FlexFlowCompiler compiler;
    const auto net = workloads::alexnet();
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler.compile(net));
}
BENCHMARK(BM_CompileAlexNet)->Unit(benchmark::kMillisecond);

void
BM_CompileVgg11(benchmark::State &state)
{
    FlexFlowCompiler compiler;
    const auto net = workloads::vgg11();
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler.compile(net));
}
BENCHMARK(BM_CompileVgg11)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
