/**
 * @file
 * Table 6: FlexFlow power breakdown by component across the six
 * workloads: Pnein (input neuron buffer), Pneout (output neuron
 * buffer), Pkerin (kernel buffer), Pcom (computing engine including
 * the local stores).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

struct PaperRow
{
    const char *workload;
    double nein, neout, kerin, com; // mW
};

// Paper Table 6.
const PaperRow kPaper[] = {
    {"PV", 48, 66, 15, 711},      {"FR", 61, 75, 25, 847},
    {"LeNet-5", 49, 72, 28, 779}, {"HG", 54, 94, 79, 900},
    {"AlexNet", 58, 75, 27, 958}, {"VGG-11", 50, 86, 23, 860},
};

} // namespace

int
main()
{
    const TechParams tech = TechParams::tsmc65();

    printBanner(std::cout,
                "Table 6: FlexFlow power breakdown by component, mW "
                "(percent of total)");

    TextTable table;
    table.setHeader({"Workload", "Pnein", "Pneout", "Pkerin", "Pcom",
                     "Pbus", "Pleak", "Total", "paper Pcom%"});
    for (const PaperRow &paper : kPaper) {
        NetworkSpec net;
        for (const auto &w : workloads::all())
            if (w.name == paper.workload)
                net = w;
        const BaselineSet set = makeBaselines(net);
        const PowerReport report =
            computePower(networkTotal(*set.flexflow, net),
                         ArchKind::FlexFlow, 16, tech);
        const PowerBreakdown &p = report.power;
        auto cell = [&](double mw) {
            return formatDouble(mw, 0) + " (" +
                   formatPercent(mw / p.total(), 1) + ")";
        };
        const double paper_total =
            paper.nein + paper.neout + paper.kerin + paper.com;
        table.addRow({net.name, cell(p.neuronIn), cell(p.neuronOut),
                      cell(p.kernelIn), cell(p.compute),
                      cell(p.interconnect), cell(p.leakage),
                      formatDouble(p.total(), 0),
                      formatPercent(paper.com / paper_total, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nPaper: the three buffers take < 20% of the budget and "
           "the computing engine\n(including the per-PE local stores) "
           "~80-86%.  The paper folds interconnect into\nthe "
           "components; we report it separately (Section 6.2.5 "
           "studies it explicitly).\n";
    return 0;
}
