/**
 * @file
 * Beyond the paper: utilization vs. dead-PE fraction under the
 * per-architecture salvage policies (src/fault/degrade.hh).
 *
 * Random PEs of a 16x16 fabric are killed at a sweep of fractions
 * (averaged over seeds); each architecture salvages what its
 * interconnect allows and the surviving utilization is reported
 * relative to the full healthy fabric:
 *
 *   - FlexFlow: greedy line cover, then the fault-aware factor
 *     search remaps the layer onto the surviving rows x cols
 *     (utilization stays referenced to the full fabric).
 *   - Tiling (DC-CNN): the same line cover, but the rigid
 *     (outMap, inMap) lane grid cannot re-balance — healthy
 *     utilization on the smaller grid, scaled by surviving PEs.
 *   - 2D-Mapping: largest clean contiguous rectangle (the neuron
 *     dataflow needs physically adjacent PEs).
 *   - Systolic (chained): largest clean top-left square — one
 *     awkward dead PE can cost most of the fabric (the cliff).
 */

#include <iostream>
#include <vector>

#include "arch/factor_search.hh"
#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fault/degrade.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

constexpr int kEdge = 16;
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};
constexpr double kFractions[] = {0.0, 0.02, 0.05, 0.10, 0.20, 0.30};

/** Full-fabric-relative utilization of one layer, per architecture,
 *  on one concrete availability grid. */
struct SalvagedUtilization
{
    double systolic = 0.0;
    double mapping2d = 0.0;
    double tiling = 0.0;
    double flexflow = 0.0;
};

SalvagedUtilization
salvage(const ConvLayerSpec &spec, const fault::ArrayAvailability &avail)
{
    constexpr double full = kEdge * kEdge;
    SalvagedUtilization u;

    // Systolic: healthy utilization scaled to the clean square.
    const fault::DegradedGeometry square =
        fault::degradeTopLeftSquare(avail);
    if (square.pes() > 0) {
        const SystolicModel model(SystolicConfig::forScale(kEdge));
        u.systolic = model.runLayer(spec).utilization() *
                     square.pes() / full;
    }

    // 2D-Mapping: re-run the analytic model on the clean rectangle.
    const fault::DegradedGeometry rect =
        fault::degradeMaxRectangle(avail);
    if (rect.pes() > 0) {
        Mapping2DConfig cfg;
        cfg.rows = rect.rows;
        cfg.cols = rect.cols;
        u.mapping2d = Mapping2DModel(cfg).runLayer(spec).utilization() *
                      rect.pes() / full;
    }

    // Tiling and FlexFlow share the line-cover geometry.
    const fault::DegradedGeometry cover = fault::degradeLineCover(avail);
    if (cover.pes() > 0) {
        TilingConfig cfg;
        cfg.tm = cover.rows;
        cfg.tn = cover.cols;
        u.tiling = TilingModel(cfg).runLayer(spec).utilization() *
                   cover.pes() / full;
        u.flexflow = searchBestFactors(spec, kEdge, spec.outSize,
                                       cover.rows, cover.cols)
                         .utilization();
    }
    return u;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = csvMode(argc, argv);
    printBanner(std::cout,
                "Fault tolerance: utilization vs dead-PE fraction "
                "(16x16 fabric, mean of 5 seeds)");

    struct LayerPick
    {
        NetworkSpec net;
        std::size_t stage;
    };
    const std::vector<LayerPick> picks = {
        {workloads::lenet5(), 1},  // C3
        {workloads::alexnet(), 1}, // C3
        {workloads::alexnet(), 4}, // C7
        {workloads::vgg11(), 4},   // C8
    };

    TextTable table;
    std::vector<std::string> header = {"Layer", "Arch"};
    for (const double f : kFractions)
        header.push_back(formatPercent(f) + " dead");
    table.setHeader(header);

    for (const LayerPick &pick : picks) {
        const ConvLayerSpec &spec = pick.net.stages[pick.stage].conv;
        const std::string label = pick.net.name + "/" + spec.name;

        std::vector<SalvagedUtilization> means;
        for (const double f : kFractions) {
            SalvagedUtilization mean;
            for (const std::uint64_t seed : kSeeds) {
                fault::ArrayAvailability avail(kEdge, kEdge);
                avail.killRandomPes(f, seed);
                const SalvagedUtilization u = salvage(spec, avail);
                mean.systolic += u.systolic;
                mean.mapping2d += u.mapping2d;
                mean.tiling += u.tiling;
                mean.flexflow += u.flexflow;
            }
            const double n = std::size(kSeeds);
            mean.systolic /= n;
            mean.mapping2d /= n;
            mean.tiling /= n;
            mean.flexflow /= n;
            means.push_back(mean);
        }

        const auto row = [&](const std::string &arch,
                             double SalvagedUtilization::*field) {
            std::vector<std::string> cells = {label, arch};
            for (const SalvagedUtilization &m : means)
                cells.push_back(formatPercent(m.*field));
            table.addRow(cells);
        };
        row("Systolic", &SalvagedUtilization::systolic);
        row("2D-Mapping", &SalvagedUtilization::mapping2d);
        row("Tiling", &SalvagedUtilization::tiling);
        row("FlexFlow", &SalvagedUtilization::flexflow);
        table.addSeparator();
    }
    emitTable(table, csv, std::cout);

    std::cout
        << "\nFlexFlow degrades gracefully: the line cover plus "
           "factor re-search keeps utilization within a few line-"
           "widths of the dead fraction, while the chained systolic "
           "array falls off a cliff once any central PE dies and the "
           "2D-mapping rectangle loses whole margins.\n";
    return 0;
}
