/**
 * @file
 * Extension: dynamic system-level pipeline (double-buffered prefetch)
 * vs. a fully serialized execution, per workload and DRAM bandwidth.
 *
 * Runs each compiled workload on the cycle-stepped system model
 * (DMA engine + compute engine + controller) and reports the overlap
 * speedup and where the engine stalls on data.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/system_sim.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    printBanner(std::cout,
                "Extension: dynamic prefetch pipeline vs serialized "
                "execution (16x16 engine)");

    FlexFlowCompiler compiler;
    const double bandwidths[] = {1.0, 2.0, 4.0};

    for (double bw : bandwidths) {
        std::cout << "DRAM bandwidth " << formatDouble(bw * 2.0, 1)
                  << " GB/s (" << formatDouble(bw, 1)
                  << " words/cycle):\n\n";
        TextTable table;
        table.setHeader({"Workload", "Pipelined cycles",
                         "Serialized cycles", "Overlap speedup",
                         "Compute stall", "DMA busy"});
        for (const NetworkSpec &net : workloads::all()) {
            const CompilationResult compiled = compiler.compile(net);
            const SystemRunResult run = runSystem(
                compiled, FlexFlowConfig::forScale(16), bw);
            table.addRow(
                {net.name, formatCount(run.totalCycles),
                 formatCount(run.serializedCycles),
                 formatDouble(run.overlapSpeedup(), 2) + "x",
                 formatPercent(
                     static_cast<double>(run.computeStallCycles) /
                     static_cast<double>(run.totalCycles)),
                 formatPercent(
                     static_cast<double>(run.dmaBusyCycles) /
                     static_cast<double>(run.totalCycles))});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Double-buffered prefetch hides most transfer latency once "
           "bandwidth covers the\nkernel streams; the residual stall "
           "is the first layer's cold load plus layers\nwhose "
           "successors' kernels outweigh their own compute.\n";
    return 0;
}
