/**
 * @file
 * Ablation: how much do the FlexFlow dataflow mechanisms actually
 * buy?  Disables each of the two finite-capacity mechanisms of the
 * schedule planner and reports the buffer-traffic impact per
 * workload:
 *
 *  - no row-band retention (RS windows refetched per band);
 *  - no input-map pass splitting (kernels streamed per batch instead
 *    of partial sums cycling through the output buffer, Fig. 13(f)).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

WordCount
totalTraffic(const FlexFlowConfig &config, const NetworkSpec &net)
{
    const FlexFlowModel model(config);
    WordCount total = 0;
    for (const auto &stage : net.stages)
        total += model.runLayer(stage.conv).traffic.total();
    return total;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: FlexFlow dataflow mechanisms (buffer<->array "
                "words, 16x16 scale)");

    FlexFlowConfig full = FlexFlowConfig::forScale(16);
    FlexFlowConfig no_retention = full;
    no_retention.enableBandRetention = false;
    FlexFlowConfig no_split = full;
    no_split.enablePassSplitting = false;
    FlexFlowConfig neither = no_retention;
    neither.enablePassSplitting = false;

    TextTable table;
    table.setHeader({"Workload", "Full design", "No band retention",
                     "No pass splitting", "Neither",
                     "Worst/full"});
    for (const NetworkSpec &net : workloads::all()) {
        const WordCount base = totalTraffic(full, net);
        const WordCount no_ret = totalTraffic(no_retention, net);
        const WordCount no_spl = totalTraffic(no_split, net);
        const WordCount none = totalTraffic(neither, net);
        table.addRow({net.name, formatCount(base), formatCount(no_ret),
                      formatCount(no_spl), formatCount(none),
                      formatDouble(static_cast<double>(none) /
                                       static_cast<double>(base),
                                   1) +
                          "x"});
    }
    table.print(std::cout);

    std::cout
        << "\nBand retention matters most for the small workloads "
           "(their whole row band fits\nthe 256 B stores); pass "
           "splitting matters most for AlexNet/VGG, whose per-PE\n"
           "kernel slices exceed the store -- without Fig. 13(f) "
           "partial-sum write-back the\nkernels would stream from the "
           "buffer every batch.\n";
    return 0;
}
