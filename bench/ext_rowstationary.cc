/**
 * @file
 * Extension: quantitative Row-Stationary (Eyeriss-class) comparison.
 *
 * The paper's Table 7 compares FlexFlow against Eyeriss only on
 * published spec numbers; with the Row-Stationary model implemented,
 * the comparison can be run on the actual six workloads (12x14 RS
 * array vs the 16x16 FlexFlow engine, both 65 nm at 1 GHz).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "rowstationary/rs_model.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    const TechParams tech = TechParams::tsmc65();
    const RowStationaryModel rs(RowStationaryConfig::eyeriss());
    const FlexFlowModel ff(FlexFlowConfig::forScale(16));

    printBanner(std::cout,
                "Extension: Row-Stationary (12x14, Eyeriss-class) vs "
                "FlexFlow (16x16)");

    TextTable table;
    table.setHeader({"Workload", "RS util", "FF util", "RS GOPs",
                     "FF GOPs", "RS words", "FF words", "FF/RS perf"});
    for (const NetworkSpec &net : workloads::all()) {
        const LayerResult rs_total = rs.runNetwork(net).total();
        const LayerResult ff_total = ff.runNetwork(net).total();
        table.addRow({net.name,
                      formatPercent(rs_total.utilization()),
                      formatPercent(ff_total.utilization()),
                      formatDouble(rs_total.gops(), 1),
                      formatDouble(ff_total.gops(), 1),
                      formatCount(rs_total.traffic.total()),
                      formatCount(ff_total.traffic.total()),
                      formatDouble(ff_total.gops() / rs_total.gops(),
                                   2) +
                          "x"});
    }
    table.print(std::cout);

    std::cout
        << "\nPer-layer utilization on AlexNet (RS shines on the "
           "big-kernel strided C1 that\nruins the Systolic baseline; "
           "FlexFlow matches or beats it everywhere):\n\n";
    TextTable detail;
    detail.setHeader({"Layer", "Row-Stationary", "FlexFlow"});
    for (const auto &stage : workloads::alexnet().stages) {
        detail.addRow(
            {stage.conv.name,
             formatPercent(rs.runLayer(stage.conv).utilization()),
             formatPercent(ff.runLayer(stage.conv).utilization())});
    }
    detail.print(std::cout);

    std::cout << "\nNote: RS has 168 PEs vs FlexFlow's 256, so the "
                 "GOPs gap combines array size\nwith utilization; the "
                 "utilization columns are the apples-to-apples view.\n";
    (void)tech;
    return 0;
}
