/**
 * @file
 * Table 4: the unrolling factors the workload analyzer chooses for
 * the four small workloads on a 16x16 convolutional unit, next to the
 * paper's published factors and both choices' utilization.
 *
 * Ties are common (several factor mixes reach the same Ur * Uc); the
 * meaningful comparison is the achieved utilization.
 */

#include <iostream>
#include <optional>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

struct PaperFactors
{
    const char *workload;
    const char *layer;
    UnrollFactors t;
};

// Paper Table 4.  (FR C1's published Tj = 15 exceeds K = 5 and is
// read as the obvious Tj = 5 typo.)
const PaperFactors kPaper[] = {
    {"PV", "C1", {8, 1, 1, 2, 2, 6}},
    {"PV", "C3", {3, 8, 1, 5, 1, 2}},
    {"FR", "C1", {4, 1, 1, 4, 3, 5}},
    {"FR", "C3", {16, 4, 1, 1, 1, 4}},
    {"LeNet-5", "C1", {3, 1, 1, 5, 3, 5}},
    {"LeNet-5", "C3", {16, 3, 1, 1, 1, 5}},
    {"HG", "C1", {3, 1, 1, 5, 3, 5}},
    {"HG", "C3", {4, 2, 1, 4, 2, 4}},
};

std::optional<UnrollFactors>
paperFactors(const std::string &workload, const std::string &layer)
{
    for (const PaperFactors &row : kPaper)
        if (workload == row.workload && layer == row.layer)
            return row.t;
    return std::nullopt;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Table 4: Unrolling factors chosen by the compiler "
                "(16x16 PEs) vs. the paper");

    FlexFlowCompiler compiler;
    TextTable table;
    table.setHeader({"Workload", "Layer", "Ours", "Ut(ours)", "Paper",
                     "Ut(paper)", "Coupled"});
    for (const NetworkSpec &net : workloads::smallFour()) {
        const CompilationResult result = compiler.compile(net);
        for (const LayerPlan &plan : result.layers) {
            const auto paper = paperFactors(net.name, plan.spec.name);
            std::string paper_str = "-";
            std::string paper_util = "-";
            if (paper) {
                paper_str = paper->toString();
                if (feasible(*paper, plan.spec, 16,
                             plan.spec.outSize)) {
                    paper_util = formatPercent(
                        utilizationTotal(*paper, plan.spec, 16));
                }
            }
            table.addRow({net.name, plan.spec.name,
                          plan.factors.toString(),
                          formatPercent(plan.utilization), paper_str,
                          paper_util,
                          plan.coupled ? "yes" : "no"});
        }
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}
