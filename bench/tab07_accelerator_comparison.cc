/**
 * @file
 * Table 7: comparison with DianNao and Eyeriss, chiefly the DRAM
 * accesses-per-operation metric measured on AlexNet through the
 * compiler's whole-network DRAM plan (finite 32 KiB buffers, on-chip
 * inter-layer residency, pooled writebacks).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "energy/area.hh"

using namespace flexsim;

int
main()
{
    printBanner(std::cout,
                "Table 7: Accelerator comparison (FlexFlow column "
                "measured, others from the paper)");

    const NetworkSpec net = workloads::alexnet();
    FlexFlowCompiler compiler;
    const CompilationResult compiled = compiler.compile(net);

    const double ops = 2.0 * static_cast<double>(net.totalMacs());
    const DramTraffic dram = compiled.totalDram();
    const double acc_per_op = static_cast<double>(dram.total()) / ops;

    const TechParams tech = TechParams::tsmc65();
    const double area =
        computeArea(defaultAreaConfig(ArchKind::FlexFlow, 16), tech)
            .total();

    TextTable table;
    table.setHeader({"", "DianNao", "Eyeriss", "FlexFlow (measured)",
                     "FlexFlow (paper)"});
    table.addRow({"Process", "65nm", "65nm", "65nm", "65nm"});
    table.addRow({"Num of PEs", "256", "168", "256", "256"});
    table.addRow({"Local store/PE", "NA", "512B", "512B", "512B"});
    table.addRow({"Buffer size", "36KB", "108KB", "64KB", "64KB"});
    table.addRow({"Area (mm^2)", "3.02", "16", formatDouble(area, 2),
                  "3.89"});
    table.addRow({"DRAM Acc/Op", "NA", "0.006",
                  formatDouble(acc_per_op, 4), "0.0049"});
    table.print(std::cout);

    std::cout << "\nDRAM plan detail (AlexNet):\n\n";
    TextTable detail;
    detail.setHeader({"Layer", "Input reads", "Kernel reads", "Writes",
                      "Kernel groups", "Input stripes", "On-chip in",
                      "On-chip out"});
    for (const LayerPlan &plan : compiled.layers) {
        detail.addRow({plan.spec.name,
                       formatCount(plan.dram.inputReadWords),
                       formatCount(plan.dram.kernelReadWords),
                       formatCount(plan.dram.traffic.writes),
                       std::to_string(plan.dram.kernelGroups),
                       std::to_string(plan.dram.inputStripes),
                       plan.inputOnChip ? "yes" : "no",
                       plan.outputOnChip ? "yes" : "no"});
    }
    detail.print(std::cout);
    return 0;
}
