/**
 * @file
 * Section 6.2.1: chip area of the four 16x16-scale designs under the
 * calibrated 65 nm area model, with the component breakdown.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "energy/area.hh"

using namespace flexsim;

int
main()
{
    const TechParams tech = TechParams::tsmc65();

    printBanner(std::cout,
                "Section 6.2.1: Layout area at the 16x16 scale, mm^2");

    const struct
    {
        ArchKind kind;
        double paper;
    } rows[] = {
        {ArchKind::Systolic, 3.52},
        {ArchKind::Mapping2D, 3.46},
        {ArchKind::Tiling, 3.21},
        {ArchKind::FlexFlow, 3.89},
    };

    TextTable table;
    table.setHeader({"Architecture", "PE logic", "Local stores",
                     "Buffers", "Interconnect", "Fixed", "Total",
                     "Paper"});
    for (const auto &row : rows) {
        const AreaBreakdown area =
            computeArea(defaultAreaConfig(row.kind, 16), tech);
        table.addRow({archName(row.kind),
                      formatDouble(area.peLogic, 2),
                      formatDouble(area.localStores, 2),
                      formatDouble(area.buffers, 2),
                      formatDouble(area.interconnect, 2),
                      formatDouble(area.fixedOverhead, 2),
                      formatDouble(area.total(), 2),
                      formatDouble(row.paper, 2)});
    }
    table.print(std::cout);

    std::cout
        << "\nFlexFlow is slightly larger than the baselines because "
           "of the per-PE local\nstores (512 B each), exactly as the "
           "paper reports; its simplified bus\ninterconnect pays off "
           "at larger scales (see fig19_scalability).\n";
    return 0;
}
