/**
 * @file
 * Extension: what does the paper's 16-bit fixed-point (Q7.8) datapath
 * cost in accuracy?  Compares every workload layer's fixed-point
 * output against a double-precision reference on the same
 * (dequantized) operands and reports the quantization error.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    printBanner(std::cout,
                "Extension: Q7.8 output quantization error vs "
                "double-precision reference");

    // One Q7.8 LSB is 1/256 ~ 0.0039; output rounding alone
    // contributes up to half of that.
    std::cout << "Q7.8 LSB = " << formatDouble(1.0 / 256.0, 5)
              << "; the rounding bound per output is half an LSB.\n\n";

    Rng rng(0x1234);
    TextTable table;
    table.setHeader({"Workload", "Layer", "Max |err|", "RMS err",
                     "Ref peak", "Max err (LSBs)"});
    for (const NetworkSpec &net : workloads::smallFour()) {
        for (const auto &stage : net.stages) {
            const ConvLayerSpec &spec = stage.conv;
            const Tensor3<> input = makeRandomInput(rng, spec);
            const Tensor4<> kernels = makeRandomKernels(rng, spec);
            const Tensor3<> fixed = goldenConv(spec, input, kernels);
            const Tensor3<double> ref =
                goldenConvFloat(input, kernels, spec.stride);
            const QuantizationError err =
                measureQuantizationError(fixed, ref);
            table.addRow({net.name, spec.name,
                          formatDouble(err.maxAbs, 5),
                          formatDouble(err.rms, 5),
                          formatDouble(err.refPeak, 2),
                          formatDouble(err.maxAbs * 256.0, 2)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout
        << "\nWith Q7.8 operands the only datapath error is the "
           "single output rounding (the\naccumulator is exact), so "
           "every layer lands within half an LSB -- the empirical\n"
           "basis for the paper's (and DianNao-era designs') 16-bit "
           "fixed-point choice.\n";
    return 0;
}
