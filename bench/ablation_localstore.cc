/**
 * @file
 * Ablation: sensitivity to the per-PE local-store size (the paper's
 * Table 5 fixes 256 B neuron + 256 B kernel stores).  Sweeps the
 * store size and reports passes, retention, and traffic on the two
 * store-pressure extremes (LeNet-5 small, VGG-11 large).
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "flexflow/schedule.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

struct SweepPoint
{
    std::size_t words = 0;
    WordCount total = 0;
    int maxPasses = 1;
    int bandsRetained = 0;
};

SweepPoint
evaluate(const NetworkSpec &net, std::size_t words)
{
    SweepPoint point;
    point.words = words;
    FlexFlowConfig config = FlexFlowConfig::forScale(16);
    config.neuronStoreWords = words;
    config.kernelStoreWords = words;
    const FlexFlowModel model(config);
    for (const auto &stage : net.stages) {
        const FactorChoice choice =
            searchBestFactors(stage.conv, config.d);
        const FlexFlowSchedule sched =
            planSchedule(stage.conv, choice.factors, config);
        point.total +=
            model.runLayer(stage.conv, choice.factors).traffic.total();
        point.maxPasses = std::max(point.maxPasses, sched.splits());
        point.bandsRetained += sched.bandRetention;
    }
    return point;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: per-PE local store size (words of 16 bits; "
                "paper = 128)");

    const std::size_t sizes[] = {32, 64, 128, 256, 512};
    for (const char *name : {"LeNet-5", "VGG-11"}) {
        NetworkSpec net;
        for (const auto &w : workloads::all())
            if (w.name == name)
                net = w;

        std::vector<SweepPoint> points;
        WordCount base = 0;
        for (std::size_t words : sizes) {
            points.push_back(evaluate(net, words));
            if (words == 128)
                base = points.back().total;
        }

        std::cout << net.name << ":\n\n";
        TextTable table;
        table.setHeader({"Store words", "Total words moved",
                         "Max passes", "Bands retained",
                         "vs 128-word"});
        for (const SweepPoint &point : points) {
            table.addRow(
                {std::to_string(point.words),
                 formatCount(point.total),
                 std::to_string(point.maxPasses),
                 std::to_string(point.bandsRetained) + "/" +
                     std::to_string(net.stages.size()),
                 formatDouble(static_cast<double>(point.total) /
                                  static_cast<double>(base),
                              2) +
                     "x"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "The paper's 256 B (128-word) choice sits at the "
                 "knee: halving the stores splits\nthe big layers "
                 "into more psum passes and drops band retention; "
                 "doubling them buys\nlittle.\n";
    return 0;
}
