/**
 * @file
 * Figure 17: volume of data transmitted between the on-chip buffers
 * and the computing engine (the paper's data-reusability proxy),
 * broken down by category.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main(int argc, char **argv)
{
    const bool csv = csvMode(argc, argv);
    printBanner(std::cout,
                "Figure 17: Data transmission volume in words (16x16 "
                "scale)");

    TextTable table;
    table.setHeader({"Workload", "Systolic", "2D-Mapping", "Tiling",
                     "FlexFlow", "FF/best-baseline"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        const WordCount sys =
            networkTotal(*set.systolic, net).traffic.total();
        const WordCount map =
            networkTotal(*set.mapping2d, net).traffic.total();
        const WordCount til =
            networkTotal(*set.tiling, net).traffic.total();
        const WordCount ff =
            networkTotal(*set.flexflow, net).traffic.total();
        const WordCount best = std::min({sys, map, til});
        table.addRow({net.name, formatCount(sys), formatCount(map),
                      formatCount(til), formatCount(ff),
                      formatDouble(static_cast<double>(ff) /
                                       static_cast<double>(best),
                                   2)});
    }
    emitTable(table, csv, std::cout);

    std::cout << "\nBreakdown by category (FlexFlow):\n\n";
    TextTable detail;
    detail.setHeader({"Workload", "neuronIn", "kernelIn", "neuronOut",
                      "psumR/W"});
    for (const NetworkSpec &net : workloads::all()) {
        const BaselineSet set = makeBaselines(net);
        const Traffic t = networkTotal(*set.flexflow, net).traffic;
        detail.addRow({net.name, formatCount(t.neuronIn),
                       formatCount(t.kernelIn),
                       formatCount(t.neuronOut),
                       formatCount(t.psumRead + t.psumWrite)});
    }
    emitTable(detail, csv, std::cout);

    std::cout
        << "\nPaper: FlexFlow imposes the least data volume; Tiling "
           "by far the most (its\nsynapses are re-fetched every "
           "cycle); Systolic slightly better than 2D-Mapping.\n";
    return 0;
}
