/**
 * @file
 * Table 3: hardware utilization of the three rigid architectures when
 * a layer runs on hardware parameterized for the *other* layer
 * ("C3 on C1-opt" / "C1 on C3-opt") across PV, FR, LeNet-5, HG.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

struct PaperRow
{
    const char *workload;
    double sys_c3_on_c1, map_c3_on_c1, til_c3_on_c1;
    double sys_c1_on_c3, map_c1_on_c3, til_c1_on_c3;
};

// Paper Table 3 (percent).
const PaperRow kPaper[] = {
    {"PV", 25, 19, 75, 100, 56, 8.3},
    {"FR", 80, 12.7, 100, 39, 87, 6.2},
    {"LeNet-5", 100, 12.7, 88, 100, 87, 6.2},
    {"HG", 80, 100, 11, 39, 100, 8.3},
};

double
systolicUtil(const ConvLayerSpec &run, const ConvLayerSpec &opt)
{
    // Spatial kernel occupancy, normalized the way the paper's 100%
    // baseline implies: utilization on the K-optimized array divided
    // by utilization on a perfectly sized array.
    SystolicConfig cfg;
    cfg.arrayEdge = opt.kernel;
    cfg.numArrays = 1;
    SystolicConfig exact;
    exact.arrayEdge = run.kernel;
    exact.numArrays = 1;
    const double on_opt = SystolicModel(cfg).runLayer(run).utilization();
    const double on_exact =
        SystolicModel(exact).runLayer(run).utilization();
    return on_opt / on_exact;
}

double
mappingUtil(const ConvLayerSpec &run, const ConvLayerSpec &opt)
{
    Mapping2DConfig cfg;
    cfg.rows = opt.outSize;
    cfg.cols = opt.outSize;
    return Mapping2DModel(cfg).runLayer(run).utilization();
}

double
tilingUtil(const ConvLayerSpec &run, const ConvLayerSpec &opt)
{
    TilingConfig cfg;
    cfg.tm = opt.outMaps;
    cfg.tn = opt.inMaps;
    return TilingModel(cfg).runLayer(run).utilization();
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Table 3: Cross-layer hardware utilization (measured "
                "vs. paper, percent)");

    TextTable table;
    table.setHeader({"Workload", "Case", "Systolic", "(paper)",
                     "2D-Map.", "(paper)", "Tiling", "(paper)"});
    for (const PaperRow &row : kPaper) {
        NetworkSpec net;
        for (const auto &w : workloads::smallFour())
            if (w.name == row.workload)
                net = w;
        const ConvLayerSpec &c1 = net.stages[0].conv;
        const ConvLayerSpec &c3 = net.stages[1].conv;

        table.addRow({row.workload, "C3 on C1-opt",
                      formatDouble(systolicUtil(c3, c1) * 100, 1),
                      formatDouble(row.sys_c3_on_c1, 1),
                      formatDouble(mappingUtil(c3, c1) * 100, 1),
                      formatDouble(row.map_c3_on_c1, 1),
                      formatDouble(tilingUtil(c3, c1) * 100, 1),
                      formatDouble(row.til_c3_on_c1, 1)});
        table.addRow({row.workload, "C1 on C3-opt",
                      formatDouble(systolicUtil(c1, c3) * 100, 1),
                      formatDouble(row.sys_c1_on_c3, 1),
                      formatDouble(mappingUtil(c1, c3) * 100, 1),
                      formatDouble(row.map_c1_on_c3, 1),
                      formatDouble(tilingUtil(c1, c3) * 100, 1),
                      formatDouble(row.til_c1_on_c3, 1)});
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nNote: the paper's Systolic entries for FR/HG "
                 "(80) are inconsistent with the\nsquared active-PE "
                 "ratio its PV entry implies ((4/5)^2 = 64); see "
                 "EXPERIMENTS.md.\n";
    return 0;
}
