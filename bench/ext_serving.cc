/**
 * @file
 * Extension: inference-serving capacity of a FlexFlow pool.
 *
 * Sweeps offered load (RPS) against pool size and reports delivered
 * throughput, p99 latency, and shed rate from the serving runtime
 * (src/serve/).  Each cell is a deterministic virtual-time run of
 * Poisson traffic; the knee where tail latency diverges and shedding
 * begins marks the pool's service capacity — the number a deployment
 * provisions against.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "serve/runtime.hh"
#include "serve/service_model.hh"
#include "serve/traffic.hh"

using namespace flexsim;
using namespace flexsim::bench;
using namespace flexsim::serve;

int
main(int argc, char **argv)
{
    const bool csv = csvMode(argc, argv);

    const unsigned pools[] = {1, 2, 4, 8};
    const double rates[] = {250, 500, 1000, 2000, 4000, 8000};
    const TimeNs duration_ns = 2'000'000'000; // 2 s of virtual time

    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::alexnet()},
                                   /*dram_words_per_cycle=*/4.0);

    if (!csv) {
        printBanner(std::cout,
                    "Extension: serving AlexNet on FlexFlow 16x16 "
                    "pools (Poisson, 2 s, seed 1)");
        std::cout << "single-frame service: "
                  << formatDouble(
                         static_cast<double>(service.frameServiceNs(0)) /
                             1e6,
                         3)
                  << " ms; cells are delivered rps / p99 ms / shed "
                     "fraction\n\n";
    }

    TextTable table;
    std::vector<std::string> header = {"Offered RPS"};
    for (unsigned pool : pools)
        header.push_back("pool=" + std::to_string(pool));
    table.setHeader(header);

    for (double rps : rates) {
        std::vector<std::string> row = {formatDouble(rps, 0)};
        for (unsigned pool : pools) {
            TrafficConfig traffic;
            traffic.rps = rps;
            traffic.durationNs = duration_ns;
            traffic.seed = 1;
            const auto requests = generateTraffic(traffic);

            ServeConfig config;
            config.poolSize = pool;
            ServeRuntime runtime(service, config);
            const ServeReport report = runtime.run(requests);
            row.push_back(
                formatDouble(report.throughputRps, 0) + " / " +
                formatDouble(report.p99LatencyMs, 1) + " / " +
                formatPercent(report.shedRate(), 0));
        }
        table.addRow(row);
    }
    emitTable(table, csv, std::cout);

    if (!csv) {
        std::cout
            << "\nReading the knee: each pool delivers offered load "
               "until it saturates near\npool_size / "
               "frame_service_time; past that, p99 diverges to the "
               "queue's full\ndrain time and admission control sheds "
               "the excess.\n";
    }
    return 0;
}
