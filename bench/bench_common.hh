/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Each bench/ binary regenerates one table or figure of the paper's
 * evaluation (Section 6); the mapping is indexed in DESIGN.md.  The
 * binaries print the same rows/series the paper reports and, where
 * the paper gives absolute numbers, a paper-vs-measured column.
 */

#ifndef FLEXSIM_BENCH_BENCH_COMMON_HH
#define FLEXSIM_BENCH_BENCH_COMMON_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "arch/accelerator.hh"
#include "common/table.hh"
#include "energy/power.hh"
#include "energy/tech.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/workloads.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_model.hh"

namespace flexsim {
namespace bench {

/** True when "--csv" appears on the command line. */
inline bool
csvMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--csv")
            return true;
    }
    return false;
}

/** Print @p table as text or CSV depending on the mode. */
inline void
emitTable(const TextTable &table, bool csv, std::ostream &os)
{
    if (csv)
        table.printCsv(os);
    else
        table.print(os);
}

/** The paper's Section 6.1.1 baseline set at engine scale D. */
struct BaselineSet
{
    std::unique_ptr<SystolicModel> systolic;
    std::unique_ptr<Mapping2DModel> mapping2d;
    std::unique_ptr<TilingModel> tiling;
    std::unique_ptr<FlexFlowModel> flexflow;

    std::vector<std::pair<ArchKind, const AcceleratorModel *>>
    all() const
    {
        return {{ArchKind::Systolic, systolic.get()},
                {ArchKind::Mapping2D, mapping2d.get()},
                {ArchKind::Tiling, tiling.get()},
                {ArchKind::FlexFlow, flexflow.get()}};
    }
};

/**
 * Build the four baselines for one workload at scale @p d.  The
 * Systolic arrays are 6x6 except for AlexNet's 11x11 configuration
 * (paper Section 6.1.1).
 */
inline BaselineSet
makeBaselines(const NetworkSpec &net, unsigned d = 16)
{
    BaselineSet set;
    const int ka = net.name == "AlexNet" ? 11 : 6;
    set.systolic = std::make_unique<SystolicModel>(
        SystolicConfig::forScale(d, ka));
    set.mapping2d = std::make_unique<Mapping2DModel>(
        Mapping2DConfig::forScale(d));
    set.tiling =
        std::make_unique<TilingModel>(TilingConfig::forScale(d));
    set.flexflow = std::make_unique<FlexFlowModel>(
        FlexFlowConfig::forScale(d));
    return set;
}

/** Work-weighted network utilization under @p model. */
inline double
networkUtilization(const AcceleratorModel &model, const NetworkSpec &net)
{
    double weighted = 0.0, macs = 0.0;
    for (const auto &stage : net.stages) {
        const LayerResult r = model.runLayer(stage.conv);
        weighted += r.utilization() * static_cast<double>(r.macs);
        macs += static_cast<double>(r.macs);
    }
    return weighted / macs;
}

/** Whole-network aggregate record. */
inline LayerResult
networkTotal(const AcceleratorModel &model, const NetworkSpec &net)
{
    return model.runNetwork(net).total();
}

} // namespace bench
} // namespace flexsim

#endif // FLEXSIM_BENCH_BENCH_COMMON_HH
