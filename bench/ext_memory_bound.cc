/**
 * @file
 * Extension: where does FlexFlow go memory-bound?
 *
 * The paper evaluates the engine with fed buffers; a deployment also
 * needs DRAM bandwidth.  Sweeps the external-memory bandwidth and
 * reports the effective (stall-inclusive, double-buffered) GOPs per
 * workload plus the minimum bandwidth that keeps the engine
 * compute-bound.
 */

#include <iostream>

#include "bench_common.hh"
#include "arch/system_timing.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    printBanner(std::cout,
                "Extension: effective GOPs vs DRAM bandwidth "
                "(words/cycle at 1 GHz; 2 B/word)");

    const double bandwidths[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
    FlexFlowCompiler compiler;

    TextTable table;
    std::vector<std::string> header = {"Workload"};
    for (double bw : bandwidths)
        header.push_back(formatDouble(bw * 2.0, 1) + " GB/s");
    header.push_back("BW to stay compute-bound");
    table.setHeader(header);

    for (const NetworkSpec &net : workloads::all()) {
        const CompilationResult compiled = compiler.compile(net);
        const FlexFlowModel model(FlexFlowConfig::forScale(16));
        // Aggregate the network with the compiler's DRAM plan (which
        // keeps small inter-layer activations on chip).
        LayerResult total;
        for (const LayerPlan &plan : compiled.layers) {
            LayerResult layer =
                model.runLayer(plan.spec, plan.factors);
            layer.dram = plan.dram.traffic;
            layer.layerName.clear();
            total += layer;
        }
        std::vector<std::string> row = {net.name};
        for (double bw : bandwidths)
            row.push_back(formatDouble(effectiveGops(total, bw), 0));
        const double needed =
            static_cast<double>(total.dram.total()) /
            static_cast<double>(total.cycles);
        row.push_back(formatDouble(needed * 2.0, 2) + " GB/s");
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout
        << "\nThe small workloads stay on chip and never starve; "
           "AlexNet/VGG need real DRAM\nbandwidth for their kernel "
           "streams before the 16x16 engine runs at full speed.\n";
    return 0;
}
