/**
 * @file
 * Ablation: on-chip buffer capacity vs. DRAM accesses per operation
 * (the Table 7 metric) on AlexNet.  The paper fixes 2 x 32 KiB neuron
 * buffers + 32 KiB kernel buffer; this sweep shows where its 0.005
 * Acc/Op regime comes from and what Eyeriss-class 108 KiB would buy.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    printBanner(std::cout,
                "Ablation: buffer capacity vs. AlexNet DRAM Acc/Op "
                "(paper buffers = 32 KiB each)");

    const NetworkSpec net = workloads::alexnet();
    const double ops = 2.0 * static_cast<double>(net.totalMacs());

    TextTable table;
    table.setHeader({"Buffer size (each)", "DRAM words",
                     "DRAM Acc/Op", "vs 32 KiB"});
    double base = 0.0;
    struct Row
    {
        const char *label;
        std::size_t words;
    };
    const Row rows[] = {
        {"8 KiB", 4 * 1024},   {"16 KiB", 8 * 1024},
        {"32 KiB", 16 * 1024}, {"64 KiB", 32 * 1024},
        {"128 KiB", 64 * 1024},
    };
    // First pass to find the 32 KiB baseline.
    for (const Row &row : rows) {
        if (std::string(row.label) != "32 KiB")
            continue;
        FlexFlowConfig config = FlexFlowConfig::forScale(16);
        config.neuronBufWords = row.words;
        config.kernelBufWords = row.words;
        base = static_cast<double>(FlexFlowCompiler(config)
                                       .compile(net)
                                       .totalDram()
                                       .total());
    }
    for (const Row &row : rows) {
        FlexFlowConfig config = FlexFlowConfig::forScale(16);
        config.neuronBufWords = row.words;
        config.kernelBufWords = row.words;
        FlexFlowCompiler compiler(config);
        const DramTraffic dram = compiler.compile(net).totalDram();
        table.addRow(
            {row.label, formatCount(dram.total()),
             formatDouble(static_cast<double>(dram.total()) / ops, 4),
             formatDouble(static_cast<double>(dram.total()) / base,
                          2) +
                 "x"});
    }
    table.print(std::cout);

    std::cout << "\nPaper Table 7: FlexFlow 0.0049 Acc/Op with 64 KiB "
                 "total buffering (Eyeriss: 0.006\nwith 108 KiB).\n";
    return 0;
}
