/**
 * @file
 * Figure 1: nominal vs. achievable performance of the three
 * representative architectures running LeNet-5.
 *
 * The paper's motivating figure: rigid-dataflow engines deliver a
 * fraction (sometimes ~10%) of their nominal GOPS on a practical
 * workload.  FlexFlow is added as a fourth column for contrast.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main()
{
    const NetworkSpec net = workloads::lenet5();
    const BaselineSet set = makeBaselines(net);

    printBanner(std::cout,
                "Figure 1: Nominal vs. Achievable Performance "
                "(LeNet-5, 1 GHz)");

    TextTable table;
    table.setHeader({"Architecture", "Nominal GOPs", "Achieved GOPs",
                     "Achieved/Nominal"});
    for (const auto &[kind, model] : set.all()) {
        const double nominal = 2.0 * model->nominalMacsPerCycle();
        const LayerResult total = networkTotal(*model, net);
        const double achieved = total.gops(1.0);
        table.addRow({archName(kind), formatDouble(nominal, 0),
                      formatDouble(achieved, 1),
                      formatPercent(achieved / nominal)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: the rigid baselines reach a small fraction "
                 "of nominal (down to ~10%);\nFlexFlow closes most of "
                 "the gap.\n";
    return 0;
}
