/**
 * @file
 * Ablation: the compiler's IADP chain coupling (Section 5).  Compares
 * three compiler policies per workload:
 *
 *  - chain DP (default): row sides chosen jointly with the next
 *    layer's coupled column side;
 *  - strict (margin 0): every layer locally optimal, coupling only on
 *    exact ties;
 *  - greedy per-layer choice with no coupling consideration at all
 *    (data must be re-laid-out between layers).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"

using namespace flexsim;
using namespace flexsim::bench;

namespace {

struct PolicyResult
{
    Cycle cycles = 0;
    int coupled = 0;
};

PolicyResult
evaluate(const NetworkSpec &net, double margin)
{
    FlexFlowCompiler compiler(FlexFlowConfig::forScale(16), margin);
    const CompilationResult compiled = compiler.compile(net);
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    PolicyResult result;
    for (const LayerPlan &plan : compiled.layers) {
        result.cycles +=
            model.runLayer(plan.spec, plan.factors).cycles;
        result.coupled += plan.coupled;
    }
    return result;
}

PolicyResult
evaluateUncoupled(const NetworkSpec &net)
{
    // Free per-layer search: every inter-layer transition needs a
    // re-layout pass of the activation through the buffers; charge it
    // one cycle per word like the DP's penalty does.
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    PolicyResult result;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        const ConvLayerSpec &spec = net.stages[i].conv;
        const FactorChoice choice = searchBestFactors(spec, 16);
        result.cycles += model.runLayer(spec, choice.factors).cycles;
        if (i > 0)
            result.cycles += spec.inputWords();
    }
    return result;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: IADP inter-layer coupling in the compiler "
                "(total cycles, 16x16)");

    TextTable table;
    table.setHeader({"Workload", "Chain DP", "coupled", "Strict(m=0)",
                     "coupled", "Uncoupled+relayout", "DP saves"});
    for (const NetworkSpec &net : workloads::all()) {
        const PolicyResult dp = evaluate(net, 0.15);
        const PolicyResult strict = evaluate(net, 0.0);
        const PolicyResult free = evaluateUncoupled(net);
        const Cycle worst = std::max(strict.cycles, free.cycles);
        table.addRow(
            {net.name, formatCount(dp.cycles),
             std::to_string(dp.coupled) + "/" +
                 std::to_string(net.stages.size() - 1),
             formatCount(strict.cycles),
             std::to_string(strict.coupled) + "/" +
                 std::to_string(net.stages.size() - 1),
             formatCount(free.cycles),
             formatPercent(1.0 - static_cast<double>(dp.cycles) /
                                     static_cast<double>(worst))});
    }
    table.print(std::cout);

    std::cout
        << "\nThe chain DP recovers the paper's Table-4 couplings "
           "(e.g. LeNet-5 C1 <3,1,1,5,3,5>)\nby accepting a bounded "
           "per-layer Uc loss where it unlocks a much better coupled\n"
           "column side downstream.\n";
    return 0;
}
