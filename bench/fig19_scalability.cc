/**
 * @file
 * Figure 19: scalability of the four architectures on AlexNet as the
 * computing engine grows from 8x8 to 64x64 PEs: (a) utilization,
 * (b) power, (c) area.  Also reproduces the Section 6.2.5 routing-
 * power share study (28.3% at 16x16 declining to ~21% at 64x64).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "energy/area.hh"

using namespace flexsim;
using namespace flexsim::bench;

int
main(int argc, char **argv)
{
    const bool csv = csvMode(argc, argv);
    const TechParams tech = TechParams::tsmc65();
    const NetworkSpec net = workloads::alexnet();
    const unsigned scales[] = {8, 16, 32, 64};

    printBanner(std::cout,
                "Figure 19(a): Utilization vs. engine scale "
                "(AlexNet)");
    TextTable util;
    util.setHeader(
        {"Scale", "Systolic", "2D-Mapping", "Tiling", "FlexFlow"});
    for (unsigned d : scales) {
        const BaselineSet set = makeBaselines(net, d);
        std::vector<std::string> row = {std::to_string(d) + "x" +
                                        std::to_string(d)};
        for (const auto &[kind, model] : set.all())
            row.push_back(
                formatPercent(networkUtilization(*model, net)));
        util.addRow(row);
    }
    emitTable(util, csv, std::cout);

    printBanner(std::cout,
                "Figure 19(b): Power vs. engine scale (AlexNet), mW");
    TextTable power;
    power.setHeader(
        {"Scale", "Systolic", "2D-Mapping", "Tiling", "FlexFlow"});
    for (unsigned d : scales) {
        const BaselineSet set = makeBaselines(net, d);
        std::vector<std::string> row = {std::to_string(d) + "x" +
                                        std::to_string(d)};
        for (const auto &[kind, model] : set.all()) {
            const PowerReport report = computePower(
                networkTotal(*model, net), kind, d, tech);
            row.push_back(formatDouble(report.power.total(), 0));
        }
        power.addRow(row);
    }
    emitTable(power, csv, std::cout);

    printBanner(std::cout,
                "Figure 19(c): Area vs. engine scale, mm^2");
    TextTable area;
    area.setHeader({"Scale", "Systolic", "2D-Mapping", "Tiling",
                    "FlexFlow", "FF growth vs 16x16"});
    double ff_base = 0.0;
    for (unsigned d : scales) {
        std::vector<std::string> row = {std::to_string(d) + "x" +
                                        std::to_string(d)};
        double ff_total = 0.0;
        for (ArchKind kind :
             {ArchKind::Systolic, ArchKind::Mapping2D, ArchKind::Tiling,
              ArchKind::FlexFlow}) {
            const double total =
                computeArea(defaultAreaConfig(kind, d), tech).total();
            row.push_back(formatDouble(total, 2));
            if (kind == ArchKind::FlexFlow)
                ff_total = total;
        }
        if (d == 16)
            ff_base = ff_total;
        row.push_back(ff_base > 0.0
                          ? formatDouble(ff_total / ff_base, 2) + "x"
                          : "-");
        area.addRow(row);
    }
    emitTable(area, csv, std::cout);

    printBanner(std::cout,
                "Section 6.2.5: FlexFlow routing-network power share "
                "vs. scale (AlexNet)");
    TextTable routing;
    routing.setHeader({"Scale", "Interconnect share", "Paper"});
    const char *paper_share[] = {"-", "28.3%", "26.0%", "21.3%"};
    int idx = 0;
    for (unsigned d : scales) {
        const BaselineSet set = makeBaselines(net, d);
        const PowerReport report =
            computePower(networkTotal(*set.flexflow, net),
                         ArchKind::FlexFlow, d, tech);
        routing.addRow(
            {std::to_string(d) + "x" + std::to_string(d),
             formatPercent(report.power.interconnect /
                           report.power.total()),
             paper_share[idx++]});
    }
    emitTable(routing, csv, std::cout);

    std::cout
        << "\nPaper: the rigid baselines' utilization collapses with "
           "scale while FlexFlow\nholds; FlexFlow's area grows more "
           "slowly than 2D-Mapping's and Tiling's; the\nrouting power "
           "share 'keeps stable' as the engine grows (the paper's own "
           "wording\nfor its 28.3/26.0/21.3% series).\n";
    return 0;
}
