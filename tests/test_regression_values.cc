/**
 * @file
 * Golden-value regression pins.
 *
 * EXPERIMENTS.md records specific measured numbers for the paper's
 * tables and figures; this suite pins the headline ones so an
 * innocent-looking model change that silently shifts the reproduction
 * fails loudly (and EXPERIMENTS.md gets updated deliberately).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "energy/area.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/workloads.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_model.hh"

namespace flexsim {
namespace {

double
networkUtilization(const AcceleratorModel &model, const NetworkSpec &net)
{
    double weighted = 0.0, macs = 0.0;
    for (const auto &stage : net.stages) {
        const LayerResult r = model.runLayer(stage.conv);
        weighted += r.utilization() * static_cast<double>(r.macs);
        macs += static_cast<double>(r.macs);
    }
    return weighted / macs;
}

TEST(RegressionPins, Figure15FlexFlowUtilization)
{
    // EXPERIMENTS.md Figure 15 row (percent, +-0.2).
    const FlexFlowModel ff(FlexFlowConfig::forScale(16));
    const struct
    {
        const char *name;
        double util;
    } pins[] = {
        {"PV", 75.2},      {"FR", 90.5},     {"LeNet-5", 88.6},
        {"HG", 88.2},      {"AlexNet", 97.5}, {"VGG-11", 99.3},
    };
    for (const auto &pin : pins) {
        for (const auto &net : workloads::all()) {
            if (net.name != pin.name)
                continue;
            EXPECT_NEAR(networkUtilization(ff, net) * 100.0, pin.util,
                        0.2)
                << net.name;
        }
    }
}

TEST(RegressionPins, LeNetCompiledSchedule)
{
    // The DP compiler's LeNet-5 outcome: the paper's Table-4 C1
    // factors plus an IADP-coupled C3, 1684 total engine cycles.
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::lenet5());
    EXPECT_EQ(result.layers[0].factors,
              (UnrollFactors{3, 1, 1, 5, 3, 5}));
    EXPECT_TRUE(result.layers[1].coupled);
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    Cycle total = 0;
    for (const LayerPlan &plan : result.layers)
        total += model.runLayer(plan.spec, plan.factors).cycles;
    EXPECT_EQ(total, 1684u);
}

TEST(RegressionPins, Table7DramAccPerOp)
{
    // EXPERIMENTS.md Table 7: 0.0068 Acc/Op on AlexNet (+-0.0003).
    FlexFlowCompiler compiler;
    const auto net = workloads::alexnet();
    const CompilationResult result = compiler.compile(net);
    const double acc_per_op =
        static_cast<double>(result.totalDram().total()) /
        (2.0 * static_cast<double>(net.totalMacs()));
    EXPECT_NEAR(acc_per_op, 0.0068, 0.0003);
}

TEST(RegressionPins, AreaTotals)
{
    // Section 6.2.1 calibration (+-0.01 mm^2).
    const TechParams tech = TechParams::tsmc65();
    const struct
    {
        ArchKind kind;
        double mm2;
    } pins[] = {
        {ArchKind::Systolic, 3.52},
        {ArchKind::Mapping2D, 3.46},
        {ArchKind::Tiling, 3.21},
        {ArchKind::FlexFlow, 3.89},
    };
    for (const auto &pin : pins) {
        EXPECT_NEAR(
            computeArea(defaultAreaConfig(pin.kind, 16), tech).total(),
            pin.mm2, 0.01)
            << archName(pin.kind);
    }
}

TEST(RegressionPins, Figure16LeNetGops)
{
    // EXPERIMENTS.md Figure 16: LeNet-5 at the 16x16 scale (+-1).
    const auto net = workloads::lenet5();
    EXPECT_NEAR(FlexFlowModel(FlexFlowConfig::forScale(16))
                    .runNetwork(net)
                    .total()
                    .gops(),
                447.0, 1.0);
    const SystolicModel systolic(SystolicConfig::forScale(16, 6));
    EXPECT_NEAR(systolic.runNetwork(net).total().gops(), 117.5, 1.0);
    const Mapping2DModel map(Mapping2DConfig::forScale(16));
    EXPECT_NEAR(map.runNetwork(net).total().gops(), 204.6, 1.0);
    const TilingModel tiling(TilingConfig::forScale(16));
    EXPECT_NEAR(tiling.runNetwork(net).total().gops(), 32.4, 1.0);
}

TEST(RegressionPins, Figure17FlexFlowTrafficWords)
{
    // EXPERIMENTS.md Figure 17 FlexFlow column (exact words).
    const FlexFlowModel ff(FlexFlowConfig::forScale(16));
    const struct
    {
        const char *name;
        WordCount words;
    } pins[] = {
        {"PV", 45784},
        {"FR", 7560},
        {"LeNet-5", 13102},
        {"HG", 10056},
        {"AlexNet", 8442863},
        {"VGG-11", 132440896},
    };
    for (const auto &pin : pins) {
        for (const auto &net : workloads::all()) {
            if (net.name != pin.name)
                continue;
            EXPECT_EQ(ff.runNetwork(net).total().traffic.total(),
                      pin.words)
                << net.name;
        }
    }
}

} // namespace
} // namespace flexsim
