/**
 * @file
 * Tests for the FlexFlow workload analyzer / compiler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "nn/golden.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

TEST(CompilerTest, CompilesAllSixWorkloads)
{
    FlexFlowCompiler compiler;
    for (const auto &net : workloads::all()) {
        const CompilationResult result = compiler.compile(net);
        EXPECT_EQ(result.layers.size(), net.stages.size()) << net.name;
        EXPECT_FALSE(result.program.instructions.empty()) << net.name;
        EXPECT_EQ(result.program.instructions.back().op, Opcode::Halt)
            << net.name;
    }
}

TEST(CompilerTest, FactorsAlwaysFeasible)
{
    FlexFlowCompiler compiler;
    for (const auto &net : workloads::all()) {
        const CompilationResult result = compiler.compile(net);
        for (std::size_t i = 0; i < result.layers.size(); ++i) {
            const LayerPlan &plan = result.layers[i];
            EXPECT_TRUE(feasible(plan.factors, plan.spec, 16,
                                 plan.spec.outSize))
                << net.name << " " << plan.spec.name;
        }
    }
}

TEST(CompilerTest, UtilizationHighOnAllWorkloads)
{
    // The paper's headline claim (Fig. 15): FlexFlow sustains > 80%
    // resource utilization.  PV's dominant C1 layer (K = 6, N = 1)
    // caps at Ur = 36/48 = 0.75 on a 16-wide row — a bound implied by
    // the paper's own Table 4 factors — so the reproduction asserts
    // >= 72% everywhere and > 80% on the rest (see EXPERIMENTS.md).
    FlexFlowCompiler compiler;
    int above_80 = 0;
    for (const auto &net : workloads::all()) {
        const CompilationResult result = compiler.compile(net);
        double macs = 0.0;
        double weighted = 0.0;
        for (const LayerPlan &plan : result.layers) {
            weighted += plan.utilization *
                        static_cast<double>(plan.spec.macs());
            macs += static_cast<double>(plan.spec.macs());
        }
        const double util = weighted / macs;
        EXPECT_GT(util, 0.72) << net.name;
        above_80 += util > 0.80;
    }
    EXPECT_GE(above_80, 5);
}

TEST(CompilerTest, TrTcBoundFromPoolAndNextKernel)
{
    FlexFlowCompiler compiler;
    const auto net = workloads::lenet5();
    // C1 is followed by a 2x2 pool and a K'=5 conv: Tr, Tc <= 10.
    const FactorChoice c1 =
        compiler.chooseFactors(net, 0, std::nullopt);
    EXPECT_LE(c1.factors.tr, 10);
    EXPECT_LE(c1.factors.tc, 10);
}

TEST(CompilerTest, IadpCouplingAppliedWhenCheap)
{
    // LeNet-5: coupling C3's <Tn,Ti,Tj> to C1's <Tm,Tr,Tc> costs
    // nothing, so the compiler must keep it.
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::lenet5());
    ASSERT_EQ(result.layers.size(), 2u);
    const LayerPlan &c1 = result.layers[0];
    const LayerPlan &c3 = result.layers[1];
    EXPECT_TRUE(c3.coupled);
    EXPECT_EQ(c3.factors.tn, std::min(c1.factors.tm, c3.spec.inMaps));
    EXPECT_EQ(c3.factors.ti, std::min(c1.factors.tr, c3.spec.kernel));
    EXPECT_EQ(c3.factors.tj, std::min(c1.factors.tc, c3.spec.kernel));
}

TEST(CompilerTest, CouplingNotForcedWhenExpensive)
{
    // With a zero margin the compiler only couples on exact ties; the
    // chosen factors must still be optimal.
    FlexFlowCompiler strict(FlexFlowConfig{}, 0.0);
    for (const auto &net : workloads::smallFour()) {
        const CompilationResult result = strict.compile(net);
        for (std::size_t i = 0; i < result.layers.size(); ++i) {
            const LayerPlan &plan = result.layers[i];
            int bound = plan.spec.outSize;
            if (const auto next_k = net.nextKernel(i)) {
                bound = std::min(bound,
                                 net.poolWindowAfter(i) * *next_k);
            }
            const FactorChoice free =
                searchBestFactors(plan.spec, 16, bound);
            EXPECT_GE(plan.utilization + 1e-9, free.utilization())
                << net.name << " " << plan.spec.name;
        }
    }
}

TEST(CompilerTest, SmallActivationsStayOnChip)
{
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::lenet5());
    // C1's pooled output (6@14x14 = 1176 words) fits a 16k-word
    // buffer, so C3 reads no input from DRAM.
    EXPECT_TRUE(result.layers[0].outputOnChip);
    EXPECT_TRUE(result.layers[1].inputOnChip);
    EXPECT_EQ(result.layers[1].dram.inputReadWords, 0u);
    // The final output leaves the chip.
    EXPECT_FALSE(result.layers[1].outputOnChip);
    EXPECT_GT(result.layers[1].dram.traffic.writes, 0u);
}

TEST(CompilerTest, LargeActivationsSpill)
{
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::vgg11());
    // VGG's early activations (e.g. 64@111x111 pooled) exceed 16k
    // words and must go through DRAM.
    EXPECT_FALSE(result.layers[0].outputOnChip);
    EXPECT_GT(result.layers[1].dram.inputReadWords, 0u);
}

TEST(CompilerTest, AssemblyRoundTripsThroughAssembler)
{
    FlexFlowCompiler compiler;
    for (const auto &net : workloads::smallFour()) {
        const CompilationResult result = compiler.compile(net);
        EXPECT_EQ(assemble(result.assembly), result.program)
            << net.name;
    }
}

TEST(CompilerTest, ProgramStructurePerStage)
{
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::fr());
    int convs = 0, cfg_layers = 0, pools = 0, halts = 0;
    for (const Instruction &inst : result.program.instructions) {
        convs += inst.op == Opcode::Conv;
        cfg_layers += inst.op == Opcode::CfgLayer;
        pools += inst.op == Opcode::Pool;
        halts += inst.op == Opcode::Halt;
    }
    EXPECT_EQ(convs, 2);
    EXPECT_EQ(cfg_layers, 2);
    EXPECT_EQ(pools, 1); // FR pools after C1 only
    EXPECT_EQ(halts, 1);
}

TEST(CompilerTest, TotalDramAggregates)
{
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::lenet5());
    DramTraffic manual;
    for (const LayerPlan &plan : result.layers)
        manual += plan.dram.traffic;
    EXPECT_EQ(result.totalDram(), manual);
}

TEST(CompilerTest, AlexNetDramAccPerOpNearPaper)
{
    // Table 7 reports 0.0049 DRAM accesses per operation for AlexNet;
    // our planner should land in the same regime (same order, within
    // ~2x), since buffer sizes match and loop orders are comparable.
    FlexFlowCompiler compiler;
    const auto net = workloads::alexnet();
    const CompilationResult result = compiler.compile(net);
    const double ops = 2.0 * static_cast<double>(net.totalMacs());
    const double acc =
        static_cast<double>(result.totalDram().total());
    const double acc_per_op = acc / ops;
    EXPECT_GT(acc_per_op, 0.001);
    EXPECT_LT(acc_per_op, 0.012);
}

} // namespace
} // namespace flexsim
