/**
 * @file
 * Unit tests for the 65 nm area/power models, including the paper
 * calibration points of Section 6.2.1.
 */

#include <gtest/gtest.h>

#include "energy/area.hh"
#include "energy/power.hh"
#include "energy/tech.hh"

namespace flexsim {
namespace {

TEST(TechTest, ArchNames)
{
    EXPECT_STREQ(archName(ArchKind::Systolic), "Systolic");
    EXPECT_STREQ(archName(ArchKind::Mapping2D), "2D-Mapping");
    EXPECT_STREQ(archName(ArchKind::Tiling), "Tiling");
    EXPECT_STREQ(archName(ArchKind::FlexFlow), "FlexFlow");
}

TEST(AreaTest, DefaultConfigsAtPaperScale)
{
    const AreaConfig sys = defaultAreaConfig(ArchKind::Systolic, 16);
    EXPECT_EQ(sys.peCount, 7u * 36); // the paper's 7 arrays
    const AreaConfig ff = defaultAreaConfig(ArchKind::FlexFlow, 16);
    EXPECT_EQ(ff.peCount, 256u);
    EXPECT_DOUBLE_EQ(ff.localStoreBytesPerPe, 512.0);
    const AreaConfig map = defaultAreaConfig(ArchKind::Mapping2D, 16);
    EXPECT_EQ(map.peCount, 256u);
    const AreaConfig til = defaultAreaConfig(ArchKind::Tiling, 16);
    EXPECT_DOUBLE_EQ(til.localStoreBytesPerPe, 0.0);
}

TEST(AreaTest, MatchesPaperSection621Totals)
{
    // Paper: Systolic 3.52, 2D-Mapping 3.46, Tiling 3.21,
    // FlexFlow 3.89 mm^2 at the 16x16 scale.
    const TechParams tech = TechParams::tsmc65();
    const struct
    {
        ArchKind kind;
        double paper;
    } rows[] = {
        {ArchKind::Systolic, 3.52},
        {ArchKind::Mapping2D, 3.46},
        {ArchKind::Tiling, 3.21},
        {ArchKind::FlexFlow, 3.89},
    };
    for (const auto &row : rows) {
        const AreaBreakdown area =
            computeArea(defaultAreaConfig(row.kind, 16), tech);
        EXPECT_NEAR(area.total(), row.paper, 0.12)
            << archName(row.kind);
    }
}

TEST(AreaTest, FlexFlowLargestAtPaperScale)
{
    const TechParams tech = TechParams::tsmc65();
    const double ff =
        computeArea(defaultAreaConfig(ArchKind::FlexFlow, 16), tech)
            .total();
    for (ArchKind kind : {ArchKind::Systolic, ArchKind::Mapping2D,
                          ArchKind::Tiling}) {
        EXPECT_GT(ff,
                  computeArea(defaultAreaConfig(kind, 16), tech)
                      .total());
    }
}

TEST(AreaTest, FlexFlowScalesSlowerThanMeshArchitectures)
{
    // Figure 19c: FlexFlow's relative area growth from 16x16 to 64x64
    // is milder than 2D-Mapping's and Tiling's.
    const TechParams tech = TechParams::tsmc65();
    auto growth = [&](ArchKind kind) {
        const double small =
            computeArea(defaultAreaConfig(kind, 16), tech).total();
        const double large =
            computeArea(defaultAreaConfig(kind, 64), tech).total();
        return large / small;
    };
    EXPECT_LT(growth(ArchKind::FlexFlow), growth(ArchKind::Mapping2D));
    EXPECT_LT(growth(ArchKind::FlexFlow), growth(ArchKind::Tiling));
}

TEST(AreaTest, ComponentsAllPositive)
{
    const TechParams tech = TechParams::tsmc65();
    const AreaBreakdown area =
        computeArea(defaultAreaConfig(ArchKind::FlexFlow, 32), tech);
    EXPECT_GT(area.peLogic, 0.0);
    EXPECT_GT(area.localStores, 0.0);
    EXPECT_GT(area.buffers, 0.0);
    EXPECT_GT(area.interconnect, 0.0);
    EXPECT_GT(area.fixedOverhead, 0.0);
    EXPECT_DOUBLE_EQ(area.total(),
                     area.peLogic + area.localStores + area.buffers +
                         area.interconnect + area.fixedOverhead);
}

TEST(AreaTest, MonotonicInScale)
{
    const TechParams tech = TechParams::tsmc65();
    for (ArchKind kind : {ArchKind::Systolic, ArchKind::Mapping2D,
                          ArchKind::Tiling, ArchKind::FlexFlow}) {
        double prev = 0.0;
        for (unsigned d : {8u, 16u, 32u, 64u}) {
            const double total =
                computeArea(defaultAreaConfig(kind, d), tech).total();
            EXPECT_GT(total, prev) << archName(kind) << " at " << d;
            prev = total;
        }
    }
}

// ------------------------------------------------------------------- power

LayerResult
syntheticResult()
{
    LayerResult r;
    r.cycles = 1000;
    r.macs = 200000;
    r.activeMacCycles = 200000;
    r.peCount = 256;
    r.traffic.neuronIn = 2000;
    r.traffic.neuronOut = 1000;
    r.traffic.kernelIn = 500;
    r.traffic.psumRead = 100;
    r.traffic.psumWrite = 100;
    r.localStoreReads = 400000;
    r.localStoreWrites = 200000;
    r.dram.reads = 5000;
    r.dram.writes = 1000;
    return r;
}

TEST(PowerTest, ComponentsPositiveAndSum)
{
    const PowerReport report = computePower(
        syntheticResult(), ArchKind::FlexFlow, 16,
        TechParams::tsmc65());
    EXPECT_GT(report.power.neuronIn, 0.0);
    EXPECT_GT(report.power.neuronOut, 0.0);
    EXPECT_GT(report.power.kernelIn, 0.0);
    EXPECT_GT(report.power.compute, 0.0);
    EXPECT_GT(report.power.interconnect, 0.0);
    EXPECT_GT(report.power.leakage, 0.0);
    EXPECT_NEAR(report.power.total(),
                report.power.neuronIn + report.power.neuronOut +
                    report.power.kernelIn + report.power.compute +
                    report.power.interconnect + report.power.leakage,
                1e-9);
}

TEST(PowerTest, EnergyEqualsPowerTimesTime)
{
    const PowerReport report = computePower(
        syntheticResult(), ArchKind::FlexFlow, 16,
        TechParams::tsmc65());
    // P[mW] * t[ms] = E[uJ].
    EXPECT_NEAR(report.energyUj, report.power.total() * report.timeMs,
                report.energyUj * 1e-9);
}

TEST(PowerTest, DramEnergySeparate)
{
    const TechParams tech = TechParams::tsmc65();
    const PowerReport report =
        computePower(syntheticResult(), ArchKind::FlexFlow, 16, tech);
    EXPECT_NEAR(report.dramEnergyUj, 6000 * tech.eDramWord * 1e-6,
                1e-9);
}

TEST(PowerTest, GopsPerWattConsistent)
{
    const PowerReport report = computePower(
        syntheticResult(), ArchKind::FlexFlow, 16,
        TechParams::tsmc65());
    EXPECT_NEAR(report.gopsPerWatt,
                report.gops / (report.power.total() * 1e-3), 1e-9);
}

TEST(PowerTest, ZeroCycleResultIsZero)
{
    LayerResult empty;
    const PowerReport report = computePower(
        empty, ArchKind::Tiling, 16, TechParams::tsmc65());
    EXPECT_DOUBLE_EQ(report.power.total(), 0.0);
    EXPECT_DOUBLE_EQ(report.energyUj, 0.0);
}

TEST(PowerTest, BusEnergyGrowsWithScale)
{
    const LayerResult r = syntheticResult();
    const TechParams tech = TechParams::tsmc65();
    const double area = 4.0;
    const PowerReport small =
        computePower(r, ArchKind::FlexFlow, 16, tech, area);
    const PowerReport large =
        computePower(r, ArchKind::FlexFlow, 64, tech, area);
    EXPECT_GT(large.power.interconnect, small.power.interconnect);
}

TEST(PowerTest, LeakageScalesWithArea)
{
    const LayerResult r = syntheticResult();
    const TechParams tech = TechParams::tsmc65();
    const PowerReport a =
        computePower(r, ArchKind::FlexFlow, 16, tech, 2.0);
    const PowerReport b =
        computePower(r, ArchKind::FlexFlow, 16, tech, 4.0);
    EXPECT_NEAR(b.power.leakage, 2.0 * a.power.leakage, 1e-9);
}

} // namespace
} // namespace flexsim
