/**
 * @file
 * Tests for the FlexFlow configuration ISA: encoding round-trips, the
 * assembler, and the disassembler.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "flexflow/isa.hh"

namespace flexsim {
namespace {

class IsaTest : public ::testing::Test
{
  protected:
    void SetUp() override { logging_detail::setThrowOnError(true); }
    void TearDown() override { logging_detail::setThrowOnError(false); }
};

TEST_F(IsaTest, OpcodeNames)
{
    EXPECT_STREQ(opcodeName(Opcode::CfgLayer), "cfg_layer");
    EXPECT_STREQ(opcodeName(Opcode::Conv), "conv");
    EXPECT_STREQ(opcodeName(Opcode::Halt), "halt");
}

TEST_F(IsaTest, EncodeDecodeRoundTripAllOpcodes)
{
    const std::vector<Instruction> insts = {
        {Opcode::Nop, {}},
        {Opcode::CfgLayer, {512, 256, 224, 11, 4}},
        {Opcode::CfgFactors, {16, 3, 1, 1, 1, 5}},
        {Opcode::LoadInput, {150528}},
        {Opcode::LoadKernels, {442368}},
        {Opcode::Conv, {}},
        {Opcode::Pool, {3, 2, 1}},
        {Opcode::Swap, {}},
        {Opcode::StoreOutput, {1600}},
        {Opcode::Halt, {}},
    };
    for (const Instruction &inst : insts) {
        EXPECT_EQ(decode(encode(inst)), inst)
            << disassemble(inst);
    }
}

TEST_F(IsaTest, EncodeRejectsFieldOverflow)
{
    // cfg_factors fields are 7 bits.
    Instruction inst{Opcode::CfgFactors, {200, 1, 1, 1, 1, 1}};
    EXPECT_THROW(encode(inst), std::runtime_error);
}

TEST_F(IsaTest, DecodeRejectsUnknownOpcode)
{
    EXPECT_THROW(decode(std::uint64_t{200} << 56),
                 std::runtime_error);
}

TEST_F(IsaTest, ProgramEncodeDecodeRoundTrip)
{
    Program program;
    program.instructions = {
        {Opcode::CfgLayer, {6, 1, 28, 5, 1}},
        {Opcode::Conv, {}},
        {Opcode::Halt, {}},
    };
    EXPECT_EQ(decode(encode(program)), program);
}

TEST_F(IsaTest, AssembleBasicProgram)
{
    const Program program = assemble(R"(
        ; a comment
        cfg_layer 16 6 10 5 1
        cfg_factors 16 3 1 1 1 5   # trailing comment
        load_kernels 2400
        conv
        pool 2 2 max
        swap
        halt
    )");
    ASSERT_EQ(program.instructions.size(), 7u);
    EXPECT_EQ(program.instructions[0].op, Opcode::CfgLayer);
    EXPECT_EQ(program.instructions[0].args[0], 16u);
    EXPECT_EQ(program.instructions[1].args[5], 5u);
    EXPECT_EQ(program.instructions[4].op, Opcode::Pool);
    EXPECT_EQ(program.instructions[4].args[2], 0u); // max
    EXPECT_EQ(program.instructions[6].op, Opcode::Halt);
}

TEST_F(IsaTest, AssemblePoolAvg)
{
    const Program program = assemble("pool 3 2 avg\n");
    EXPECT_EQ(program.instructions[0].args[2], 1u);
}

TEST_F(IsaTest, AssembleRejectsUnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate 1 2\n"), std::runtime_error);
}

TEST_F(IsaTest, AssembleRejectsWrongArity)
{
    EXPECT_THROW(assemble("cfg_layer 1 2 3\n"), std::runtime_error);
    EXPECT_THROW(assemble("conv 7\n"), std::runtime_error);
}

TEST_F(IsaTest, AssembleRejectsBadOperand)
{
    EXPECT_THROW(assemble("load_input many\n"), std::runtime_error);
    EXPECT_THROW(assemble("pool 2 2 median\n"), std::runtime_error);
}

TEST_F(IsaTest, AssembleRejectsFieldOverflow)
{
    EXPECT_THROW(assemble("cfg_factors 200 1 1 1 1 1\n"),
                 std::runtime_error);
}

TEST_F(IsaTest, AssembleEmptySourceIsEmptyProgram)
{
    EXPECT_TRUE(assemble("\n; nothing\n").instructions.empty());
}

TEST_F(IsaTest, DisassembleReadable)
{
    const Instruction inst{Opcode::CfgFactors, {8, 1, 1, 2, 2, 6}};
    EXPECT_EQ(disassemble(inst), "cfg_factors 8 1 1 2 2 6");
    const Instruction pool{Opcode::Pool, {2, 2, 0}};
    EXPECT_EQ(disassemble(pool), "pool 2 2 max");
}

TEST_F(IsaTest, AssembleDisassembleRoundTrip)
{
    const std::string source = "cfg_layer 6 1 28 5 1\n"
                               "cfg_factors 3 1 1 5 3 5\n"
                               "load_kernels 150\n"
                               "load_input 1024\n"
                               "conv\n"
                               "pool 2 2 max\n"
                               "store_output 1176\n"
                               "halt\n";
    const Program program = assemble(source);
    EXPECT_EQ(disassemble(program), source);
    EXPECT_EQ(assemble(disassemble(program)), program);
}

TEST_F(IsaTest, BinarySaveLoadRoundTrip)
{
    const Program program = assemble("cfg_layer 6 1 28 5 1\n"
                                     "cfg_factors 3 1 1 5 3 5\n"
                                     "load_kernels 150\n"
                                     "conv\n"
                                     "halt\n");
    const std::string path =
        ::testing::TempDir() + "/flexsim_isa_roundtrip.bin";
    saveBinary(program, path);
    EXPECT_EQ(loadBinary(path), program);
}

TEST_F(IsaTest, BinaryLoadRejectsGarbage)
{
    const std::string path =
        ::testing::TempDir() + "/flexsim_isa_garbage.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "cfg_layer 6 1 28 5 1\n"; // assembly, not binary
    }
    EXPECT_THROW(loadBinary(path), std::runtime_error);
    EXPECT_THROW(loadBinary(path + ".missing"), std::runtime_error);
}

TEST_F(IsaTest, BinaryLoadRejectsTruncation)
{
    const Program program = assemble("conv\nhalt\n");
    const std::string path =
        ::testing::TempDir() + "/flexsim_isa_trunc.bin";
    saveBinary(program, path);
    // Chop off the final instruction word.
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string bytes = buf.str();
        bytes.resize(bytes.size() - 4);
        std::ofstream out(path, std::ios::binary);
        out << bytes;
    }
    EXPECT_THROW(loadBinary(path), std::runtime_error);
}

TEST_F(IsaTest, CaseInsensitiveMnemonics)
{
    const Program program = assemble("CONV\nHaLt\n");
    EXPECT_EQ(program.instructions[0].op, Opcode::Conv);
    EXPECT_EQ(program.instructions[1].op, Opcode::Halt);
}

} // namespace
} // namespace flexsim
