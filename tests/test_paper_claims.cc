/**
 * @file
 * Reproduction checks against the paper's published numbers and
 * qualitative claims (the "shape" of the evaluation):
 *
 *  - Table 3 cross-layer utilization entries that our principled
 *    models reproduce exactly;
 *  - Figure 15: FlexFlow > 80% utilization everywhere, baselines
 *    below and volatile;
 *  - Figure 16: FlexFlow > 420 GOPs at 1 GHz, >= 2x vs
 *    Systolic/2D-Mapping somewhere, ~10x vs Tiling somewhere;
 *  - Figure 17: FlexFlow least data volume, Tiling most;
 *  - Figure 18: FlexFlow best power efficiency yet highest raw power;
 *  - Table 6: buffers < 20% of FlexFlow power, compute the bulk;
 *  - Figure 19: baselines' utilization collapses with scale while
 *    FlexFlow holds.
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/compiler.hh"
#include "flexflow/conv_unit.hh"
#include "energy/power.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/workloads.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_model.hh"

namespace flexsim {
namespace {

/** Weighted-by-work utilization of a whole network. */
double
networkUtilization(const AcceleratorModel &model,
                   const NetworkSpec &net)
{
    double weighted = 0.0, macs = 0.0;
    for (const auto &stage : net.stages) {
        const LayerResult r = model.runLayer(stage.conv);
        weighted += r.utilization() * static_cast<double>(r.macs);
        macs += static_cast<double>(r.macs);
    }
    return weighted / macs;
}

/** Network GOPs at 1 GHz. */
double
networkGops(const AcceleratorModel &model, const NetworkSpec &net)
{
    const NetworkResult r = model.runNetwork(net);
    return r.total().gops(1.0);
}

/** Total buffer<->array traffic of a network. */
WordCount
networkTraffic(const AcceleratorModel &model, const NetworkSpec &net)
{
    return model.runNetwork(net).total().traffic.total();
}

/** FlexFlow model that uses the compiler's factor choices. */
class CompiledFlexFlow : public AcceleratorModel
{
  public:
    explicit CompiledFlexFlow(unsigned d = 16)
        : config_(FlexFlowConfig::forScale(d)), model_(config_)
    {
    }

    std::string name() const override { return "FlexFlow"; }
    unsigned peCount() const override { return config_.peCount(); }

    LayerResult
    runLayer(const ConvLayerSpec &spec) const override
    {
        return model_.runLayer(spec);
    }

  private:
    FlexFlowConfig config_;
    FlexFlowModel model_;
};

/** The paper's four 16x16-scale baselines (11x11 arrays for AlexNet's
 * systolic configuration, Section 6.1.1). */
SystolicModel
systolicFor(const NetworkSpec &net, unsigned d = 16)
{
    int ka = 6;
    for (const auto &stage : net.stages)
        ka = std::max(ka, std::min(stage.conv.kernel, 11));
    if (net.name != "AlexNet")
        ka = 6;
    return SystolicModel(SystolicConfig::forScale(d, ka));
}

// ----------------------------------------------------------------- Table 3

struct Table3Case
{
    const char *workload;
    // Tiling entries (exact in our model).
    double tiling_c3_on_c1 = -1.0;
    double tiling_c1_on_c3 = -1.0;
    // 2D-Mapping entries (exact in our model).
    double map_c3_on_c1 = -1.0;
    double map_c1_on_c3 = -1.0;
};

class Table3Test : public ::testing::TestWithParam<Table3Case>
{
  protected:
    static NetworkSpec
    net(const std::string &name)
    {
        for (auto &w : workloads::smallFour())
            if (w.name == name)
                return w;
        throw std::runtime_error("no such workload");
    }
};

TEST_P(Table3Test, TilingEntriesMatchPaper)
{
    const Table3Case &p = GetParam();
    const NetworkSpec w = net(p.workload);
    const ConvLayerSpec &c1 = w.stages[0].conv;
    const ConvLayerSpec &c3 = w.stages[1].conv;

    // "C3 on C1-opt": hardware sized <Tm=M1, Tn=N1>.
    TilingConfig c1opt;
    c1opt.tm = c1.outMaps;
    c1opt.tn = c1.inMaps;
    EXPECT_NEAR(TilingModel(c1opt).runLayer(c3).utilization() * 100.0,
                p.tiling_c3_on_c1, 1.0)
        << p.workload;

    TilingConfig c3opt;
    c3opt.tm = c3.outMaps;
    c3opt.tn = c3.inMaps;
    EXPECT_NEAR(TilingModel(c3opt).runLayer(c1).utilization() * 100.0,
                p.tiling_c1_on_c3, 1.0)
        << p.workload;
}

TEST_P(Table3Test, Mapping2DEntriesMatchPaper)
{
    const Table3Case &p = GetParam();
    const NetworkSpec w = net(p.workload);
    const ConvLayerSpec &c1 = w.stages[0].conv;
    const ConvLayerSpec &c3 = w.stages[1].conv;

    Mapping2DConfig c1opt;
    c1opt.rows = c1.outSize;
    c1opt.cols = c1.outSize;
    EXPECT_NEAR(
        Mapping2DModel(c1opt).runLayer(c3).utilization() * 100.0,
        p.map_c3_on_c1, 1.0)
        << p.workload;

    Mapping2DConfig c3opt;
    c3opt.rows = c3.outSize;
    c3opt.cols = c3.outSize;
    EXPECT_NEAR(
        Mapping2DModel(c3opt).runLayer(c1).utilization() * 100.0,
        p.map_c1_on_c3, 1.0)
        << p.workload;
}

// Paper Table 3 values.  (The Systolic column is checked separately:
// the paper's FR/HG "80" entries are inconsistent with the squared
// active-PE ratio its PV entry implies; see EXPERIMENTS.md.)
INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table3Test,
    ::testing::Values(
        Table3Case{"PV", 75.0, 8.3, 19.0, 56.0},
        Table3Case{"FR", 100.0, 6.2, 12.7, 87.0},
        Table3Case{"LeNet-5", 88.0, 6.2, 12.7, 87.0},
        Table3Case{"HG", 100.0, 8.3, 11.0, 100.0}),
    [](const auto &param_info) {
        std::string name = param_info.param.workload;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Table3SystolicTest, KernelRatioEntries)
{
    // PV: C3 (K=3) on a 6x6 array -> 25%; C1 (K=6) on a 3x3 array in
    // 4 passes -> 100%.  These two entries our model reproduces
    // exactly; FR/HG differ (paper prints 80, squared ratio gives 64).
    const auto pv = workloads::pv();
    const ConvLayerSpec &c3 = pv.stages[1].conv;
    SystolicConfig c1opt;
    c1opt.arrayEdge = 6;
    c1opt.numArrays = 1;
    // Spatial kernel occupancy only: normalize out the stream-edge
    // and map-count effects by comparing against the layer run on a
    // perfectly sized array.
    SystolicConfig exact;
    exact.arrayEdge = 3;
    exact.numArrays = 1;
    const double on_c1 =
        SystolicModel(c1opt).runLayer(c3).utilization();
    const double on_exact =
        SystolicModel(exact).runLayer(c3).utilization();
    EXPECT_NEAR(on_c1 / on_exact, 0.25, 1e-9);
}

// ----------------------------------------------------------------- Figure 8

TEST(Figure8Test, ComplementaryParallelismFullyOccupiesTheExample)
{
    // The paper's Section-4 worked example: a 4x4 unit running
    // C1 (M=2, N=1, S=8, K=4) with <Tm=2,Tn=1,Tr=1,Tc=2,Ti=1,Tj=4>
    // and C2 (M=2, N=2, S=4, K=2) with <Tm=2,Tn=2,Tr=1,Tc=2,Ti=1,
    // Tj=2>: "the PEs for both C1 and C2 are fully utilized".
    const auto c1 = ConvLayerSpec::make("C1", 1, 2, 8, 4);
    const UnrollFactors t1{2, 1, 1, 2, 1, 4};
    const auto c2 = ConvLayerSpec::make("C2", 2, 2, 4, 2);
    const UnrollFactors t2{2, 2, 1, 2, 1, 2};
    const int d = 4;

    EXPECT_EQ(t1.rowDemand(), d);
    EXPECT_EQ(t1.columnDemand(), d);
    EXPECT_DOUBLE_EQ(utilizationTotal(t1, c1, d), 1.0);
    EXPECT_EQ(t2.rowDemand(), d);
    EXPECT_EQ(t2.columnDemand(), d);
    EXPECT_DOUBLE_EQ(utilizationTotal(t2, c2, d), 1.0);

    // And the cycle simulator executes both mixes bit-exactly at the
    // claimed full occupancy.
    Rng rng(2017);
    FlexFlowConvUnit unit(FlexFlowConfig::forScale(4));
    for (const auto &[spec, t] :
         {std::pair<ConvLayerSpec, UnrollFactors>{c1, t1},
          std::pair<ConvLayerSpec, UnrollFactors>{c2, t2}}) {
        const Tensor3<> input = makeRandomInput(rng, spec);
        const Tensor4<> kernels = makeRandomKernels(rng, spec);
        LayerResult result;
        EXPECT_EQ(unit.runLayer(spec, t, input, kernels, &result),
                  goldenConv(spec, input, kernels));
        EXPECT_DOUBLE_EQ(result.utilization(), 1.0) << spec.name;
    }
}

// ---------------------------------------------------------------- Figure 15

TEST(Figure15Test, FlexFlowHighUtilizationEverywhere)
{
    // Paper: > 80% on all six.  PV's dominant C1 layer (K = 6, N = 1)
    // caps intra-row occupancy at 36/48 = 0.75 on a 16-wide row (the
    // paper's own Table 4 PV-C1 factors give the same Ur), so the
    // reproduction asserts >= 72% everywhere and > 80% elsewhere.
    const CompiledFlexFlow ff;
    int above_80 = 0;
    for (const auto &net : workloads::all()) {
        const double util = networkUtilization(ff, net);
        EXPECT_GT(util, 0.72) << net.name;
        above_80 += util > 0.80;
    }
    EXPECT_GE(above_80, 5);
}

TEST(Figure15Test, BaselinesBelowFlexFlowEverywhere)
{
    const CompiledFlexFlow ff;
    const Mapping2DModel map(Mapping2DConfig::forScale(16));
    const TilingModel tiling(TilingConfig::forScale(16));
    for (const auto &net : workloads::all()) {
        const SystolicModel systolic = systolicFor(net);
        const double ff_u = networkUtilization(ff, net);
        EXPECT_GT(ff_u, networkUtilization(systolic, net)) << net.name;
        EXPECT_GT(ff_u, networkUtilization(map, net)) << net.name;
        EXPECT_GT(ff_u, networkUtilization(tiling, net)) << net.name;
    }
}

TEST(Figure15Test, TilingVolatileAcrossWorkloads)
{
    // Tiling is poor on the small nets but strong on AlexNet/VGG
    // (feature-map counts divide the tiling factor).
    const TilingModel tiling(TilingConfig::forScale(16));
    EXPECT_LT(networkUtilization(tiling, workloads::lenet5()), 0.30);
    EXPECT_GT(networkUtilization(tiling, workloads::vgg11()), 0.90);
}

// ---------------------------------------------------------------- Figure 16

TEST(Figure16Test, FlexFlowAbove420Gops)
{
    // Paper: "constantly acquire over 420 GOPs".  PV is capped near
    // 384 GOPs by its C1 intra-row bound (see Figure15 note); all
    // other workloads must clear 420.
    const CompiledFlexFlow ff;
    int above_420 = 0;
    for (const auto &net : workloads::all()) {
        const double gops = networkGops(ff, net);
        EXPECT_GT(gops, 370.0) << net.name;
        above_420 += gops > 420.0;
    }
    EXPECT_GE(above_420, 5);
}

TEST(Figure16Test, SpeedupsOverBaselines)
{
    const CompiledFlexFlow ff;
    const Mapping2DModel map(Mapping2DConfig::forScale(16));
    const TilingModel tiling(TilingConfig::forScale(16));
    double best_vs_systolic = 0.0, best_vs_map = 0.0,
           best_vs_tiling = 0.0;
    for (const auto &net : workloads::all()) {
        const SystolicModel systolic = systolicFor(net);
        const double ff_g = networkGops(ff, net);
        EXPECT_GT(ff_g, networkGops(systolic, net)) << net.name;
        EXPECT_GT(ff_g, networkGops(map, net)) << net.name;
        EXPECT_GT(ff_g, networkGops(tiling, net)) << net.name;
        best_vs_systolic = std::max(
            best_vs_systolic, ff_g / networkGops(systolic, net));
        best_vs_map =
            std::max(best_vs_map, ff_g / networkGops(map, net));
        best_vs_tiling =
            std::max(best_vs_tiling, ff_g / networkGops(tiling, net));
    }
    // Paper: > 2x over Systolic and 2D-Mapping, up to ~10x over
    // Tiling (per-layer the Tiling gap exceeds 10x; whole-network
    // weighting pulls the worst case to ~6x here).
    EXPECT_GT(best_vs_systolic, 2.0);
    EXPECT_GT(best_vs_map, 2.0);
    EXPECT_GT(best_vs_tiling, 6.0);
}

// ---------------------------------------------------------------- Figure 17

TEST(Figure17Test, FlexFlowLeastTrafficTilingMost)
{
    const CompiledFlexFlow ff;
    const Mapping2DModel map(Mapping2DConfig::forScale(16));
    const TilingModel tiling(TilingConfig::forScale(16));
    for (const auto &net : workloads::all()) {
        const SystolicModel systolic = systolicFor(net);
        const WordCount ff_t = networkTraffic(ff, net);
        const WordCount sys_t = networkTraffic(systolic, net);
        const WordCount map_t = networkTraffic(map, net);
        const WordCount til_t = networkTraffic(tiling, net);
        EXPECT_LT(ff_t, sys_t) << net.name;
        EXPECT_LT(ff_t, map_t) << net.name;
        EXPECT_LT(ff_t, til_t) << net.name;
        EXPECT_GT(til_t, sys_t) << net.name;
        EXPECT_GT(til_t, map_t) << net.name;
    }
}

// ---------------------------------------------------------------- Figure 18

TEST(Figure18Test, FlexFlowBestPowerEfficiencyHighestPower)
{
    const TechParams tech = TechParams::tsmc65();
    const CompiledFlexFlow ff;
    const Mapping2DModel map(Mapping2DConfig::forScale(16));
    const TilingModel tiling(TilingConfig::forScale(16));
    for (const auto &net : workloads::all()) {
        const SystolicModel systolic = systolicFor(net);
        const PowerReport ff_p = computePower(
            ff.runNetwork(net).total(), ArchKind::FlexFlow, 16, tech);
        const PowerReport sys_p =
            computePower(systolic.runNetwork(net).total(),
                         ArchKind::Systolic, 16, tech);
        const PowerReport map_p =
            computePower(map.runNetwork(net).total(),
                         ArchKind::Mapping2D, 16, tech);
        const PowerReport til_p =
            computePower(tiling.runNetwork(net).total(),
                         ArchKind::Tiling, 16, tech);
        EXPECT_GT(ff_p.gopsPerWatt, sys_p.gopsPerWatt) << net.name;
        EXPECT_GT(ff_p.gopsPerWatt, map_p.gopsPerWatt) << net.name;
        EXPECT_GT(ff_p.gopsPerWatt, til_p.gopsPerWatt) << net.name;
        // Raw power is highest for FlexFlow on the small workloads,
        // where the baselines idle most of their PEs (Fig. 18c).  On
        // AlexNet/VGG Tiling reaches near-full utilization and its
        // per-cycle synapse refetch burns more raw power -- an honest
        // deviation recorded in EXPERIMENTS.md.
        if (net.name != "AlexNet" && net.name != "VGG-11") {
            EXPECT_GT(ff_p.power.total(), til_p.power.total())
                << net.name;
        }
        // Energy to finish the workload is lowest for FlexFlow.
        EXPECT_LT(ff_p.energyUj, sys_p.energyUj) << net.name;
        EXPECT_LT(ff_p.energyUj, map_p.energyUj) << net.name;
        EXPECT_LT(ff_p.energyUj, til_p.energyUj) << net.name;
    }
}

TEST(Table6Test, BuffersUnder20PercentComputeDominates)
{
    const TechParams tech = TechParams::tsmc65();
    const CompiledFlexFlow ff;
    for (const auto &net : workloads::all()) {
        const PowerReport p = computePower(
            ff.runNetwork(net).total(), ArchKind::FlexFlow, 16, tech);
        const double buffers =
            p.power.neuronIn + p.power.neuronOut + p.power.kernelIn;
        EXPECT_LT(buffers / p.power.total(), 0.20) << net.name;
        EXPECT_GT(p.power.compute / p.power.total(), 0.5) << net.name;
    }
}

// ---------------------------------------------------------------- Figure 19

TEST(Figure19Test, FlexFlowHoldsUtilizationBaselinesCollapse)
{
    const auto alex = workloads::alexnet();
    double ff_small = 0, ff_large = 0;
    double til_small = 0, til_large = 0;
    double map_small = 0, map_large = 0;
    {
        ff_small = networkUtilization(CompiledFlexFlow(16), alex);
        ff_large = networkUtilization(CompiledFlexFlow(64), alex);
        til_small = networkUtilization(
            TilingModel(TilingConfig::forScale(16)), alex);
        til_large = networkUtilization(
            TilingModel(TilingConfig::forScale(64)), alex);
        map_small = networkUtilization(
            Mapping2DModel(Mapping2DConfig::forScale(16)), alex);
        map_large = networkUtilization(
            Mapping2DModel(Mapping2DConfig::forScale(64)), alex);
    }
    EXPECT_GT(ff_large, 0.75);
    EXPECT_GT(ff_large / ff_small, 0.85); // stays within 15%
    EXPECT_LT(til_large, til_small);      // collapses
    EXPECT_LT(map_large, map_small);
    EXPECT_LT(map_large, 0.5);
}

} // namespace
} // namespace flexsim
