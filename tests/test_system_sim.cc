/**
 * @file
 * Tests for the dynamic system-level simulation (DMA + compute +
 * controller on the cycle-stepped kernel).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/system_sim.hh"
#include "flexflow/flexflow_model.hh"
#include "nn/workloads.hh"
#include "sim/simulator.hh"

namespace flexsim {
namespace {

// -------------------------------------------------------------- DmaEngine

TEST(DmaEngineTest, ServicesRequestsAtBandwidth)
{
    DmaEngine dma(4.0);
    dma.submit({DmaRequest::Kind::Load, 0, 16});
    CycleSimulator sim;
    sim.add(&dma);
    EXPECT_EQ(sim.runUntilIdle(100), 4u);
    EXPECT_EQ(dma.loadsComplete(0), 1);
    EXPECT_EQ(dma.busyCycles(), 4u);
}

TEST(DmaEngineTest, QueuesInOrderWithCarryover)
{
    DmaEngine dma(4.0);
    dma.submit({DmaRequest::Kind::Load, 0, 6});
    dma.submit({DmaRequest::Kind::Load, 1, 6});
    CycleSimulator sim;
    sim.add(&dma);
    // 12 words at 4/cycle: 3 cycles total thanks to carryover.
    EXPECT_EQ(sim.runUntilIdle(100), 3u);
    EXPECT_EQ(dma.loadsComplete(0), 1);
    EXPECT_EQ(dma.loadsComplete(1), 1);
}

TEST(DmaEngineTest, ZeroWordLoadCompletesImmediately)
{
    DmaEngine dma(1.0);
    dma.submit({DmaRequest::Kind::Load, 3, 0});
    EXPECT_TRUE(dma.idle());
    EXPECT_EQ(dma.loadsComplete(3), 1);
}

TEST(DmaEngineTest, FractionalBandwidth)
{
    DmaEngine dma(0.5);
    dma.submit({DmaRequest::Kind::Store, 0, 3});
    CycleSimulator sim;
    sim.add(&dma);
    EXPECT_EQ(sim.runUntilIdle(100), 6u);
}

// ----------------------------------------------------------- ComputeEngine

TEST(ComputeEngineTest, CountsDownAndCompletes)
{
    ComputeEngine engine;
    EXPECT_TRUE(engine.idle());
    engine.start(0, 5);
    CycleSimulator sim;
    sim.add(&engine);
    EXPECT_EQ(sim.runUntilIdle(100), 5u);
    EXPECT_EQ(engine.layersComplete(), 1);
    EXPECT_EQ(engine.busyCycles(), 5u);
}

TEST(ComputeEngineTest, StartWhileBusyIsFatal)
{
    logging_detail::setThrowOnError(true);
    ComputeEngine engine;
    engine.start(0, 5);
    EXPECT_THROW(engine.start(1, 3), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

// ---------------------------------------------------------------- runSystem

class SystemRunTest : public ::testing::Test
{
  protected:
    CompilationResult
    compiled(const NetworkSpec &net) const
    {
        return FlexFlowCompiler(FlexFlowConfig::forScale(16))
            .compile(net);
    }
};

TEST_F(SystemRunTest, OverlapBeatsSerialization)
{
    const auto net = workloads::lenet5();
    const CompilationResult result = compiled(net);
    const SystemRunResult run =
        runSystem(result, FlexFlowConfig::forScale(16), 2.0);
    EXPECT_GT(run.totalCycles, 0u);
    EXPECT_LE(run.totalCycles, run.serializedCycles);
    EXPECT_GE(run.overlapSpeedup(), 1.0);
}

TEST_F(SystemRunTest, BoundsRespectRoofline)
{
    // The dynamic run can never beat the compute-only or DMA-only
    // lower bounds.
    const auto net = workloads::pv();
    const CompilationResult result = compiled(net);
    const double bw = 1.0;
    const SystemRunResult run =
        runSystem(result, FlexFlowConfig::forScale(16), bw);

    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    Cycle compute_total = 0;
    WordCount dram_total = 0;
    for (const LayerPlan &plan : result.layers) {
        compute_total +=
            model.runLayer(plan.spec, plan.factors).cycles;
        dram_total += plan.dram.traffic.total();
    }
    EXPECT_GE(run.totalCycles, compute_total);
    EXPECT_GE(run.totalCycles,
              static_cast<Cycle>(dram_total / bw));
    EXPECT_EQ(run.computeBusyCycles, compute_total);
}

TEST_F(SystemRunTest, AmpleBandwidthIsComputeBound)
{
    const auto net = workloads::lenet5();
    const CompilationResult result = compiled(net);
    const SystemRunResult run =
        runSystem(result, FlexFlowConfig::forScale(16), 1e6);
    // Only the first layer's load latency (1 cycle at this bandwidth)
    // and scheduling skew separate the run from pure compute.
    EXPECT_LE(run.computeStallCycles, 10u);
}

TEST_F(SystemRunTest, StarvedBandwidthIsDmaBound)
{
    const auto net = workloads::lenet5();
    const CompilationResult result = compiled(net);
    const SystemRunResult run =
        runSystem(result, FlexFlowConfig::forScale(16), 0.05);
    EXPECT_GT(run.computeStallCycles, run.computeBusyCycles);
    // The DMA is the bottleneck: it is busy almost the whole run.
    EXPECT_GT(static_cast<double>(run.dmaBusyCycles),
              0.9 * static_cast<double>(run.totalCycles));
}

TEST_F(SystemRunTest, LayerStartsAreMonotone)
{
    const auto net = workloads::pv();
    const CompilationResult result = compiled(net);
    const SystemRunResult run =
        runSystem(result, FlexFlowConfig::forScale(16), 2.0);
    ASSERT_EQ(run.layerStart.size(), result.layers.size());
    for (std::size_t i = 1; i < run.layerStart.size(); ++i)
        EXPECT_GT(run.layerStart[i], run.layerStart[i - 1]);
}

TEST_F(SystemRunTest, BatchPipeliningAmortizesColdStart)
{
    // Back-to-back frames prefetch the next frame's data behind the
    // current one, so per-frame cycles shrink toward steady state.
    const auto net = workloads::lenet5();
    const CompilationResult result = compiled(net);
    const double bw = 2.0;
    const SystemRunResult one =
        runSystem(result, FlexFlowConfig::forScale(16), bw);
    const SystemRunResult eight =
        runSystemBatch(result, FlexFlowConfig::forScale(16), bw, 8);
    const double per_frame =
        static_cast<double>(eight.totalCycles) / 8.0;
    EXPECT_LT(per_frame, static_cast<double>(one.totalCycles));
    EXPECT_EQ(eight.layerStart.size(), 8 * result.layers.size());
}

TEST_F(SystemRunTest, BatchOfOneMatchesSingleRun)
{
    const auto net = workloads::hg();
    const CompilationResult result = compiled(net);
    const SystemRunResult single =
        runSystem(result, FlexFlowConfig::forScale(16), 1.0);
    const SystemRunResult batch =
        runSystemBatch(result, FlexFlowConfig::forScale(16), 1.0, 1);
    EXPECT_EQ(single.totalCycles, batch.totalCycles);
    EXPECT_EQ(single.serializedCycles, batch.serializedCycles);
}

TEST_F(SystemRunTest, MoreBandwidthNeverSlower)
{
    const auto net = workloads::hg();
    const CompilationResult result = compiled(net);
    Cycle prev = ~Cycle{0};
    for (double bw : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        const SystemRunResult run =
            runSystem(result, FlexFlowConfig::forScale(16), bw);
        EXPECT_LE(run.totalCycles, prev) << "bw " << bw;
        prev = run.totalCycles;
    }
}

} // namespace
} // namespace flexsim
