/**
 * @file
 * Deep validation of the Table-1 workload encodings: every published
 * layer dimension, the derived input sizes and MAC counts, and the
 * inter-layer (pooling) chain consistency for each of the six
 * networks.
 */

#include <gtest/gtest.h>

#include "nn/golden.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

struct LayerPin
{
    const char *name;
    int n, m, s, k, stride;
};

void
expectLayers(const NetworkSpec &net, const std::vector<LayerPin> &pins)
{
    ASSERT_EQ(net.stages.size(), pins.size()) << net.name;
    for (std::size_t i = 0; i < pins.size(); ++i) {
        const ConvLayerSpec &spec = net.stages[i].conv;
        EXPECT_EQ(spec.name, pins[i].name) << net.name;
        EXPECT_EQ(spec.inMaps, pins[i].n) << net.name << " " << spec.name;
        EXPECT_EQ(spec.outMaps, pins[i].m) << net.name << " " << spec.name;
        EXPECT_EQ(spec.outSize, pins[i].s) << net.name << " " << spec.name;
        EXPECT_EQ(spec.kernel, pins[i].k) << net.name << " " << spec.name;
        EXPECT_EQ(spec.stride, pins[i].stride)
            << net.name << " " << spec.name;
        EXPECT_EQ(spec.inSize,
                  (pins[i].s - 1) * pins[i].stride + pins[i].k)
            << net.name << " " << spec.name;
    }
}

/** The pooled output of stage i must cover stage i+1's input. */
void
expectChainCoverage(const NetworkSpec &net)
{
    for (std::size_t i = 0; i + 1 < net.stages.size(); ++i) {
        int size = net.stages[i].conv.outSize;
        if (net.stages[i].poolAfter)
            size = pooledSize(size, *net.stages[i].poolAfter);
        EXPECT_GE(size, net.stages[i + 1].conv.inSize)
            << net.name << " between " << net.stages[i].conv.name
            << " and " << net.stages[i + 1].conv.name;
        EXPECT_EQ(net.stages[i].conv.outMaps,
                  net.stages[i + 1].conv.inMaps)
            << net.name << " map chain at "
            << net.stages[i + 1].conv.name;
    }
}

TEST(Table1Test, PvLayers)
{
    const auto net = workloads::pv();
    expectLayers(net, {{"C1", 1, 8, 45, 6, 1},
                       {"C3", 8, 12, 20, 3, 1},
                       {"C5", 12, 16, 8, 3, 1},
                       {"C6", 16, 10, 6, 3, 1},
                       {"C7", 10, 6, 4, 3, 1}});
    expectChainCoverage(net);
    // 8*45^2*36 + 12*8*20^2*9 + 16*12*8^2*9 + 10*16*6^2*9 + 6*10*4^2*9
    EXPECT_EQ(net.totalMacs(),
              583200ull + 345600 + 110592 + 51840 + 8640);
}

TEST(Table1Test, FrLayers)
{
    const auto net = workloads::fr();
    expectLayers(net,
                 {{"C1", 1, 4, 28, 5, 1}, {"C3", 4, 16, 10, 4, 1}});
    expectChainCoverage(net);
    EXPECT_EQ(net.totalMacs(), 4ull * 784 * 25 + 16ull * 4 * 100 * 16);
}

TEST(Table1Test, LeNet5Layers)
{
    const auto net = workloads::lenet5();
    expectLayers(net,
                 {{"C1", 1, 6, 28, 5, 1}, {"C3", 6, 16, 10, 5, 1}});
    expectChainCoverage(net);
    // The LeNet chain is exact: 28 pooled by 2 is exactly C3's input.
    EXPECT_EQ(pooledSize(28, *net.stages[0].poolAfter), 14);
    EXPECT_EQ(net.stages[1].conv.inSize, 14);
}

TEST(Table1Test, HgLayers)
{
    const auto net = workloads::hg();
    expectLayers(net,
                 {{"C1", 1, 6, 24, 5, 1}, {"C3", 6, 12, 8, 4, 1}});
    expectChainCoverage(net);
    // HG's published chain has the one-column surplus (12 vs 11).
    EXPECT_EQ(pooledSize(24, *net.stages[0].poolAfter), 12);
    EXPECT_EQ(net.stages[1].conv.inSize, 11);
}

TEST(Table1Test, AlexNetLayers)
{
    const auto net = workloads::alexnet();
    expectLayers(net, {{"C1", 3, 48, 55, 11, 4},
                       {"C3", 48, 128, 27, 5, 1},
                       {"C5", 256, 192, 13, 3, 1},
                       {"C6", 192, 192, 13, 3, 1},
                       {"C7", 192, 128, 13, 3, 1}});
    // AlexNet's C3 -> C5 map-count jump (128 -> 256) reflects the two
    // merged halves the paper's Table 1 lists; the chain is evaluated
    // per layer, not end to end.
    EXPECT_EQ(net.stages[2].conv.inMaps, 256);
    EXPECT_EQ(net.totalMacs(), 332892432ull);
}

TEST(Table1Test, AlexNetMacBreakdown)
{
    const auto net = workloads::alexnet();
    const MacCount expected[] = {
        48ull * 3 * 55 * 55 * 11 * 11,   // C1: 52,707,600
        128ull * 48 * 27 * 27 * 5 * 5,   // C3: 111,974,400
        192ull * 256 * 13 * 13 * 3 * 3,  // C5: 74,760,192
        192ull * 192 * 13 * 13 * 3 * 3,  // C6: 56,070,144
        128ull * 192 * 13 * 13 * 3 * 3,  // C7: 37,380,096
    };
    MacCount total = 0;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        EXPECT_EQ(net.stages[i].conv.macs(), expected[i])
            << net.stages[i].conv.name;
        total += expected[i];
    }
    EXPECT_EQ(net.totalMacs(), total);
}

TEST(Table1Test, Vgg11Layers)
{
    const auto net = workloads::vgg11();
    expectLayers(net, {{"C1", 3, 64, 222, 3, 1},
                       {"C3", 64, 128, 109, 3, 1},
                       {"C5", 128, 256, 52, 3, 1},
                       {"C6", 256, 256, 50, 3, 1},
                       {"C8", 256, 512, 23, 3, 1},
                       // Table 1 prints 128@21x21 here; the
                       // self-consistent 512 is encoded (see
                       // EXPERIMENTS.md).
                       {"C9", 512, 512, 21, 3, 1},
                       {"C11", 512, 512, 8, 3, 1},
                       {"C12", 512, 512, 6, 3, 1}});
    expectChainCoverage(net);
}

TEST(Table1Test, ClassifierTailChain)
{
    const auto net = workloads::lenet5WithClassifier();
    expectChainCoverage(net);
    EXPECT_EQ(net.stages.back().conv.outMaps, 10);
    // C5 consumes exactly the pooled 16@5x5 maps.
    EXPECT_EQ(pooledSize(10, *net.stages[1].poolAfter), 5);
    EXPECT_EQ(net.stages[2].conv.inSize, 5);
}

TEST(Table1Test, PoolingWindowsDriveCompilerBounds)
{
    // P * K' bounds (Section 5): PV C1 is followed by a 2x2 pool and
    // a K' = 3 conv, so Tr/Tc <= 6.
    const auto net = workloads::pv();
    EXPECT_EQ(net.poolWindowAfter(0) * *net.nextKernel(0), 6);
    // AlexNet C1: 3x3 pool, K' = 5 -> bound 15.
    const auto alex = workloads::alexnet();
    EXPECT_EQ(alex.poolWindowAfter(0) * *alex.nextKernel(0), 15);
}

} // namespace
} // namespace flexsim
