/**
 * @file
 * Randomized property tests: for seeded-random layer shapes and
 * configurations, every cycle simulator must (a) be bit-exact against
 * the golden convolution and (b) agree with its analytic model on
 * every counter.  These sweeps cover corners the hand-picked grids in
 * the per-architecture suites do not.
 */

#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "common/random.hh"
#include "fault/fault_plan.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "flexflow/isa.hh"
#include "guard/error.hh"
#include "serve/traffic.hh"
#include "mapping2d/mapping2d_array.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "systolic/systolic_array.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_array.hh"
#include "tiling/tiling_model.hh"

namespace flexsim {
namespace {

ConvLayerSpec
randomLayer(Rng &rng)
{
    const int kernel = static_cast<int>(rng.uniformInt(1, 7));
    const int stride =
        static_cast<int>(rng.uniformInt(1, std::min(3, kernel)));
    return ConvLayerSpec::make(
        "fuzz", static_cast<int>(rng.uniformInt(1, 10)),
        static_cast<int>(rng.uniformInt(1, 18)),
        static_cast<int>(rng.uniformInt(1, 12)), kernel, stride);
}

void
expectCountersEqual(const LayerResult &sim, const LayerResult &model,
                    const std::string &context)
{
    EXPECT_EQ(sim.cycles, model.cycles) << context;
    EXPECT_EQ(sim.fillCycles, model.fillCycles) << context;
    EXPECT_EQ(sim.activeMacCycles, model.activeMacCycles) << context;
    EXPECT_EQ(sim.traffic, model.traffic) << context;
    EXPECT_EQ(sim.localStoreReads, model.localStoreReads) << context;
    EXPECT_EQ(sim.localStoreWrites, model.localStoreWrites) << context;
    EXPECT_EQ(sim.dram, model.dram) << context;
}

class FuzzSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzSweep, SystolicSimEquivalences)
{
    Rng rng(0x51000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    SystolicConfig cfg;
    cfg.arrayEdge = static_cast<int>(
        rng.uniformInt(1, std::min(6, spec.inSize)));
    cfg.numArrays = static_cast<unsigned>(rng.uniformInt(1, 4));

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    SystolicArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    expectCountersEqual(sim_result, SystolicModel(cfg).runLayer(spec),
                        "systolic seed " +
                            std::to_string(GetParam()));
}

TEST_P(FuzzSweep, Mapping2DSimEquivalences)
{
    Rng rng(0x2d000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    Mapping2DConfig cfg;
    cfg.rows = static_cast<int>(rng.uniformInt(1, 9));
    cfg.cols = static_cast<int>(rng.uniformInt(1, 9));

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    Mapping2DArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    expectCountersEqual(sim_result,
                        Mapping2DModel(cfg).runLayer(spec),
                        "mapping2d seed " +
                            std::to_string(GetParam()));
}

TEST_P(FuzzSweep, TilingSimEquivalences)
{
    Rng rng(0x71000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    TilingConfig cfg;
    cfg.tm = static_cast<int>(rng.uniformInt(1, 8));
    cfg.tn = static_cast<int>(rng.uniformInt(1, 8));

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    TilingArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    expectCountersEqual(sim_result, TilingModel(cfg).runLayer(spec),
                        "tiling seed " + std::to_string(GetParam()));
}

TEST_P(FuzzSweep, FlexFlowSimEquivalences)
{
    Rng rng(0xff000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    FlexFlowConfig cfg;
    cfg.d = static_cast<int>(rng.uniformInt(2, 12));

    // Pick a random feasible factor assignment, not just the optimum.
    const auto feasible_set =
        enumerateFeasible(spec, cfg.d, spec.outSize);
    ASSERT_FALSE(feasible_set.empty());
    const UnrollFactors t = feasible_set[static_cast<std::size_t>(
        rng.uniformInt(0,
                       static_cast<std::int64_t>(feasible_set.size()) -
                           1))];

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConvUnit unit(cfg);
    LayerResult sim_result;
    ConvUnitDiagnostics diag;
    const Tensor3<> out =
        unit.runLayer(spec, t, input, kernels, &sim_result, &diag);
    EXPECT_EQ(out, goldenConv(spec, input, kernels))
        << spec.name << " " << t.toString() << " d=" << cfg.d;
    expectCountersEqual(sim_result,
                        FlexFlowModel(cfg).runLayer(spec, t),
                        "flexflow seed " + std::to_string(GetParam()) +
                            " " + t.toString());
    // The RS scheduling property: no (PE, batch) ever has more tasks
    // than the step count.
    const long long steps = ceilDiv(spec.inMaps, t.tn) *
                            ceilDiv(spec.kernel, t.ti) *
                            ceilDiv(spec.kernel, t.tj);
    EXPECT_LE(diag.maxTasksPerPe, static_cast<std::size_t>(steps));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 25));

/** Tensor with extreme Q7.8 values that force accumulator saturation
 * at quantization time. */
Tensor3<>
makeExtremeInput(Rng &rng, const ConvLayerSpec &spec)
{
    Tensor3<> t(spec.inMaps, spec.inSize, spec.inSize);
    for (int m = 0; m < spec.inMaps; ++m) {
        for (int r = 0; r < spec.inSize; ++r) {
            for (int c = 0; c < spec.inSize; ++c) {
                const std::int16_t raw =
                    rng.chance(0.5) ? 32767 : -32768;
                t.at(m, r, c) = Fixed16::fromRaw(
                    rng.chance(0.2) ? 0 : raw);
            }
        }
    }
    return t;
}

Tensor4<>
makeExtremeKernels(Rng &rng, const ConvLayerSpec &spec)
{
    Tensor4<> t(spec.outMaps, spec.inMaps, spec.kernel, spec.kernel);
    for (int m = 0; m < spec.outMaps; ++m)
        for (int n = 0; n < spec.inMaps; ++n)
            for (int i = 0; i < spec.kernel; ++i)
                for (int j = 0; j < spec.kernel; ++j)
                    t.at(m, n, i, j) = Fixed16::fromRaw(
                        static_cast<std::int16_t>(
                            rng.uniformInt(-32768, 32767)));
    return t;
}

TEST(FuzzSaturationTest, AllSimulatorsMatchGoldenUnderSaturation)
{
    // Extreme operand values drive the output quantization into
    // saturation; every simulator accumulates at full width and
    // quantizes once, so outputs must still be bit-exact.
    Rng rng(0x5a7);
    for (int iter = 0; iter < 8; ++iter) {
        const ConvLayerSpec spec = randomLayer(rng);
        const Tensor3<> input = makeExtremeInput(rng, spec);
        const Tensor4<> kernels = makeExtremeKernels(rng, spec);
        const Tensor3<> gold = goldenConv(spec, input, kernels);

        // At least one output must actually saturate for the test to
        // mean anything (overwhelmingly likely with these operands).
        bool saturated = false;
        for (int m = 0; m < gold.maps() && !saturated; ++m)
            for (int r = 0; r < gold.height() && !saturated; ++r)
                for (int c = 0; c < gold.width() && !saturated; ++c)
                    saturated = gold.at(m, r, c).raw() == 32767 ||
                                gold.at(m, r, c).raw() == -32768;

        SystolicConfig scfg;
        scfg.arrayEdge = std::min(3, spec.inSize);
        EXPECT_EQ(SystolicArraySim(scfg).runLayer(spec, input,
                                                  kernels),
                  gold);
        EXPECT_EQ(Mapping2DArraySim().runLayer(spec, input, kernels),
                  gold);
        EXPECT_EQ(TilingArraySim().runLayer(spec, input, kernels),
                  gold);
        FlexFlowConfig fcfg;
        fcfg.d = 8;
        const FactorChoice choice = searchBestFactors(spec, fcfg.d);
        FlexFlowConvUnit unit(fcfg);
        EXPECT_EQ(unit.runLayer(spec, choice.factors, input, kernels),
                  gold);
        EXPECT_EQ(goldenConvIm2col(input, kernels, spec.stride),
                  gold);
        (void)saturated;
    }
}

TEST(FuzzInvariantTest, UtilizationNeverExceedsOne)
{
    Rng rng(0xabcd);
    for (int i = 0; i < 50; ++i) {
        const ConvLayerSpec spec = randomLayer(rng);
        const int d = static_cast<int>(rng.uniformInt(1, 16));
        const FactorChoice choice = searchBestFactors(spec, d);
        EXPECT_LE(choice.utilization(), 1.0 + 1e-9)
            << spec.name << " d=" << d;
        EXPECT_GT(choice.utilization(), 0.0);
    }
}

TEST(FuzzInvariantTest, ModelMacsAlwaysMatchSpec)
{
    Rng rng(0xbeef);
    for (int i = 0; i < 30; ++i) {
        const ConvLayerSpec spec = randomLayer(rng);
        EXPECT_EQ(FlexFlowModel().runLayer(spec).macs, spec.macs());
        EXPECT_EQ(TilingModel().runLayer(spec).macs, spec.macs());
        EXPECT_EQ(Mapping2DModel().runLayer(spec).macs, spec.macs());
    }
}

// ===================================================================
// Malformed-input corpus: every untrusted-input boundary, fed
// hostile data through its try*/check* entry point, must hand back
// a typed guard::Error.  This suite runs WITHOUT setThrowOnError, so
// any code path that still fatal()s on these inputs aborts the test
// process — passing is the proof that nothing does.
// ===================================================================

struct MalformedCase
{
    const char *name;
    std::function<std::optional<guard::Error>()> run;
};

/** Adapt an Expected<T> to "the error, if rejected". */
template <typename T>
std::optional<guard::Error>
errorOf(const guard::Expected<T> &result)
{
    if (result)
        return std::nullopt;
    return result.error();
}

/** A "FFSM" binary image with an arbitrary version/count/payload. */
std::string
binaryImage(std::uint8_t version, std::uint64_t count,
            const std::vector<std::uint64_t> &words)
{
    std::string bytes = "FFSM";
    bytes.push_back(static_cast<char>(version));
    for (int b = 0; b < 8; ++b)
        bytes.push_back(static_cast<char>((count >> (8 * b)) & 0xff));
    for (std::uint64_t w : words)
        for (int b = 0; b < 8; ++b)
            bytes.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
    return bytes;
}

std::vector<MalformedCase>
malformedCorpus()
{
    using fault::tryParseFaultSpec;
    using fault::tryParseFaultTrace;
    using serve::TrafficConfig;
    using serve::tryParseReplayTrace;

    auto layer = [](int n, int m, int s, int k, int stride) {
        return ConvLayerSpec::tryMake("hostile", n, m, s, k, stride);
    };
    auto pool = [](int window, int stride) {
        PoolLayerSpec p;
        p.window = window;
        p.stride = stride;
        return p.checked();
    };
    auto spec = [](const std::string &text) {
        return tryParseFaultSpec(text);
    };
    auto checkedSpec = [](const std::string &text, int d) {
        auto plan = fault::tryParseFaultSpec(text);
        if (!plan)
            return guard::Expected<void>(plan.error());
        return plan.value().check(d);
    };
    auto traffic = [](auto mutate) {
        TrafficConfig config;
        mutate(config);
        return config.check();
    };
    const int big = 1 << 20; // nn::kMaxDim

    return {
        // --- layer/network ingestion ---------------------------------
        {"conv zero input maps", [=] { return errorOf(layer(0, 4, 8, 3, 1)); }},
        {"conv negative output maps", [=] { return errorOf(layer(3, -2, 8, 3, 1)); }},
        {"conv zero output size", [=] { return errorOf(layer(3, 4, 0, 3, 1)); }},
        {"conv zero kernel", [=] { return errorOf(layer(3, 4, 8, 0, 1)); }},
        {"conv zero stride", [=] { return errorOf(layer(3, 4, 8, 3, 0)); }},
        {"conv negative stride", [=] { return errorOf(layer(3, 4, 8, 3, -1)); }},
        {"conv dimension past cap", [=] { return errorOf(layer(3, 4, big + 1, 3, 1)); }},
        {"conv overflow-sized tensor", [=] { return errorOf(layer(big, big, big, big, 1)); }},
        {"pool zero window", [=] { return errorOf(pool(0, 1)); }},
        {"pool negative stride", [=] { return errorOf(pool(2, -1)); }},
        {"pool window past cap", [=] { return errorOf(pool(big + 1, 1)); }},
        {"network with no stages", [] {
             NetworkSpec net;
             net.name = "empty";
             return errorOf(net.checked());
         }},
        {"network with corrupt stage", [] {
             NetworkSpec net;
             net.name = "corrupt";
             NetworkSpec::Stage stage;
             stage.conv.name = "bad";
             stage.conv.inMaps = -1;
             net.stages.push_back(stage);
             return errorOf(net.checked());
         }},

        // --- flexcc program text -------------------------------------
        {"asm unknown mnemonic", [] { return errorOf(tryAssemble("frobnicate 1 2 3\n")); }},
        {"asm missing operands", [] { return errorOf(tryAssemble("cfg_layer 1 2\n")); }},
        {"asm excess operands", [] { return errorOf(tryAssemble("halt 1\n")); }},
        {"asm non-numeric operand", [] { return errorOf(tryAssemble("load_input banana\n")); }},
        {"asm operand overflow", [] {
             return errorOf(
                 tryAssemble("cfg_layer 99999999 1 1 1 1\n"));
         }},

        // --- flexcc binary programs ----------------------------------
        {"binary empty image", [] { return errorOf(tryParseBinary("", "fuzz")); }},
        {"binary bad magic", [] {
             return errorOf(tryParseBinary(
                 std::string("XXSM\x01") + std::string(16, '\0'),
                 "fuzz"));
         }},
        {"binary truncated header", [] { return errorOf(tryParseBinary("FFSM", "fuzz")); }},
        {"binary unsupported version", [] { return errorOf(tryParseBinary(binaryImage(9, 0, {}), "fuzz")); }},
        {"binary hostile instruction count", [] {
             // Claims 2^61 instructions in a 21-byte file; must be
             // rejected before any allocation is attempted.
             return errorOf(tryParseBinary(
                 binaryImage(1, std::uint64_t{1} << 61, {0}), "fuzz"));
         }},
        {"binary trailing bytes", [] {
             return errorOf(tryParseBinary(
                 binaryImage(1, 0, {}) + "junk", "fuzz"));
         }},
        {"binary undecodable opcode", [] {
             return errorOf(tryParseBinary(
                 binaryImage(1, 1, {~std::uint64_t{0}}), "fuzz"));
         }},

        // --- fault plans and traces ----------------------------------
        {"fault spec garbage clause", [=] { return errorOf(spec("garbage")); }},
        {"fault spec unknown key", [=] { return errorOf(spec("bananas=3")); }},
        {"fault spec bad number", [=] { return errorOf(spec("flip=abc")); }},
        {"fault spec bad pe coordinate", [=] { return errorOf(spec("stuck=1")); }},
        {"fault spec malformed bufflip", [=] { return errorOf(spec("bufflip=neuron")); }},
        {"fault spec flip rate above one", [=] { return errorOf(checkedSpec("flip=2.0", 16)); }},
        {"fault spec pe outside array", [=] { return errorOf(checkedSpec("stuck=99.99", 16)); }},
        {"fault trace bad time", [=] { return errorOf(tryParseFaultTrace("banana failstop 0\n")); }},
        {"fault trace unknown event", [=] { return errorOf(tryParseFaultTrace("1ms frobnicate 0\n")); }},

        // --- traffic configuration and traces ------------------------
        {"traffic zero rate", [=] {
             return errorOf(
                 traffic([](TrafficConfig &c) { c.rps = 0.0; }));
         }},
        {"traffic zero duration", [=] {
             return errorOf(
                 traffic([](TrafficConfig &c) { c.durationNs = 0; }));
         }},
        {"traffic no workloads", [=] {
             return errorOf(
                 traffic([](TrafficConfig &c) { c.numWorkloads = 0; }));
         }},
        {"traffic burst fraction over one", [=] {
             return errorOf(traffic([](TrafficConfig &c) {
                 c.model = serve::TrafficModel::Bursty;
                 c.burstFraction = 1.5;
             }));
         }},
        {"traffic burst factor below one", [=] {
             return errorOf(traffic([](TrafficConfig &c) {
                 c.model = serve::TrafficModel::Bursty;
                 c.burstFactor = 0.5;
             }));
         }},
        {"traffic poison rate above one", [=] {
             return errorOf(
                 traffic([](TrafficConfig &c) { c.poisonRate = 1.5; }));
         }},
        {"traffic negative poison rate", [=] {
             return errorOf(traffic(
                 [](TrafficConfig &c) { c.poisonRate = -0.25; }));
         }},
        {"replay trace garbage line", [=] { return errorOf(tryParseReplayTrace("12.5\nbanana\n")); }},
        {"replay trace negative offset", [=] { return errorOf(tryParseReplayTrace("-40\n")); }},
    };
}

TEST(MalformedInputCorpus, EveryCaseYieldsTypedErrorWithoutAborting)
{
    const std::vector<MalformedCase> corpus = malformedCorpus();
    ASSERT_GE(corpus.size(), 30u);
    for (const MalformedCase &c : corpus) {
        // Running at all is half the test: a boundary that still
        // fatal()s on this input kills the process here.
        const std::optional<guard::Error> err = c.run();
        ASSERT_TRUE(err.has_value())
            << "'" << c.name << "' was accepted instead of rejected";
        EXPECT_FALSE(err->message.empty()) << c.name;
        EXPECT_FALSE(err->site.empty()) << c.name;
        // str() is the operator-facing rendering; it must carry the
        // site and a category tag.
        const std::string rendered = err->str();
        EXPECT_NE(rendered.find(err->site), std::string::npos)
            << c.name;
        EXPECT_NE(rendered.find('['), std::string::npos) << c.name;
    }
}

TEST(MalformedInputCorpus, WellFormedCounterpartsStillParse)
{
    // The guarded parsers must not have become trigger-happy: one
    // healthy exemplar per boundary still parses cleanly.
    EXPECT_TRUE(ConvLayerSpec::tryMake("ok", 3, 4, 8, 3, 1));
    PoolLayerSpec pool;
    pool.window = 2;
    pool.stride = 2;
    EXPECT_TRUE(pool.checked());
    EXPECT_TRUE(tryAssemble("cfg_layer 4 3 8 3 1\nconv\nhalt\n"));
    const Program round_trip =
        assemble("cfg_layer 4 3 8 3 1\nconv\nhalt\n");
    std::vector<std::uint64_t> words;
    for (const Instruction &inst : round_trip.instructions)
        words.push_back(encode(inst));
    EXPECT_TRUE(tryParseBinary(
        binaryImage(1, words.size(), words), "fuzz"));
    EXPECT_TRUE(fault::tryParseFaultSpec("seed=7;stuck=1.2;flip=0.01"));
    EXPECT_TRUE(fault::tryParseFaultTrace("1ms failstop 0\n"));
    serve::TrafficConfig traffic;
    traffic.poisonRate = 0.25;
    EXPECT_TRUE(traffic.check());
    EXPECT_TRUE(serve::tryParseReplayTrace("0\n12.5\n100\n"));
}

} // namespace
} // namespace flexsim
