/**
 * @file
 * Randomized property tests: for seeded-random layer shapes and
 * configurations, every cycle simulator must (a) be bit-exact against
 * the golden convolution and (b) agree with its analytic model on
 * every counter.  These sweeps cover corners the hand-picked grids in
 * the per-architecture suites do not.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_array.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "systolic/systolic_array.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_array.hh"
#include "tiling/tiling_model.hh"

namespace flexsim {
namespace {

ConvLayerSpec
randomLayer(Rng &rng)
{
    const int kernel = static_cast<int>(rng.uniformInt(1, 7));
    const int stride =
        static_cast<int>(rng.uniformInt(1, std::min(3, kernel)));
    return ConvLayerSpec::make(
        "fuzz", static_cast<int>(rng.uniformInt(1, 10)),
        static_cast<int>(rng.uniformInt(1, 18)),
        static_cast<int>(rng.uniformInt(1, 12)), kernel, stride);
}

void
expectCountersEqual(const LayerResult &sim, const LayerResult &model,
                    const std::string &context)
{
    EXPECT_EQ(sim.cycles, model.cycles) << context;
    EXPECT_EQ(sim.fillCycles, model.fillCycles) << context;
    EXPECT_EQ(sim.activeMacCycles, model.activeMacCycles) << context;
    EXPECT_EQ(sim.traffic, model.traffic) << context;
    EXPECT_EQ(sim.localStoreReads, model.localStoreReads) << context;
    EXPECT_EQ(sim.localStoreWrites, model.localStoreWrites) << context;
    EXPECT_EQ(sim.dram, model.dram) << context;
}

class FuzzSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzSweep, SystolicSimEquivalences)
{
    Rng rng(0x51000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    SystolicConfig cfg;
    cfg.arrayEdge = static_cast<int>(
        rng.uniformInt(1, std::min(6, spec.inSize)));
    cfg.numArrays = static_cast<unsigned>(rng.uniformInt(1, 4));

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    SystolicArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    expectCountersEqual(sim_result, SystolicModel(cfg).runLayer(spec),
                        "systolic seed " +
                            std::to_string(GetParam()));
}

TEST_P(FuzzSweep, Mapping2DSimEquivalences)
{
    Rng rng(0x2d000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    Mapping2DConfig cfg;
    cfg.rows = static_cast<int>(rng.uniformInt(1, 9));
    cfg.cols = static_cast<int>(rng.uniformInt(1, 9));

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    Mapping2DArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    expectCountersEqual(sim_result,
                        Mapping2DModel(cfg).runLayer(spec),
                        "mapping2d seed " +
                            std::to_string(GetParam()));
}

TEST_P(FuzzSweep, TilingSimEquivalences)
{
    Rng rng(0x71000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    TilingConfig cfg;
    cfg.tm = static_cast<int>(rng.uniformInt(1, 8));
    cfg.tn = static_cast<int>(rng.uniformInt(1, 8));

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    TilingArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    expectCountersEqual(sim_result, TilingModel(cfg).runLayer(spec),
                        "tiling seed " + std::to_string(GetParam()));
}

TEST_P(FuzzSweep, FlexFlowSimEquivalences)
{
    Rng rng(0xff000 + GetParam());
    const ConvLayerSpec spec = randomLayer(rng);
    FlexFlowConfig cfg;
    cfg.d = static_cast<int>(rng.uniformInt(2, 12));

    // Pick a random feasible factor assignment, not just the optimum.
    const auto feasible_set =
        enumerateFeasible(spec, cfg.d, spec.outSize);
    ASSERT_FALSE(feasible_set.empty());
    const UnrollFactors t = feasible_set[static_cast<std::size_t>(
        rng.uniformInt(0,
                       static_cast<std::int64_t>(feasible_set.size()) -
                           1))];

    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConvUnit unit(cfg);
    LayerResult sim_result;
    ConvUnitDiagnostics diag;
    const Tensor3<> out =
        unit.runLayer(spec, t, input, kernels, &sim_result, &diag);
    EXPECT_EQ(out, goldenConv(spec, input, kernels))
        << spec.name << " " << t.toString() << " d=" << cfg.d;
    expectCountersEqual(sim_result,
                        FlexFlowModel(cfg).runLayer(spec, t),
                        "flexflow seed " + std::to_string(GetParam()) +
                            " " + t.toString());
    // The RS scheduling property: no (PE, batch) ever has more tasks
    // than the step count.
    const long long steps = ceilDiv(spec.inMaps, t.tn) *
                            ceilDiv(spec.kernel, t.ti) *
                            ceilDiv(spec.kernel, t.tj);
    EXPECT_LE(diag.maxTasksPerPe, static_cast<std::size_t>(steps));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 25));

/** Tensor with extreme Q7.8 values that force accumulator saturation
 * at quantization time. */
Tensor3<>
makeExtremeInput(Rng &rng, const ConvLayerSpec &spec)
{
    Tensor3<> t(spec.inMaps, spec.inSize, spec.inSize);
    for (int m = 0; m < spec.inMaps; ++m) {
        for (int r = 0; r < spec.inSize; ++r) {
            for (int c = 0; c < spec.inSize; ++c) {
                const std::int16_t raw =
                    rng.chance(0.5) ? 32767 : -32768;
                t.at(m, r, c) = Fixed16::fromRaw(
                    rng.chance(0.2) ? 0 : raw);
            }
        }
    }
    return t;
}

Tensor4<>
makeExtremeKernels(Rng &rng, const ConvLayerSpec &spec)
{
    Tensor4<> t(spec.outMaps, spec.inMaps, spec.kernel, spec.kernel);
    for (int m = 0; m < spec.outMaps; ++m)
        for (int n = 0; n < spec.inMaps; ++n)
            for (int i = 0; i < spec.kernel; ++i)
                for (int j = 0; j < spec.kernel; ++j)
                    t.at(m, n, i, j) = Fixed16::fromRaw(
                        static_cast<std::int16_t>(
                            rng.uniformInt(-32768, 32767)));
    return t;
}

TEST(FuzzSaturationTest, AllSimulatorsMatchGoldenUnderSaturation)
{
    // Extreme operand values drive the output quantization into
    // saturation; every simulator accumulates at full width and
    // quantizes once, so outputs must still be bit-exact.
    Rng rng(0x5a7);
    for (int iter = 0; iter < 8; ++iter) {
        const ConvLayerSpec spec = randomLayer(rng);
        const Tensor3<> input = makeExtremeInput(rng, spec);
        const Tensor4<> kernels = makeExtremeKernels(rng, spec);
        const Tensor3<> gold = goldenConv(spec, input, kernels);

        // At least one output must actually saturate for the test to
        // mean anything (overwhelmingly likely with these operands).
        bool saturated = false;
        for (int m = 0; m < gold.maps() && !saturated; ++m)
            for (int r = 0; r < gold.height() && !saturated; ++r)
                for (int c = 0; c < gold.width() && !saturated; ++c)
                    saturated = gold.at(m, r, c).raw() == 32767 ||
                                gold.at(m, r, c).raw() == -32768;

        SystolicConfig scfg;
        scfg.arrayEdge = std::min(3, spec.inSize);
        EXPECT_EQ(SystolicArraySim(scfg).runLayer(spec, input,
                                                  kernels),
                  gold);
        EXPECT_EQ(Mapping2DArraySim().runLayer(spec, input, kernels),
                  gold);
        EXPECT_EQ(TilingArraySim().runLayer(spec, input, kernels),
                  gold);
        FlexFlowConfig fcfg;
        fcfg.d = 8;
        const FactorChoice choice = searchBestFactors(spec, fcfg.d);
        FlexFlowConvUnit unit(fcfg);
        EXPECT_EQ(unit.runLayer(spec, choice.factors, input, kernels),
                  gold);
        EXPECT_EQ(goldenConvIm2col(input, kernels, spec.stride),
                  gold);
        (void)saturated;
    }
}

TEST(FuzzInvariantTest, UtilizationNeverExceedsOne)
{
    Rng rng(0xabcd);
    for (int i = 0; i < 50; ++i) {
        const ConvLayerSpec spec = randomLayer(rng);
        const int d = static_cast<int>(rng.uniformInt(1, 16));
        const FactorChoice choice = searchBestFactors(spec, d);
        EXPECT_LE(choice.utilization(), 1.0 + 1e-9)
            << spec.name << " d=" << d;
        EXPECT_GT(choice.utilization(), 0.0);
    }
}

TEST(FuzzInvariantTest, ModelMacsAlwaysMatchSpec)
{
    Rng rng(0xbeef);
    for (int i = 0; i < 30; ++i) {
        const ConvLayerSpec spec = randomLayer(rng);
        EXPECT_EQ(FlexFlowModel().runLayer(spec).macs, spec.macs());
        EXPECT_EQ(TilingModel().runLayer(spec).macs, spec.macs());
        EXPECT_EQ(Mapping2DModel().runLayer(spec).macs, spec.macs());
    }
}

} // namespace
} // namespace flexsim
