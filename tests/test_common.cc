/**
 * @file
 * Unit tests for src/common: logging, deterministic RNG, string
 * helpers, and the table renderer.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace flexsim {
namespace {

// ---------------------------------------------------------------- logging

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { logging_detail::setThrowOnError(true); }
    void TearDown() override { logging_detail::setThrowOnError(false); }
};

TEST_F(LoggingTest, PanicThrowsWithMessage)
{
    try {
        panic("bank ", 3, " broken");
        FAIL() << "panic returned";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("bank 3 broken"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, FatalThrowsWithMessage)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
}

TEST_F(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(flexsim_assert(1 + 1 == 2, "math works"));
}

TEST_F(LoggingTest, AssertThrowsOnFalseCondition)
{
    EXPECT_THROW(flexsim_assert(false, "expected"), std::runtime_error);
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning ", 42));
    EXPECT_NO_THROW(inform("status ", 1.5));
}

TEST_F(LoggingTest, ThrowOnErrorHookReadable)
{
    EXPECT_TRUE(logging_detail::getThrowOnError());
}

// ------------------------------------------------------------------ random

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(RngTest, UniformIntSingletonRange)
{
    Rng rng(8);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntCoversRange)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRealInUnitInterval)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, UniformRealRangeMapped)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ----------------------------------------------------------------- strutil

TEST(StrUtilTest, SplitBasic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, SplitKeepsEmptyFields)
{
    const auto parts = split("a..b", '.');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(StrUtilTest, SplitTrailingDelimiter)
{
    const auto parts = split("x.", '.');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[1], "");
}

TEST(StrUtilTest, SplitWhitespaceDropsEmpties)
{
    const auto parts = splitWhitespace("  cfg_layer  6 \t 16 ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "cfg_layer");
    EXPECT_EQ(parts[2], "16");
}

TEST(StrUtilTest, TrimBothEnds)
{
    EXPECT_EQ(trim("  hello\t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StrUtilTest, JoinWithSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(StrUtilTest, ToLowerAscii)
{
    EXPECT_EQ(toLower("FlexFlow"), "flexflow");
}

TEST(StrUtilTest, StartsWith)
{
    EXPECT_TRUE(startsWith("cfg_layer 6", "cfg_"));
    EXPECT_FALSE(startsWith("cfg", "cfg_layer"));
}

TEST(StrUtilTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(StrUtilTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.873, 1), "87.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(StrUtilTest, FormatCountGroupsThousands)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

// ------------------------------------------------------------------- table

TEST(TextTableTest, RendersHeaderAndRows)
{
    TextTable table;
    table.setHeader({"Arch", "GOPs"});
    table.addRow({"FlexFlow", "430"});
    table.addRow({"Tiling", "45"});
    const std::string text = table.toString();
    EXPECT_NE(text.find("Arch"), std::string::npos);
    EXPECT_NE(text.find("FlexFlow"), std::string::npos);
    EXPECT_NE(text.find("430"), std::string::npos);
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTableTest, ColumnsAligned)
{
    TextTable table;
    table.setHeader({"A", "B"});
    table.addRow({"xxxxxx", "1"});
    table.addRow({"y", "2"});
    const std::string text = table.toString();
    // The "1" and "2" cells must start at the same column.
    const auto lines = split(text, '\n');
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(TextTableTest, SeparatorRendered)
{
    TextTable table;
    table.setHeader({"A"});
    table.addRow({"x"});
    table.addSeparator();
    table.addRow({"y"});
    const std::string text = table.toString();
    // Header underline plus explicit separator.
    int dashes = 0;
    for (const auto &line : split(text, '\n'))
        if (!line.empty() && line.find_first_not_of('-') ==
                                 std::string::npos)
            ++dashes;
    EXPECT_EQ(dashes, 2);
}

TEST(TextTableTest, CsvOutput)
{
    TextTable table;
    table.setHeader({"Arch", "GOPs"});
    table.addRow({"FlexFlow", "430"});
    table.addSeparator();
    table.addRow({"Tiling, small", "45"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "Arch,GOPs\n"
                         "FlexFlow,430\n"
                         "\"Tiling, small\",45\n");
}

TEST(TextTableTest, CsvQuotesEmbeddedQuotes)
{
    TextTable table;
    table.addRow({"say \"hi\"", "x"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "\"say \"\"hi\"\"\",x\n");
}

TEST(TextTableTest, RaggedRowsTolerated)
{
    TextTable table;
    table.setHeader({"A", "B", "C"});
    table.addRow({"1"});
    EXPECT_NO_THROW(table.toString());
}

} // namespace
} // namespace flexsim
