/**
 * @file
 * Unit tests for the shared architecture layer: unrolling factors and
 * the Section-5 utilization equations, the factor search, the DRAM
 * planner, and result records.
 */

#include <gtest/gtest.h>

#include "arch/dram_planner.hh"
#include "arch/factor_search.hh"
#include "arch/result.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

// ------------------------------------------------------------------ unroll

TEST(UnrollTest, DemandProducts)
{
    const UnrollFactors t{2, 3, 4, 5, 6, 7};
    EXPECT_EQ(t.rowDemand(), 2 * 4 * 5);
    EXPECT_EQ(t.columnDemand(), 3 * 6 * 7);
}

TEST(UnrollTest, ToStringReadable)
{
    const UnrollFactors t{1, 2, 3, 4, 5, 6};
    EXPECT_EQ(t.toString(), "<Tm=1,Tn=2,Tr=3,Tc=4,Ti=5,Tj=6>");
}

TEST(UnrollTest, FeasibilityConstraint1)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const int d = 16;
    // The paper's Table 4 LeNet-5 C3 factors are feasible.
    EXPECT_TRUE(feasible({16, 3, 1, 1, 1, 5}, spec, d, 10));
    // Row demand above D is not.
    EXPECT_FALSE(feasible({16, 1, 2, 1, 1, 1}, spec, d, 10));
    // Column demand above D is not.
    EXPECT_FALSE(feasible({1, 6, 1, 1, 1, 5}, spec, d, 10));
    // Factor above the layer dimension is not.
    EXPECT_FALSE(feasible({17, 1, 1, 1, 1, 1}, spec, d, 10));
    EXPECT_FALSE(feasible({1, 7, 1, 1, 1, 1}, spec, d, 10));
    EXPECT_FALSE(feasible({1, 1, 1, 1, 6, 1}, spec, d, 10));
    // Tr/Tc bound (P * K') enforced.
    EXPECT_FALSE(feasible({1, 1, 4, 1, 1, 1}, spec, d, 3));
    // Non-positive factors rejected.
    EXPECT_FALSE(feasible({0, 1, 1, 1, 1, 1}, spec, d, 10));
}

TEST(UnrollTest, Equation2RowUtilization)
{
    // LeNet-5 C3 with the paper's factors: Ur = 6*25/(2*5*1*16).
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    EXPECT_DOUBLE_EQ(utilizationRows(t, spec, 16),
                     (6.0 * 25) / (2.0 * 5 * 1 * 16));
}

TEST(UnrollTest, Equation3ColUtilization)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    EXPECT_DOUBLE_EQ(utilizationCols(t, spec, 16),
                     (16.0 * 100) / (1.0 * 10 * 10 * 16));
}

TEST(UnrollTest, TotalIsProduct)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const UnrollFactors t{3, 1, 1, 5, 3, 5};
    EXPECT_DOUBLE_EQ(utilizationTotal(t, spec, 16),
                     utilizationRows(t, spec, 16) *
                         utilizationCols(t, spec, 16));
}

TEST(UnrollTest, FullUnrollGivesFullUtilization)
{
    // A layer that exactly tiles the array reaches Ut = 1.
    const auto spec = ConvLayerSpec::make("X", 4, 4, 2, 2);
    const UnrollFactors t{4, 4, 2, 2, 2, 1};
    // rows: 4*2*2 = 16 = D; cols: 4*2*1 = 8... choose D = 16/8 split.
    EXPECT_DOUBLE_EQ(utilizationCols(t, spec, 16), 1.0);
}

TEST(UnrollTest, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 16), 1);
}

// ----------------------------------------------------------- factor search

TEST(FactorSearchTest, ResultIsFeasible)
{
    for (const auto &net : workloads::smallFour()) {
        for (const auto &stage : net.stages) {
            const FactorChoice choice =
                searchBestFactors(stage.conv, 16);
            EXPECT_TRUE(feasible(choice.factors, stage.conv, 16,
                                 stage.conv.outSize))
                << net.name << " " << stage.conv.name;
        }
    }
}

TEST(FactorSearchTest, BeatsOrMatchesExhaustiveEnumeration)
{
    // The separable search must find the global optimum.
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const FactorChoice best = searchBestFactors(spec, 8, 10);
    double brute_best = 0.0;
    for (const UnrollFactors &t : enumerateFeasible(spec, 8, 10)) {
        brute_best =
            std::max(brute_best, utilizationTotal(t, spec, 8));
    }
    EXPECT_NEAR(best.utilization(), brute_best, 1e-12);
}

TEST(FactorSearchTest, MatchesPaperTable4Utilization)
{
    // Our chosen factors must achieve at least the utilization of the
    // paper's published Table 4 factors (ties are equally good).
    struct Row
    {
        ConvLayerSpec spec;
        UnrollFactors paper;
    };
    const std::vector<Row> rows = {
        {ConvLayerSpec::make("PV-C1", 1, 8, 45, 6),
         {8, 1, 1, 2, 2, 6}},
        {ConvLayerSpec::make("PV-C3", 8, 12, 20, 3),
         {3, 8, 1, 5, 1, 2}},
        {ConvLayerSpec::make("FR-C1", 1, 4, 28, 5),
         {4, 1, 1, 4, 3, 15 > 5 ? 5 : 15}}, // Tj clamped to K
        {ConvLayerSpec::make("FR-C3", 4, 16, 10, 4),
         {16, 4, 1, 1, 1, 4}},
        {ConvLayerSpec::make("LeNet-C1", 1, 6, 28, 5),
         {3, 1, 1, 5, 3, 5}},
        {ConvLayerSpec::make("LeNet-C3", 6, 16, 10, 5),
         {16, 3, 1, 1, 1, 5}},
        {ConvLayerSpec::make("HG-C1", 1, 6, 24, 5),
         {3, 1, 1, 5, 3, 5}},
        {ConvLayerSpec::make("HG-C3", 6, 12, 8, 4),
         {4, 2, 1, 4, 2, 4}},
    };
    for (const Row &row : rows) {
        const FactorChoice ours = searchBestFactors(row.spec, 16);
        if (feasible(row.paper, row.spec, 16, row.spec.outSize)) {
            EXPECT_GE(ours.utilization() + 1e-9,
                      utilizationTotal(row.paper, row.spec, 16))
                << row.spec.name;
        }
    }
}

TEST(FactorSearchTest, RespectsTrTcBound)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const FactorChoice choice = searchBestFactors(spec, 16, 4);
    EXPECT_LE(choice.factors.tr, 4);
    EXPECT_LE(choice.factors.tc, 4);
}

TEST(FactorSearchTest, SmallArray)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const FactorChoice choice = searchBestFactors(spec, 1);
    EXPECT_EQ(choice.factors, (UnrollFactors{1, 1, 1, 1, 1, 1}));
}

TEST(FactorSearchTest, UtilizationComponentsConsistent)
{
    const auto spec = ConvLayerSpec::make("C3", 8, 12, 20, 3);
    const FactorChoice choice = searchBestFactors(spec, 16);
    EXPECT_DOUBLE_EQ(choice.utilizationRows,
                     utilizationRows(choice.factors, spec, 16));
    EXPECT_DOUBLE_EQ(choice.utilizationCols,
                     utilizationCols(choice.factors, spec, 16));
}

TEST(FactorSearchTest, EnumerationAllFeasible)
{
    const auto spec = ConvLayerSpec::make("X", 3, 4, 6, 3);
    const auto all = enumerateFeasible(spec, 4, 6);
    EXPECT_FALSE(all.empty());
    for (const UnrollFactors &t : all)
        EXPECT_TRUE(feasible(t, spec, 4, 6));
}

// ------------------------------------------------------------ dram planner

TEST(DramPlannerTest, EverythingResidentReadsOnce)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const DramPlan plan = planDramTraffic(spec, 16 * 1024, 16 * 1024);
    EXPECT_TRUE(plan.inputsResident);
    EXPECT_TRUE(plan.kernelsResident);
    EXPECT_EQ(plan.kernelGroups, 1);
    EXPECT_EQ(plan.traffic.reads,
              spec.inputWords() + spec.kernelWords());
    EXPECT_EQ(plan.traffic.writes, spec.outputWords());
}

TEST(DramPlannerTest, OversizedKernelsSplitIntoGroups)
{
    // AlexNet C5: 256x192@3x3 kernels = 442k words >> 16k-word buffer.
    const auto spec = ConvLayerSpec::make("C5", 256, 192, 13, 3);
    const DramPlan plan = planDramTraffic(spec, 16 * 1024, 16 * 1024);
    EXPECT_FALSE(plan.kernelsResident);
    EXPECT_GT(plan.kernelGroups * plan.inputStripes, 1);
    EXPECT_GT(plan.traffic.reads,
              spec.inputWords() + spec.kernelWords());
}

TEST(DramPlannerTest, ChoosesCheaperLoopOrder)
{
    const auto spec = ConvLayerSpec::make("C5", 256, 192, 13, 3);
    const std::size_t buf = 16 * 1024;
    const DramPlan plan = planDramTraffic(spec, buf, buf);
    const long long groups =
        ceilDiv(static_cast<long long>(spec.kernelWords()),
                static_cast<long long>(buf));
    const long long stripes =
        ceilDiv(static_cast<long long>(spec.inputWords()),
                static_cast<long long>(buf));
    const WordCount option_a =
        spec.kernelWords() + spec.inputWords() * groups;
    const WordCount option_b =
        spec.inputWords() + spec.kernelWords() * stripes;
    EXPECT_EQ(plan.traffic.reads, std::min(option_a, option_b));
}

TEST(DramPlannerTest, SplitReadFieldsSum)
{
    const auto spec = ConvLayerSpec::make("C3", 48, 128, 27, 5);
    const DramPlan plan = planDramTraffic(spec, 16 * 1024, 16 * 1024);
    EXPECT_EQ(plan.traffic.reads,
              plan.inputReadWords + plan.kernelReadWords);
}

TEST(DramPlannerTest, PooledOutputReducesWrites)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const DramPlan plan =
        planDramTraffic(spec, 16 * 1024, 16 * 1024, 6 * 14 * 14);
    EXPECT_EQ(plan.traffic.writes, 6u * 14 * 14);
}

// ------------------------------------------------------------------ result

TEST(LayerResultTest, UtilizationExcludesFill)
{
    LayerResult r;
    r.cycles = 120;
    r.fillCycles = 20;
    r.peCount = 10;
    r.activeMacCycles = 500;
    EXPECT_DOUBLE_EQ(r.utilization(), 500.0 / (100.0 * 10));
}

TEST(LayerResultTest, GopsUsesFullCycleCount)
{
    LayerResult r;
    r.cycles = 1000;
    r.macs = 100000;
    // 2 ops per MAC at 1 GHz: 200000 ops / 1000 ns = 200 GOPs.
    EXPECT_DOUBLE_EQ(r.gops(1.0), 200.0);
    EXPECT_DOUBLE_EQ(r.gops(0.5), 100.0);
}

TEST(LayerResultTest, EmptyResultSafe)
{
    LayerResult r;
    EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(r.gops(), 0.0);
}

TEST(LayerResultTest, AccumulationSumsEverything)
{
    LayerResult a;
    a.layerName = "C1";
    a.cycles = 10;
    a.fillCycles = 2;
    a.macs = 100;
    a.activeMacCycles = 100;
    a.peCount = 4;
    a.traffic.neuronIn = 7;
    a.dram.reads = 3;
    a.localStoreReads = 200;
    LayerResult b = a;
    b.layerName = "C3";
    a += b;
    EXPECT_EQ(a.layerName, "C1+C3");
    EXPECT_EQ(a.cycles, 20u);
    EXPECT_EQ(a.fillCycles, 4u);
    EXPECT_EQ(a.macs, 200u);
    EXPECT_EQ(a.traffic.neuronIn, 14u);
    EXPECT_EQ(a.dram.reads, 6u);
    EXPECT_EQ(a.localStoreReads, 400u);
    EXPECT_EQ(a.peCount, 4u);
}

TEST(NetworkResultTest, TotalAggregates)
{
    NetworkResult net;
    net.networkName = "X";
    LayerResult l1;
    l1.cycles = 5;
    l1.macs = 10;
    l1.peCount = 2;
    LayerResult l2 = l1;
    net.layers = {l1, l2};
    const LayerResult total = net.total();
    EXPECT_EQ(total.cycles, 10u);
    EXPECT_EQ(total.macs, 20u);
    EXPECT_EQ(total.layerName, "X");
}

} // namespace
} // namespace flexsim
