/**
 * @file
 * Tests for the debug-trace infrastructure and its integration points.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"
#include "compiler/compiler.hh"
#include "flexflow/conv_unit.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::setStream(&captured_);
    }

    void
    TearDown() override
    {
        trace::disable("all");
        trace::disable("TestFlag");
        trace::disable("ConvUnit");
        trace::disable("Compiler");
        trace::setStream(nullptr);
    }

    std::ostringstream captured_;
};

TEST_F(TraceTest, DisabledFlagEmitsNothing)
{
    trace::printf("TestFlag", "invisible ", 42);
    EXPECT_TRUE(captured_.str().empty());
}

TEST_F(TraceTest, EnabledFlagEmitsPrefixedLine)
{
    trace::enable("TestFlag");
    trace::printf("TestFlag", "value ", 42);
    EXPECT_EQ(captured_.str(), "TestFlag: value 42\n");
}

TEST_F(TraceTest, AllEnablesEverything)
{
    trace::enable("all");
    trace::printf("AnyFlag", "x");
    EXPECT_NE(captured_.str().find("AnyFlag: x"), std::string::npos);
}

TEST_F(TraceTest, DisableStopsEmission)
{
    trace::enable("TestFlag");
    trace::printf("TestFlag", "one");
    trace::disable("TestFlag");
    trace::printf("TestFlag", "two");
    EXPECT_NE(captured_.str().find("one"), std::string::npos);
    EXPECT_EQ(captured_.str().find("two"), std::string::npos);
}

TEST_F(TraceTest, SpecParsing)
{
    trace::enableFromSpec("Alpha, Beta ,Gamma");
    EXPECT_TRUE(trace::enabled("Alpha"));
    EXPECT_TRUE(trace::enabled("Beta"));
    EXPECT_TRUE(trace::enabled("Gamma"));
    trace::disable("Alpha");
    trace::disable("Beta");
    trace::disable("Gamma");
}

TEST_F(TraceTest, FlagsRegisteredByEmitters)
{
    trace::printf("RegisteredFlag", "x");
    const auto flags = trace::knownFlags();
    EXPECT_NE(std::find(flags.begin(), flags.end(), "RegisteredFlag"),
              flags.end());
}

TEST_F(TraceTest, ConvUnitEmitsScheduleLine)
{
    trace::enable("ConvUnit");
    const auto spec = ConvLayerSpec::make("X", 2, 2, 4, 3);
    Rng rng(81);
    const Tensor3<> in = makeRandomInput(rng, spec);
    const Tensor4<> w = makeRandomKernels(rng, spec);
    FlexFlowConvUnit unit{FlexFlowConfig{}};
    unit.runLayer(spec, {2, 2, 1, 2, 1, 3}, in, w);
    EXPECT_NE(captured_.str().find("ConvUnit: layer X"),
              std::string::npos);
    EXPECT_NE(captured_.str().find("band retention"),
              std::string::npos);
}

TEST_F(TraceTest, CompilerEmitsFactorDecisions)
{
    trace::enable("Compiler");
    FlexFlowCompiler compiler;
    compiler.compile(workloads::lenet5());
    EXPECT_NE(captured_.str().find("Compiler: LeNet-5 C1"),
              std::string::npos);
    EXPECT_NE(captured_.str().find("(coupled)"), std::string::npos);
}

} // namespace
} // namespace flexsim
