/**
 * @file
 * Tests for the Systolic (SFSNMS) baseline: analytic model properties,
 * cycle-simulator bit-exactness vs the golden convolution, and exact
 * sim-vs-model agreement across a parameterized layer sweep.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "systolic/systolic_array.hh"
#include "systolic/systolic_model.hh"

namespace flexsim {
namespace {

// ------------------------------------------------------------------- model

TEST(SystolicModelTest, ConfigForScaleMatchesPaper)
{
    const SystolicConfig cfg = SystolicConfig::forScale(16, 6);
    EXPECT_EQ(cfg.numArrays, 7u);
    EXPECT_EQ(cfg.peCount(), 252u);
    const SystolicConfig alex = SystolicConfig::forScale(16, 11);
    EXPECT_EQ(alex.numArrays, 2u);
}

TEST(SystolicModelTest, PipelineDepth)
{
    SystolicConfig cfg;
    cfg.arrayEdge = 3;
    const SystolicModel model(cfg);
    // (Ka-1)*W + Ka
    EXPECT_EQ(model.pipelineDepth(12), 2u * 12 + 3);
}

TEST(SystolicModelTest, SubtilePasses)
{
    SystolicConfig cfg;
    cfg.arrayEdge = 6;
    const SystolicModel model(cfg);
    EXPECT_EQ(model.subtilePasses(5), 1);
    EXPECT_EQ(model.subtilePasses(6), 1);
    EXPECT_EQ(model.subtilePasses(7), 4);
    EXPECT_EQ(model.subtilePasses(13), 9);
}

TEST(SystolicModelTest, SpatialUtilizationIsKernelRatio)
{
    // For a single-map layer that fills the stream, utilization ~
    // (K/Ka)^2 scaled by output/input area (Section 3.1 analysis).
    SystolicConfig cfg;
    cfg.arrayEdge = 6;
    cfg.numArrays = 1;
    const SystolicModel model(cfg);
    const auto spec = ConvLayerSpec::make("X", 1, 1, 27, 6);
    const LayerResult r = model.runLayer(spec);
    const double expected =
        (27.0 * 27 * 36) / (32.0 * 32 * 36); // S^2 K^2 / (H^2 Ka^2)
    EXPECT_NEAR(r.utilization(), expected, 1e-12);
}

TEST(SystolicModelTest, SmallKernelWastesPes)
{
    SystolicConfig cfg;
    cfg.arrayEdge = 6;
    cfg.numArrays = 1;
    const SystolicModel model(cfg);
    const auto k3 = ConvLayerSpec::make("K3", 1, 1, 27, 3);
    // 3x3 kernel on a 6x6 array: at most 25% spatial utilization.
    EXPECT_LT(model.runLayer(k3).utilization(), 0.25 + 1e-9);
}

TEST(SystolicModelTest, FillCyclesHurtPerformanceNotUtilization)
{
    const SystolicModel model;
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const LayerResult r = model.runLayer(spec);
    EXPECT_GT(r.fillCycles, 0u);
    // GOPs (which includes fill) is strictly below what the spatial
    // utilization alone would suggest.
    const double gops_no_fill =
        2.0 * r.macs / static_cast<double>(r.cycles - r.fillCycles);
    EXPECT_LT(r.gops(1.0), gops_no_fill);
}

TEST(SystolicModelTest, PsumTrafficScalesWithInputMaps)
{
    const SystolicModel model;
    const auto n1 = ConvLayerSpec::make("N1", 1, 4, 10, 5);
    const auto n4 = ConvLayerSpec::make("N4", 4, 4, 10, 5);
    EXPECT_EQ(model.runLayer(n1).traffic.psumRead, 0u);
    EXPECT_EQ(model.runLayer(n4).traffic.psumRead,
              3u * 4 * 10 * 10);
}

TEST(SystolicModelTest, KernelTrafficIsOneLoadPerSynapse)
{
    const SystolicModel model;
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    EXPECT_EQ(model.runLayer(spec).traffic.kernelIn,
              spec.kernelWords());
}

// --------------------------------------------------------------- cycle sim

struct SystolicCase
{
    const char *name;
    int in_maps, out_maps, out_size, kernel, stride;
    int array_edge;
    unsigned arrays;
};

class SystolicSweep : public ::testing::TestWithParam<SystolicCase>
{
};

TEST_P(SystolicSweep, SimMatchesGoldenAndModel)
{
    const SystolicCase &p = GetParam();
    const auto spec = ConvLayerSpec::make(p.name, p.in_maps, p.out_maps,
                                          p.out_size, p.kernel,
                                          p.stride);
    SystolicConfig cfg;
    cfg.arrayEdge = p.array_edge;
    cfg.numArrays = p.arrays;

    Rng rng(0x5e5e + p.out_size);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    SystolicArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);

    // Bit-exact functional equivalence.
    EXPECT_EQ(out, goldenConv(spec, input, kernels));

    // Exact agreement with the analytic model.
    const LayerResult model_result = SystolicModel(cfg).runLayer(spec);
    EXPECT_EQ(sim_result.cycles, model_result.cycles);
    EXPECT_EQ(sim_result.fillCycles, model_result.fillCycles);
    EXPECT_EQ(sim_result.activeMacCycles,
              model_result.activeMacCycles);
    EXPECT_EQ(sim_result.traffic, model_result.traffic);
    EXPECT_EQ(sim_result.localStoreReads,
              model_result.localStoreReads);
    EXPECT_EQ(sim_result.localStoreWrites,
              model_result.localStoreWrites);
    EXPECT_EQ(sim_result.dram, model_result.dram);
    EXPECT_EQ(sim_result.macs, spec.macs());
}

INSTANTIATE_TEST_SUITE_P(
    LayerGrid, SystolicSweep,
    ::testing::Values(
        SystolicCase{"tiny", 1, 1, 3, 3, 1, 3, 1},
        SystolicCase{"lenet_c1", 1, 6, 28, 5, 1, 6, 7},
        SystolicCase{"lenet_c3", 6, 16, 10, 5, 1, 6, 7},
        SystolicCase{"pv_c3", 8, 12, 20, 3, 1, 6, 7},
        SystolicCase{"hg_c3", 6, 12, 8, 4, 1, 6, 7},
        SystolicCase{"kernel_gt_array", 2, 3, 8, 7, 1, 3, 2},
        SystolicCase{"kernel_eq_array", 1, 2, 6, 4, 1, 4, 1},
        SystolicCase{"strided", 3, 4, 6, 5, 2, 5, 3},
        SystolicCase{"strided_big_kernel", 1, 2, 5, 7, 3, 4, 2},
        SystolicCase{"many_arrays", 2, 9, 7, 3, 1, 3, 4},
        SystolicCase{"single_output", 2, 1, 4, 3, 1, 3, 1},
        SystolicCase{"wide", 1, 2, 30, 3, 1, 3, 2}),
    [](const ::testing::TestParamInfo<SystolicCase> &param_info) {
        return param_info.param.name;
    });

TEST(SystolicSimTest, RejectsTinyInputMaps)
{
    logging_detail::setThrowOnError(true);
    SystolicConfig cfg;
    cfg.arrayEdge = 6;
    SystolicArraySim sim(cfg);
    // 3x3 input is smaller than the 6x6 array edge.
    const auto spec = ConvLayerSpec::make("tiny", 1, 1, 1, 3);
    Rng rng(1);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    EXPECT_THROW(sim.runLayer(spec, input, kernels),
                 std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(SystolicSimTest, MismatchedTensorsCaught)
{
    logging_detail::setThrowOnError(true);
    SystolicArraySim sim;
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    Rng rng(2);
    const Tensor3<> wrong = makeRandomInput(rng, 2, spec.inSize);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    EXPECT_THROW(sim.runLayer(spec, wrong, kernels),
                 std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(SystolicSimTest, DeterministicAcrossRuns)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 4, 12, 5);
    Rng rng(3);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    SystolicConfig cfg;
    cfg.arrayEdge = 5;
    cfg.numArrays = 2;
    SystolicArraySim sim(cfg);
    LayerResult r1, r2;
    const Tensor3<> o1 = sim.runLayer(spec, input, kernels, &r1);
    const Tensor3<> o2 = sim.runLayer(spec, input, kernels, &r2);
    EXPECT_EQ(o1, o2);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.traffic, r2.traffic);
}

} // namespace
} // namespace flexsim
