/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace flexsim {
namespace {

using statistics::Formula;
using statistics::Scalar;
using statistics::StatGroup;

TEST(StatsTest, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "count", "a counter");
    s += 2.0;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
}

TEST(StatsTest, ScalarAssignmentOverwrites)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "gauge", "");
    s = 5.0;
    s = 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 1.5);
}

TEST(StatsTest, ScalarReset)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "count", "");
    s += 7.0;
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, FormulaEvaluatesLazily)
{
    StatGroup root("root");
    Scalar macs, cycles;
    macs.init(&root, "macs", "");
    cycles.init(&root, "cycles", "");
    Formula util;
    util.init(&root, "utilization", "", [&] {
        return cycles.value() > 0 ? macs.value() / cycles.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(util.value(), 0.0);
    macs += 80.0;
    cycles += 100.0;
    EXPECT_DOUBLE_EQ(util.value(), 0.8);
}

TEST(StatsTest, DumpContainsDottedNamesAndDescriptions)
{
    StatGroup root("engine");
    StatGroup child(&root, "pe0");
    Scalar s;
    s.init(&child, "macs", "useful MACs");
    s += 42.0;
    std::ostringstream oss;
    root.dump(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("engine.pe0.macs"), std::string::npos);
    EXPECT_NE(text.find("useful MACs"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(StatsTest, PathNestsThroughParents)
{
    StatGroup root("a");
    StatGroup mid(&root, "b");
    StatGroup leaf(&mid, "c");
    EXPECT_EQ(leaf.path(), "a.b.c");
}

TEST(StatsTest, ResetAllRecursive)
{
    StatGroup root("root");
    StatGroup child(&root, "sub");
    Scalar s1, s2;
    s1.init(&root, "x", "");
    s2.init(&child, "y", "");
    s1 += 3;
    s2 += 4;
    root.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_DOUBLE_EQ(s2.value(), 0.0);
}

TEST(StatsTest, FindScalarByDottedPath)
{
    StatGroup root("root");
    StatGroup child(&root, "sub");
    Scalar s;
    s.init(&child, "hits", "");
    s += 9;
    const Scalar *found = root.findScalar("sub.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 9.0);
    EXPECT_EQ(root.findScalar("sub.misses"), nullptr);
    EXPECT_EQ(root.findScalar("nothere.hits"), nullptr);
}

TEST(StatsTest, FindFormulaByDottedPath)
{
    StatGroup root("root");
    Formula f;
    f.init(&root, "two", "", [] { return 2.0; });
    const Formula *found = root.findFormula("two");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 2.0);
    EXPECT_EQ(root.findFormula("three"), nullptr);
}

TEST(StatsTest, TopLevelScalarLookup)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "direct", "");
    s += 1;
    ASSERT_NE(root.findScalar("direct"), nullptr);
}

} // namespace
} // namespace flexsim
