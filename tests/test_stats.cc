/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace flexsim {
namespace {

using statistics::Formula;
using statistics::Scalar;
using statistics::StatGroup;

TEST(StatsTest, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "count", "a counter");
    s += 2.0;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
}

TEST(StatsTest, ScalarAssignmentOverwrites)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "gauge", "");
    s = 5.0;
    s = 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 1.5);
}

TEST(StatsTest, ScalarReset)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "count", "");
    s += 7.0;
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, FormulaEvaluatesLazily)
{
    StatGroup root("root");
    Scalar macs, cycles;
    macs.init(&root, "macs", "");
    cycles.init(&root, "cycles", "");
    Formula util;
    util.init(&root, "utilization", "", [&] {
        return cycles.value() > 0 ? macs.value() / cycles.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(util.value(), 0.0);
    macs += 80.0;
    cycles += 100.0;
    EXPECT_DOUBLE_EQ(util.value(), 0.8);
}

TEST(StatsTest, DumpContainsDottedNamesAndDescriptions)
{
    StatGroup root("engine");
    StatGroup child(&root, "pe0");
    Scalar s;
    s.init(&child, "macs", "useful MACs");
    s += 42.0;
    std::ostringstream oss;
    root.dump(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("engine.pe0.macs"), std::string::npos);
    EXPECT_NE(text.find("useful MACs"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(StatsTest, PathNestsThroughParents)
{
    StatGroup root("a");
    StatGroup mid(&root, "b");
    StatGroup leaf(&mid, "c");
    EXPECT_EQ(leaf.path(), "a.b.c");
}

TEST(StatsTest, ResetAllRecursive)
{
    StatGroup root("root");
    StatGroup child(&root, "sub");
    Scalar s1, s2;
    s1.init(&root, "x", "");
    s2.init(&child, "y", "");
    s1 += 3;
    s2 += 4;
    root.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_DOUBLE_EQ(s2.value(), 0.0);
}

TEST(StatsTest, FindScalarByDottedPath)
{
    StatGroup root("root");
    StatGroup child(&root, "sub");
    Scalar s;
    s.init(&child, "hits", "");
    s += 9;
    const Scalar *found = root.findScalar("sub.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 9.0);
    EXPECT_EQ(root.findScalar("sub.misses"), nullptr);
    EXPECT_EQ(root.findScalar("nothere.hits"), nullptr);
}

TEST(StatsTest, FindFormulaByDottedPath)
{
    StatGroup root("root");
    Formula f;
    f.init(&root, "two", "", [] { return 2.0; });
    const Formula *found = root.findFormula("two");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 2.0);
    EXPECT_EQ(root.findFormula("three"), nullptr);
}

TEST(StatsTest, TopLevelScalarLookup)
{
    StatGroup root("root");
    Scalar s;
    s.init(&root, "direct", "");
    s += 1;
    ASSERT_NE(root.findScalar("direct"), nullptr);
}

TEST(DistributionTest, StreamingMomentsAreExact)
{
    StatGroup root("root");
    statistics::Distribution d;
    d.init(&root, "lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(4.0);
    d.sample(1.0);
    d.sample(7.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.0);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(StatsTest, SafeRatioGuardsZeroDenominator)
{
    EXPECT_DOUBLE_EQ(statistics::safeRatio(3.0, 4.0), 0.75);
    EXPECT_DOUBLE_EQ(statistics::safeRatio(0.0, 4.0), 0.0);
    // Empty denominators render as 0.0, never NaN or inf.
    EXPECT_DOUBLE_EQ(statistics::safeRatio(3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(statistics::safeRatio(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(statistics::safeRatio(3.0, -1.0), 0.0);
}

TEST(DistributionTest, DegeneratePercentilesAreDefined)
{
    StatGroup root("root");
    statistics::Distribution d;
    d.init(&root, "lat", "");
    // No samples: every percentile is 0.0, never NaN.
    EXPECT_DOUBLE_EQ(d.percentile(0.50), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.95), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 0.0);
    // One sample: every percentile is that sample.
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.50), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.95), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 42.0);
}

TEST(DistributionTest, PercentilesFromFullReservoir)
{
    StatGroup root("root");
    statistics::Distribution d;
    d.init(&root, "lat", "");
    // 1..100 fits the reservoir, so percentiles are exact order
    // statistics (with linear interpolation).
    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i));
    EXPECT_NEAR(d.percentile(0.50), 50.5, 0.01);
    EXPECT_NEAR(d.percentile(0.95), 95.05, 0.01);
    EXPECT_NEAR(d.percentile(0.99), 99.01, 0.01);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(DistributionTest, ReservoirSamplingIsDeterministic)
{
    auto render = [] {
        StatGroup root("root");
        statistics::Distribution d;
        d.init(&root, "lat", "", 64);
        for (int i = 0; i < 10'000; ++i)
            d.sample(static_cast<double>((i * 37) % 1000));
        std::ostringstream os;
        root.dump(os);
        return os.str();
    };
    EXPECT_EQ(render(), render());
}

TEST(DistributionTest, OverflowedReservoirStaysRepresentative)
{
    StatGroup root("root");
    statistics::Distribution d;
    d.init(&root, "lat", "", 256);
    for (int i = 0; i < 100'000; ++i)
        d.sample(static_cast<double>(i % 1000));
    // Uniform over [0, 1000): the median estimate must land well
    // inside the middle of the range.
    EXPECT_NEAR(d.percentile(0.50), 500.0, 150.0);
    EXPECT_EQ(d.count(), 100'000u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 999.0);
}

TEST(DistributionTest, DumpRendersPercentileRows)
{
    StatGroup root("root");
    statistics::Distribution d;
    d.init(&root, "lat", "latency (ms)");
    d.sample(2.0);
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("root.lat.count"), std::string::npos);
    EXPECT_NE(text.find("root.lat.p50"), std::string::npos);
    EXPECT_NE(text.find("root.lat.p95"), std::string::npos);
    EXPECT_NE(text.find("root.lat.p99"), std::string::npos);
    EXPECT_NE(text.find("# latency (ms)"), std::string::npos);
}

TEST(DistributionTest, ResetClearsSamplesAndLookupWorks)
{
    StatGroup root("root");
    StatGroup child(&root, "sub");
    statistics::Distribution d;
    d.init(&child, "lat", "");
    d.sample(3.0);
    ASSERT_NE(root.findDistribution("sub.lat"), nullptr);
    EXPECT_EQ(root.findDistribution("sub.miss"), nullptr);
    root.resetAll();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
}

} // namespace
} // namespace flexsim
