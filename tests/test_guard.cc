/**
 * @file
 * Guarded-execution suite (ctest -L guard): the guard::Error
 * taxonomy and Expected plumbing, the per-layer execution watchdog
 * across all four cycle simulators and the accelerator top, thread-
 * pool cooperative cancellation, poison-request quarantine in the
 * serving runtime, and the shared tools/cli.hh argument parser.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "arch/factor_search.hh"
#include "arch/result.hh"
#include "common/random.hh"
#include "flexflow/accelerator.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "flexflow/isa.hh"
#include "guard/error.hh"
#include "guard/watchdog.hh"
#include "mapping2d/mapping2d_array.hh"
#include "nn/fixed_point.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"
#include "serve/runtime.hh"
#include "serve/service_model.hh"
#include "serve/traffic.hh"
#include "sim/thread_pool.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

#include "../tools/cli.hh"

namespace flexsim {
namespace {

using guard::Category;
using guard::Error;
using guard::Expected;
using guard::GuardException;
using guard::Watchdog;

// ----------------------------------------------------------------
// Error taxonomy and Expected plumbing
// ----------------------------------------------------------------

TEST(GuardErrorTest, MakeErrorStreamsPartsAndRenders)
{
    const Error err = guard::makeError(Category::OutOfRange,
                                       "test.site", "index ", 42,
                                       " past end ", 7);
    EXPECT_EQ(err.category, Category::OutOfRange);
    EXPECT_EQ(err.site, "test.site");
    EXPECT_EQ(err.message, "index 42 past end 7");
    const std::string rendered = err.str();
    EXPECT_NE(rendered.find("test.site"), std::string::npos);
    EXPECT_NE(rendered.find("index 42 past end 7"),
              std::string::npos);
    EXPECT_NE(rendered.find('['), std::string::npos);
}

TEST(GuardErrorTest, ExpectedCarriesValueOrError)
{
    Expected<int> good(7);
    ASSERT_TRUE(good);
    EXPECT_EQ(good.value(), 7);

    Expected<int> bad(guard::makeError(Category::Parse, "s", "m"));
    ASSERT_FALSE(bad);
    EXPECT_EQ(bad.error().category, Category::Parse);

    Expected<void> ok = guard::ok();
    EXPECT_TRUE(ok);
    Expected<void> failed(guard::makeError(Category::Io, "s", "m"));
    EXPECT_FALSE(failed);
}

TEST(GuardErrorTest, InvokeConvertsGuardExceptionOnly)
{
    const auto caught = guard::invoke([]() -> int {
        throw GuardException(
            guard::makeError(Category::Timeout, "s", "slow"));
    });
    ASSERT_FALSE(caught);
    EXPECT_EQ(caught.error().category, Category::Timeout);

    const auto passed = guard::invoke([] { return 3; });
    ASSERT_TRUE(passed);
    EXPECT_EQ(passed.value(), 3);

    const auto void_ok = guard::invoke([] {});
    EXPECT_TRUE(void_ok);

    // Non-guard exceptions keep propagating: they are internal bugs,
    // not recoverable input errors.
    EXPECT_THROW(
        (void)guard::invoke([] { throw std::logic_error("bug"); }),
        std::logic_error);
}

// ----------------------------------------------------------------
// Watchdog budgets
// ----------------------------------------------------------------

TEST(WatchdogTest, CycleBudgetTripsOnceChargesCross)
{
    Watchdog wd;
    wd.arm({0, 100});
    EXPECT_FALSE(wd.expired());
    wd.chargeCycles(60);
    EXPECT_FALSE(wd.expired());
    wd.chargeCycles(60);
    EXPECT_TRUE(wd.expired());
    EXPECT_EQ(wd.trip(), Watchdog::Trip::Cycles);
    const Error err = wd.tripError("unit.test");
    EXPECT_EQ(err.category, Category::Timeout);
    EXPECT_EQ(err.site, "unit.test");
}

TEST(WatchdogTest, PredictedCyclesFastFails)
{
    Watchdog wd;
    wd.arm({0, 1000});
    EXPECT_TRUE(wd.checkPredictedCycles(1000, "unit.test"));
    const auto over = wd.checkPredictedCycles(1001, "unit.test");
    ASSERT_FALSE(over);
    EXPECT_EQ(over.error().category, Category::Timeout);

    // Unarmed and unlimited budgets never fast-fail.
    wd.disarm();
    EXPECT_TRUE(wd.checkPredictedCycles(1u << 30, "unit.test"));
    Watchdog unlimited;
    unlimited.arm({});
    EXPECT_TRUE(
        unlimited.checkPredictedCycles(1u << 30, "unit.test"));
}

TEST(WatchdogTest, WallClockBudgetTrips)
{
    Watchdog wd;
    wd.arm({1, 0}); // one host nanosecond
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(wd.expired());
    EXPECT_EQ(wd.trip(), Watchdog::Trip::WallClock);
}

TEST(WatchdogTest, CancelSurvivesRearm)
{
    Watchdog wd;
    wd.arm({0, 1000});
    EXPECT_FALSE(wd.expired());
    wd.cancel();
    EXPECT_TRUE(wd.expired());
    EXPECT_EQ(wd.trip(), Watchdog::Trip::Cancelled);
    // A drained simulator stays drained across the next layer.
    wd.arm({0, 1000});
    EXPECT_TRUE(wd.expired());
    EXPECT_EQ(wd.trip(), Watchdog::Trip::Cancelled);
}

TEST(WatchdogTest, DisarmedWatchdogNeverExpires)
{
    Watchdog wd;
    EXPECT_FALSE(wd.expired());
    wd.chargeCycles(1u << 30);
    EXPECT_FALSE(wd.expired());
    wd.arm({0, 10});
    wd.disarm();
    wd.chargeCycles(1u << 30);
    EXPECT_FALSE(wd.expired());
}

// ----------------------------------------------------------------
// Thread-pool cooperative cancellation
// ----------------------------------------------------------------

TEST(ThreadPoolCancelTest, CancelledPoolStopsClaimingTiles)
{
    std::atomic<std::int64_t> executed{0};
    std::atomic<bool> stop{false};
    sim::ThreadPool::shared().parallelFor(
        10'000, 4,
        [&](int, std::int64_t) {
            if (executed.fetch_add(1) >= 50)
                stop.store(true);
        },
        [&] { return stop.load(); });
    // Workers poll the cancel hook before every tile claim, so only
    // a small overshoot past the trip point is possible.
    EXPECT_LT(executed.load(), 10'000);
    EXPECT_GE(executed.load(), 50);
}

TEST(ThreadPoolCancelTest, EmptyCancelRunsEverything)
{
    std::atomic<std::int64_t> executed{0};
    sim::ThreadPool::shared().parallelFor(
        1000, 4, [&](int, std::int64_t) { ++executed; },
        sim::ThreadPool::CancelFn{});
    EXPECT_EQ(executed.load(), 1000);
}

// ----------------------------------------------------------------
// Watchdog wired through the cycle simulators
// ----------------------------------------------------------------

ConvLayerSpec
guardLayer()
{
    return ConvLayerSpec::make("wd", 3, 4, 8, 3, 1);
}

template <typename RunFn>
void
expectTimeout(RunFn &&run, const std::string &site)
{
    try {
        run();
        FAIL() << "expected a watchdog GuardException from " << site;
    } catch (const GuardException &e) {
        EXPECT_EQ(e.error().category, Category::Timeout);
        EXPECT_EQ(e.error().site, site);
    }
}

TEST(SimWatchdogTest, SystolicTripsOnCycleBudget)
{
    const ConvLayerSpec spec = guardLayer();
    Rng rng(11);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    SystolicConfig cfg;
    cfg.arrayEdge = 4;
    SystolicArraySim sim(cfg);
    Watchdog wd;
    wd.arm({0, 1});
    sim.setWatchdog(&wd);
    expectTimeout([&] { sim.runLayer(spec, input, kernels); },
                  "sim.systolic");
}

TEST(SimWatchdogTest, TilingTripsOnCycleBudget)
{
    const ConvLayerSpec spec = guardLayer();
    Rng rng(12);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    TilingArraySim sim;
    Watchdog wd;
    wd.arm({0, 1});
    sim.setWatchdog(&wd);
    expectTimeout([&] { sim.runLayer(spec, input, kernels); },
                  "sim.tiling");
}

TEST(SimWatchdogTest, Mapping2DTripsOnCycleBudget)
{
    const ConvLayerSpec spec = guardLayer();
    Rng rng(13);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    Mapping2DArraySim sim;
    Watchdog wd;
    wd.arm({0, 1});
    sim.setWatchdog(&wd);
    expectTimeout([&] { sim.runLayer(spec, input, kernels); },
                  "sim.mapping2d");
}

TEST(SimWatchdogTest, FlexFlowConvUnitTripsOnCycleBudget)
{
    const ConvLayerSpec spec = guardLayer();
    Rng rng(14);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConfig cfg;
    cfg.d = 8;
    const FactorChoice choice = searchBestFactors(spec, cfg.d);
    FlexFlowConvUnit unit(cfg);
    Watchdog wd;
    wd.arm({0, 1});
    unit.setWatchdog(&wd);
    expectTimeout(
        [&] {
            unit.runLayer(spec, choice.factors, input, kernels);
        },
        "flexflow.conv");
}

TEST(SimWatchdogTest, ResultsIdenticalWithGenerousBudget)
{
    // An armed watchdog that never trips must not perturb the
    // simulation: bit-identical output against an unguarded run.
    const ConvLayerSpec spec = guardLayer();
    Rng rng(15);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    SystolicConfig cfg;
    cfg.arrayEdge = 4;

    SystolicArraySim plain(cfg);
    LayerResult plain_result;
    const Tensor3<> expected =
        plain.runLayer(spec, input, kernels, &plain_result);

    SystolicArraySim guarded(cfg);
    Watchdog wd;
    wd.arm({0, std::uint64_t{1} << 40});
    guarded.setWatchdog(&wd);
    LayerResult guarded_result;
    EXPECT_EQ(guarded.runLayer(spec, input, kernels, &guarded_result),
              expected);
    EXPECT_EQ(guarded_result.cycles, plain_result.cycles);
    EXPECT_EQ(guarded_result.traffic, plain_result.traffic);
    EXPECT_FALSE(wd.expired());
}

// ----------------------------------------------------------------
// Watchdog through the accelerator top (tryRun)
// ----------------------------------------------------------------

struct AcceleratorFixture
{
    Program program;
    Tensor3<> input;
    std::vector<Tensor4<>> kernels;

    AcceleratorFixture()
    {
        program = assemble("cfg_layer 4 3 8 3 1\n"
                           "cfg_factors 2 2 2 2 1 1\n"
                           "conv\n"
                           "halt\n");
        const ConvLayerSpec spec = guardLayer();
        Rng rng(16);
        input = makeRandomInput(rng, spec);
        kernels.push_back(makeRandomKernels(rng, spec));
    }
};

TEST(AcceleratorWatchdogTest, TryRunFastFailsOnImpossibleBudget)
{
    AcceleratorFixture fx;
    FlexFlowAccelerator accel;
    accel.bindInput(fx.input);
    accel.bindKernels(fx.kernels);
    // One cycle cannot cover the layer's ideal-utilization bound;
    // the predicted-cycles check rejects before simulating.
    accel.setWatchdogBudget({0, 1});
    const auto result = accel.tryRun(fx.program);
    ASSERT_FALSE(result);
    EXPECT_EQ(result.error().category, Category::Timeout);
    EXPECT_EQ(result.error().site, "flexflow.conv");
}

TEST(AcceleratorWatchdogTest, TryRunTripsMidLayer)
{
    AcceleratorFixture fx;
    const ConvLayerSpec spec = guardLayer();
    FlexFlowAccelerator accel;
    accel.bindInput(fx.input);
    accel.bindKernels(fx.kernels);
    // Budget above the ideal bound (macs / PEs) but far below the
    // actual modelled cycle count: passes the fast-fail, then trips
    // cooperatively as tiles charge cycles.
    const std::uint64_t ideal =
        static_cast<std::uint64_t>(spec.macs()) /
        accel.config().peCount();
    accel.setWatchdogBudget({0, ideal + 1});
    const auto result = accel.tryRun(fx.program);
    ASSERT_FALSE(result);
    EXPECT_EQ(result.error().category, Category::Timeout);
}

TEST(AcceleratorWatchdogTest, UnlimitedBudgetRunsNormally)
{
    AcceleratorFixture fx;
    FlexFlowAccelerator guarded;
    guarded.bindInput(fx.input);
    guarded.bindKernels(fx.kernels);
    guarded.setWatchdogBudget({0, std::uint64_t{1} << 40});
    const auto result = guarded.tryRun(fx.program);
    ASSERT_TRUE(result);

    FlexFlowAccelerator plain;
    plain.bindInput(fx.input);
    plain.bindKernels(fx.kernels);
    EXPECT_EQ(result.value(), plain.run(fx.program));

    // Disabling the budget restores the unguarded path.
    guarded.setWatchdogBudget({});
    EXPECT_TRUE(guarded.tryRun(fx.program));
}

// ----------------------------------------------------------------
// Poison-request quarantine and the serve watchdog
// ----------------------------------------------------------------

serve::TrafficConfig
guardTraffic(double rps, serve::TimeNs duration_ns)
{
    serve::TrafficConfig config;
    config.rps = rps;
    config.durationNs = duration_ns;
    config.seed = 21;
    return config;
}

TEST(ServeGuardTest, PoisonTrafficDrawsMarkedRequests)
{
    auto config = guardTraffic(4000.0, 500'000'000);
    config.poisonRate = 0.25;
    const auto requests = generateTraffic(config);
    std::size_t poisoned = 0;
    for (const auto &request : requests)
        if (request.workload == serve::kPoisonWorkload)
            ++poisoned;
    ASSERT_GT(requests.size(), 0u);
    EXPECT_GT(poisoned, 0u);
    const double rate = static_cast<double>(poisoned) /
                        static_cast<double>(requests.size());
    EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(ServeGuardTest, PoisonRequestsAreQuarantinedNotServed)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const serve::ServiceTimeModel service(
        model, {workloads::lenet5()}, 4.0);
    auto traffic = guardTraffic(2000.0, 200'000'000);
    traffic.poisonRate = 0.2;
    const auto requests = generateTraffic(traffic);

    serve::ServeConfig config;
    config.poolSize = 2;
    serve::ServeRuntime runtime(service, config);
    const serve::ServeReport report = runtime.run(requests);

    std::size_t poisoned = 0;
    for (const auto &request : requests)
        if (request.workload == serve::kPoisonWorkload)
            ++poisoned;
    EXPECT_EQ(report.quarantined, poisoned);
    EXPECT_GT(report.quarantined, 0u);
    // The accounting invariant, extended with the quarantine bucket.
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed +
                                  report.quarantined);
    // Healthy requests are unaffected by the poison alongside them.
    EXPECT_EQ(report.completed, report.admitted);
}

TEST(ServeGuardTest, OutOfRangeWorkloadIsQuarantined)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const serve::ServiceTimeModel service(
        model, {workloads::lenet5()}, 4.0);
    std::vector<serve::InferenceRequest> requests;
    serve::InferenceRequest good;
    good.id = 0;
    good.arrivalNs = 0;
    good.workload = 0;
    serve::InferenceRequest beyond = good;
    beyond.id = 1;
    beyond.arrivalNs = 1;
    beyond.workload = 7; // only workload 0 exists
    requests.push_back(good);
    requests.push_back(beyond);

    serve::ServeConfig config;
    config.poolSize = 1;
    serve::ServeRuntime runtime(service, config);
    const serve::ServeReport report = runtime.run(requests);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.quarantined, 1u);
}

TEST(ServeGuardTest, WatchdogKillsAndQuarantinesAfterStrikes)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const serve::ServiceTimeModel service(
        model, {workloads::lenet5()}, 4.0);
    const auto requests =
        generateTraffic(guardTraffic(1000.0, 100'000'000));
    ASSERT_GT(requests.size(), 0u);

    serve::ServeConfig config;
    config.poolSize = 2;
    // Below even a single frame's service time: every dispatch is
    // killed, so every request strikes out and is quarantined.  The
    // run still terminates and the books still balance.
    config.watchdogNs = service.frameServiceNs(0) / 2;
    config.quarantineStrikes = 2;
    serve::ServeRuntime runtime(service, config);
    const serve::ServeReport report = runtime.run(requests);

    EXPECT_EQ(report.completed, 0u);
    EXPECT_GT(report.quarantined, 0u);
    EXPECT_EQ(report.quarantined + report.shed, report.arrived);
    EXPECT_GT(report.watchdogTrips, 0u);
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed +
                                  report.quarantined);
}

TEST(ServeGuardTest, GenerousWatchdogNeverTrips)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const serve::ServiceTimeModel service(
        model, {workloads::lenet5()}, 4.0);
    const auto requests =
        generateTraffic(guardTraffic(1000.0, 100'000'000));

    serve::ServeConfig plain_config;
    plain_config.poolSize = 2;
    serve::ServeRuntime plain(service, plain_config);
    const serve::ServeReport expected = plain.run(requests);

    serve::ServeConfig guarded_config = plain_config;
    guarded_config.watchdogNs = 1'000'000'000;
    serve::ServeRuntime guarded(service, guarded_config);
    const serve::ServeReport report = guarded.run(requests);

    EXPECT_EQ(report.watchdogTrips, 0u);
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_EQ(report.completed, expected.completed);
    EXPECT_EQ(report.p99LatencyMs, expected.p99LatencyMs);
}

// ----------------------------------------------------------------
// tools/cli.hh
// ----------------------------------------------------------------

struct Argv
{
    std::vector<std::string> storage;
    std::vector<char *> pointers;

    explicit Argv(std::vector<std::string> argv)
        : storage(std::move(argv))
    {
        for (std::string &arg : storage)
            pointers.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(pointers.size()); }
    char **data() { return pointers.data(); }
};

TEST(CliArgStreamTest, ParsesBothValueSpellings)
{
    Argv argv({"tool", "--rate", "2.5", "--seed=42", "--flagged",
               "input.txt"});
    cli::ArgStream args("tool", argv.argc(), argv.data());
    double rate = 0.0;
    std::uint64_t seed = 0;
    bool flagged = false;
    std::string path;
    while (args.next()) {
        if (args.value("--rate", rate)) {
        } else if (args.value("--seed", seed)) {
        } else if (args.flag("--flagged")) {
            flagged = true;
        } else if (args.positional(path)) {
        } else {
            FAIL() << "unmatched arg " << args.arg();
        }
    }
    EXPECT_FALSE(args.failed());
    EXPECT_EQ(rate, 2.5);
    EXPECT_EQ(seed, 42u);
    EXPECT_TRUE(flagged);
    EXPECT_EQ(path, "input.txt");
}

TEST(CliArgStreamTest, GarbageValueLatchesFailedInsteadOfThrowing)
{
    Argv argv({"tool", "--seed", "banana"});
    cli::ArgStream args("tool", argv.argc(), argv.data());
    std::uint64_t seed = 0;
    while (args.next()) {
        if (args.value("--seed", seed)) {
        }
    }
    EXPECT_TRUE(args.failed());
}

TEST(CliArgStreamTest, BoundsAreEnforced)
{
    Argv argv({"tool", "--threads", "0"});
    cli::ArgStream args("tool", argv.argc(), argv.data());
    int threads = 4;
    while (args.next()) {
        if (args.value("--threads", threads, 1)) {
        }
    }
    EXPECT_TRUE(args.failed());
    EXPECT_EQ(threads, 4); // rejected values never overwrite
}

TEST(CliArgStreamTest, MissingValueLatchesFailed)
{
    Argv argv({"tool", "--rate"});
    cli::ArgStream args("tool", argv.argc(), argv.data());
    double rate = 1.0;
    while (args.next()) {
        if (args.value("--rate", rate)) {
        }
    }
    EXPECT_TRUE(args.failed());
}

TEST(CliArgStreamTest, SecondPositionalIsRejected)
{
    Argv argv({"tool", "first", "second"});
    cli::ArgStream args("tool", argv.argc(), argv.data());
    std::string path;
    bool rejected = false;
    while (args.next()) {
        if (args.positional(path)) {
        } else {
            rejected = true;
        }
    }
    EXPECT_EQ(path, "first");
    EXPECT_TRUE(rejected);
}

// ----------------------------------------------------------------
// Fixed-point boundary behavior (satellite: overflow audit)
// ----------------------------------------------------------------

TEST(FixedPointGuardTest, FromDoubleSaturatesAtInt16Boundaries)
{
    EXPECT_EQ(Fixed16::fromDouble(127.99609375).raw(), 32767);
    EXPECT_EQ(Fixed16::fromDouble(128.0).raw(), 32767);
    EXPECT_EQ(Fixed16::fromDouble(1e30).raw(), 32767);
    EXPECT_EQ(Fixed16::fromDouble(
                  std::numeric_limits<double>::infinity())
                  .raw(),
              32767);
    EXPECT_EQ(Fixed16::fromDouble(-128.0).raw(), -32768);
    EXPECT_EQ(Fixed16::fromDouble(-1e30).raw(), -32768);
    EXPECT_EQ(Fixed16::fromDouble(
                  -std::numeric_limits<double>::infinity())
                  .raw(),
              -32768);
    EXPECT_EQ(Fixed16::fromDouble(
                  std::numeric_limits<double>::quiet_NaN())
                  .raw(),
              0);
}

TEST(FixedPointGuardTest, FromDoubleUnchangedInRange)
{
    // The saturation guards must not move any representable value.
    EXPECT_EQ(Fixed16::fromDouble(0.0).raw(), 0);
    EXPECT_EQ(Fixed16::fromDouble(1.0).raw(), 256);
    EXPECT_EQ(Fixed16::fromDouble(-1.0).raw(), -256);
    EXPECT_EQ(Fixed16::fromDouble(127.99609375 - 1.0 / 256.0).raw(),
              32766);
    EXPECT_EQ(Fixed16::fromDouble(-127.99999).raw(), -32768);
    for (int raw = -300; raw <= 300; ++raw) {
        const double value = static_cast<double>(raw) / 256.0;
        EXPECT_EQ(Fixed16::fromDouble(value).raw(), raw);
    }
}

TEST(FixedPointGuardTest, QuantizeAccSaturatesAtInt64Extremes)
{
    EXPECT_EQ(quantizeAcc(std::numeric_limits<Acc>::max()).raw(),
              32767);
    EXPECT_EQ(quantizeAcc(std::numeric_limits<Acc>::min()).raw(),
              -32768);
    // Ordinary saturation and in-range rounding are unchanged.
    EXPECT_EQ(quantizeAcc(Acc{32767} << 8).raw(), 32767);
    EXPECT_EQ(quantizeAcc((Acc{32768} << 8)).raw(), 32767);
    EXPECT_EQ(quantizeAcc(-(Acc{32769} << 8)).raw(), -32768);
    EXPECT_EQ(quantizeAcc(256).raw(), 1);
    EXPECT_EQ(quantizeAcc(127).raw(), 0);
    EXPECT_EQ(quantizeAcc(128).raw(), 1);
    EXPECT_EQ(quantizeAcc(-128).raw(), -1);
    EXPECT_EQ(quantizeAcc(0).raw(), 0);
}

} // namespace
} // namespace flexsim
