/**
 * @file
 * Tests for the Tiling (MFSNSS) baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "tiling/tiling_array.hh"
#include "tiling/tiling_model.hh"

namespace flexsim {
namespace {

// ------------------------------------------------------------------- model

TEST(TilingModelTest, ConfigForScale)
{
    const TilingConfig cfg = TilingConfig::forScale(16);
    EXPECT_EQ(cfg.tm, 16);
    EXPECT_EQ(cfg.tn, 16);
    EXPECT_EQ(cfg.peCount(), 256u);
}

TEST(TilingModelTest, PaperTable3LeNetUtilization)
{
    // LeNet-5 "C3 on C1-opt": Tm=6, Tn=1 hardware running C3
    // (M=16, N=6): 96/108 = 88.9% (paper Table 3 "88").
    TilingConfig cfg;
    cfg.tm = 6;
    cfg.tn = 1;
    const auto c3 = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const LayerResult r = TilingModel(cfg).runLayer(c3);
    EXPECT_NEAR(r.utilization(), 96.0 / 108.0, 1e-9);
}

TEST(TilingModelTest, PaperTable3LeNetReverseUtilization)
{
    // "C1 on C3-opt": Tm=16, Tn=6 hardware running C1 (M=6, N=1):
    // 6/96 = 6.25% (paper Table 3 "6.2").
    TilingConfig cfg;
    cfg.tm = 16;
    cfg.tn = 6;
    const auto c1 = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const LayerResult r = TilingModel(cfg).runLayer(c1);
    EXPECT_NEAR(r.utilization(), 6.0 / 96.0, 1e-9);
}

TEST(TilingModelTest, CyclesFollowGroupedLoops)
{
    TilingConfig cfg;
    cfg.tm = 4;
    cfg.tn = 2;
    const auto spec = ConvLayerSpec::make("X", 5, 9, 6, 3);
    const LayerResult r = TilingModel(cfg).runLayer(spec);
    // ceil(9/4)*ceil(5/2)*36*9 cycles, no fill.
    EXPECT_EQ(r.cycles, 3u * 3 * 36 * 9);
    EXPECT_EQ(r.fillCycles, 0u);
}

TEST(TilingModelTest, SynapsesRefetchedEveryCycle)
{
    // The paper's "poorest data sharing": kernel traffic equals the
    // MAC count.
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const LayerResult r = TilingModel().runLayer(spec);
    EXPECT_EQ(r.traffic.kernelIn, r.macs);
}

TEST(TilingModelTest, HighUtilizationOnManyMaps)
{
    // AlexNet C5-like shapes divide evenly: full utilization.
    const auto spec = ConvLayerSpec::make("C5", 256, 192, 13, 3);
    const LayerResult r = TilingModel().runLayer(spec);
    EXPECT_NEAR(r.utilization(), 1.0, 1e-9);
}

TEST(TilingModelTest, LowUtilizationOnFewMaps)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 8, 45, 6);
    const LayerResult r = TilingModel().runLayer(spec);
    EXPECT_NEAR(r.utilization(), 8.0 / 256.0, 1e-9);
}

// --------------------------------------------------------------- cycle sim

struct TilingCase
{
    const char *name;
    int in_maps, out_maps, out_size, kernel, stride;
    int tm, tn;
};

class TilingSweep : public ::testing::TestWithParam<TilingCase>
{
};

TEST_P(TilingSweep, SimMatchesGoldenAndModel)
{
    const TilingCase &p = GetParam();
    const auto spec = ConvLayerSpec::make(p.name, p.in_maps, p.out_maps,
                                          p.out_size, p.kernel,
                                          p.stride);
    TilingConfig cfg;
    cfg.tm = p.tm;
    cfg.tn = p.tn;

    Rng rng(0x7111 + p.out_maps + p.kernel);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    TilingArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);

    EXPECT_EQ(out, goldenConv(spec, input, kernels));

    const LayerResult model_result = TilingModel(cfg).runLayer(spec);
    EXPECT_EQ(sim_result.cycles, model_result.cycles);
    EXPECT_EQ(sim_result.fillCycles, model_result.fillCycles);
    EXPECT_EQ(sim_result.activeMacCycles,
              model_result.activeMacCycles);
    EXPECT_EQ(sim_result.traffic, model_result.traffic);
    EXPECT_EQ(sim_result.localStoreReads,
              model_result.localStoreReads);
    EXPECT_EQ(sim_result.localStoreWrites,
              model_result.localStoreWrites);
    EXPECT_EQ(sim_result.dram, model_result.dram);
}

INSTANTIATE_TEST_SUITE_P(
    LayerGrid, TilingSweep,
    ::testing::Values(
        TilingCase{"tiny", 1, 1, 2, 2, 1, 1, 1},
        TilingCase{"exact_groups", 4, 8, 6, 3, 1, 4, 4},
        TilingCase{"ragged_m", 2, 7, 6, 3, 1, 4, 2},
        TilingCase{"ragged_n", 7, 4, 6, 3, 1, 2, 4},
        TilingCase{"lenet_c1", 1, 6, 28, 5, 1, 16, 16},
        TilingCase{"lenet_c3", 6, 16, 10, 5, 1, 16, 16},
        TilingCase{"single_pe", 3, 5, 4, 3, 1, 1, 1},
        TilingCase{"strided", 3, 4, 6, 5, 2, 4, 3},
        TilingCase{"deep", 20, 3, 4, 3, 1, 2, 8}),
    [](const ::testing::TestParamInfo<TilingCase> &param_info) {
        return param_info.param.name;
    });

TEST(TilingSimTest, MismatchedTensorsCaught)
{
    logging_detail::setThrowOnError(true);
    TilingArraySim sim;
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    Rng rng(2);
    const Tensor3<> wrong = makeRandomInput(rng, 2, spec.inSize);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    EXPECT_THROW(sim.runLayer(spec, wrong, kernels),
                 std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(TilingSimTest, AdderTreeMatchesWideAccumulation)
{
    // The per-cycle adder-tree reduction must not change the final
    // fixed-point result vs a flat accumulation order (both use the
    // wide accumulator).
    const auto spec = ConvLayerSpec::make("X", 8, 2, 4, 3);
    Rng rng(9);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    TilingConfig a, b;
    a.tm = 2;
    a.tn = 8; // one-shot adder tree over all input maps
    b.tm = 1;
    b.tn = 1; // fully sequential accumulation
    const Tensor3<> out_a =
        TilingArraySim(a).runLayer(spec, input, kernels);
    const Tensor3<> out_b =
        TilingArraySim(b).runLayer(spec, input, kernels);
    EXPECT_EQ(out_a, out_b);
}

} // namespace
} // namespace flexsim
