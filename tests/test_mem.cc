/**
 * @file
 * Unit tests for the memory substrate: FIFO, local store, banked SRAM
 * buffer, external memory, and traffic records.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/external_memory.hh"
#include "mem/fifo.hh"
#include "mem/local_store.hh"
#include "mem/sram_buffer.hh"
#include "mem/traffic.hh"

namespace flexsim {
namespace {

class MemTest : public ::testing::Test
{
  protected:
    void SetUp() override { logging_detail::setThrowOnError(true); }
    void TearDown() override { logging_detail::setThrowOnError(false); }
};

// -------------------------------------------------------------------- fifo

TEST_F(MemTest, FifoOrdering)
{
    Fifo<int> fifo;
    fifo.push(1);
    fifo.push(2);
    fifo.push(3);
    EXPECT_EQ(fifo.pop(), 1);
    EXPECT_EQ(fifo.pop(), 2);
    EXPECT_EQ(fifo.front(), 3);
    EXPECT_EQ(fifo.pop(), 3);
    EXPECT_TRUE(fifo.empty());
}

TEST_F(MemTest, FifoCapacityEnforced)
{
    Fifo<int> fifo(2);
    fifo.push(1);
    fifo.push(2);
    EXPECT_TRUE(fifo.full());
    EXPECT_THROW(fifo.push(3), std::runtime_error);
}

TEST_F(MemTest, FifoUnderflowCaught)
{
    Fifo<int> fifo;
    EXPECT_THROW(fifo.pop(), std::runtime_error);
    EXPECT_THROW(fifo.front(), std::runtime_error);
}

TEST_F(MemTest, FifoCounters)
{
    Fifo<int> fifo;
    fifo.push(1);
    fifo.push(2);
    fifo.pop();
    fifo.push(3);
    fifo.push(4);
    EXPECT_EQ(fifo.pushes(), 4u);
    EXPECT_EQ(fifo.pops(), 1u);
    EXPECT_EQ(fifo.peakOccupancy(), 3u);
}

TEST_F(MemTest, FifoClear)
{
    Fifo<int> fifo;
    fifo.push(1);
    fifo.clear();
    EXPECT_TRUE(fifo.empty());
}

// ------------------------------------------------------------- local store

TEST_F(MemTest, LocalStoreReadBack)
{
    LocalStore store(8);
    store.write(3, Fixed16::fromDouble(1.5));
    EXPECT_DOUBLE_EQ(store.read(3).toDouble(), 1.5);
    EXPECT_EQ(store.reads(), 1u);
    EXPECT_EQ(store.writes(), 1u);
}

TEST_F(MemTest, LocalStoreRandomAccess)
{
    // Unlike a FIFO, any valid slot can be read repeatedly in any
    // order (the paper's key PE difference, Section 4.4).
    LocalStore store(4);
    store.write(0, Fixed16::fromDouble(1.0));
    store.write(2, Fixed16::fromDouble(2.0));
    EXPECT_DOUBLE_EQ(store.read(2).toDouble(), 2.0);
    EXPECT_DOUBLE_EQ(store.read(0).toDouble(), 1.0);
    EXPECT_DOUBLE_EQ(store.read(2).toDouble(), 2.0);
    EXPECT_EQ(store.reads(), 3u);
}

TEST_F(MemTest, LocalStoreInvalidReadCaught)
{
    LocalStore store(4);
    EXPECT_THROW(store.read(1), std::runtime_error);
}

TEST_F(MemTest, LocalStoreCapacityEnforced)
{
    LocalStore store(2);
    EXPECT_THROW(store.write(2, Fixed16{}), std::runtime_error);
    EXPECT_THROW(store.read(5), std::runtime_error);
}

TEST_F(MemTest, LocalStoreInvalidate)
{
    LocalStore store(4);
    store.write(1, Fixed16::fromDouble(1.0));
    EXPECT_TRUE(store.valid(1));
    store.invalidateAll();
    EXPECT_FALSE(store.valid(1));
    EXPECT_THROW(store.read(1), std::runtime_error);
}

TEST_F(MemTest, LocalStorePeakOccupancy)
{
    LocalStore store(4);
    store.write(0, Fixed16{});
    store.write(1, Fixed16{});
    store.write(1, Fixed16{}); // rewrite, no occupancy change
    EXPECT_EQ(store.peakValid(), 2u);
    store.invalidateAll();
    store.write(2, Fixed16{});
    EXPECT_EQ(store.peakValid(), 2u);
}

TEST_F(MemTest, LocalStoreCounterReset)
{
    LocalStore store(4);
    store.write(0, Fixed16{});
    store.read(0);
    store.resetCounters();
    EXPECT_EQ(store.reads(), 0u);
    EXPECT_EQ(store.writes(), 0u);
}

// ------------------------------------------------------------- sram buffer

TEST_F(MemTest, BufferGeometry)
{
    SramBuffer buf("neuron", 32 * 1024, 16);
    EXPECT_EQ(buf.numBanks(), 16u);
    EXPECT_EQ(buf.capacityWords(), 16u * 1024);
    EXPECT_EQ(buf.wordsPerBank(), 1024u);
    EXPECT_EQ(buf.capacityBytes(), 32u * 1024);
}

TEST_F(MemTest, BufferReadBack)
{
    SramBuffer buf("b", 1024, 4);
    buf.write(2, 7, Fixed16::fromDouble(-2.5));
    EXPECT_DOUBLE_EQ(buf.read(2, 7).toDouble(), -2.5);
    EXPECT_EQ(buf.reads(), 1u);
    EXPECT_EQ(buf.writes(), 1u);
}

TEST_F(MemTest, BufferInvalidReadCaught)
{
    SramBuffer buf("b", 1024, 4);
    EXPECT_THROW(buf.read(0, 0), std::runtime_error);
}

TEST_F(MemTest, BufferBoundsChecked)
{
    SramBuffer buf("b", 1024, 4);
    EXPECT_THROW(buf.write(4, 0, Fixed16{}), std::runtime_error);
    EXPECT_THROW(buf.write(0, 128, Fixed16{}), std::runtime_error);
}

TEST_F(MemTest, BufferBankConflictAccounting)
{
    SramBuffer buf("b", 1024, 4);
    buf.write(0, 0, Fixed16{});
    buf.write(1, 0, Fixed16{});
    buf.beginCycle();
    // Parallel accesses to distinct banks: no conflict.
    buf.read(0, 0);
    buf.read(1, 0);
    EXPECT_EQ(buf.bankConflicts(), 0u);
    // Second access to bank 0 in the same cycle: conflict.
    buf.read(0, 0);
    EXPECT_EQ(buf.bankConflicts(), 1u);
    buf.beginCycle();
    buf.read(0, 0);
    EXPECT_EQ(buf.bankConflicts(), 1u);
}

TEST_F(MemTest, BufferInvalidateAll)
{
    SramBuffer buf("b", 1024, 4);
    buf.write(1, 1, Fixed16{});
    EXPECT_TRUE(buf.valid(1, 1));
    buf.invalidateAll();
    EXPECT_FALSE(buf.valid(1, 1));
}

TEST_F(MemTest, BufferCounterReset)
{
    SramBuffer buf("b", 1024, 4);
    buf.write(0, 0, Fixed16{});
    buf.read(0, 0);
    buf.read(0, 0);
    buf.resetCounters();
    EXPECT_EQ(buf.reads(), 0u);
    EXPECT_EQ(buf.writes(), 0u);
    EXPECT_EQ(buf.bankConflicts(), 0u);
}

// --------------------------------------------------------- external memory

TEST_F(MemTest, DramCounters)
{
    ExternalMemory dram(4.0);
    dram.recordRead(100);
    dram.recordWrite(40);
    dram.recordRead(10);
    EXPECT_EQ(dram.traffic().reads, 110u);
    EXPECT_EQ(dram.traffic().writes, 40u);
    EXPECT_EQ(dram.traffic().total(), 150u);
}

TEST_F(MemTest, DramTransferCycles)
{
    ExternalMemory dram(4.0);
    EXPECT_EQ(dram.transferCycles(16), 4u);
    EXPECT_EQ(dram.transferCycles(17), 5u);
    dram.recordRead(8);
    dram.recordWrite(8);
    EXPECT_EQ(dram.totalTransferCycles(), 4u);
}

TEST_F(MemTest, DramReset)
{
    ExternalMemory dram;
    dram.recordRead(5);
    dram.resetCounters();
    EXPECT_EQ(dram.traffic().total(), 0u);
}

// ----------------------------------------------------------------- traffic

TEST_F(MemTest, TrafficTotals)
{
    Traffic t;
    t.neuronIn = 10;
    t.neuronOut = 5;
    t.kernelIn = 3;
    t.psumRead = 2;
    t.psumWrite = 2;
    EXPECT_EQ(t.total(), 22u);
}

TEST_F(MemTest, TrafficAccumulation)
{
    Traffic a, b;
    a.neuronIn = 1;
    a.kernelIn = 2;
    b.neuronIn = 10;
    b.psumWrite = 4;
    a += b;
    EXPECT_EQ(a.neuronIn, 11u);
    EXPECT_EQ(a.kernelIn, 2u);
    EXPECT_EQ(a.psumWrite, 4u);
}

} // namespace
} // namespace flexsim
