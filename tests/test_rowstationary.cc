/**
 * @file
 * Tests for the Row-Stationary extension baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"
#include "rowstationary/rs_array.hh"
#include "rowstationary/rs_model.hh"

namespace flexsim {
namespace {

TEST(RowStationaryModelTest, EyerissDefaults)
{
    const RowStationaryConfig cfg = RowStationaryConfig::eyeriss();
    EXPECT_EQ(cfg.physRows, 12);
    EXPECT_EQ(cfg.physCols, 14);
    EXPECT_EQ(cfg.peCount(), 168u);
}

TEST(RowStationaryModelTest, StripWidthAndSets)
{
    const RowStationaryModel model;
    const auto wide = ConvLayerSpec::make("W", 1, 1, 55, 11, 4);
    EXPECT_EQ(model.stripWidth(wide), 14);
    EXPECT_EQ(model.concurrentSets(11), 1);
    EXPECT_EQ(model.concurrentSets(5), 2);
    EXPECT_EQ(model.concurrentSets(3), 4);
}

TEST(RowStationaryModelTest, CyclesFollowUnitSchedule)
{
    const RowStationaryModel model;
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const LayerResult r = model.runLayer(spec);
    // ceil(16/2) map groups * 6 input maps * 1 strip * (10*5).
    EXPECT_EQ(r.cycles, 8u * 6 * 1 * 50);
}

TEST(RowStationaryModelTest, GoodUtilizationOnAlexNetC1)
{
    // RS's selling point: the large-kernel strided C1 that ruins the
    // paper's Systolic baseline maps well onto row primitives.
    const RowStationaryModel model;
    const auto c1 = ConvLayerSpec::make("C1", 3, 48, 55, 11, 4);
    EXPECT_GT(model.runLayer(c1).utilization(), 0.85);
}

TEST(RowStationaryModelTest, FilterRowsStationary)
{
    const RowStationaryModel model;
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    EXPECT_EQ(model.runLayer(spec).traffic.kernelIn,
              spec.kernelWords());
}

TEST(RowStationaryModelTest, KernelFoldingCausesPsumTraffic)
{
    RowStationaryConfig cfg;
    cfg.physRows = 3; // force folding for a 5-tap kernel
    const RowStationaryModel model(cfg);
    const auto spec = ConvLayerSpec::make("X", 2, 3, 6, 5);
    const LayerResult r = model.runLayer(spec);
    EXPECT_EQ(r.traffic.psumWrite, spec.outputWords());
    EXPECT_EQ(r.traffic.psumRead, spec.outputWords());
}

struct RsCase
{
    const char *name;
    int in_maps, out_maps, out_size, kernel, stride;
    int rows, cols;
};

class RowStationarySweep : public ::testing::TestWithParam<RsCase>
{
};

TEST_P(RowStationarySweep, SimMatchesGoldenAndModel)
{
    const RsCase &p = GetParam();
    const auto spec = ConvLayerSpec::make(p.name, p.in_maps, p.out_maps,
                                          p.out_size, p.kernel,
                                          p.stride);
    RowStationaryConfig cfg;
    cfg.physRows = p.rows;
    cfg.physCols = p.cols;

    Rng rng(0xe7e - p.out_size + p.kernel * 3);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    RowStationaryArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);

    EXPECT_EQ(out, goldenConv(spec, input, kernels));

    const LayerResult model_result =
        RowStationaryModel(cfg).runLayer(spec);
    EXPECT_EQ(sim_result.cycles, model_result.cycles);
    EXPECT_EQ(sim_result.activeMacCycles,
              model_result.activeMacCycles);
    EXPECT_EQ(sim_result.traffic, model_result.traffic);
    EXPECT_EQ(sim_result.localStoreReads,
              model_result.localStoreReads);
    EXPECT_EQ(sim_result.localStoreWrites,
              model_result.localStoreWrites);
    EXPECT_EQ(sim_result.dram, model_result.dram);
}

INSTANTIATE_TEST_SUITE_P(
    LayerGrid, RowStationarySweep,
    ::testing::Values(
        RsCase{"tiny", 1, 1, 2, 2, 1, 12, 14},
        RsCase{"lenet_c1", 1, 6, 28, 5, 1, 12, 14},
        RsCase{"lenet_c3", 6, 16, 10, 5, 1, 12, 14},
        RsCase{"alexnet_c1_like", 3, 8, 13, 11, 4, 12, 14},
        RsCase{"folded_kernel", 2, 3, 6, 5, 1, 3, 8},
        RsCase{"narrow_array", 4, 5, 9, 3, 1, 6, 4},
        RsCase{"strided", 3, 4, 6, 5, 2, 12, 14},
        RsCase{"single_pe_row", 2, 2, 4, 3, 1, 1, 6}),
    [](const ::testing::TestParamInfo<RsCase> &param_info) {
        return param_info.param.name;
    });

TEST(RowStationarySimTest, MismatchedTensorsCaught)
{
    logging_detail::setThrowOnError(true);
    RowStationaryArraySim sim;
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    Rng rng(2);
    const Tensor3<> wrong = makeRandomInput(rng, 2, spec.inSize);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    EXPECT_THROW(sim.runLayer(spec, wrong, kernels),
                 std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(RowStationarySimTest, FlexFlowStillAheadOnTheSixWorkloads)
{
    // The extension context for Table 7: at matched MAC throughput a
    // 16x16 FlexFlow clears more GOPs than a 12x14 Eyeriss-class RS
    // engine on the paper's workloads (it has 256 vs 168 PEs *and*
    // holds higher utilization on most layers).
    const RowStationaryModel rs;
    for (const auto &net : workloads::smallFour()) {
        double rs_macs = 0, rs_weighted = 0;
        for (const auto &stage : net.stages) {
            const LayerResult r = rs.runLayer(stage.conv);
            rs_weighted +=
                r.utilization() * static_cast<double>(r.macs);
            rs_macs += static_cast<double>(r.macs);
        }
        EXPECT_GT(rs_weighted / rs_macs, 0.2) << net.name;
        EXPECT_LT(rs_weighted / rs_macs, 1.0) << net.name;
    }
}

} // namespace
} // namespace flexsim
