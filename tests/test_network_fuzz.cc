/**
 * @file
 * End-to-end randomized network tests: random multi-layer CONV/POOL
 * chains are compiled, executed instruction-by-instruction on the
 * cycle-level accelerator, and verified bit-exactly against golden
 * inference.  Also validates the compiler's chain DP against brute
 * force on two-layer networks.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/random.hh"
#include "compiler/compiler.hh"
#include "flexflow/accelerator.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"

namespace flexsim {
namespace {

/** A random but chain-consistent CONV/POOL network. */
NetworkSpec
randomNetwork(Rng &rng)
{
    NetworkSpec net;
    net.name = "fuzznet";
    const int layers = static_cast<int>(rng.uniformInt(2, 4));
    int maps = static_cast<int>(rng.uniformInt(1, 4));
    // Work backwards from a generous first input so deeper layers
    // still have room.
    int available = static_cast<int>(rng.uniformInt(14, 24));
    for (int i = 0; i < layers; ++i) {
        const int kernel = static_cast<int>(
            rng.uniformInt(2, std::min(4, available - 1)));
        const int max_out = available - kernel + 1;
        if (max_out < 1)
            break;
        const int out_size = static_cast<int>(rng.uniformInt(
            std::max(1, max_out / 2), max_out));
        const int out_maps = static_cast<int>(rng.uniformInt(1, 6));
        NetworkSpec::Stage stage;
        stage.conv = ConvLayerSpec::make(
            "L" + std::to_string(i), maps, out_maps, out_size, kernel);
        int next_available = out_size;
        if (out_size >= 4 && rng.chance(0.5)) {
            PoolLayerSpec pool;
            pool.window = 2;
            pool.stride = 2;
            pool.op = rng.chance(0.5) ? PoolOp::Max : PoolOp::Average;
            stage.poolAfter = pool;
            next_available = pooledSize(out_size, pool);
        }
        net.stages.push_back(stage);
        maps = out_maps;
        available = next_available;
        if (available < 3)
            break;
    }
    net.validate();
    return net;
}

class NetworkFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(NetworkFuzz, CompiledNetworkMatchesGoldenInference)
{
    Rng rng(0xae7 + 0x1000 * GetParam());
    const NetworkSpec net = randomNetwork(rng);

    FlexFlowCompiler compiler(FlexFlowConfig::forScale(8));
    const CompilationResult compiled = compiler.compile(net);

    const Tensor3<> input = makeRandomInput(rng, net.stages[0].conv);
    std::vector<Tensor4<>> kernels;
    for (const auto &stage : net.stages)
        kernels.push_back(makeRandomKernels(rng, stage.conv));

    FlexFlowAccelerator accel(FlexFlowConfig::forScale(8));
    accel.bindInput(input);
    accel.bindKernels(kernels);
    NetworkResult result;
    const Tensor3<> out = accel.run(compiled.program, &result);

    Tensor3<> golden = input;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        golden = cropTopLeft(golden, net.stages[i].conv.inSize);
        golden = goldenConv(net.stages[i].conv, golden, kernels[i]);
        if (net.stages[i].poolAfter)
            golden = goldenPool(golden, *net.stages[i].poolAfter);
    }
    EXPECT_EQ(out, golden) << net.stages.size() << "-layer net, seed "
                           << GetParam();
    EXPECT_EQ(result.layers.size(), net.stages.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz, ::testing::Range(0, 15));

// ------------------------------------------------- chain DP optimality

/** Re-derive the DP's cost model for an independent brute force. */
struct ChainCost
{
    static long long
    steps(const ConvLayerSpec &spec, int tn, int ti, int tj)
    {
        return ceilDiv(spec.inMaps, tn) * ceilDiv(spec.kernel, ti) *
               ceilDiv(spec.kernel, tj);
    }

    static long long
    batches(const ConvLayerSpec &spec, int tm, int tr, int tc)
    {
        return ceilDiv(spec.outMaps, tm) *
               ceilDiv(spec.outSize, tr) * ceilDiv(spec.outSize, tc);
    }
};

TEST(ChainDpTest, MatchesBruteForceOnTwoLayerNetworks)
{
    // For every two-layer workload-like network: enumerate all
    // feasible (factors1, factors2) pairs under the DP's rules
    // (margin-filtered row sides; coupled column side, or the free
    // optimum plus a relayout penalty) and check the compiler's total
    // cost is the minimum.
    Rng rng(0xd9);
    for (int iter = 0; iter < 6; ++iter) {
        NetworkSpec net;
        net.name = "dp";
        const int maps0 = static_cast<int>(rng.uniformInt(1, 4));
        const int maps1 = static_cast<int>(rng.uniformInt(2, 8));
        net.stages.push_back(
            {ConvLayerSpec::make(
                 "A", maps0, maps1,
                 static_cast<int>(rng.uniformInt(6, 12)),
                 static_cast<int>(rng.uniformInt(2, 4))),
             std::nullopt});
        const int s1 = net.stages[0].conv.outSize;
        const int k1 = static_cast<int>(
            rng.uniformInt(2, std::min(4, s1 - 1)));
        net.stages.push_back(
            {ConvLayerSpec::make(
                 "B", maps1,
                 static_cast<int>(rng.uniformInt(1, 6)),
                 s1 - k1 + 1, k1),
             std::nullopt});
        net.validate();

        const int d = 8;
        const double margin = 0.15;
        FlexFlowCompiler compiler(FlexFlowConfig::forScale(d), margin);
        const CompilationResult compiled = compiler.compile(net);

        // Compiler's achieved cost under the DP's cost model.
        auto costOf = [&](const UnrollFactors &t0,
                          const UnrollFactors &t1, bool coupled) {
            long long cost =
                ChainCost::batches(net.stages[0].conv, t0.tm, t0.tr,
                                   t0.tc) *
                    ChainCost::steps(net.stages[0].conv, t0.tn, t0.ti,
                                     t0.tj) +
                ChainCost::batches(net.stages[1].conv, t1.tm, t1.tr,
                                   t1.tc) *
                    ChainCost::steps(net.stages[1].conv, t1.tn, t1.ti,
                                     t1.tj);
            if (!coupled) {
                cost += static_cast<long long>(
                    net.stages[1].conv.inputWords());
            }
            return cost;
        };
        const long long dp_cost =
            costOf(compiled.layers[0].factors,
                   compiled.layers[1].factors,
                   compiled.layers[1].coupled);

        // Brute force over all feasible assignments respecting the
        // layer-0 free column side (the DP fixes it to the Ur
        // optimum, so only compare chains with the same layer-0 Ur).
        const ConvLayerSpec &l0 = net.stages[0].conv;
        const ConvLayerSpec &l1 = net.stages[1].conv;
        const FactorChoice free0 = searchBestFactors(l0, d);
        const FactorChoice free1 = searchBestFactors(l1, d);
        const long long free1_steps = ChainCost::steps(
            l1, free1.factors.tn, free1.factors.ti, free1.factors.tj);

        // Layer 0's Tr/Tc are bounded by P * K' of the next layer
        // (Section 5), exactly as the compiler bounds them.
        const int bound0 =
            std::min(l0.outSize,
                     net.poolWindowAfter(0) * *net.nextKernel(0));
        const auto rows0 = enumerateFeasible(l0, d, bound0);
        const auto rows1 = enumerateFeasible(l1, d, l1.outSize);
        double best_uc0 = 0.0, best_uc1 = 0.0;
        for (const UnrollFactors &r : rows0)
            best_uc0 = std::max(best_uc0, utilizationCols(r, l0, d));
        for (const UnrollFactors &r : rows1)
            best_uc1 = std::max(best_uc1, utilizationCols(r, l1, d));

        long long best = std::numeric_limits<long long>::max();
        for (const UnrollFactors &r0 : rows0) {
            // The DP only considers margin-qualified row sides.
            if (utilizationCols(r0, l0, d) + 1e-12 <
                best_uc0 * (1.0 - margin)) {
                continue;
            }
            UnrollFactors t0 = r0;
            t0.tn = free0.factors.tn;
            t0.ti = free0.factors.ti;
            t0.tj = free0.factors.tj;
            if (!feasible(t0, l0, d, bound0))
                continue;
            for (const UnrollFactors &r1 : rows1) {
                if (utilizationCols(r1, l1, d) + 1e-12 <
                    best_uc1 * (1.0 - margin)) {
                    continue;
                }
                // Coupled option.
                UnrollFactors c1 = r1;
                c1.tn = std::min(t0.tm, l1.inMaps);
                c1.ti = std::min(t0.tr, l1.kernel);
                c1.tj = std::min(t0.tc, l1.kernel);
                if (feasible(c1, l1, d, l1.outSize) &&
                    static_cast<double>(ChainCost::steps(
                        l1, c1.tn, c1.ti, c1.tj)) <=
                        static_cast<double>(free1_steps) *
                                (1.0 + margin) +
                            1e-9) {
                    best = std::min(best, costOf(t0, c1, true));
                }
                // Free option.
                UnrollFactors f1 = r1;
                f1.tn = free1.factors.tn;
                f1.ti = free1.factors.ti;
                f1.tj = free1.factors.tj;
                if (feasible(f1, l1, d, l1.outSize))
                    best = std::min(best, costOf(t0, f1, false));
            }
        }
        EXPECT_EQ(dp_cost, best)
            << "iter " << iter << " net A" << l0.inMaps << "->"
            << l0.outMaps << "@" << l0.outSize << "k" << l0.kernel
            << " B->" << l1.outMaps << "@" << l1.outSize << "k"
            << l1.kernel;
    }
}

} // namespace
} // namespace flexsim
