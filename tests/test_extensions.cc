/**
 * @file
 * Tests for the extension features: the Section-2.2 processing-style
 * taxonomy, fully-connected layers, activation cropping, the
 * accelerator statistics group, the dataflow ablation knobs, and the
 * LeNet-5 classifier-tail network end to end.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/processing_style.hh"
#include "arch/system_timing.hh"
#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "flexflow/accelerator.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "flexflow/schedule.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

// ------------------------------------------------------- processing styles

TEST(ProcessingStyleTest, ClassifiesTheRigidArchitectures)
{
    // Systolic: SP only.
    EXPECT_EQ(classifyProcessingStyle({1, 1, 1, 1, 6, 6}),
              ProcessingStyle::SFSNMS);
    // 2D-Mapping: NP only.
    EXPECT_EQ(classifyProcessingStyle({1, 1, 16, 16, 1, 1}),
              ProcessingStyle::SFMNSS);
    // Tiling: FP only.
    EXPECT_EQ(classifyProcessingStyle({16, 16, 1, 1, 1, 1}),
              ProcessingStyle::MFSNSS);
}

TEST(ProcessingStyleTest, FlexFlowMixesAreMfmnms)
{
    // The paper's Table 4 LeNet-5 C1 mixes all three.
    EXPECT_EQ(classifyProcessingStyle({3, 1, 1, 5, 3, 5}),
              ProcessingStyle::MFMNMS);
}

TEST(ProcessingStyleTest, AllEightStylesReachable)
{
    EXPECT_EQ(classifyProcessingStyle({1, 1, 1, 1, 1, 1}),
              ProcessingStyle::SFSNSS);
    EXPECT_EQ(classifyProcessingStyle({1, 1, 2, 1, 2, 1}),
              ProcessingStyle::SFMNMS);
    EXPECT_EQ(classifyProcessingStyle({2, 1, 1, 1, 2, 1}),
              ProcessingStyle::MFSNMS);
    EXPECT_EQ(classifyProcessingStyle({1, 2, 2, 1, 1, 1}),
              ProcessingStyle::MFMNSS);
}

TEST(ProcessingStyleTest, PredicatesMatchDefinition)
{
    const UnrollFactors t{1, 2, 1, 1, 1, 1};
    EXPECT_TRUE(usesFeatureMapParallelism(t));
    EXPECT_FALSE(usesNeuronParallelism(t));
    EXPECT_FALSE(usesSynapseParallelism(t));
}

TEST(ProcessingStyleTest, NamesMatchPaper)
{
    EXPECT_STREQ(processingStyleName(ProcessingStyle::SFSNMS),
                 "SFSNMS");
    EXPECT_STREQ(processingStyleName(ProcessingStyle::MFMNMS),
                 "MFMNMS");
}

// --------------------------------------------------------------- FC layers

TEST(FullyConnectedTest, SpecShape)
{
    const auto fc = ConvLayerSpec::fullyConnected("F6", 120, 84);
    EXPECT_TRUE(fc.isFullyConnected());
    EXPECT_EQ(fc.inMaps, 120);
    EXPECT_EQ(fc.outMaps, 84);
    EXPECT_EQ(fc.inSize, 1);
    EXPECT_EQ(fc.macs(), 120ull * 84);
    const auto conv = ConvLayerSpec::make("C", 1, 1, 4, 3);
    EXPECT_FALSE(conv.isFullyConnected());
}

TEST(FullyConnectedTest, GoldenMatchesMatrixVector)
{
    // A 1x1-map FC layer is a matrix-vector product.
    const auto fc = ConvLayerSpec::fullyConnected("F", 5, 3);
    Rng rng(61);
    const Tensor3<> in = makeRandomInput(rng, fc);
    const Tensor4<> w = makeRandomKernels(rng, fc);
    const Tensor3<> out = goldenConv(fc, in, w);
    for (int m = 0; m < 3; ++m) {
        Acc acc = 0;
        for (int n = 0; n < 5; ++n)
            acc += mulRaw(in.at(n, 0, 0), w.at(m, n, 0, 0));
        EXPECT_EQ(out.at(m, 0, 0), quantizeAcc(acc));
    }
}

TEST(FullyConnectedTest, FlexFlowConvUnitRunsFcLayers)
{
    const auto fc = ConvLayerSpec::fullyConnected("F6", 120, 84);
    const FactorChoice choice = searchBestFactors(fc, 16);
    Rng rng(62);
    const Tensor3<> in = makeRandomInput(rng, fc);
    const Tensor4<> w = makeRandomKernels(rng, fc);
    FlexFlowConvUnit unit{FlexFlowConfig{}};
    LayerResult result;
    const Tensor3<> out =
        unit.runLayer(fc, choice.factors, in, w, &result);
    EXPECT_EQ(out, goldenConv(fc, in, w));
    // FC layers keep the engine reasonably busy via FP on both sides.
    EXPECT_GT(result.utilization(), 0.4);
}

TEST(FullyConnectedTest, ClassifierNetworkValidates)
{
    const auto net = workloads::lenet5WithClassifier();
    ASSERT_EQ(net.stages.size(), 5u);
    EXPECT_EQ(net.stages[2].conv.name, "C5");
    EXPECT_EQ(net.stages[2].conv.inSize, 5);
    EXPECT_TRUE(net.stages[3].conv.isFullyConnected());
    EXPECT_EQ(net.stages[4].conv.outMaps, 10);
}

TEST(FullyConnectedTest, ClassifierNetworkEndToEnd)
{
    const auto net = workloads::lenet5WithClassifier();
    FlexFlowCompiler compiler;
    const CompilationResult compiled = compiler.compile(net);

    Rng rng(63);
    const Tensor3<> input = makeRandomInput(rng, net.stages[0].conv);
    std::vector<Tensor4<>> kernels;
    for (const auto &stage : net.stages)
        kernels.push_back(makeRandomKernels(rng, stage.conv));

    FlexFlowAccelerator accel;
    accel.bindInput(input);
    accel.bindKernels(kernels);
    const Tensor3<> out = accel.run(compiled.program);

    Tensor3<> golden = input;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        golden = cropTopLeft(golden, net.stages[i].conv.inSize);
        golden = goldenConv(net.stages[i].conv, golden, kernels[i]);
        if (net.stages[i].poolAfter)
            golden = goldenPool(golden, *net.stages[i].poolAfter);
    }
    EXPECT_EQ(out, golden);
    EXPECT_EQ(out.maps(), 10);
    EXPECT_EQ(out.height(), 1);
}

// -------------------------------------------------------------------- crop

TEST(CropTest, IdentityWhenAlreadySized)
{
    Rng rng(64);
    const Tensor3<> t = makeRandomInput(rng, 2, 5);
    EXPECT_EQ(cropTopLeft(t, 5), t);
}

TEST(CropTest, DropsBorder)
{
    Rng rng(65);
    const Tensor3<> t = makeRandomInput(rng, 2, 5);
    const Tensor3<> c = cropTopLeft(t, 3);
    EXPECT_EQ(c.height(), 3);
    for (int m = 0; m < 2; ++m)
        for (int r = 0; r < 3; ++r)
            for (int col = 0; col < 3; ++col)
                EXPECT_EQ(c.at(m, r, col), t.at(m, r, col));
}

TEST(CropTest, RejectsUpscaling)
{
    logging_detail::setThrowOnError(true);
    Rng rng(66);
    const Tensor3<> t = makeRandomInput(rng, 1, 3);
    EXPECT_THROW(cropTopLeft(t, 4), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

// ------------------------------------------------------------------- stats

TEST(AcceleratorStatsTest, CountersTrackExecution)
{
    const auto spec = ConvLayerSpec::make("L0", 2, 3, 6, 3);
    Rng rng(67);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    const Program program = assemble(R"(
        cfg_layer 3 2 6 3 1
        cfg_factors 3 2 1 2 1 3
        conv
        halt
    )");
    FlexFlowAccelerator accel;
    accel.bindInput(input);
    accel.bindKernels({kernels});
    NetworkResult result;
    accel.run(program, &result);

    const auto &stats = accel.stats();
    EXPECT_DOUBLE_EQ(stats.findScalar("programsRun")->value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.findScalar("convLayers")->value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.findScalar("macs")->value(),
                     static_cast<double>(spec.macs()));
    EXPECT_DOUBLE_EQ(
        stats.findScalar("cycles")->value(),
        static_cast<double>(result.layers[0].cycles));
    EXPECT_NEAR(stats.findFormula("utilization")->value(),
                result.layers[0].utilization(), 1e-12);
}

TEST(AcceleratorStatsTest, AccumulatesAcrossRunsAndResets)
{
    const auto spec = ConvLayerSpec::make("L0", 1, 2, 4, 3);
    Rng rng(68);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    const Program program = assemble(R"(
        cfg_layer 2 1 4 3 1
        cfg_factors 2 1 1 4 1 3
        conv
        halt
    )");
    FlexFlowAccelerator accel;
    accel.bindInput(input);
    accel.bindKernels({kernels});
    accel.run(program);
    accel.run(program);
    EXPECT_DOUBLE_EQ(accel.stats().findScalar("programsRun")->value(),
                     2.0);
    accel.resetStats();
    EXPECT_DOUBLE_EQ(accel.stats().findScalar("programsRun")->value(),
                     0.0);
}

TEST(AcceleratorStatsTest, DumpContainsNames)
{
    FlexFlowAccelerator accel;
    std::ostringstream oss;
    accel.dumpStats(oss);
    EXPECT_NE(oss.str().find("flexflow.macs"), std::string::npos);
    EXPECT_NE(oss.str().find("flexflow.utilization"),
              std::string::npos);
}

// ----------------------------------------------------------- ablation knobs

TEST(AblationKnobTest, DisablingRetentionIncreasesNeuronTraffic)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    FlexFlowConfig on = FlexFlowConfig::forScale(16);
    FlexFlowConfig off = on;
    off.enableBandRetention = false;
    const WordCount with_ret =
        FlexFlowModel(on).runLayer(spec, t).traffic.neuronIn;
    const WordCount without =
        FlexFlowModel(off).runLayer(spec, t).traffic.neuronIn;
    EXPECT_GT(without, with_ret);
}

TEST(AblationKnobTest, RetentionKnobKeepsSimModelAgreement)
{
    // The cycle simulator supports the no-retention arm; it must
    // still match the model exactly.
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    FlexFlowConfig off = FlexFlowConfig::forScale(16);
    off.enableBandRetention = false;
    Rng rng(69);
    const Tensor3<> in = makeRandomInput(rng, spec);
    const Tensor4<> w = makeRandomKernels(rng, spec);
    FlexFlowConvUnit unit(off);
    LayerResult sim;
    const Tensor3<> out = unit.runLayer(spec, t, in, w, &sim);
    EXPECT_EQ(out, goldenConv(spec, in, w));
    const LayerResult model = FlexFlowModel(off).runLayer(spec, t);
    EXPECT_EQ(sim.traffic, model.traffic);
    EXPECT_EQ(sim.cycles, model.cycles);
}

TEST(AblationKnobTest, DisablingPassSplittingStreamsKernels)
{
    // AlexNet C5's slice exceeds the store: without Fig. 13(f)
    // splitting the kernels stream per batch.
    const auto spec = ConvLayerSpec::make("C5", 256, 192, 13, 3);
    const UnrollFactors t{16, 16, 1, 1, 1, 1};
    FlexFlowConfig on = FlexFlowConfig::forScale(16);
    FlexFlowConfig off = on;
    off.enablePassSplitting = false;
    const LayerResult split = FlexFlowModel(on).runLayer(spec, t);
    const LayerResult stream = FlexFlowModel(off).runLayer(spec, t);
    EXPECT_EQ(split.traffic.kernelIn, spec.kernelWords());
    EXPECT_EQ(stream.traffic.kernelIn,
              spec.kernelWords() * 13ull * 13ull);
    EXPECT_EQ(stream.traffic.psumWrite, 0u);
    EXPECT_GT(split.traffic.psumWrite, 0u);
    // Compute cycles are identical either way.
    EXPECT_EQ(split.cycles - split.fillCycles,
              stream.cycles - stream.fillCycles);
}

TEST(AblationKnobTest, SimulatorRejectsKernelStreamingArm)
{
    logging_detail::setThrowOnError(true);
    const auto spec = ConvLayerSpec::make("C5", 256, 8, 5, 3);
    const UnrollFactors t{8, 16, 1, 1, 1, 1};
    FlexFlowConfig off = FlexFlowConfig::forScale(16);
    off.enablePassSplitting = false;
    Rng rng(70);
    const Tensor3<> in = makeRandomInput(rng, spec);
    const Tensor4<> w = makeRandomKernels(rng, spec);
    FlexFlowConvUnit unit(off);
    EXPECT_THROW(unit.runLayer(spec, t, in, w), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(AblationKnobTest, KnobsDefaultToThePaperDesign)
{
    const FlexFlowConfig config;
    EXPECT_TRUE(config.enableBandRetention);
    EXPECT_TRUE(config.enablePassSplitting);
}

// ----------------------------------------------------------- system timing

TEST(SystemTimingTest, ComputeBoundWhenBandwidthAmple)
{
    LayerResult r;
    r.cycles = 1000;
    r.macs = 50000;
    r.dram.reads = 800;
    r.dram.writes = 200;
    const SystemTiming t = overlapTiming(r, 4.0);
    EXPECT_EQ(t.computeCycles, 1000u);
    EXPECT_EQ(t.dramCycles, 250u);
    EXPECT_EQ(t.totalCycles, 1000u);
    EXPECT_FALSE(t.memoryBound);
    EXPECT_DOUBLE_EQ(t.computeOccupancy(), 1.0);
}

TEST(SystemTimingTest, MemoryBoundWhenStarved)
{
    LayerResult r;
    r.cycles = 1000;
    r.macs = 50000;
    r.dram.reads = 8000;
    const SystemTiming t = overlapTiming(r, 1.0);
    EXPECT_EQ(t.totalCycles, 8000u);
    EXPECT_TRUE(t.memoryBound);
    EXPECT_DOUBLE_EQ(t.computeOccupancy(), 0.125);
}

TEST(SystemTimingTest, EffectiveGopsMonotoneInBandwidth)
{
    LayerResult r;
    r.cycles = 1000;
    r.macs = 100000;
    r.dram.reads = 4000;
    double prev = 0.0;
    for (double bw : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        const double gops = effectiveGops(r, bw);
        EXPECT_GE(gops, prev);
        prev = gops;
    }
    // Saturates at the compute roofline.
    EXPECT_DOUBLE_EQ(prev, r.gops(1.0));
}

// ------------------------------------------------- quantization reference

TEST(QuantizationTest, ErrorBoundedByHalfLsb)
{
    // With exact Q7.8 operands the wide accumulator is exact, so the
    // only error is the final rounding: <= 1/512 per output.
    Rng rng(72);
    const auto spec = ConvLayerSpec::make("X", 4, 6, 8, 3);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    const Tensor3<> fixed = goldenConv(spec, input, kernels);
    const Tensor3<double> ref =
        goldenConvFloat(input, kernels, spec.stride);
    const QuantizationError err =
        measureQuantizationError(fixed, ref);
    EXPECT_LE(err.maxAbs, 0.5 / 256.0 + 1e-12);
    EXPECT_LE(err.rms, err.maxAbs);
    EXPECT_GT(err.refPeak, 0.0);
}

TEST(QuantizationTest, SaturationShowsUpAsLargeError)
{
    // Saturating outputs diverge from the float reference by much
    // more than an LSB -- the measurement must expose that.
    Tensor3<> in(1, 1, 1);
    in.at(0, 0, 0) = Fixed16::fromDouble(127.0);
    Tensor4<> w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = Fixed16::fromDouble(127.0);
    const Tensor3<> fixed = goldenConv(in, w, 1);
    const Tensor3<double> ref = goldenConvFloat(in, w, 1);
    const QuantizationError err =
        measureQuantizationError(fixed, ref);
    EXPECT_GT(err.maxAbs, 100.0); // 127*127 saturates to ~128
}

// ------------------------------------------------------ im2col cross-check

TEST(Im2colCrossCheckTest, MatchesDirectGolden)
{
    Rng rng(71);
    for (int i = 0; i < 12; ++i) {
        const int kernel = static_cast<int>(rng.uniformInt(1, 5));
        const int stride =
            static_cast<int>(rng.uniformInt(1, std::min(2, kernel)));
        const auto spec = ConvLayerSpec::make(
            "x", static_cast<int>(rng.uniformInt(1, 6)),
            static_cast<int>(rng.uniformInt(1, 8)),
            static_cast<int>(rng.uniformInt(1, 9)), kernel, stride);
        const Tensor3<> in = makeRandomInput(rng, spec);
        const Tensor4<> w = makeRandomKernels(rng, spec);
        EXPECT_EQ(goldenConvIm2col(in, w, stride),
                  goldenConv(in, w, stride))
            << "iteration " << i;
    }
}

} // namespace
} // namespace flexsim
