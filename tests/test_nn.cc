/**
 * @file
 * Unit tests for the nn substrate: Q7.8 fixed point, tensors, layer
 * specs, the six Table-1 workloads, and the golden CONV/POOL
 * references.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "nn/fixed_point.hh"
#include "nn/golden.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

// ------------------------------------------------------------- fixed point

TEST(FixedPointTest, RoundTripExactValues)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 127.0, -128.0}) {
        EXPECT_DOUBLE_EQ(Fixed16::fromDouble(v).toDouble(), v);
    }
}

TEST(FixedPointTest, QuantizationError)
{
    // Any representable-range double lands within half an LSB.
    for (double v : {0.1, -0.37, 3.14159, -99.99}) {
        EXPECT_NEAR(Fixed16::fromDouble(v).toDouble(), v,
                    0.5 / Fixed16::scale + 1e-12);
    }
}

TEST(FixedPointTest, SaturationOnConstruction)
{
    EXPECT_EQ(Fixed16::fromDouble(1000.0).raw(), 32767);
    EXPECT_EQ(Fixed16::fromDouble(-1000.0).raw(), -32768);
}

TEST(FixedPointTest, AdditionSaturates)
{
    const Fixed16 big = Fixed16::fromRaw(32000);
    EXPECT_EQ((big + big).raw(), 32767);
    const Fixed16 small = Fixed16::fromRaw(-32000);
    EXPECT_EQ((small + small).raw(), -32768);
}

TEST(FixedPointTest, SubtractionMatchesDoubles)
{
    const Fixed16 a = Fixed16::fromDouble(2.5);
    const Fixed16 b = Fixed16::fromDouble(1.25);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), 1.25);
}

TEST(FixedPointTest, MulRawIsExactProduct)
{
    const Fixed16 a = Fixed16::fromDouble(1.5);  // 384 raw
    const Fixed16 b = Fixed16::fromDouble(-2.0); // -512 raw
    EXPECT_EQ(mulRaw(a, b), static_cast<Acc>(384) * -512);
}

TEST(FixedPointTest, QuantizeAccRoundsToNearest)
{
    // 1.5 * 2.0 = 3.0 exactly representable.
    const Acc acc = mulRaw(Fixed16::fromDouble(1.5),
                           Fixed16::fromDouble(2.0));
    EXPECT_DOUBLE_EQ(quantizeAcc(acc).toDouble(), 3.0);
}

TEST(FixedPointTest, QuantizeAccSymmetricRounding)
{
    // +0.5 LSB and -0.5 LSB round away from zero symmetrically.
    const Acc half = Acc{1} << (Fixed16::fracBits - 1);
    EXPECT_EQ(quantizeAcc(half).raw(), 1);
    EXPECT_EQ(quantizeAcc(-half).raw(), -1);
}

TEST(FixedPointTest, QuantizeAccSaturates)
{
    const Acc huge = Acc{1} << 40;
    EXPECT_EQ(quantizeAcc(huge).raw(), 32767);
    EXPECT_EQ(quantizeAcc(-huge).raw(), -32768);
}

TEST(FixedPointTest, ComparisonOperators)
{
    EXPECT_TRUE(Fixed16::fromDouble(-1.0) < Fixed16::fromDouble(1.0));
    EXPECT_EQ(Fixed16::fromDouble(0.5), Fixed16::fromDouble(0.5));
}

// ----------------------------------------------------------------- tensors

TEST(TensorTest, Tensor3Dimensions)
{
    Tensor3<> t(3, 4, 5);
    EXPECT_EQ(t.maps(), 3);
    EXPECT_EQ(t.height(), 4);
    EXPECT_EQ(t.width(), 5);
    EXPECT_EQ(t.size(), 60u);
}

TEST(TensorTest, Tensor3ZeroInitialized)
{
    Tensor3<> t(2, 2, 2);
    EXPECT_EQ(t.at(1, 1, 1).raw(), 0);
}

TEST(TensorTest, Tensor3ReadWrite)
{
    Tensor3<> t(2, 3, 3);
    t.at(1, 2, 0) = Fixed16::fromDouble(1.5);
    EXPECT_DOUBLE_EQ(t.at(1, 2, 0).toDouble(), 1.5);
    EXPECT_EQ(t.at(0, 2, 0).raw(), 0);
}

TEST(TensorTest, Tensor3BoundsChecked)
{
    logging_detail::setThrowOnError(true);
    Tensor3<> t(1, 2, 2);
    EXPECT_THROW(t.at(0, 2, 0), std::runtime_error);
    EXPECT_THROW(t.at(1, 0, 0), std::runtime_error);
    EXPECT_THROW(t.at(0, 0, -1), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(TensorTest, Tensor3Contains)
{
    Tensor3<> t(1, 2, 2);
    EXPECT_TRUE(t.contains(0, 1, 1));
    EXPECT_FALSE(t.contains(0, 2, 0));
    EXPECT_FALSE(t.contains(-1, 0, 0));
}

TEST(TensorTest, Tensor4ReadWriteAndBounds)
{
    logging_detail::setThrowOnError(true);
    Tensor4<> t(2, 3, 4, 4);
    t.at(1, 2, 3, 3) = Fixed16::fromDouble(-2.0);
    EXPECT_DOUBLE_EQ(t.at(1, 2, 3, 3).toDouble(), -2.0);
    EXPECT_EQ(t.size(), 2u * 3 * 4 * 4);
    EXPECT_THROW(t.at(2, 0, 0, 0), std::runtime_error);
    EXPECT_THROW(t.at(0, 0, 4, 0), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(TensorTest, EqualityComparison)
{
    Tensor3<> a(1, 2, 2), b(1, 2, 2);
    EXPECT_EQ(a, b);
    b.at(0, 0, 0) = Fixed16::fromDouble(1.0);
    EXPECT_NE(a, b);
}

// -------------------------------------------------------------- layer spec

TEST(LayerSpecTest, MakeDerivesInputSize)
{
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    EXPECT_EQ(spec.inSize, 32);
    const auto strided = ConvLayerSpec::make("S", 3, 48, 55, 11, 4);
    EXPECT_EQ(strided.inSize, (55 - 1) * 4 + 11);
}

TEST(LayerSpecTest, MacCount)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    EXPECT_EQ(spec.macs(), 16ull * 6 * 10 * 10 * 5 * 5);
}

TEST(LayerSpecTest, WordCounts)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    EXPECT_EQ(spec.inputWords(), 6ull * 14 * 14);
    EXPECT_EQ(spec.kernelWords(), 16ull * 6 * 5 * 5);
    EXPECT_EQ(spec.outputWords(), 16ull * 10 * 10);
}

TEST(LayerSpecTest, ValidateRejectsBadSpecs)
{
    logging_detail::setThrowOnError(true);
    ConvLayerSpec bad = ConvLayerSpec::make("ok", 1, 1, 4, 3);
    bad.inSize = 5; // too small for 4 outputs of a 3x3 kernel
    EXPECT_THROW(bad.validate(), std::runtime_error);
    ConvLayerSpec neg = ConvLayerSpec::make("ok", 1, 1, 4, 3);
    neg.outMaps = 0;
    EXPECT_THROW(neg.validate(), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(LayerSpecTest, NetworkNextKernelAndPoolWindow)
{
    const auto net = workloads::lenet5();
    ASSERT_EQ(net.stages.size(), 2u);
    EXPECT_EQ(net.nextKernel(0), std::optional<int>(5));
    EXPECT_EQ(net.nextKernel(1), std::nullopt);
    EXPECT_EQ(net.poolWindowAfter(0), 2);
    EXPECT_EQ(net.poolWindowAfter(1), 1);
}

// --------------------------------------------------------------- workloads

TEST(WorkloadsTest, AllSixPresent)
{
    const auto nets = workloads::all();
    ASSERT_EQ(nets.size(), 6u);
    EXPECT_EQ(nets[0].name, "PV");
    EXPECT_EQ(nets[1].name, "FR");
    EXPECT_EQ(nets[2].name, "LeNet-5");
    EXPECT_EQ(nets[3].name, "HG");
    EXPECT_EQ(nets[4].name, "AlexNet");
    EXPECT_EQ(nets[5].name, "VGG-11");
}

TEST(WorkloadsTest, Table1LayerShapes)
{
    const auto pv = workloads::pv();
    ASSERT_EQ(pv.stages.size(), 5u);
    EXPECT_EQ(pv.stages[0].conv.outMaps, 8);
    EXPECT_EQ(pv.stages[0].conv.outSize, 45);
    EXPECT_EQ(pv.stages[0].conv.kernel, 6);
    EXPECT_EQ(pv.stages[4].conv.outMaps, 6);
    EXPECT_EQ(pv.stages[4].conv.outSize, 4);

    const auto alex = workloads::alexnet();
    ASSERT_EQ(alex.stages.size(), 5u);
    EXPECT_EQ(alex.stages[0].conv.stride, 4);
    EXPECT_EQ(alex.stages[0].conv.kernel, 11);
    EXPECT_EQ(alex.stages[2].conv.inMaps, 256);
}

TEST(WorkloadsTest, AllNetworksValidate)
{
    for (const auto &net : workloads::all())
        EXPECT_NO_THROW(net.validate());
}

TEST(WorkloadsTest, VggIsLargestByMacs)
{
    const auto nets = workloads::all();
    const MacCount vgg = nets[5].totalMacs();
    for (std::size_t i = 0; i + 1 < nets.size(); ++i)
        EXPECT_LT(nets[i].totalMacs(), vgg);
}

TEST(WorkloadsTest, SmallFourSubset)
{
    const auto small = workloads::smallFour();
    ASSERT_EQ(small.size(), 4u);
    EXPECT_EQ(small[3].name, "HG");
}

// ------------------------------------------------------------------ golden

TEST(GoldenConvTest, IdentityKernelCopiesInput)
{
    // A 1x1 kernel of value 1.0 reproduces the input map.
    Rng rng(5);
    const Tensor3<> in = makeRandomInput(rng, 1, 4);
    Tensor4<> ker(1, 1, 1, 1);
    ker.at(0, 0, 0, 0) = Fixed16::fromDouble(1.0);
    const Tensor3<> out = goldenConv(in, ker, 1);
    EXPECT_EQ(out, in);
}

TEST(GoldenConvTest, HandComputedExample)
{
    // 2x2 input, 2x2 kernel, single output neuron.
    Tensor3<> in(1, 2, 2);
    in.at(0, 0, 0) = Fixed16::fromDouble(1.0);
    in.at(0, 0, 1) = Fixed16::fromDouble(2.0);
    in.at(0, 1, 0) = Fixed16::fromDouble(-1.0);
    in.at(0, 1, 1) = Fixed16::fromDouble(0.5);
    Tensor4<> ker(1, 1, 2, 2);
    ker.at(0, 0, 0, 0) = Fixed16::fromDouble(2.0);
    ker.at(0, 0, 0, 1) = Fixed16::fromDouble(1.0);
    ker.at(0, 0, 1, 0) = Fixed16::fromDouble(0.5);
    ker.at(0, 0, 1, 1) = Fixed16::fromDouble(4.0);
    const Tensor3<> out = goldenConv(in, ker, 1);
    ASSERT_EQ(out.height(), 1);
    // 1*2 + 2*1 + (-1)*0.5 + 0.5*4 = 5.5
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 5.5);
}

TEST(GoldenConvTest, MultiMapAccumulation)
{
    // Two identical input maps with 1x1 unit kernels double the value.
    Tensor3<> in(2, 1, 1);
    in.at(0, 0, 0) = Fixed16::fromDouble(1.25);
    in.at(1, 0, 0) = Fixed16::fromDouble(2.0);
    Tensor4<> ker(1, 2, 1, 1);
    ker.at(0, 0, 0, 0) = Fixed16::fromDouble(1.0);
    ker.at(0, 1, 0, 0) = Fixed16::fromDouble(1.0);
    const Tensor3<> out = goldenConv(in, ker, 1);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 3.25);
}

TEST(GoldenConvTest, StrideSelectsPositions)
{
    Rng rng(6);
    const Tensor3<> in = makeRandomInput(rng, 1, 7);
    const Tensor4<> ker = makeRandomKernels(rng, 1, 1, 3);
    const Tensor3<> s1 = goldenConv(in, ker, 1);
    const Tensor3<> s2 = goldenConv(in, ker, 2);
    ASSERT_EQ(s2.height(), 3);
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            EXPECT_EQ(s2.at(0, r, c), s1.at(0, 2 * r, 2 * c));
}

TEST(GoldenConvTest, SpecOverloadChecksShapes)
{
    logging_detail::setThrowOnError(true);
    const auto spec = ConvLayerSpec::make("X", 2, 3, 4, 3);
    Rng rng(7);
    const Tensor3<> wrong = makeRandomInput(rng, 1, spec.inSize);
    const Tensor4<> ker = makeRandomKernels(rng, spec);
    EXPECT_THROW(goldenConv(spec, wrong, ker), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(GoldenPoolTest, MaxPoolHandExample)
{
    Tensor3<> in(1, 2, 2);
    in.at(0, 0, 0) = Fixed16::fromDouble(1.0);
    in.at(0, 0, 1) = Fixed16::fromDouble(-3.0);
    in.at(0, 1, 0) = Fixed16::fromDouble(2.5);
    in.at(0, 1, 1) = Fixed16::fromDouble(0.0);
    PoolLayerSpec pool{2, 2, PoolOp::Max};
    const Tensor3<> out = goldenPool(in, pool);
    ASSERT_EQ(out.height(), 1);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 2.5);
}

TEST(GoldenPoolTest, AveragePoolRounds)
{
    Tensor3<> in(1, 2, 2);
    in.at(0, 0, 0) = Fixed16::fromRaw(1);
    in.at(0, 0, 1) = Fixed16::fromRaw(2);
    in.at(0, 1, 0) = Fixed16::fromRaw(3);
    in.at(0, 1, 1) = Fixed16::fromRaw(4);
    PoolLayerSpec pool{2, 2, PoolOp::Average};
    const Tensor3<> out = goldenPool(in, pool);
    // (1+2+3+4)/4 = 2.5 -> rounds away from zero to 3.
    EXPECT_EQ(out.at(0, 0, 0).raw(), 3);
}

TEST(GoldenPoolTest, FloorSemanticsDropPartialWindows)
{
    PoolLayerSpec pool{2, 2, PoolOp::Max};
    EXPECT_EQ(pooledSize(45, pool), 22);
    EXPECT_EQ(pooledSize(5, pool), 2);
    EXPECT_EQ(pooledSize(1, pool), 0);
}

TEST(GoldenPoolTest, PreservesMapCount)
{
    Rng rng(8);
    const Tensor3<> in = makeRandomInput(rng, 3, 6);
    PoolLayerSpec pool{2, 2, PoolOp::Max};
    const Tensor3<> out = goldenPool(in, pool);
    EXPECT_EQ(out.maps(), 3);
    EXPECT_EQ(out.height(), 3);
}

// ------------------------------------------------------------- tensor init

TEST(TensorInitTest, Deterministic)
{
    Rng a(3), b(3);
    EXPECT_EQ(makeRandomInput(a, 2, 5), makeRandomInput(b, 2, 5));
}

TEST(TensorInitTest, ValueRanges)
{
    Rng rng(4);
    const Tensor3<> in = makeRandomInput(rng, 1, 10);
    for (int r = 0; r < 10; ++r) {
        for (int c = 0; c < 10; ++c) {
            const double v = in.at(0, r, c).toDouble();
            EXPECT_GE(v, -1.01);
            EXPECT_LE(v, 1.01);
        }
    }
    const Tensor4<> ker = makeRandomKernels(rng, 2, 2, 3);
    for (int i = 0; i < 3; ++i) {
        const double v = ker.at(1, 1, i, i).toDouble();
        EXPECT_GE(v, -0.26);
        EXPECT_LE(v, 0.26);
    }
}

TEST(TensorInitTest, SpecOverloadsMatchShapes)
{
    Rng rng(5);
    const auto spec = ConvLayerSpec::make("X", 3, 4, 6, 3, 2);
    const Tensor3<> in = makeRandomInput(rng, spec);
    EXPECT_EQ(in.maps(), 3);
    EXPECT_EQ(in.height(), spec.inSize);
    const Tensor4<> ker = makeRandomKernels(rng, spec);
    EXPECT_EQ(ker.outMaps(), 4);
    EXPECT_EQ(ker.height(), 3);
}

} // namespace
} // namespace flexsim
