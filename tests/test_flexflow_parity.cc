/**
 * @file
 * Golden-equivalence suite for the flattened FlexFlow cycle simulator.
 *
 * For every CONV layer of every Table-1 workload, the cycle simulator
 * must stay bit-identical to goldenConv() and the analytic model, and
 * the threaded simulator (threads = 4) must reproduce the
 * single-threaded LayerResult and ConvUnitDiagnostics field by field.
 * The four small workloads run the full {band retention on/off} x
 * {threads 1, 4} matrix; AlexNet and VGG-11 run the default retention
 * mode with both thread counts (golden is computed once per layer).
 *
 * One TEST per network so ctest can spread the workloads over cores.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/factor_search.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

void
expectSameRecord(const LayerResult &got, const LayerResult &want)
{
    EXPECT_EQ(got.layerName, want.layerName);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.fillCycles, want.fillCycles);
    EXPECT_EQ(got.macs, want.macs);
    EXPECT_EQ(got.activeMacCycles, want.activeMacCycles);
    EXPECT_EQ(got.peCount, want.peCount);
    EXPECT_EQ(got.traffic, want.traffic);
    EXPECT_EQ(got.dram, want.dram);
    EXPECT_EQ(got.localStoreReads, want.localStoreReads);
    EXPECT_EQ(got.localStoreWrites, want.localStoreWrites);
}

void
expectSameDiagnostics(const ConvUnitDiagnostics &got,
                      const ConvUnitDiagnostics &want)
{
    EXPECT_EQ(got.batches, want.batches);
    EXPECT_EQ(got.peakColumnStoreWords, want.peakColumnStoreWords);
    EXPECT_EQ(got.deliveryStallCycles, want.deliveryStallCycles);
    EXPECT_EQ(got.maxTasksPerPe, want.maxTasksPerPe);
    EXPECT_EQ(got.faults, want.faults);
}

void
runNetworkParity(const NetworkSpec &net, std::uint64_t seed_base,
                 bool both_band_modes, std::size_t stage_begin = 0,
                 std::size_t stage_end = SIZE_MAX)
{
    std::vector<bool> band_modes{true};
    if (both_band_modes)
        band_modes.push_back(false);
    if (stage_end > net.stages.size())
        stage_end = net.stages.size();

    FlexFlowConfig base;
    for (std::size_t si = stage_begin; si < stage_end; ++si) {
        const ConvLayerSpec &spec = net.stages[si].conv;
        SCOPED_TRACE(net.name + "/" + spec.name);
        const UnrollFactors t =
            searchBestFactors(spec, base.d).factors;

        Rng rng(seed_base + si * 1337);
        const Tensor3<> input = makeRandomInput(rng, spec);
        const Tensor4<> kernels = makeRandomKernels(rng, spec);
        const Tensor3<> golden = goldenConv(spec, input, kernels);

        for (const bool band : band_modes) {
            SCOPED_TRACE(band ? "band-retention" : "no-retention");
            FlexFlowConfig cfg = base;
            cfg.enableBandRetention = band;

            // Single-threaded reference run.
            cfg.threads = 1;
            LayerResult ref_result;
            ConvUnitDiagnostics ref_diag;
            const Tensor3<> ref_out = FlexFlowConvUnit(cfg).runLayer(
                spec, t, input, kernels, &ref_result, &ref_diag);
            EXPECT_EQ(ref_out, golden);

            // The modelled counters must agree with the analytic
            // model, as they did before the hot-path rewrite.
            const LayerResult model =
                FlexFlowModel(cfg).runLayer(spec, t);
            EXPECT_EQ(ref_result.cycles, model.cycles);
            EXPECT_EQ(ref_result.fillCycles, model.fillCycles);
            EXPECT_EQ(ref_result.activeMacCycles,
                      model.activeMacCycles);
            EXPECT_EQ(ref_result.traffic, model.traffic);
            EXPECT_EQ(ref_result.localStoreReads,
                      model.localStoreReads);
            EXPECT_EQ(ref_result.localStoreWrites,
                      model.localStoreWrites);
            EXPECT_EQ(ref_result.dram, model.dram);

            // The threaded run must be bit-identical in outputs and
            // every reported counter.
            cfg.threads = 4;
            LayerResult mt_result;
            ConvUnitDiagnostics mt_diag;
            const Tensor3<> mt_out = FlexFlowConvUnit(cfg).runLayer(
                spec, t, input, kernels, &mt_result, &mt_diag);
            EXPECT_EQ(mt_out, golden);
            expectSameRecord(mt_result, ref_result);
            expectSameDiagnostics(mt_diag, ref_diag);
        }
    }
}

TEST(FlexFlowParityTest, PV)
{
    runNetworkParity(workloads::pv(), 0xbead1001, true);
}

TEST(FlexFlowParityTest, FR)
{
    runNetworkParity(workloads::fr(), 0xbead2002, true);
}

TEST(FlexFlowParityTest, LeNet5)
{
    runNetworkParity(workloads::lenet5(), 0xbead3003, true);
}

TEST(FlexFlowParityTest, HG)
{
    runNetworkParity(workloads::hg(), 0xbead4004, true);
}

TEST(FlexFlowParityTest, AlexNet)
{
    runNetworkParity(workloads::alexnet(), 0xbead5005, false);
}

// VGG-11 is split in two so ctest can run the halves concurrently;
// the split point roughly balances the halves' wall clock.
TEST(FlexFlowParityTest, VGG11Front)
{
    runNetworkParity(workloads::vgg11(), 0xbead6006, false, 0, 4);
}

TEST(FlexFlowParityTest, VGG11Back)
{
    runNetworkParity(workloads::vgg11(), 0xbead6006, false, 4);
}

/**
 * The zero-fault fast path: attaching a FaultPlan that touches no
 * datapath (serving-level events and a DRAM slowdown only) must keep
 * outputs, the LayerResult, and the ConvUnitDiagnostics bit-identical
 * to a unit with no plan attached, for both thread counts.
 */
TEST(FlexFlowParityTest, HealthyFaultPlanIsBitIdentical)
{
    const NetworkSpec net = workloads::lenet5();
    fault::FaultPlan plan;
    plan.dramSlowdown = 2.0;
    plan.accelEvents.push_back(
        {fault::AccelEvent::Kind::FailStop, 0, 1000, 1.0});

    FlexFlowConfig base;
    for (const NetworkSpec::Stage &stage : net.stages) {
        const ConvLayerSpec &spec = stage.conv;
        SCOPED_TRACE(spec.name);
        const UnrollFactors t =
            searchBestFactors(spec, base.d).factors;
        Rng rng(0xbead7007);
        const Tensor3<> input = makeRandomInput(rng, spec);
        const Tensor4<> kernels = makeRandomKernels(rng, spec);

        for (const int threads : {1, 4}) {
            FlexFlowConfig cfg = base;
            cfg.threads = threads;

            LayerResult ref_result;
            ConvUnitDiagnostics ref_diag;
            const Tensor3<> ref_out = FlexFlowConvUnit(cfg).runLayer(
                spec, t, input, kernels, &ref_result, &ref_diag);

            FlexFlowConvUnit faulted(cfg);
            faulted.setFaultPlan(&plan);
            LayerResult result;
            ConvUnitDiagnostics diag;
            const Tensor3<> out = faulted.runLayer(
                spec, t, input, kernels, &result, &diag);

            EXPECT_EQ(out, ref_out);
            expectSameRecord(result, ref_result);
            expectSameDiagnostics(diag, ref_diag);
            EXPECT_EQ(diag.faults, fault::FaultDiagnostics{});
        }
    }
}

} // namespace
} // namespace flexsim
