/**
 * @file
 * Golden-equivalence suite for the flattened FlexFlow cycle simulator.
 *
 * For every CONV layer of every Table-1 workload, the cycle simulator
 * must stay bit-identical to goldenConv() and the analytic model, and
 * the threaded simulator (threads = 4) must reproduce the
 * single-threaded LayerResult and ConvUnitDiagnostics field by field.
 * The four small workloads run the full {band retention on/off} x
 * {threads 1, 4} matrix; AlexNet and VGG-11 run the default retention
 * mode with both thread counts (golden is computed once per layer).
 *
 * One TEST per network so ctest can spread the workloads over cores.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/factor_search.hh"
#include "fault/fault_plan.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_array.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"
#include "sim/thread_pool.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

namespace flexsim {
namespace {

void
expectSameRecord(const LayerResult &got, const LayerResult &want)
{
    EXPECT_EQ(got.layerName, want.layerName);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.fillCycles, want.fillCycles);
    EXPECT_EQ(got.macs, want.macs);
    EXPECT_EQ(got.activeMacCycles, want.activeMacCycles);
    EXPECT_EQ(got.peCount, want.peCount);
    EXPECT_EQ(got.traffic, want.traffic);
    EXPECT_EQ(got.dram, want.dram);
    EXPECT_EQ(got.localStoreReads, want.localStoreReads);
    EXPECT_EQ(got.localStoreWrites, want.localStoreWrites);
}

void
expectSameDiagnostics(const ConvUnitDiagnostics &got,
                      const ConvUnitDiagnostics &want)
{
    EXPECT_EQ(got.batches, want.batches);
    EXPECT_EQ(got.peakColumnStoreWords, want.peakColumnStoreWords);
    EXPECT_EQ(got.deliveryStallCycles, want.deliveryStallCycles);
    EXPECT_EQ(got.maxTasksPerPe, want.maxTasksPerPe);
    EXPECT_EQ(got.faults, want.faults);
}

void
runNetworkParity(const NetworkSpec &net, std::uint64_t seed_base,
                 bool both_band_modes, std::size_t stage_begin = 0,
                 std::size_t stage_end = SIZE_MAX)
{
    std::vector<bool> band_modes{true};
    if (both_band_modes)
        band_modes.push_back(false);
    if (stage_end > net.stages.size())
        stage_end = net.stages.size();

    FlexFlowConfig base;
    for (std::size_t si = stage_begin; si < stage_end; ++si) {
        const ConvLayerSpec &spec = net.stages[si].conv;
        SCOPED_TRACE(net.name + "/" + spec.name);
        const UnrollFactors t =
            searchBestFactors(spec, base.d).factors;

        Rng rng(seed_base + si * 1337);
        const Tensor3<> input = makeRandomInput(rng, spec);
        const Tensor4<> kernels = makeRandomKernels(rng, spec);
        const Tensor3<> golden = goldenConv(spec, input, kernels);

        for (const bool band : band_modes) {
            SCOPED_TRACE(band ? "band-retention" : "no-retention");
            FlexFlowConfig cfg = base;
            cfg.enableBandRetention = band;

            // Single-threaded reference run.
            cfg.threads = 1;
            LayerResult ref_result;
            ConvUnitDiagnostics ref_diag;
            const Tensor3<> ref_out = FlexFlowConvUnit(cfg).runLayer(
                spec, t, input, kernels, &ref_result, &ref_diag);
            EXPECT_EQ(ref_out, golden);

            // The modelled counters must agree with the analytic
            // model, as they did before the hot-path rewrite.
            const LayerResult model =
                FlexFlowModel(cfg).runLayer(spec, t);
            EXPECT_EQ(ref_result.cycles, model.cycles);
            EXPECT_EQ(ref_result.fillCycles, model.fillCycles);
            EXPECT_EQ(ref_result.activeMacCycles,
                      model.activeMacCycles);
            EXPECT_EQ(ref_result.traffic, model.traffic);
            EXPECT_EQ(ref_result.localStoreReads,
                      model.localStoreReads);
            EXPECT_EQ(ref_result.localStoreWrites,
                      model.localStoreWrites);
            EXPECT_EQ(ref_result.dram, model.dram);

            // The threaded run must be bit-identical in outputs and
            // every reported counter.
            cfg.threads = 4;
            LayerResult mt_result;
            ConvUnitDiagnostics mt_diag;
            const Tensor3<> mt_out = FlexFlowConvUnit(cfg).runLayer(
                spec, t, input, kernels, &mt_result, &mt_diag);
            EXPECT_EQ(mt_out, golden);
            expectSameRecord(mt_result, ref_result);
            expectSameDiagnostics(mt_diag, ref_diag);
        }
    }
}

TEST(FlexFlowParityTest, PV)
{
    runNetworkParity(workloads::pv(), 0xbead1001, true);
}

TEST(FlexFlowParityTest, FR)
{
    runNetworkParity(workloads::fr(), 0xbead2002, true);
}

TEST(FlexFlowParityTest, LeNet5)
{
    runNetworkParity(workloads::lenet5(), 0xbead3003, true);
}

TEST(FlexFlowParityTest, HG)
{
    runNetworkParity(workloads::hg(), 0xbead4004, true);
}

TEST(FlexFlowParityTest, AlexNet)
{
    runNetworkParity(workloads::alexnet(), 0xbead5005, false);
}

// VGG-11 is split in two so ctest can run the halves concurrently;
// the split point roughly balances the halves' wall clock.
TEST(FlexFlowParityTest, VGG11Front)
{
    runNetworkParity(workloads::vgg11(), 0xbead6006, false, 0, 4);
}

TEST(FlexFlowParityTest, VGG11Back)
{
    runNetworkParity(workloads::vgg11(), 0xbead6006, false, 4);
}

/**
 * The zero-fault fast path: attaching a FaultPlan that touches no
 * datapath (serving-level events and a DRAM slowdown only) must keep
 * outputs, the LayerResult, and the ConvUnitDiagnostics bit-identical
 * to a unit with no plan attached, for both thread counts.
 */
TEST(FlexFlowParityTest, HealthyFaultPlanIsBitIdentical)
{
    const NetworkSpec net = workloads::lenet5();
    fault::FaultPlan plan;
    plan.dramSlowdown = 2.0;
    plan.accelEvents.push_back(
        {fault::AccelEvent::Kind::FailStop, 0, 1000, 1.0});

    FlexFlowConfig base;
    for (const NetworkSpec::Stage &stage : net.stages) {
        const ConvLayerSpec &spec = stage.conv;
        SCOPED_TRACE(spec.name);
        const UnrollFactors t =
            searchBestFactors(spec, base.d).factors;
        Rng rng(0xbead7007);
        const Tensor3<> input = makeRandomInput(rng, spec);
        const Tensor4<> kernels = makeRandomKernels(rng, spec);

        for (const int threads : {1, 4}) {
            FlexFlowConfig cfg = base;
            cfg.threads = threads;

            LayerResult ref_result;
            ConvUnitDiagnostics ref_diag;
            const Tensor3<> ref_out = FlexFlowConvUnit(cfg).runLayer(
                spec, t, input, kernels, &ref_result, &ref_diag);

            FlexFlowConvUnit faulted(cfg);
            faulted.setFaultPlan(&plan);
            LayerResult result;
            ConvUnitDiagnostics diag;
            const Tensor3<> out = faulted.runLayer(
                spec, t, input, kernels, &result, &diag);

            EXPECT_EQ(out, ref_out);
            expectSameRecord(result, ref_result);
            expectSameDiagnostics(diag, ref_diag);
            EXPECT_EQ(diag.faults, fault::FaultDiagnostics{});
        }
    }
}

/*
 * Cross-architecture parity: every cycle simulator dispatches its
 * tiles through the shared sim::ThreadPool, so each one must produce
 * bit-identical outputs, LayerResult counters, and fault diagnostics
 * at 1 vs 4 host threads -- with and without a seeded FaultPlan.
 */

enum class Arch { FlexFlow, Systolic, Mapping2D, Tiling };

struct ArchOutcome
{
    Tensor3<> out;
    LayerResult rec;
    ConvUnitDiagnostics ffDiag;
    fault::FaultDiagnostics faults;
};

ArchOutcome
runArch(Arch arch, const ConvLayerSpec &spec, const Tensor3<> &input,
        const Tensor4<> &kernels, int threads,
        const fault::FaultPlan *plan)
{
    ArchOutcome o;
    switch (arch) {
      case Arch::FlexFlow: {
        FlexFlowConfig cfg;
        cfg.threads = threads;
        const UnrollFactors t = searchBestFactors(spec, cfg.d).factors;
        FlexFlowConvUnit unit(cfg);
        if (plan != nullptr)
            unit.setFaultPlan(plan);
        o.out =
            unit.runLayer(spec, t, input, kernels, &o.rec, &o.ffDiag);
        o.faults = o.ffDiag.faults;
        break;
      }
      case Arch::Systolic: {
        SystolicConfig cfg;
        cfg.threads = threads;
        SystolicArraySim sim(cfg);
        if (plan != nullptr)
            sim.setFaultPlan(plan);
        o.out = sim.runLayer(spec, input, kernels, &o.rec);
        o.faults = sim.faultDiagnostics();
        break;
      }
      case Arch::Mapping2D: {
        Mapping2DConfig cfg;
        cfg.threads = threads;
        Mapping2DArraySim sim(cfg);
        if (plan != nullptr)
            sim.setFaultPlan(plan);
        o.out = sim.runLayer(spec, input, kernels, &o.rec);
        o.faults = sim.faultDiagnostics();
        break;
      }
      case Arch::Tiling: {
        TilingConfig cfg;
        cfg.threads = threads;
        TilingArraySim sim(cfg);
        if (plan != nullptr)
            sim.setFaultPlan(plan);
        o.out = sim.runLayer(spec, input, kernels, &o.rec);
        o.faults = sim.faultDiagnostics();
        break;
      }
    }
    return o;
}

void
runCrossArchParity(Arch arch, const NetworkSpec &net,
                   std::uint64_t seed_base, std::size_t stage_begin = 0,
                   std::size_t stage_end = SIZE_MAX)
{
    if (stage_end > net.stages.size())
        stage_end = net.stages.size();

    // Stuck PEs at in-grid coordinates plus a low transient flip
    // rate: datapath faults only, valid in every architecture's
    // geometry (no dead rows/columns, so the FlexFlow factor fit is
    // untouched).
    fault::FaultPlan plan;
    plan.seed = 0xfee1fee1ull;
    plan.stuckPes.push_back(fault::PeCoord{0, 0});
    plan.stuckPes.push_back(fault::PeCoord{1, 2});
    plan.flipRate = 1e-4;
    plan.flipMask = 0x40;

    for (std::size_t si = stage_begin; si < stage_end; ++si) {
        const ConvLayerSpec &spec = net.stages[si].conv;
        SCOPED_TRACE(net.name + "/" + spec.name);
        Rng rng(seed_base + si * 7919);
        const Tensor3<> input = makeRandomInput(rng, spec);
        const Tensor4<> kernels = makeRandomKernels(rng, spec);

        for (const fault::FaultPlan *p :
             {static_cast<const fault::FaultPlan *>(nullptr),
              static_cast<const fault::FaultPlan *>(&plan)}) {
            SCOPED_TRACE(p != nullptr ? "seeded-fault-plan"
                                      : "zero-fault");
            const ArchOutcome ref =
                runArch(arch, spec, input, kernels, 1, p);
            const ArchOutcome mt =
                runArch(arch, spec, input, kernels, 4, p);
            EXPECT_EQ(mt.out, ref.out);
            expectSameRecord(mt.rec, ref.rec);
            expectSameDiagnostics(mt.ffDiag, ref.ffDiag);
            EXPECT_EQ(mt.faults, ref.faults);
            if (p != nullptr) {
                // PE (0, 0) takes part in every layer here, so the
                // plan must actually have bitten.
                EXPECT_GT(ref.faults.stuckMacs, 0u);
            }
        }
    }
}

const std::uint64_t kCrossSeed = 0xc0551234ull;

TEST(CrossArchParityTest, FlexFlowSmallNets)
{
    runCrossArchParity(Arch::FlexFlow, workloads::pv(), kCrossSeed);
    runCrossArchParity(Arch::FlexFlow, workloads::fr(), kCrossSeed);
    runCrossArchParity(Arch::FlexFlow, workloads::lenet5(),
                       kCrossSeed);
    runCrossArchParity(Arch::FlexFlow, workloads::hg(), kCrossSeed);
}

TEST(CrossArchParityTest, SystolicSmallNets)
{
    runCrossArchParity(Arch::Systolic, workloads::pv(), kCrossSeed);
    runCrossArchParity(Arch::Systolic, workloads::fr(), kCrossSeed);
    runCrossArchParity(Arch::Systolic, workloads::lenet5(),
                       kCrossSeed);
    runCrossArchParity(Arch::Systolic, workloads::hg(), kCrossSeed);
}

TEST(CrossArchParityTest, Mapping2DSmallNets)
{
    runCrossArchParity(Arch::Mapping2D, workloads::pv(), kCrossSeed);
    runCrossArchParity(Arch::Mapping2D, workloads::fr(), kCrossSeed);
    runCrossArchParity(Arch::Mapping2D, workloads::lenet5(),
                       kCrossSeed);
    runCrossArchParity(Arch::Mapping2D, workloads::hg(), kCrossSeed);
}

TEST(CrossArchParityTest, TilingSmallNets)
{
    runCrossArchParity(Arch::Tiling, workloads::pv(), kCrossSeed);
    runCrossArchParity(Arch::Tiling, workloads::fr(), kCrossSeed);
    runCrossArchParity(Arch::Tiling, workloads::lenet5(), kCrossSeed);
    runCrossArchParity(Arch::Tiling, workloads::hg(), kCrossSeed);
}

// One big layer per architecture (VGG-11 C1): enough MAC volume that
// the 1e-4 transient rate draws thousands of flips across thread
// partitions.
TEST(CrossArchParityTest, FlexFlowVgg11C1)
{
    runCrossArchParity(Arch::FlexFlow, workloads::vgg11(), kCrossSeed,
                       0, 1);
}

TEST(CrossArchParityTest, SystolicVgg11C1)
{
    runCrossArchParity(Arch::Systolic, workloads::vgg11(), kCrossSeed,
                       0, 1);
}

TEST(CrossArchParityTest, Mapping2DVgg11C1)
{
    runCrossArchParity(Arch::Mapping2D, workloads::vgg11(),
                       kCrossSeed, 0, 1);
}

TEST(CrossArchParityTest, TilingVgg11C1)
{
    runCrossArchParity(Arch::Tiling, workloads::vgg11(), kCrossSeed, 0,
                       1);
}

/**
 * Regression for the old `threads = min(threads, m_blocks)` cap: a
 * layer with a single output-map block (outMaps <= tm) used to fall
 * back to one worker.  The flat (mb, rb, cb) decomposition still has
 * r_blocks * c_blocks tiles to spread, so a 4-thread run must go
 * through the shared pool (pooledTiles() advances) and stay
 * bit-identical to the single-threaded run.
 */
TEST(CrossArchParityTest, OneMapBlockLayerStillSpreads)
{
    const ConvLayerSpec spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5}; // tm = 16 => one mb block
    Rng rng(0xbead8008);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    FlexFlowConfig cfg;
    cfg.threads = 1;
    LayerResult ref_result;
    ConvUnitDiagnostics ref_diag;
    const Tensor3<> ref_out = FlexFlowConvUnit(cfg).runLayer(
        spec, t, input, kernels, &ref_result, &ref_diag);

    const std::uint64_t tiles_before =
        sim::ThreadPool::shared().pooledTiles();
    cfg.threads = 4;
    LayerResult mt_result;
    ConvUnitDiagnostics mt_diag;
    const Tensor3<> mt_out = FlexFlowConvUnit(cfg).runLayer(
        spec, t, input, kernels, &mt_result, &mt_diag);
    const std::uint64_t tiles_after =
        sim::ThreadPool::shared().pooledTiles();

    EXPECT_GT(tiles_after, tiles_before)
        << "a one-mb-block layer must still reach the shared pool";
    EXPECT_EQ(mt_out, ref_out);
    expectSameRecord(mt_result, ref_result);
    expectSameDiagnostics(mt_diag, ref_diag);
}

} // namespace
} // namespace flexsim
