/**
 * @file
 * Unit tests for the cycle-stepped simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"
#include "sim/simulator.hh"

namespace flexsim {
namespace {

/** Counts down to idle; records evaluate/commit interleaving. */
class Countdown : public Clocked
{
  public:
    Countdown(std::string name, int remaining,
              std::vector<std::string> *trace = nullptr)
        : Clocked(std::move(name)), remaining_(remaining),
          trace_(trace)
    {
    }

    void
    evaluate(Cycle cycle) override
    {
        (void)cycle;
        next_ = remaining_ > 0 ? remaining_ - 1 : 0;
        if (trace_)
            trace_->push_back("eval:" + name());
    }

    void
    commit(Cycle cycle) override
    {
        (void)cycle;
        remaining_ = next_;
        if (trace_)
            trace_->push_back("commit:" + name());
    }

    bool idle() const override { return remaining_ == 0; }

    int remaining() const { return remaining_; }

  private:
    int remaining_;
    int next_ = 0;
    std::vector<std::string> *trace_;
};

TEST(CycleSimulatorTest, StepAdvancesTime)
{
    CycleSimulator sim;
    Countdown c("c", 3);
    sim.add(&c);
    EXPECT_EQ(sim.now(), 0u);
    sim.step();
    EXPECT_EQ(sim.now(), 1u);
    EXPECT_EQ(c.remaining(), 2);
}

TEST(CycleSimulatorTest, TwoPhaseOrdering)
{
    // All evaluates must precede all commits within one cycle.
    CycleSimulator sim;
    std::vector<std::string> trace;
    Countdown a("a", 1, &trace);
    Countdown b("b", 1, &trace);
    sim.add(&a);
    sim.add(&b);
    sim.step();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0], "eval:a");
    EXPECT_EQ(trace[1], "eval:b");
    EXPECT_EQ(trace[2], "commit:a");
    EXPECT_EQ(trace[3], "commit:b");
}

TEST(CycleSimulatorTest, RunExecutesExactCount)
{
    CycleSimulator sim;
    Countdown c("c", 100);
    sim.add(&c);
    sim.run(40);
    EXPECT_EQ(sim.now(), 40u);
    EXPECT_EQ(c.remaining(), 60);
}

TEST(CycleSimulatorTest, RunUntilIdleStopsAtQuiesce)
{
    CycleSimulator sim;
    Countdown fast("fast", 2);
    Countdown slow("slow", 5);
    sim.add(&fast);
    sim.add(&slow);
    const Cycle executed = sim.runUntilIdle(100);
    EXPECT_EQ(executed, 5u);
    EXPECT_TRUE(sim.allIdle());
}

TEST(CycleSimulatorTest, RunUntilIdleRespectsBudget)
{
    CycleSimulator sim;
    Countdown c("c", 1000);
    sim.add(&c);
    const Cycle executed = sim.runUntilIdle(10);
    EXPECT_EQ(executed, 10u);
    EXPECT_FALSE(sim.allIdle());
}

TEST(CycleSimulatorTest, EmptySimulatorIsIdle)
{
    CycleSimulator sim;
    EXPECT_TRUE(sim.allIdle());
    EXPECT_EQ(sim.runUntilIdle(10), 0u);
}

TEST(CycleSimulatorTest, IdleComponentRunsNoExtraWork)
{
    CycleSimulator sim;
    Countdown c("c", 0);
    sim.add(&c);
    EXPECT_TRUE(sim.allIdle());
    EXPECT_EQ(sim.runUntilIdle(5), 0u);
}

} // namespace
} // namespace flexsim
