/**
 * @file
 * Tests for the 2D-Mapping (SFMNSS) baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mapping2d/mapping2d_array.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"

namespace flexsim {
namespace {

// ------------------------------------------------------------------- model

TEST(Mapping2DModelTest, ConfigForScale)
{
    const Mapping2DConfig cfg = Mapping2DConfig::forScale(16);
    EXPECT_EQ(cfg.rows, 16);
    EXPECT_EQ(cfg.cols, 16);
    EXPECT_EQ(cfg.peCount(), 256u);
}

TEST(Mapping2DModelTest, PaperTable3LeNetUtilization)
{
    // LeNet-5 "C3 on C1-opt": a 28x28 array running the 10x10 layer
    // uses 100/784 = 12.7% of the PEs (paper Table 3).
    Mapping2DConfig cfg;
    cfg.rows = 28;
    cfg.cols = 28;
    const auto c3 = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const LayerResult r = Mapping2DModel(cfg).runLayer(c3);
    EXPECT_NEAR(r.utilization(), 100.0 / 784.0, 1e-9);
}

TEST(Mapping2DModelTest, PaperTable3LeNetReverseUtilization)
{
    // LeNet-5 "C1 on C3-opt": a 10x10 array running the 28x28 layer
    // reaches 784/(9*100) = 87% (paper Table 3).
    Mapping2DConfig cfg;
    cfg.rows = 10;
    cfg.cols = 10;
    const auto c1 = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const LayerResult r = Mapping2DModel(cfg).runLayer(c1);
    EXPECT_NEAR(r.utilization(), 784.0 / 900.0, 1e-9);
}

TEST(Mapping2DModelTest, BlockCyclesAreNKK)
{
    Mapping2DConfig cfg;
    cfg.rows = 10;
    cfg.cols = 10;
    const auto spec = ConvLayerSpec::make("X", 3, 2, 10, 4);
    const LayerResult r = Mapping2DModel(cfg).runLayer(spec);
    // 2 output maps * 1 block each * (N*K*K) + fill.
    EXPECT_EQ(r.cycles - r.fillCycles, 2u * 3 * 16);
}

TEST(Mapping2DModelTest, NeuronLoadsWithShiftReuse)
{
    Mapping2DConfig cfg;
    const Mapping2DModel model(cfg);
    const auto spec = ConvLayerSpec::make("X", 1, 1, 16, 5);
    // Full block: Tr*Tc + K(K-1)Tr + (K-1)Tc.
    EXPECT_EQ(model.blockNeuronLoads(spec, 16, 16),
              16u * 16 + 5 * 4 * 16 + 4 * 16);
}

TEST(Mapping2DModelTest, StrideDefeatsShiftReuse)
{
    Mapping2DConfig cfg;
    const Mapping2DModel model(cfg);
    const auto strided = ConvLayerSpec::make("X", 1, 1, 8, 5, 2);
    EXPECT_EQ(model.blockNeuronLoads(strided, 8, 8),
              8u * 8 * 25);
}

TEST(Mapping2DModelTest, NoPsumTraffic)
{
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const LayerResult r = Mapping2DModel().runLayer(spec);
    EXPECT_EQ(r.traffic.psumRead, 0u);
    EXPECT_EQ(r.traffic.psumWrite, 0u);
}

TEST(Mapping2DModelTest, InputsRereadPerOutputMap)
{
    // The paper notes 2D-Mapping re-reads inputs per output map; the
    // neuron traffic must scale with M.
    Mapping2DConfig cfg;
    const auto m1 = ConvLayerSpec::make("M1", 2, 1, 10, 3);
    const auto m4 = ConvLayerSpec::make("M4", 2, 4, 10, 3);
    const Mapping2DModel model(cfg);
    EXPECT_EQ(model.runLayer(m4).traffic.neuronIn,
              4 * model.runLayer(m1).traffic.neuronIn);
}

// --------------------------------------------------------------- cycle sim

struct Mapping2DCase
{
    const char *name;
    int in_maps, out_maps, out_size, kernel, stride;
    int rows, cols;
};

class Mapping2DSweep : public ::testing::TestWithParam<Mapping2DCase>
{
};

TEST_P(Mapping2DSweep, SimMatchesGoldenAndModel)
{
    const Mapping2DCase &p = GetParam();
    const auto spec = ConvLayerSpec::make(p.name, p.in_maps, p.out_maps,
                                          p.out_size, p.kernel,
                                          p.stride);
    Mapping2DConfig cfg;
    cfg.rows = p.rows;
    cfg.cols = p.cols;

    Rng rng(0x2d + p.out_size * 3 + p.kernel);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    Mapping2DArraySim sim(cfg);
    LayerResult sim_result;
    const Tensor3<> out =
        sim.runLayer(spec, input, kernels, &sim_result);

    EXPECT_EQ(out, goldenConv(spec, input, kernels));

    const LayerResult model_result = Mapping2DModel(cfg).runLayer(spec);
    EXPECT_EQ(sim_result.cycles, model_result.cycles);
    EXPECT_EQ(sim_result.fillCycles, model_result.fillCycles);
    EXPECT_EQ(sim_result.activeMacCycles,
              model_result.activeMacCycles);
    EXPECT_EQ(sim_result.traffic, model_result.traffic);
    EXPECT_EQ(sim_result.localStoreReads,
              model_result.localStoreReads);
    EXPECT_EQ(sim_result.localStoreWrites,
              model_result.localStoreWrites);
    EXPECT_EQ(sim_result.dram, model_result.dram);
}

INSTANTIATE_TEST_SUITE_P(
    LayerGrid, Mapping2DSweep,
    ::testing::Values(
        Mapping2DCase{"tiny", 1, 1, 2, 2, 1, 2, 2},
        Mapping2DCase{"exact_block", 1, 1, 8, 3, 1, 8, 8},
        Mapping2DCase{"ragged_blocks", 2, 3, 10, 3, 1, 4, 4},
        Mapping2DCase{"lenet_c1", 1, 6, 28, 5, 1, 16, 16},
        Mapping2DCase{"lenet_c3", 6, 16, 10, 5, 1, 16, 16},
        Mapping2DCase{"array_bigger_than_map", 3, 2, 5, 3, 1, 9, 9},
        Mapping2DCase{"tall_array", 2, 2, 9, 4, 1, 6, 3},
        Mapping2DCase{"wide_array", 2, 2, 9, 4, 1, 3, 6},
        Mapping2DCase{"strided", 3, 4, 6, 5, 2, 4, 4},
        Mapping2DCase{"strided_large", 1, 2, 7, 4, 3, 5, 5}),
    [](const ::testing::TestParamInfo<Mapping2DCase> &param_info) {
        return param_info.param.name;
    });

TEST(Mapping2DSimTest, MismatchedTensorsCaught)
{
    logging_detail::setThrowOnError(true);
    Mapping2DArraySim sim;
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    Rng rng(2);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> wrong = makeRandomKernels(rng, 6, 1, 3);
    EXPECT_THROW(sim.runLayer(spec, input, wrong),
                 std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(Mapping2DSimTest, UtilizationDropsOnSmallMaps)
{
    // Fig. 15's 2D-Mapping weakness: later layers smaller than the
    // array waste PEs.
    Mapping2DConfig cfg = Mapping2DConfig::forScale(16);
    Mapping2DArraySim sim(cfg);
    const auto small = ConvLayerSpec::make("small", 2, 2, 6, 3);
    Rng rng(5);
    const Tensor3<> input = makeRandomInput(rng, small);
    const Tensor4<> kernels = makeRandomKernels(rng, small);
    LayerResult r;
    sim.runLayer(small, input, kernels, &r);
    EXPECT_NEAR(r.utilization(), 36.0 / 256.0, 1e-9);
}

} // namespace
} // namespace flexsim
