/**
 * @file
 * Tests for the FlexFlow core: lane mapping, the Figure-11 address
 * FSM, the IADP buffer layouts, the pooling unit, the analytic model,
 * the cycle-level conv unit (vs golden and vs model), and the
 * program-driven accelerator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.hh"
#include "flexflow/accelerator.hh"
#include "flexflow/address_fsm.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "flexflow/iadp_layout.hh"
#include "flexflow/mapping.hh"
#include "flexflow/pooling_unit.hh"
#include "flexflow/schedule.hh"
#include "mem/sram_buffer.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"

namespace flexsim {
namespace {

// ----------------------------------------------------------------- mapping

TEST(LaneMappingTest, RowFormulaMatchesPaper)
{
    // Output neuron O(m, r, c) -> Row((m mod Tm)*Tr*Tc +
    // (r mod Tr)*Tc + c mod Tc).
    const LaneMapping map(UnrollFactors{2, 1, 1, 2, 1, 4});
    EXPECT_EQ(map.rowOf(0, 0, 0), 0);
    EXPECT_EQ(map.rowOf(0, 0, 1), 1);
    EXPECT_EQ(map.rowOf(1, 0, 0), 2);
    EXPECT_EQ(map.rowOf(3, 5, 7), map.rowOf(1, 5, 1));
}

TEST(LaneMappingTest, RowDecodeInvertsEncode)
{
    const LaneMapping map(UnrollFactors{3, 2, 2, 2, 1, 2});
    for (int row = 0; row < map.usedRows(); ++row) {
        const RowLane lane = map.rowLane(row);
        EXPECT_EQ(map.rowOf(lane.mOff, lane.rOff, lane.cOff), row);
    }
}

TEST(LaneMappingTest, ColumnPartitionsWords)
{
    // Every input word maps to exactly one column, and all used
    // columns are hit.
    const LaneMapping map(UnrollFactors{1, 2, 1, 1, 2, 3});
    std::set<int> seen;
    for (int n = 0; n < 4; ++n)
        for (int x = 0; x < 6; ++x)
            for (int y = 0; y < 6; ++y) {
                const int col = map.colOf(n, x, y);
                EXPECT_GE(col, 0);
                EXPECT_LT(col, map.usedCols());
                seen.insert(col);
            }
    EXPECT_EQ(static_cast<int>(seen.size()), map.usedCols());
}

TEST(LaneMappingTest, ColDecodeConsistent)
{
    const LaneMapping map(UnrollFactors{1, 3, 1, 1, 2, 2});
    for (int col = 0; col < map.usedCols(); ++col) {
        const ColLane lane = map.colLane(col);
        EXPECT_EQ(map.colOf(lane.nClass, lane.xClass, lane.yClass),
                  col);
    }
}

TEST(LaneMappingTest, UsageCounts)
{
    const LaneMapping map(UnrollFactors{2, 3, 2, 2, 1, 4});
    EXPECT_EQ(map.usedRows(), 8);
    EXPECT_EQ(map.usedCols(), 12);
}

// ------------------------------------------------------------- address FSM

TEST(AddressFsmTest, WalksWindowsWithIncr)
{
    // Window of 3 accesses, step 1, two windows per row starting 2
    // apart (a Tc = 2 walk), rows 8 apart.
    AddressFsm fsm(3, 2, 1, 2, 8);
    EXPECT_EQ(fsm.state(), AddrState::Init);
    EXPECT_EQ(fsm.next(), 0u); // INIT address
    EXPECT_EQ(fsm.state(), AddrState::Incr);
    EXPECT_EQ(fsm.next(), 1u);
    EXPECT_EQ(fsm.next(), 2u);
    EXPECT_EQ(fsm.state(), AddrState::Hold);
    // Second window starts at window_stride = 2.
    EXPECT_EQ(fsm.next(), 2u);
    EXPECT_EQ(fsm.next(), 3u);
    EXPECT_EQ(fsm.next(), 4u);
    EXPECT_EQ(fsm.state(), AddrState::Jump);
    // Next row starts at row_stride = 8.
    EXPECT_EQ(fsm.next(), 8u);
}

TEST(AddressFsmTest, KernelStoreStepTwo)
{
    // The paper's Group(0,0)-of-C1 kernel store walks with step 2.
    AddressFsm fsm(4, 1, 2, 0, 1);
    EXPECT_EQ(fsm.next(), 0u);
    EXPECT_EQ(fsm.next(), 2u);
    EXPECT_EQ(fsm.next(), 4u);
    EXPECT_EQ(fsm.next(), 6u);
    EXPECT_EQ(fsm.state(), AddrState::Jump);
}

TEST(AddressFsmTest, HoldKeepsAddressWhenStrideZero)
{
    // window_stride 0 means the next window re-reads the same words
    // (M2/HOLD semantics).
    AddressFsm fsm(2, 3, 1, 0, 4);
    EXPECT_EQ(fsm.next(), 0u);
    EXPECT_EQ(fsm.next(), 1u);
    EXPECT_EQ(fsm.state(), AddrState::Hold);
    EXPECT_EQ(fsm.next(), 0u);
    EXPECT_EQ(fsm.next(), 1u);
    EXPECT_EQ(fsm.next(), 0u);
    EXPECT_EQ(fsm.next(), 1u);
    EXPECT_EQ(fsm.state(), AddrState::Jump);
}

TEST(AddressFsmTest, ResetReturnsToInit)
{
    AddressFsm fsm(2, 2, 1, 2, 4);
    fsm.next();
    fsm.next();
    fsm.reset();
    EXPECT_EQ(fsm.state(), AddrState::Init);
    EXPECT_EQ(fsm.address(), 0u);
    EXPECT_EQ(fsm.next(), 0u);
}

TEST(AddressFsmTest, StateNames)
{
    EXPECT_STREQ(addrStateName(AddrState::Init), "INIT");
    EXPECT_STREQ(addrStateName(AddrState::Incr), "INCR");
    EXPECT_STREQ(addrStateName(AddrState::Hold), "HOLD");
    EXPECT_STREQ(addrStateName(AddrState::Jump), "JUMP");
}

// -------------------------------------------------------------------- IADP

TEST(IadpLayoutTest, NeuronBankIsColumnClass)
{
    const UnrollFactors t{2, 2, 1, 2, 2, 2};
    const auto spec = ConvLayerSpec::make("X", 4, 4, 6, 3);
    const NeuronIadpLayout layout(t, spec);
    const LaneMapping map(t);
    EXPECT_EQ(layout.numBanks(),
              static_cast<unsigned>(map.usedCols()));
    for (int n = 0; n < spec.inMaps; ++n)
        for (int x = 0; x < spec.inSize; ++x)
            for (int y = 0; y < spec.inSize; ++y)
                EXPECT_EQ(layout.addressOf(n, x, y).bank,
                          static_cast<unsigned>(map.colOf(n, x, y)));
}

TEST(IadpLayoutTest, NeuronAddressesInjective)
{
    const UnrollFactors t{1, 2, 1, 1, 2, 3};
    const auto spec = ConvLayerSpec::make("X", 3, 2, 5, 3);
    const NeuronIadpLayout layout(t, spec);
    std::set<std::pair<unsigned, std::size_t>> seen;
    for (int n = 0; n < spec.inMaps; ++n) {
        for (int x = 0; x < spec.inSize; ++x) {
            for (int y = 0; y < spec.inSize; ++y) {
                const BufferAddress addr = layout.addressOf(n, x, y);
                EXPECT_TRUE(
                    seen.insert({addr.bank, addr.index}).second)
                    << "duplicate address for (" << n << "," << x
                    << "," << y << ")";
                EXPECT_LT(addr.index, layout.wordsPerBank());
            }
        }
    }
}

TEST(IadpLayoutTest, OneCycleDeliveryIsConflictFree)
{
    // IADP's purpose: the D words a cycle feeds to the D columns come
    // from D distinct banks.
    const UnrollFactors t{1, 2, 1, 1, 2, 4};
    const auto spec = ConvLayerSpec::make("X", 4, 2, 6, 4);
    const NeuronIadpLayout layout(t, spec);
    const LaneMapping map(t);
    // Any set of words with pairwise-distinct column classes has
    // pairwise-distinct banks.
    std::set<unsigned> banks;
    for (int col = 0; col < map.usedCols(); ++col) {
        const ColLane lane = map.colLane(col);
        const BufferAddress addr =
            layout.addressOf(lane.nClass, lane.xClass, lane.yClass);
        EXPECT_TRUE(banks.insert(addr.bank).second);
    }
}

TEST(IadpLayoutTest, DynamicDeliveryThroughSramBufferConflictFree)
{
    // End-to-end IADP property: place a real layer's input into a
    // banked SramBuffer via the layout, then replay a delivery
    // schedule that sends one word to every used column per cycle --
    // the buffer must report zero bank conflicts.
    const auto spec = ConvLayerSpec::make("X", 4, 4, 6, 3);
    const UnrollFactors t{4, 2, 1, 2, 1, 4};
    const NeuronIadpLayout layout(t, spec);
    const LaneMapping map(t);
    Rng rng(51);
    const Tensor3<> input = makeRandomInput(rng, spec);

    SramBuffer buffer("neuron", 32 * 1024, layout.numBanks());
    for (int n = 0; n < spec.inMaps; ++n) {
        for (int x = 0; x < spec.inSize; ++x) {
            for (int y = 0; y < spec.inSize; ++y) {
                const BufferAddress addr = layout.addressOf(n, x, y);
                buffer.write(addr.bank, addr.index,
                             input.at(n, x, y));
            }
        }
    }
    // The bulk population above is not cycle-accurate; only the read
    // schedule below is under test.
    buffer.resetCounters();

    // Delivery schedule: per cycle, the reading controller pops the
    // next undelivered word of each column class.
    std::vector<std::vector<BufferAddress>> per_column(
        layout.numBanks());
    std::vector<std::vector<Fixed16>> expected(layout.numBanks());
    for (int n = 0; n < spec.inMaps; ++n) {
        for (int x = 0; x < spec.inSize; ++x) {
            for (int y = 0; y < spec.inSize; ++y) {
                const int col = map.colOf(n, x, y);
                per_column[col].push_back(layout.addressOf(n, x, y));
                expected[col].push_back(input.at(n, x, y));
            }
        }
    }
    std::size_t longest = 0;
    for (const auto &queue : per_column)
        longest = std::max(longest, queue.size());
    for (std::size_t cycle = 0; cycle < longest; ++cycle) {
        buffer.beginCycle();
        for (unsigned col = 0; col < layout.numBanks(); ++col) {
            if (cycle >= per_column[col].size())
                continue;
            const BufferAddress addr = per_column[col][cycle];
            EXPECT_EQ(buffer.read(addr.bank, addr.index),
                      expected[col][cycle]);
        }
    }
    EXPECT_EQ(buffer.bankConflicts(), 0u);
}

TEST(IadpLayoutTest, KernelAddressesInjective)
{
    const UnrollFactors t{2, 1, 2, 2, 1, 1};
    const auto spec = ConvLayerSpec::make("X", 3, 5, 4, 3);
    const KernelIadpLayout layout(t, spec);
    EXPECT_EQ(layout.numBanks(), static_cast<unsigned>(2 * 2 * 2));
    std::set<std::pair<unsigned, std::size_t>> seen;
    for (int m = 0; m < spec.outMaps; ++m)
        for (int n = 0; n < spec.inMaps; ++n)
            for (int i = 0; i < spec.kernel; ++i)
                for (int j = 0; j < spec.kernel; ++j) {
                    const BufferAddress addr =
                        layout.addressOf(m, n, i, j);
                    EXPECT_TRUE(
                        seen.insert({addr.bank, addr.index}).second);
                    EXPECT_LT(addr.bank, layout.numBanks());
                    EXPECT_LT(addr.index, layout.wordsPerBank());
                }
}

TEST(IadpLayoutTest, KernelSequentialReadsRotateBanks)
{
    // A group's serial kernel read stream must rotate through its
    // Tr*Tc banks so consecutive cycles never collide.
    const UnrollFactors t{2, 1, 2, 3, 1, 1};
    const auto spec = ConvLayerSpec::make("X", 2, 4, 4, 3);
    const KernelIadpLayout layout(t, spec);
    const int banks_per_group = t.tr * t.tc;
    unsigned prev_bank = 0;
    bool first = true;
    for (int n = 0; n < spec.inMaps; ++n) {
        for (int i = 0; i < spec.kernel; ++i) {
            for (int j = 0; j < spec.kernel; ++j) {
                const BufferAddress addr = layout.addressOf(0, n, i, j);
                EXPECT_LT(addr.bank,
                          static_cast<unsigned>(banks_per_group));
                if (!first) {
                    EXPECT_EQ(addr.bank,
                              (prev_bank + 1) %
                                  static_cast<unsigned>(
                                      banks_per_group));
                }
                prev_bank = addr.bank;
                first = false;
            }
        }
    }
}

TEST(IadpLayoutTest, IpdrReplicationFactor)
{
    const UnrollFactors t{2, 1, 2, 3, 1, 1};
    const auto spec = ConvLayerSpec::make("X", 2, 4, 4, 3);
    EXPECT_EQ(KernelIadpLayout(t, spec).replicationFactor(), 6);
}

// ----------------------------------------------------------------- pooling

TEST(PoolingUnitTest, MatchesGoldenMax)
{
    Rng rng(21);
    const Tensor3<> in = makeRandomInput(rng, 3, 8);
    const PoolLayerSpec spec{2, 2, PoolOp::Max};
    EXPECT_EQ(PoolingUnit(4).run(in, spec), goldenPool(in, spec));
}

TEST(PoolingUnitTest, MatchesGoldenAverage)
{
    Rng rng(22);
    const Tensor3<> in = makeRandomInput(rng, 2, 9);
    const PoolLayerSpec spec{3, 2, PoolOp::Average};
    EXPECT_EQ(PoolingUnit(16).run(in, spec), goldenPool(in, spec));
}

TEST(PoolingUnitTest, StatsAccounting)
{
    Rng rng(23);
    const Tensor3<> in = makeRandomInput(rng, 2, 8);
    const PoolLayerSpec spec{2, 2, PoolOp::Max};
    PoolingUnit::Stats stats;
    PoolingUnit(4).run(in, spec, &stats);
    const WordCount windows = 2 * 4 * 4;
    EXPECT_EQ(stats.writes, windows);
    EXPECT_EQ(stats.reads, windows * 4);
    EXPECT_EQ(stats.cycles, (windows / 4) * 4);
}

TEST(PoolingUnitTest, MoreLanesFewerCycles)
{
    Rng rng(24);
    const Tensor3<> in = makeRandomInput(rng, 4, 16);
    const PoolLayerSpec spec{2, 2, PoolOp::Max};
    PoolingUnit::Stats narrow, wide;
    PoolingUnit(2).run(in, spec, &narrow);
    PoolingUnit(32).run(in, spec, &wide);
    EXPECT_GT(narrow.cycles, wide.cycles);
}

// ------------------------------------------------------------------- model

TEST(FlexFlowModelTest, CyclesFollowBatchSchedule)
{
    FlexFlowConfig cfg;
    cfg.d = 16;
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    const LayerResult r = FlexFlowModel(cfg).runLayer(spec, t);
    // batches = 1*10*10, steps = 2*5*1 = 10, plus a fill batch.
    EXPECT_EQ(r.cycles, 100u * 10 + 10);
    EXPECT_EQ(r.fillCycles, 10u);
}

TEST(FlexFlowModelTest, UtilizationMatchesEquations)
{
    FlexFlowConfig cfg;
    cfg.d = 16;
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    const LayerResult r = FlexFlowModel(cfg).runLayer(spec, t);
    EXPECT_NEAR(r.utilization(), utilizationTotal(t, spec, 16), 1e-12);
}

TEST(FlexFlowModelTest, NoPsumTraffic)
{
    const auto spec = ConvLayerSpec::make("C5", 12, 16, 8, 3);
    const LayerResult r = FlexFlowModel().runLayer(spec);
    EXPECT_EQ(r.traffic.psumRead, 0u);
    EXPECT_EQ(r.traffic.psumWrite, 0u);
}

TEST(FlexFlowModelTest, KernelResidency)
{
    FlexFlowConfig cfg;
    const FlexFlowModel model(cfg);
    const auto small = ConvLayerSpec::make("S", 6, 16, 10, 5);
    EXPECT_TRUE(model.kernelsResident(small, {16, 3, 1, 1, 1, 5}));
    // ceil(256/1)*9 = 2304 words >> 128-word store.
    const auto big = ConvLayerSpec::make("B", 256, 192, 13, 3);
    EXPECT_FALSE(model.kernelsResident(big, {16, 1, 1, 1, 1, 1}));
    // With Tn = 16 the per-PE slice is 16*9 = 144 words: still over.
    EXPECT_FALSE(model.kernelsResident(big, {1, 16, 4, 4, 1, 1}));
}

TEST(FlexFlowModelTest, OversizedKernelSliceSplitsIntoPasses)
{
    // AlexNet C5: the per-PE slice (ceil(256/16)*9 = 144 words)
    // exceeds the 128-word kernel store; the schedule splits the
    // input maps into two passes (Figure 13(f)) and cycles partial
    // sums through the output buffer -- kernels are still broadcast
    // exactly once.
    FlexFlowConfig cfg;
    const auto big = ConvLayerSpec::make("C5", 256, 192, 13, 3);
    const UnrollFactors t{16, 16, 1, 1, 1, 1};
    const LayerResult r = FlexFlowModel(cfg).runLayer(big, t);
    EXPECT_EQ(r.traffic.kernelIn, big.kernelWords());
    EXPECT_EQ(r.traffic.psumWrite, big.outputWords());
    EXPECT_EQ(r.traffic.psumRead, big.outputWords());
    // The split costs no extra compute cycles.
    EXPECT_EQ(r.cycles - r.fillCycles,
              static_cast<Cycle>(ceilDiv(192, 16)) * 13 * 13 *
                  (ceilDiv(256, 16) * 9));
}

TEST(FlexFlowScheduleTest, StridedKernelClassesDoNotRotate)
{
    // AlexNet C1 (stride 4, Ti = Tj = 4): the residue classes are
    // stride-aligned, so each PE's slice is only ceil(11/4)^2 words
    // per input map and stays resident -- no pass splitting.
    FlexFlowConfig cfg;
    const auto c1 = ConvLayerSpec::make("C1", 3, 48, 55, 11, 4);
    const FlexFlowSchedule sched =
        planSchedule(c1, {16, 1, 1, 1, 4, 4}, cfg);
    EXPECT_EQ(sched.spanI, 3);
    EXPECT_EQ(sched.spanJ, 3);
    EXPECT_EQ(sched.splits(), 1);
}

TEST(FlexFlowScheduleTest, UnitStrideReplicatesWholeKernel)
{
    // With stride 1 the classes rotate with the output row, so the RA
    // mechanism replicates the whole kernel (paper Section 4.3).
    FlexFlowConfig cfg;
    const auto spec = ConvLayerSpec::make("X", 6, 16, 10, 5);
    const FlexFlowSchedule sched =
        planSchedule(spec, {16, 3, 1, 1, 1, 5}, cfg);
    EXPECT_EQ(sched.spanI, 5);
    EXPECT_EQ(sched.spanJ, 5);
    EXPECT_EQ(sched.sliceWords, 2 * 25);
    EXPECT_EQ(sched.splits(), 1);
}

TEST(FlexFlowScheduleTest, PassStepsSumToTotal)
{
    FlexFlowConfig cfg;
    const auto big = ConvLayerSpec::make("C6", 256, 256, 50, 3);
    const UnrollFactors t{16, 16, 1, 1, 1, 1};
    const FlexFlowSchedule sched = planSchedule(big, t, cfg);
    EXPECT_GT(sched.splits(), 1);
    long long sum = 0;
    for (const SchedulePass &pass : sched.passes) {
        EXPECT_LT(pass.nBegin, pass.nEnd);
        sum += pass.steps;
    }
    EXPECT_EQ(sum, sched.stepsTotal);
    EXPECT_EQ(sched.stepsTotal,
              ceilDiv(256, 16) * ceilDiv(3, 1) * ceilDiv(3, 1));
    // Pass boundaries land on whole input maps covering [0, N).
    EXPECT_EQ(sched.passes.front().nBegin, 0);
    EXPECT_EQ(sched.passes.back().nEnd, 256);
    for (std::size_t p = 1; p < sched.passes.size(); ++p) {
        EXPECT_EQ(sched.passes[p].nBegin,
                  sched.passes[p - 1].nEnd);
    }
}

TEST(FlexFlowModelTest, InfeasibleFactorsRejected)
{
    logging_detail::setThrowOnError(true);
    FlexFlowConfig cfg;
    cfg.d = 4;
    const auto spec = ConvLayerSpec::make("X", 4, 4, 4, 3);
    EXPECT_THROW(
        FlexFlowModel(cfg).runLayer(spec, {4, 4, 2, 2, 2, 2}),
        std::runtime_error);
    logging_detail::setThrowOnError(false);
}

// --------------------------------------------------------------- conv unit

struct FlexFlowCase
{
    const char *name;
    int in_maps, out_maps, out_size, kernel, stride;
    int d;
    UnrollFactors t;
};

class FlexFlowSweep : public ::testing::TestWithParam<FlexFlowCase>
{
};

TEST_P(FlexFlowSweep, SimMatchesGoldenAndModel)
{
    const FlexFlowCase &p = GetParam();
    const auto spec = ConvLayerSpec::make(p.name, p.in_maps, p.out_maps,
                                          p.out_size, p.kernel,
                                          p.stride);
    FlexFlowConfig cfg;
    cfg.d = p.d;

    Rng rng(0xf1ef + p.out_size * 7 + p.kernel);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    FlexFlowConvUnit unit(cfg);
    LayerResult sim_result;
    ConvUnitDiagnostics diag;
    const Tensor3<> out = unit.runLayer(spec, p.t, input, kernels,
                                        &sim_result, &diag);

    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    EXPECT_EQ(diag.maxTasksPerPe,
              static_cast<std::size_t>(
                  ceilDiv(spec.inMaps, p.t.tn) *
                  ceilDiv(spec.kernel, p.t.ti) *
                  ceilDiv(spec.kernel, p.t.tj)));

    const LayerResult model_result =
        FlexFlowModel(cfg).runLayer(spec, p.t);
    EXPECT_EQ(sim_result.cycles, model_result.cycles);
    EXPECT_EQ(sim_result.fillCycles, model_result.fillCycles);
    EXPECT_EQ(sim_result.activeMacCycles,
              model_result.activeMacCycles);
    EXPECT_EQ(sim_result.traffic, model_result.traffic);
    EXPECT_EQ(sim_result.localStoreReads,
              model_result.localStoreReads);
    EXPECT_EQ(sim_result.localStoreWrites,
              model_result.localStoreWrites);
    EXPECT_EQ(sim_result.dram, model_result.dram);
}

INSTANTIATE_TEST_SUITE_P(
    LayerGrid, FlexFlowSweep,
    ::testing::Values(
        FlexFlowCase{"tiny", 1, 1, 2, 2, 1, 4,
                     UnrollFactors{1, 1, 1, 2, 1, 2}},
        FlexFlowCase{"lenet_c1_paper", 1, 6, 28, 5, 1, 16,
                     UnrollFactors{3, 1, 1, 5, 3, 5}},
        FlexFlowCase{"lenet_c3_paper", 6, 16, 10, 5, 1, 16,
                     UnrollFactors{16, 3, 1, 1, 1, 5}},
        FlexFlowCase{"pv_c1_paper", 1, 8, 45, 6, 1, 16,
                     UnrollFactors{8, 1, 1, 2, 2, 6}},
        FlexFlowCase{"pv_c3_paper", 8, 12, 20, 3, 1, 16,
                     UnrollFactors{3, 8, 1, 5, 1, 2}},
        FlexFlowCase{"hg_c3_paper", 6, 12, 8, 4, 1, 16,
                     UnrollFactors{4, 2, 1, 4, 2, 4}},
        FlexFlowCase{"pure_np", 2, 2, 8, 3, 1, 8,
                     UnrollFactors{1, 1, 2, 4, 1, 1}},
        FlexFlowCase{"pure_sp", 2, 2, 6, 3, 1, 8,
                     UnrollFactors{1, 1, 1, 1, 2, 3}},
        FlexFlowCase{"pure_fp", 8, 8, 4, 3, 1, 8,
                     UnrollFactors{8, 8, 1, 1, 1, 1}},
        FlexFlowCase{"ragged_everything", 5, 7, 9, 4, 1, 8,
                     UnrollFactors{3, 2, 2, 1, 3, 1}},
        FlexFlowCase{"strided", 3, 4, 6, 5, 2, 8,
                     UnrollFactors{4, 1, 1, 2, 2, 2}},
        FlexFlowCase{"alexnet_c1_like", 3, 8, 9, 11, 4, 16,
                     UnrollFactors{8, 1, 1, 2, 2, 8}},
        FlexFlowCase{"small_array", 2, 3, 5, 3, 1, 4,
                     UnrollFactors{2, 1, 1, 2, 1, 3}}),
    [](const ::testing::TestParamInfo<FlexFlowCase> &param_info) {
        return param_info.param.name;
    });

TEST(FlexFlowConvUnitTest, ResultIndependentOfFactorChoice)
{
    // Different feasible factor mixes must produce bit-identical
    // outputs (the whole point of MFMNMS flexibility).
    const auto spec = ConvLayerSpec::make("X", 4, 6, 8, 3);
    Rng rng(31);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConfig cfg;
    cfg.d = 8;
    FlexFlowConvUnit unit(cfg);
    const Tensor3<> gold = goldenConv(spec, input, kernels);
    for (const UnrollFactors &t :
         {UnrollFactors{1, 1, 1, 1, 1, 1}, UnrollFactors{6, 4, 1, 1, 1, 2},
          UnrollFactors{2, 2, 2, 2, 1, 2}, UnrollFactors{1, 1, 2, 4, 1, 1},
          UnrollFactors{1, 4, 1, 1, 1, 2}}) {
        EXPECT_EQ(unit.runLayer(spec, t, input, kernels), gold)
            << t.toString();
    }
}

TEST(FlexFlowConvUnitTest, StallDiagnosticBoundedByBandStarts)
{
    // Delivery stalls only happen when a row band's first batch loads
    // its fresh window; they must stay a small fraction of runtime.
    const auto spec = ConvLayerSpec::make("C1", 1, 6, 28, 5);
    const UnrollFactors t{3, 1, 1, 5, 3, 5};
    Rng rng(32);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConvUnit unit{FlexFlowConfig{}};
    LayerResult r;
    ConvUnitDiagnostics diag;
    unit.runLayer(spec, t, input, kernels, &r, &diag);
    EXPECT_LT(diag.deliveryStallCycles, r.cycles / 4);
}

TEST(FlexFlowConvUnitTest, ColumnStoreFitsLocalStore)
{
    // For the paper's configurations the retained window must fit the
    // 128-word neuron local store.
    const auto spec = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    const UnrollFactors t{16, 3, 1, 1, 1, 5};
    Rng rng(33);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConfig cfg;
    FlexFlowConvUnit unit(cfg);
    ConvUnitDiagnostics diag;
    unit.runLayer(spec, t, input, kernels, nullptr, &diag);
    EXPECT_LE(diag.peakColumnStoreWords, cfg.neuronStoreWords);
}

TEST(FlexFlowConvUnitTest, RejectsInfeasibleFactors)
{
    logging_detail::setThrowOnError(true);
    const auto spec = ConvLayerSpec::make("X", 4, 4, 4, 3);
    Rng rng(34);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    FlexFlowConfig cfg;
    cfg.d = 4;
    FlexFlowConvUnit unit(cfg);
    EXPECT_THROW(
        unit.runLayer(spec, {4, 4, 2, 2, 2, 2}, input, kernels),
        std::runtime_error);
    logging_detail::setThrowOnError(false);
}

// ------------------------------------------------------------- accelerator

TEST(FlexFlowAcceleratorTest, RunsHandWrittenProgram)
{
    const auto spec = ConvLayerSpec::make("L0", 2, 3, 6, 3);
    Rng rng(41);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    const Program program = assemble(R"(
        cfg_layer 3 2 6 3 1
        cfg_factors 3 2 1 2 1 3
        load_kernels 54
        load_input 128
        conv
        store_output 108
        halt
    )");

    FlexFlowAccelerator accel;
    accel.bindInput(input);
    accel.bindKernels({kernels});
    NetworkResult result;
    const Tensor3<> out = accel.run(program, &result);
    EXPECT_EQ(out, goldenConv(spec, input, kernels));
    ASSERT_EQ(result.layers.size(), 1u);
    EXPECT_EQ(result.layers[0].dram.reads, 54u + 128);
    EXPECT_EQ(result.layers[0].dram.writes, 108u);
    EXPECT_EQ(accel.dramTraffic().total(), 54u + 128 + 108);
}

TEST(FlexFlowAcceleratorTest, PoolAndSwapSemantics)
{
    const auto spec = ConvLayerSpec::make("L0", 1, 2, 8, 3);
    Rng rng(42);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);

    const Program program = assemble(R"(
        cfg_layer 2 1 8 3 1
        cfg_factors 2 1 1 4 1 3
        load_kernels 18
        load_input 100
        conv
        pool 2 2 max
        swap
        halt
    )");

    FlexFlowAccelerator accel;
    accel.bindInput(input);
    accel.bindKernels({kernels});
    NetworkResult result;
    const Tensor3<> out = accel.run(program, &result);
    const Tensor3<> expected =
        goldenPool(goldenConv(spec, input, kernels),
                   PoolLayerSpec{2, 2, PoolOp::Max});
    EXPECT_EQ(out, expected);
    EXPECT_EQ(accel.activeNeuronBuffer(), 1);
    // Pooling shrank the buffer writeback.
    EXPECT_EQ(result.layers[0].traffic.neuronOut, 2u * 4 * 4);
}

TEST(FlexFlowAcceleratorTest, ConvWithoutConfigIsFatal)
{
    logging_detail::setThrowOnError(true);
    FlexFlowAccelerator accel;
    Program program;
    program.instructions.push_back({Opcode::Conv, {}});
    EXPECT_THROW(accel.run(program), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(FlexFlowAcceleratorTest, MismatchedActivationIsFatal)
{
    logging_detail::setThrowOnError(true);
    const auto spec = ConvLayerSpec::make("L0", 2, 3, 6, 3);
    Rng rng(43);
    FlexFlowAccelerator accel;
    accel.bindInput(makeRandomInput(rng, 1, spec.inSize)); // wrong N
    accel.bindKernels({makeRandomKernels(rng, spec)});
    const Program program = assemble(R"(
        cfg_layer 3 2 6 3 1
        cfg_factors 1 1 1 1 1 1
        conv
        halt
    )");
    EXPECT_THROW(accel.run(program), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

TEST(FlexFlowAcceleratorTest, InstructionAfterHaltIsFatal)
{
    logging_detail::setThrowOnError(true);
    FlexFlowAccelerator accel;
    Program program;
    program.instructions.push_back({Opcode::Halt, {}});
    program.instructions.push_back({Opcode::Nop, {}});
    EXPECT_THROW(accel.run(program), std::runtime_error);
    logging_detail::setThrowOnError(false);
}

} // namespace
} // namespace flexsim
