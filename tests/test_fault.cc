/**
 * @file
 * Deterministic fault injection and degraded-mode operation
 * (src/fault/ plus its consumers).
 *
 * Covers the plan/trace grammars, the pure-hash transient draw, the
 * per-architecture degraded-geometry policies, the availability-aware
 * factor search, fault injection in the FlexFlow conv unit and all
 * three baseline cycle simulators (bit-identical across host thread
 * counts), and the serving runtime's fail-stop / retry / ejection /
 * probation machinery.  Everything here must be reproducible: the
 * same plan always yields the same faults.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arch/factor_search.hh"
#include "fault/degrade.hh"
#include "fault/fault_plan.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_array.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"
#include "serve/runtime.hh"
#include "serve/service_model.hh"
#include "serve/traffic.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

namespace flexsim {
namespace {

using fault::AccelEvent;
using fault::ArrayAvailability;
using fault::DegradedGeometry;
using fault::FaultPlan;

// ------------------------------------------------------------ grammar

TEST(FaultSpecTest, ParsesFullGrammar)
{
    const FaultPlan plan = fault::parseFaultSpec(
        "seed=9; deadrow=1,2; deadcol=3; deadpe=4.5; stuck=6.7; "
        "flip=0.5:6; bufflip=kernel:10:3; parity; dramslow=2.5; "
        "failstop=1@50ms; slowdown=0@2us*1.5; recover=1@100ms");
    EXPECT_EQ(plan.seed, 9u);
    EXPECT_EQ(plan.deadRows, (std::vector<int>{1, 2}));
    EXPECT_EQ(plan.deadCols, (std::vector<int>{3}));
    ASSERT_EQ(plan.deadPes.size(), 1u);
    EXPECT_EQ(plan.deadPes[0], (fault::PeCoord{4, 5}));
    ASSERT_EQ(plan.stuckPes.size(), 1u);
    EXPECT_EQ(plan.stuckPes[0], (fault::PeCoord{6, 7}));
    EXPECT_DOUBLE_EQ(plan.flipRate, 0.5);
    EXPECT_EQ(plan.flipMask, 6u);
    ASSERT_EQ(plan.bufferFaults.size(), 1u);
    EXPECT_EQ(plan.bufferFaults[0].target,
              fault::BufferFault::Target::Kernel);
    EXPECT_EQ(plan.bufferFaults[0].word, 10u);
    EXPECT_EQ(plan.bufferFaults[0].bit, 3);
    EXPECT_TRUE(plan.parityDetect);
    EXPECT_DOUBLE_EQ(plan.dramSlowdown, 2.5);
    ASSERT_EQ(plan.accelEvents.size(), 3u);
    EXPECT_EQ(plan.accelEvents[0].kind, AccelEvent::Kind::FailStop);
    EXPECT_EQ(plan.accelEvents[0].accel, 1u);
    EXPECT_EQ(plan.accelEvents[0].atNs, 50'000'000u);
    EXPECT_EQ(plan.accelEvents[1].kind, AccelEvent::Kind::Slowdown);
    EXPECT_DOUBLE_EQ(plan.accelEvents[1].factor, 1.5);
    EXPECT_EQ(plan.accelEvents[1].atNs, 2'000u);
    EXPECT_EQ(plan.accelEvents[2].kind, AccelEvent::Kind::Recover);
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(plan.affectsGeometry());
    EXPECT_TRUE(plan.affectsMacs());
    EXPECT_TRUE(plan.affectsBuffers());
    plan.validate(16);
}

TEST(FaultSpecTest, EmptyAndTimeUnits)
{
    EXPECT_TRUE(FaultPlan{}.empty());
    EXPECT_TRUE(fault::parseFaultSpec("").empty());
    EXPECT_EQ(fault::parseTimeNs("250ns").value_or(0), 250u);
    EXPECT_EQ(fault::parseTimeNs("2us").value_or(0), 2'000u);
    EXPECT_EQ(fault::parseTimeNs("50ms").value_or(0), 50'000'000u);
    EXPECT_EQ(fault::parseTimeNs("1s").value_or(0), 1'000'000'000u);
    EXPECT_FALSE(fault::parseTimeNs("nonsense").has_value());
}

TEST(FaultSpecTest, TraceParsesSortsAndSkipsComments)
{
    const std::vector<AccelEvent> events = fault::parseFaultTrace(
        "# comment line\n"
        "50ms failstop 1\n"
        "\n"
        "20ms slowdown 0 2.0\n"
        "120ms recover 1\n");
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, AccelEvent::Kind::Slowdown);
    EXPECT_EQ(events[0].atNs, 20'000'000u);
    EXPECT_DOUBLE_EQ(events[0].factor, 2.0);
    EXPECT_EQ(events[1].kind, AccelEvent::Kind::FailStop);
    EXPECT_EQ(events[2].kind, AccelEvent::Kind::Recover);
    EXPECT_EQ(events[2].accel, 1u);
}

// ------------------------------------------------------- transient draw

TEST(TransientDrawTest, PureFunctionOfSite)
{
    const std::uint64_t prefix = fault::mixKey(42, 7);
    for (std::uint64_t site = 0; site < 64; ++site) {
        EXPECT_EQ(fault::transientFires(prefix, site, 0.3),
                  fault::transientFires(prefix, site, 0.3));
        EXPECT_FALSE(fault::transientFires(prefix, site, 0.0));
        EXPECT_TRUE(fault::transientFires(prefix, site, 1.0));
    }
    EXPECT_NE(fault::mixKey(1, 2), fault::mixKey(2, 1));
}

TEST(TransientDrawTest, RateIsRespected)
{
    const std::uint64_t prefix = fault::mixKey(2017, 0);
    int fires = 0;
    const int sites = 100'000;
    for (int site = 0; site < sites; ++site) {
        if (fault::transientFires(prefix,
                                  static_cast<std::uint64_t>(site),
                                  0.1))
            ++fires;
    }
    EXPECT_NEAR(static_cast<double>(fires), 0.1 * sites,
                0.01 * sites);
}

// --------------------------------------------------- degraded geometry

TEST(DegradeTest, LineCoverSacrificesWholeLines)
{
    FaultPlan plan;
    plan.deadRows = {2};
    plan.deadPes = {{5, 5}};
    const ArrayAvailability avail =
        ArrayAvailability::fromPlan(plan, 8);
    EXPECT_EQ(avail.aliveCount(), 8 * 8 - 8 - 1);

    const DegradedGeometry geom = fault::degradeLineCover(avail);
    // One row for the dead row, one row (tie -> row) for the dead PE.
    EXPECT_EQ(geom.rows, 6);
    EXPECT_EQ(geom.cols, 8);
    for (int phys : geom.physRows) {
        EXPECT_NE(phys, 2);
        EXPECT_NE(phys, 5);
    }
}

TEST(DegradeTest, TopLeftSquareHitsTheSystolicCliff)
{
    ArrayAvailability avail(8, 8);
    avail.kill(3, 3);
    const DegradedGeometry square =
        fault::degradeTopLeftSquare(avail);
    // The chained array only streams through a clean top-left square:
    // one awkward dead PE costs more than half the fabric.
    EXPECT_EQ(square.rows, 3);
    EXPECT_EQ(square.cols, 3);

    // FlexFlow's line cover keeps 7 of 8 rows from the same fault.
    const DegradedGeometry cover = fault::degradeLineCover(avail);
    EXPECT_EQ(cover.pes(), 7 * 8);
    EXPECT_GT(cover.pes(), square.pes());
}

TEST(DegradeTest, MaxRectangleNeedsContiguity)
{
    ArrayAvailability avail(8, 8);
    for (int r = 0; r < 8; ++r)
        avail.kill(r, 3);
    const DegradedGeometry rect = fault::degradeMaxRectangle(avail);
    EXPECT_EQ(rect.pes(), 8 * 4);
    // Columns 4..7 survive contiguously.
    EXPECT_EQ(rect.cols, 4);
    EXPECT_EQ(rect.physCols.front(), 4);
}

TEST(DegradeTest, RandomKillIsSeeded)
{
    ArrayAvailability a(16, 16);
    ArrayAvailability b(16, 16);
    a.killRandomPes(0.2, 99);
    b.killRandomPes(0.2, 99);
    EXPECT_EQ(a.alive, b.alive);
    EXPECT_LT(a.aliveCount(), 16 * 16);

    ArrayAvailability c(16, 16);
    c.killRandomPes(0.2, 100);
    EXPECT_NE(a.alive, c.alive);
}

// ------------------------------------------- availability-aware search

TEST(FaultSearchTest, AvailabilityBoundsTheFactors)
{
    const ConvLayerSpec spec = workloads::alexnet().stages[1].conv;
    const FactorChoice healthy = searchBestFactors(spec, 16);
    const FactorChoice same =
        searchBestFactors(spec, 16, spec.outSize, 16, 16);
    EXPECT_EQ(healthy.factors, same.factors);

    const FactorChoice degraded =
        searchBestFactors(spec, 16, spec.outSize, 12, 14);
    EXPECT_LE(degraded.factors.rowDemand(), 12);
    EXPECT_LE(degraded.factors.columnDemand(), 14);
    // Utilization is still priced against the full fabric, so the
    // degradation cost is visible.
    EXPECT_LE(degraded.utilization(), healthy.utilization());
    EXPECT_GT(degraded.utilization(), 0.0);
}

// -------------------------------------------------- conv unit injection

struct ConvFixture
{
    ConvLayerSpec spec;
    UnrollFactors factors;
    Tensor3<> input;
    Tensor4<> kernels;
    Tensor3<> golden;

    explicit ConvFixture(std::uint64_t seed = 0xfa1001)
        : spec(workloads::lenet5().stages[0].conv)
    {
        factors = searchBestFactors(spec, FlexFlowConfig{}.d).factors;
        Rng rng(seed);
        input = makeRandomInput(rng, spec);
        kernels = makeRandomKernels(rng, spec);
        golden = goldenConv(spec, input, kernels);
    }
};

TEST(ConvFaultTest, BenignPlanKeepsBitIdentity)
{
    ConvFixture fx;
    FlexFlowConfig cfg;
    LayerResult healthy_result;
    ConvUnitDiagnostics healthy_diag;
    const Tensor3<> healthy = FlexFlowConvUnit(cfg).runLayer(
        fx.spec, fx.factors, fx.input, fx.kernels, &healthy_result,
        &healthy_diag);
    EXPECT_EQ(healthy, fx.golden);

    // Serving-level events don't touch the datapath: attaching the
    // plan must leave outputs, counters, and diagnostics untouched.
    FaultPlan plan;
    plan.accelEvents.push_back(
        {AccelEvent::Kind::FailStop, 0, 1000, 1.0});
    FlexFlowConvUnit unit(cfg);
    unit.setFaultPlan(&plan);
    LayerResult result;
    ConvUnitDiagnostics diag;
    const Tensor3<> out = unit.runLayer(fx.spec, fx.factors, fx.input,
                                        fx.kernels, &result, &diag);
    EXPECT_EQ(out, healthy);
    EXPECT_EQ(result.cycles, healthy_result.cycles);
    EXPECT_EQ(result.traffic, healthy_result.traffic);
    EXPECT_EQ(diag.faults, healthy_diag.faults);
    EXPECT_EQ(diag.faults, fault::FaultDiagnostics{});
}

TEST(ConvFaultTest, MacFaultsAreIdenticalAcrossThreads)
{
    ConvFixture fx;
    FaultPlan plan;
    plan.seed = 77;
    plan.stuckPes = {{0, 0}, {3, 2}};
    plan.flipRate = 1e-4;
    plan.flipMask = 1u << 7;

    auto run = [&](int threads, LayerResult *result,
                   ConvUnitDiagnostics *diag) {
        FlexFlowConfig cfg;
        cfg.threads = threads;
        FlexFlowConvUnit unit(cfg);
        unit.setFaultPlan(&plan);
        return unit.runLayer(fx.spec, fx.factors, fx.input,
                             fx.kernels, result, diag);
    };
    LayerResult r1, r4;
    ConvUnitDiagnostics d1, d4;
    const Tensor3<> out1 = run(1, &r1, &d1);
    const Tensor3<> out4 = run(4, &r4, &d4);

    EXPECT_GT(d1.faults.stuckMacs, 0u);
    EXPECT_NE(out1, fx.golden);
    // Same plan, any thread count: bit-identical corruption.
    EXPECT_EQ(out1, out4);
    EXPECT_EQ(d1.faults, d4.faults);
    EXPECT_EQ(r1.cycles, r4.cycles);

    // And a second identical run replays the same faults.
    LayerResult r1b;
    ConvUnitDiagnostics d1b;
    EXPECT_EQ(run(1, &r1b, &d1b), out1);
    EXPECT_EQ(d1b.faults, d1.faults);
}

TEST(ConvFaultTest, ParityDetectsAndScrubsBufferFaults)
{
    ConvFixture fx;
    FaultPlan plan;
    plan.bufferFaults.push_back(
        {fault::BufferFault::Target::Neuron, 17, 9});
    plan.parityDetect = true;

    FlexFlowConvUnit unit{FlexFlowConfig{}};
    unit.setFaultPlan(&plan);
    LayerResult result;
    ConvUnitDiagnostics diag;
    const Tensor3<> out = unit.runLayer(fx.spec, fx.factors, fx.input,
                                        fx.kernels, &result, &diag);
    // Parity catches the flip before it reaches the array.
    EXPECT_EQ(out, fx.golden);
    EXPECT_EQ(diag.faults.paritiesDetected, 1u);
    EXPECT_EQ(diag.faults.scrubbedWords, 1u);
    EXPECT_EQ(diag.faults.corruptedWords, 0u);
}

TEST(ConvFaultTest, SilentBufferFaultCorruptsTheOutput)
{
    ConvFixture fx;
    FaultPlan plan;
    plan.bufferFaults.push_back(
        {fault::BufferFault::Target::Kernel, 3, 14});

    FlexFlowConvUnit unit{FlexFlowConfig{}};
    unit.setFaultPlan(&plan);
    ConvUnitDiagnostics diag;
    const Tensor3<> out = unit.runLayer(fx.spec, fx.factors, fx.input,
                                        fx.kernels, nullptr, &diag);
    EXPECT_EQ(diag.faults.corruptedWords, 1u);
    EXPECT_EQ(diag.faults.paritiesDetected, 0u);
    EXPECT_NE(out, fx.golden);
}

TEST(ConvFaultTest, RemappedFactorsRunOnDegradedGeometry)
{
    ConvFixture fx;
    FaultPlan plan;
    plan.deadRows = {0};
    plan.deadCols = {5};

    // Compile for the surviving geometry, then execute under the
    // plan: outputs stay exact (dead lines reroute, not corrupt).
    const DegradedGeometry geom = fault::degradeLineCover(
        ArrayAvailability::fromPlan(plan, FlexFlowConfig{}.d));
    EXPECT_EQ(geom.rows, 15);
    EXPECT_EQ(geom.cols, 15);
    const UnrollFactors remapped =
        searchBestFactors(fx.spec, FlexFlowConfig{}.d, fx.spec.outSize,
                          geom.rows, geom.cols)
            .factors;

    FlexFlowConvUnit unit{FlexFlowConfig{}};
    unit.setFaultPlan(&plan);
    const Tensor3<> out = unit.runLayer(fx.spec, remapped, fx.input,
                                        fx.kernels, nullptr, nullptr);
    EXPECT_EQ(out, fx.golden);
}

// ---------------------------------------------- baseline simulators

TEST(BaselineFaultTest, SystolicStuckPeIsDeterministic)
{
    const ConvLayerSpec spec = workloads::lenet5().stages[0].conv;
    Rng rng(0xfa2002);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    const Tensor3<> golden = goldenConv(spec, input, kernels);

    FaultPlan plan;
    plan.stuckPes = {{0, 0}};

    SystolicArraySim healthy;
    EXPECT_EQ(healthy.runLayer(spec, input, kernels), golden);

    auto run_faulty = [&](fault::FaultDiagnostics *diag) {
        SystolicArraySim sim;
        sim.setFaultPlan(&plan);
        Tensor3<> out = sim.runLayer(spec, input, kernels);
        if (diag != nullptr)
            *diag = sim.faultDiagnostics();
        return out;
    };
    fault::FaultDiagnostics d1, d2;
    const Tensor3<> out1 = run_faulty(&d1);
    const Tensor3<> out2 = run_faulty(&d2);
    EXPECT_GT(d1.stuckMacs, 0u);
    EXPECT_NE(out1, golden);
    EXPECT_EQ(out1, out2);
    EXPECT_EQ(d1, d2);
}

TEST(BaselineFaultTest, Mapping2DAndTilingInjectStuckMacs)
{
    const ConvLayerSpec spec = workloads::lenet5().stages[0].conv;
    Rng rng(0xfa2003);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    const Tensor3<> golden = goldenConv(spec, input, kernels);

    FaultPlan plan;
    plan.stuckPes = {{1, 1}};

    Mapping2DArraySim map2d;
    map2d.setFaultPlan(&plan);
    EXPECT_NE(map2d.runLayer(spec, input, kernels), golden);
    EXPECT_GT(map2d.faultDiagnostics().stuckMacs, 0u);

    // Tiling lanes are (outMap, inMap) tiles; LeNet-5's single input
    // map only drives lane column 0, so the stuck PE sits there.
    FaultPlan tiling_plan;
    tiling_plan.stuckPes = {{1, 0}};
    TilingArraySim tiling;
    tiling.setFaultPlan(&tiling_plan);
    EXPECT_NE(tiling.runLayer(spec, input, kernels), golden);
    EXPECT_GT(tiling.faultDiagnostics().stuckMacs, 0u);

    // An empty plan restores the healthy fast path on both.
    Mapping2DArraySim clean2d;
    clean2d.setFaultPlan(nullptr);
    EXPECT_EQ(clean2d.runLayer(spec, input, kernels), golden);
    TilingArraySim cleantile;
    FaultPlan empty;
    cleantile.setFaultPlan(&empty);
    EXPECT_EQ(cleantile.runLayer(spec, input, kernels), golden);
}

// -------------------------------------------------- serving runtime

using namespace flexsim::serve;

/** Requests with explicit arrivals (ids in arrival order). */
std::vector<InferenceRequest>
requestsAt(const std::vector<TimeNs> &arrivals)
{
    std::vector<InferenceRequest> requests;
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        requests.push_back({i, 0, arrivals[i]});
    return requests;
}

TEST(ServeFaultTest, FailStopAbortsRetriesAndReadmits)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::alexnet()}, 4.0);
    const TimeNs frame = service.frameServiceNs(0);

    // Four requests in one batch; the instance fail-stops mid-batch,
    // the retry lands on the surviving instance.
    ServeConfig config;
    config.poolSize = 2;
    config.maxBatch = 4;
    std::vector<AccelEvent> events{
        {AccelEvent::Kind::FailStop, 0, frame / 2, 1.0}};
    ServeRuntime runtime(service, config, events);
    const ServeReport report =
        runtime.run(requestsAt({0, 0, 0, 0}));

    EXPECT_EQ(report.arrived, 4u);
    EXPECT_EQ(report.completed, 4u);
    EXPECT_EQ(report.retries, 4u);
    EXPECT_EQ(report.ejections, 1u);
    EXPECT_EQ(report.failed, 0u);
    // The retried batch is served by the healthy instance after the
    // backoff, not shed.
    EXPECT_GT(report.makespanNs, frame);
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed);
}

TEST(ServeFaultTest, RetryBudgetExhaustionFailsRequests)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::alexnet()}, 4.0);
    const TimeNs frame = service.frameServiceNs(0);

    ServeConfig config;
    config.poolSize = 1;
    config.maxBatch = 4;
    config.maxRetries = 0;
    std::vector<AccelEvent> events{
        {AccelEvent::Kind::FailStop, 0, frame / 2, 1.0}};
    ServeRuntime runtime(service, config, events);
    const ServeReport report =
        runtime.run(requestsAt({0, 0, 0, 0}));

    EXPECT_EQ(report.failed, 4u);
    EXPECT_EQ(report.completed, 0u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed);
}

TEST(ServeFaultTest, ProbationReadmitsEjectedInstance)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);

    ServeConfig config;
    config.poolSize = 1;
    config.maxBatch = 1;
    config.probationNs = 1'000'000;
    std::vector<AccelEvent> events{
        {AccelEvent::Kind::FailStop, 0, 10, 1.0}};
    ServeRuntime runtime(service, config, events);
    // The only instance dies at t=10ns while idle; the request at
    // 100us must wait for probation re-admission, then complete.
    const ServeReport report = runtime.run(requestsAt({100'000}));

    EXPECT_EQ(report.ejections, 1u);
    EXPECT_EQ(report.readmissions, 1u);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_GE(report.makespanNs, 1'000'010u);
    EXPECT_GT(report.degradedReroutes, 0u);
}

TEST(ServeFaultTest, SlowdownReroutesToDegradedTable)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);

    // Degraded table: the same architecture compiled for a PE array
    // that lost two columns (the serving-level remap story).
    FlexFlowConfig degraded_cfg = FlexFlowConfig::forScale(16);
    degraded_cfg.availCols = 14;
    const FlexFlowModel degraded_model(degraded_cfg);
    const ServiceTimeModel degraded(degraded_model,
                                    {workloads::lenet5()}, 4.0);
    ASSERT_GE(degraded.frameServiceNs(0), service.frameServiceNs(0));

    ServeConfig config;
    config.poolSize = 1;
    std::vector<AccelEvent> events{
        {AccelEvent::Kind::Slowdown, 0, 0, 2.0}};
    ServeRuntime runtime(service, config, events, &degraded);
    const ServeReport report =
        runtime.run(requestsAt({1, 1, 1, 1000}));

    EXPECT_EQ(report.completed, 4u);
    // Every request was served by the degraded instance.
    EXPECT_EQ(report.degradedReroutes, 4u);
    EXPECT_EQ(report.shed, 0u);
}

TEST(ServeFaultTest, DeadlineDropsStarvedRequests)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::alexnet()}, 4.0);
    const TimeNs frame = service.frameServiceNs(0);

    ServeConfig config;
    config.poolSize = 1;
    config.maxBatch = 1;
    config.deadlineNs = frame / 2;
    // Three simultaneous arrivals, one instance, batch of one: the
    // first is served; the two queued behind it blow their deadline.
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requestsAt({0, 0, 0}));

    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.timedOut, 2u);
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed);
}

TEST(ServeFaultTest, FaultedRunsAreByteIdenticalAcrossRepeats)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(
        model, {workloads::alexnet(), workloads::lenet5()}, 4.0);

    auto render = [&] {
        TrafficConfig traffic;
        traffic.rps = 3000.0;
        traffic.durationNs = 200'000'000;
        traffic.seed = 11;
        traffic.numWorkloads = 2;
        ServeConfig config;
        config.poolSize = 3;
        config.deadlineNs = 30'000'000;
        std::vector<AccelEvent> events{
            {AccelEvent::Kind::Slowdown, 1, 20'000'000, 3.0},
            {AccelEvent::Kind::FailStop, 0, 50'000'000, 1.0},
            {AccelEvent::Kind::Recover, 1, 90'000'000, 1.0},
            {AccelEvent::Kind::FailStop, 2, 120'000'000, 1.0},
        };
        ServeRuntime runtime(service, config, events);
        runtime.run(generateTraffic(traffic));
        std::ostringstream report;
        runtime.dumpStats(report);
        return report.str();
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_FALSE(first.empty());
    EXPECT_NE(first.find("ejections"), std::string::npos);
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace flexsim
