/**
 * @file
 * Unit and integration tests for the inference-serving runtime
 * (src/serve/): traffic generation, service-time batching,
 * admission control, and the determinism guarantee under real
 * worker threads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "flexflow/flexflow_model.hh"
#include "nn/workloads.hh"
#include "serve/runtime.hh"
#include "serve/service_model.hh"
#include "serve/traffic.hh"

namespace flexsim {
namespace {

using namespace flexsim::serve;

TrafficConfig
smallTraffic(double rps = 2000.0, TimeNs duration_ns = 100'000'000)
{
    TrafficConfig config;
    config.rps = rps;
    config.durationNs = duration_ns;
    config.seed = 7;
    return config;
}

TEST(ServeTrafficTest, PoissonIsDeterministicPerSeed)
{
    const auto a = generateTraffic(smallTraffic());
    const auto b = generateTraffic(smallTraffic());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalNs, b[i].arrivalNs);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].id, i);
    }

    auto other = smallTraffic();
    other.seed = 8;
    const auto c = generateTraffic(other);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrivalNs != c[i].arrivalNs;
    EXPECT_TRUE(differs);
}

TEST(ServeTrafficTest, PoissonMeanRateAndOrdering)
{
    auto config = smallTraffic(5000.0, 1'000'000'000);
    const auto requests = generateTraffic(config);
    // 5000 rps over 1 s: expect ~5000 arrivals (Poisson sd ~71).
    EXPECT_NEAR(static_cast<double>(requests.size()), 5000.0, 400.0);
    for (std::size_t i = 1; i < requests.size(); ++i)
        EXPECT_GE(requests[i].arrivalNs, requests[i - 1].arrivalNs);
    for (const auto &request : requests)
        EXPECT_LT(request.arrivalNs, config.durationNs);
}

TEST(ServeTrafficTest, BurstyKeepsMeanRateButClusters)
{
    auto config = smallTraffic(4000.0, 1'000'000'000);
    config.model = TrafficModel::Bursty;
    const auto requests = generateTraffic(config);
    EXPECT_NEAR(static_cast<double>(requests.size()), 4000.0, 600.0);

    // More than half the arrivals land inside the burst phase, which
    // covers only burstFraction of the time line.
    std::size_t in_burst = 0;
    const TimeNs on_ns = static_cast<TimeNs>(
        config.burstFraction *
        static_cast<double>(config.burstPeriodNs));
    for (const auto &request : requests) {
        if (request.arrivalNs % config.burstPeriodNs < on_ns)
            ++in_burst;
    }
    EXPECT_GT(in_burst * 2, requests.size());
}

TEST(ServeTrafficTest, ReplayDropsPastDurationAndSorts)
{
    auto config = smallTraffic();
    config.model = TrafficModel::Replay;
    config.durationNs = 1000;
    config.replayNs = {500, 100, 900, 1000, 2000};
    const auto requests = generateTraffic(config);
    ASSERT_EQ(requests.size(), 3u);
    EXPECT_EQ(requests[0].arrivalNs, 100u);
    EXPECT_EQ(requests[1].arrivalNs, 500u);
    EXPECT_EQ(requests[2].arrivalNs, 900u);
}

TEST(ServeTrafficTest, ParseReplayTraceMicroseconds)
{
    const auto offsets =
        parseReplayTrace("# trace\n10\n2.5  # early\n\n0.001\n");
    ASSERT_EQ(offsets.size(), 3u);
    EXPECT_EQ(offsets[0], 10'000u);
    EXPECT_EQ(offsets[1], 2'500u);
    EXPECT_EQ(offsets[2], 1u);
}

TEST(ServeServiceModelTest, BatchAmortizesKernelStream)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    // Starved DRAM makes every layer memory-bound, so the batching
    // benefit (kernels fetched once) must show up in wall-clock.
    const ServiceTimeModel service(model, {workloads::alexnet()},
                                   /*dram_words_per_cycle=*/0.25);
    const TimeNs one = service.batchServiceNs(0, 1);
    const TimeNs eight = service.batchServiceNs(0, 8);
    EXPECT_GT(eight, one);
    EXPECT_LT(eight, 8 * one);
}

TEST(ServeServiceModelTest, BatchServiceIsMonotone)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    TimeNs prev = 0;
    for (unsigned batch = 1; batch <= 16; batch *= 2) {
        const TimeNs t = service.batchServiceNs(0, batch);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(ServeServiceModelTest, LayerTimingsMatchWorkloadDepth)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const NetworkSpec net = workloads::lenet5();
    const ServiceTimeModel service(model, {net}, 4.0);
    EXPECT_EQ(service.layerTimings(0).size(), net.stages.size());
    EXPECT_EQ(service.workloadName(0), net.name);
}

TEST(ServeRuntimeTest, ServesEveryAdmittedRequest)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    const auto requests = generateTraffic(smallTraffic());

    ServeConfig config;
    config.poolSize = 2;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requests);
    EXPECT_EQ(report.arrived, requests.size());
    EXPECT_EQ(report.arrived, report.admitted + report.shed);
    EXPECT_EQ(report.completed, report.admitted);
    EXPECT_GT(report.batches, 0u);
    EXPECT_GT(report.throughputRps, 0.0);
    ASSERT_EQ(report.utilization.size(), 2u);
}

TEST(ServeRuntimeTest, BoundedQueueShedsUnderOverload)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::alexnet()}, 4.0);
    // One instance serves ~700 rps of AlexNet; offered 4000 rps,
    // the 16-deep queue must shed most of the load.
    const auto requests =
        generateTraffic(smallTraffic(4000.0, 200'000'000));

    ServeConfig config;
    config.poolSize = 1;
    config.queueCapacity = 16;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requests);
    EXPECT_GT(report.shed, 0u);
    EXPECT_EQ(report.completed, report.admitted);
    EXPECT_GT(report.shedRate(), 0.3);
}

TEST(ServeRuntimeTest, TailLatencyDivergesPastSaturation)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::alexnet()}, 4.0);

    auto run_at = [&](double rps) {
        ServeConfig config;
        config.poolSize = 2;
        ServeRuntime runtime(service, config);
        return runtime.run(
            generateTraffic(smallTraffic(rps, 500'000'000)));
    };
    const ServeReport light = run_at(200.0);
    const ServeReport heavy = run_at(4000.0);
    EXPECT_GT(heavy.p99LatencyMs, 3.0 * light.p99LatencyMs);
    EXPECT_GT(heavy.sloViolations, 0u);
    EXPECT_EQ(light.sloViolations, 0u);
}

TEST(ServeRuntimeTest, MixedWorkloadsBatchOnlyCompatibleRequests)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(
        model, {workloads::lenet5(), workloads::pv()}, 4.0);
    auto config = smallTraffic();
    config.numWorkloads = 2;
    const auto requests = generateTraffic(config);
    bool saw_both = false;
    for (const auto &request : requests)
        saw_both |= request.workload == 1;
    EXPECT_TRUE(saw_both);

    ServeConfig serve_config;
    ServeRuntime runtime(service, serve_config);
    const ServeReport report = runtime.run(requests);
    EXPECT_EQ(report.completed, report.admitted);
}

/**
 * The flexserve-equivalent determinism check: two full runs with the
 * same seed and config — each with its own pool of real worker
 * threads — must render byte-identical stats reports.
 */
TEST(ServeRuntimeTest, SeededRunsAreByteIdentical)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(
        model, {workloads::alexnet(), workloads::lenet5()}, 4.0);

    auto render = [&] {
        auto traffic = smallTraffic(3000.0, 300'000'000);
        traffic.numWorkloads = 2;
        ServeConfig config;
        config.poolSize = 4;
        config.queueCapacity = 64;
        ServeRuntime runtime(service, config);
        runtime.run(generateTraffic(traffic));
        std::ostringstream report;
        runtime.dumpStats(report);
        return report.str();
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** Requests with explicit arrival times (ids in arrival order). */
std::vector<InferenceRequest>
requestsAt(const std::vector<TimeNs> &arrivals, int workload = 0)
{
    std::vector<InferenceRequest> requests;
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        requests.push_back({i, workload, arrivals[i]});
    return requests;
}

TEST(ServeRuntimeTest, AdmissionOverflowShedsNewestArrivals)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    const TimeNs frame = service.frameServiceNs(0);

    // Five simultaneous arrivals against a 2-deep queue: the first
    // two are admitted, the last three shed, and the admitted pair
    // is served strictly in arrival order (one frame each).
    ServeConfig config;
    config.poolSize = 1;
    config.maxBatch = 1;
    config.queueCapacity = 2;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requestsAt({0, 0, 0, 0, 0}));

    EXPECT_EQ(report.arrived, 5u);
    EXPECT_EQ(report.admitted, 2u);
    EXPECT_EQ(report.shed, 3u);
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.batches, 2u);
    EXPECT_EQ(report.makespanNs, 2 * frame);
}

TEST(ServeRuntimeTest, BatchWindowExpiryDispatchesPartialBatch)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    const TimeNs frame = service.frameServiceNs(0);

    // Five arrivals inside the 1 ms window plus a straggler at 10 ms.
    // The head-of-line request must not wait for the straggler: the
    // window expires at 1 ms and dispatches the partial batch of 5;
    // the straggler then rides its own batch.
    ServeConfig config;
    config.poolSize = 1;
    config.maxBatch = 8;
    config.batchWindowNs = 1'000'000;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(
        requestsAt({0, 100'000, 200'000, 300'000, 400'000,
                    10'000'000}));

    EXPECT_EQ(report.completed, 6u);
    EXPECT_EQ(report.batches, 2u);
    EXPECT_EQ(report.makespanNs, 10'000'000 + frame);
}

TEST(ServeRuntimeTest, BatchWindowExpiryWithBusyPoolDoesNotHang)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    const TimeNs frame = service.frameServiceNs(0);
    ASSERT_GT(frame, 10u);

    // The second request arrives mid-frame and its batch window
    // expires while the only instance is still busy; the loop must
    // idle until the completion frees it, not spin or stall.
    ServeConfig config;
    config.poolSize = 1;
    config.maxBatch = 1;
    config.batchWindowNs = frame / 10;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requestsAt({0, frame / 2}));

    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.batches, 2u);
    EXPECT_EQ(report.makespanNs, 2 * frame);
}

/**
 * The simulator-thread knob must never leak into serving results,
 * fault machinery included: runs priced by a single-threaded and a
 * 4-thread FlexFlow model, under the same injected fault events,
 * must render byte-identical stats reports.
 */
TEST(ServeRuntimeTest, ByteIdenticalAcrossSimThreadsUnderFaults)
{
    auto render = [&](int sim_threads) {
        FlexFlowConfig cfg = FlexFlowConfig::forScale(16);
        cfg.threads = sim_threads;
        const FlexFlowModel model(cfg);
        const ServiceTimeModel service(
            model, {workloads::alexnet(), workloads::lenet5()}, 4.0);

        auto traffic = smallTraffic(3000.0, 200'000'000);
        traffic.numWorkloads = 2;
        ServeConfig config;
        config.poolSize = 3;
        config.deadlineNs = 30'000'000;
        std::vector<fault::AccelEvent> events{
            {fault::AccelEvent::Kind::Slowdown, 1, 20'000'000, 2.5},
            {fault::AccelEvent::Kind::FailStop, 0, 50'000'000, 1.0},
            {fault::AccelEvent::Kind::Recover, 1, 90'000'000, 1.0},
        };
        ServeRuntime runtime(service, config, events);
        runtime.run(generateTraffic(traffic));
        std::ostringstream report;
        runtime.dumpStats(report);
        return report.str();
    };
    const std::string single = render(1);
    const std::string threaded = render(4);
    EXPECT_FALSE(single.empty());
    EXPECT_NE(single.find("ejections"), std::string::npos);
    EXPECT_EQ(single, threaded);
}

TEST(ServeRuntimeTest, PoisonRateZeroLeavesStreamBitIdentical)
{
    // The poison draw must not consume entropy when disabled: a
    // poisonRate=0 stream is bit-identical to one generated before
    // the field existed.
    const auto plain = generateTraffic(smallTraffic());
    auto config = smallTraffic();
    config.poisonRate = 0.0;
    const auto zero = generateTraffic(config);
    ASSERT_EQ(plain.size(), zero.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].arrivalNs, zero[i].arrivalNs);
        EXPECT_EQ(plain[i].workload, zero[i].workload);
    }
}

TEST(ServeRuntimeTest, PoisonRequestsQuarantinedWithBalancedBooks)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    auto traffic = smallTraffic(3000.0, 200'000'000);
    traffic.poisonRate = 0.1;
    const auto requests = generateTraffic(traffic);

    ServeConfig config;
    config.poolSize = 2;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requests);

    std::size_t poisoned = 0;
    for (const auto &request : requests)
        poisoned += request.workload == kPoisonWorkload ? 1 : 0;
    EXPECT_GT(poisoned, 0u);
    EXPECT_EQ(report.quarantined, poisoned);
    EXPECT_EQ(report.completed, report.admitted);
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed +
                                  report.quarantined);
}

TEST(ServeRuntimeTest, WatchdogStrikesQuarantineRepeatOffenders)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    const auto requests =
        generateTraffic(smallTraffic(1000.0, 100'000'000));

    ServeConfig config;
    config.poolSize = 2;
    // Below a single frame's service time: every dispatch trips the
    // batch watchdog, so every request strikes out.  The run must
    // still drain and balance its books.
    config.watchdogNs = service.frameServiceNs(0) / 2;
    config.quarantineStrikes = 2;
    ServeRuntime runtime(service, config);
    const ServeReport report = runtime.run(requests);

    EXPECT_EQ(report.completed, 0u);
    EXPECT_GT(report.watchdogTrips, 0u);
    EXPECT_GT(report.quarantined, 0u);
    EXPECT_EQ(report.arrived, report.completed + report.shed +
                                  report.timedOut + report.failed +
                                  report.quarantined);
}

/** The poison + watchdog soak: hostile traffic against a guarded
 * runtime must stay deterministic across repeated runs with real
 * worker-thread pools. */
TEST(ServeRuntimeTest, GuardedSoakIsByteIdentical)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(
        model, {workloads::alexnet(), workloads::lenet5()}, 4.0);

    auto render = [&] {
        auto traffic = smallTraffic(2000.0, 300'000'000);
        traffic.numWorkloads = 2;
        traffic.poisonRate = 0.05;
        ServeConfig config;
        config.poolSize = 4;
        config.queueCapacity = 64;
        config.watchdogNs = 40'000'000; // kills slow batches only
        config.quarantineStrikes = 2;
        ServeRuntime runtime(service, config);
        const ServeReport report =
            runtime.run(generateTraffic(traffic));
        EXPECT_GT(report.quarantined, 0u);
        EXPECT_EQ(report.arrived,
                  report.completed + report.shed + report.timedOut +
                      report.failed + report.quarantined);
        std::ostringstream out;
        runtime.dumpStats(out);
        return out.str();
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(ServeRuntimeTest, StatsTreeExposesServingCounters)
{
    const FlexFlowModel model(FlexFlowConfig::forScale(16));
    const ServiceTimeModel service(model, {workloads::lenet5()}, 4.0);
    ServeConfig config;
    config.poolSize = 2;
    ServeRuntime runtime(service, config);
    runtime.run(generateTraffic(smallTraffic()));

    const auto &stats = runtime.stats();
    ASSERT_NE(stats.findScalar("requestsCompleted"), nullptr);
    EXPECT_GT(stats.findScalar("requestsCompleted")->value(), 0.0);
    ASSERT_NE(stats.findDistribution("latencyMs"), nullptr);
    EXPECT_GT(stats.findDistribution("latencyMs")->count(), 0u);
    ASSERT_NE(stats.findScalar("accel0.busyNs"), nullptr);
    ASSERT_NE(stats.findFormula("accel1.utilization"), nullptr);
    EXPECT_GT(stats.findFormula("throughputRps")->value(), 0.0);
}

} // namespace
} // namespace flexsim
