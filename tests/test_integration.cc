/**
 * @file
 * Integration tests: whole workloads through the compiled FlexFlow
 * accelerator vs golden network inference, and all four cycle-level
 * simulators agreeing functionally on identical layers.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "flexflow/accelerator.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_array.hh"
#include "tiling/tiling_model.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "nn/workloads.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

namespace flexsim {
namespace {

/** Golden inference of a whole network (CONV + POOL chain). */
Tensor3<>
goldenNetwork(const NetworkSpec &net, const Tensor3<> &input,
              const std::vector<Tensor4<>> &kernels)
{
    Tensor3<> act = input;
    for (std::size_t i = 0; i < net.stages.size(); ++i) {
        // FR/HG publish pooled maps one row/column larger than the
        // next CONV consumes; the border is dropped (see cropTopLeft).
        act = cropTopLeft(act, net.stages[i].conv.inSize);
        act = goldenConv(net.stages[i].conv, act, kernels[i]);
        if (net.stages[i].poolAfter)
            act = goldenPool(act, *net.stages[i].poolAfter);
    }
    return act;
}

class CompiledNetworkTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    NetworkSpec
    network() const
    {
        const std::string name = GetParam();
        for (auto &net : workloads::smallFour())
            if (net.name == name)
                return net;
        ADD_FAILURE() << "unknown workload " << name;
        return workloads::lenet5();
    }
};

TEST_P(CompiledNetworkTest, AcceleratorMatchesGoldenInference)
{
    const NetworkSpec net = network();
    FlexFlowCompiler compiler;
    const CompilationResult compiled = compiler.compile(net);

    Rng rng(0xacce1 + net.stages.size());
    const Tensor3<> input = makeRandomInput(rng, net.stages[0].conv);
    std::vector<Tensor4<>> kernels;
    for (const auto &stage : net.stages)
        kernels.push_back(makeRandomKernels(rng, stage.conv));

    FlexFlowAccelerator accel;
    accel.bindInput(input);
    accel.bindKernels(kernels);
    NetworkResult result;
    const Tensor3<> out = accel.run(compiled.program, &result);

    EXPECT_EQ(out, goldenNetwork(net, input, kernels));
    ASSERT_EQ(result.layers.size(), net.stages.size());

    // Per-layer utilization observed by the accelerator matches the
    // compiler's prediction.
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
        EXPECT_NEAR(result.layers[i].utilization(),
                    compiled.layers[i].utilization, 1e-9)
            << net.name << " layer " << i;
    }

    // DRAM totals match the compile-time plan.
    EXPECT_EQ(accel.dramTraffic(), compiled.totalDram());
}

INSTANTIATE_TEST_SUITE_P(SmallWorkloads, CompiledNetworkTest,
                         ::testing::Values("PV", "FR", "LeNet-5",
                                           "HG"),
                         [](const auto &param_info) {
                             std::string name = param_info.param;
                             for (char &c : name)
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });

TEST(CrossArchitectureTest, AllFourSimulatorsAgreeFunctionally)
{
    // The same layer run on all four cycle simulators produces the
    // exact same numbers (they share fixed-point semantics).
    const auto spec = ConvLayerSpec::make("X", 4, 6, 10, 5);
    Rng rng(77);
    const Tensor3<> input = makeRandomInput(rng, spec);
    const Tensor4<> kernels = makeRandomKernels(rng, spec);
    const Tensor3<> gold = goldenConv(spec, input, kernels);

    SystolicConfig scfg;
    scfg.arrayEdge = 5;
    scfg.numArrays = 3;
    EXPECT_EQ(SystolicArraySim(scfg).runLayer(spec, input, kernels),
              gold);
    EXPECT_EQ(Mapping2DArraySim().runLayer(spec, input, kernels),
              gold);
    EXPECT_EQ(TilingArraySim().runLayer(spec, input, kernels), gold);
    FlexFlowConvUnit ff;
    EXPECT_EQ(ff.runLayer(spec, {6, 4, 1, 2, 1, 2}, input, kernels),
              gold);
}

TEST(CrossArchitectureTest, FlexFlowNeverSlowerThanWorstBaseline)
{
    // Sanity on relative cycle counts at matched scale (256 MACs/cy).
    const auto net = workloads::lenet5();
    for (const auto &stage : net.stages) {
        const LayerResult ff =
            FlexFlowModel(FlexFlowConfig::forScale(16))
                .runLayer(stage.conv);
        const LayerResult tiling =
            TilingModel(TilingConfig::forScale(16))
                .runLayer(stage.conv);
        EXPECT_LT(ff.cycles, tiling.cycles) << stage.conv.name;
    }
}

TEST(CompiledNetworkStressTest, AlexNetCompilesAndPlansDram)
{
    // AlexNet is too big to data-simulate in a unit test, but the
    // compiler must produce a structurally valid program for it.
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::alexnet());
    EXPECT_EQ(result.layers.size(), 5u);
    for (const LayerPlan &plan : result.layers)
        EXPECT_GT(plan.utilization, 0.5) << plan.spec.name;
    // AlexNet kernels never fit the 32 KiB kernel buffer beyond C1.
    EXPECT_GT(result.layers[2].dram.kernelGroups *
                  result.layers[2].dram.inputStripes,
              1);
}

TEST(CompiledNetworkStressTest, Vgg11CompilesAndPlansDram)
{
    FlexFlowCompiler compiler;
    const CompilationResult result =
        compiler.compile(workloads::vgg11());
    EXPECT_EQ(result.layers.size(), 8u);
    // VGG C1 has only 27 intra-row lanes available for 32 slots, so
    // its ceiling is 27/48 = 0.5625; every other layer is near 1.0.
    for (const LayerPlan &plan : result.layers)
        EXPECT_GT(plan.utilization, 0.55) << plan.spec.name;
}

} // namespace
} // namespace flexsim
