/**
 * @file
 * flexcc — the FlexFlow workload compiler driver.
 *
 * Compiles one of the built-in workloads (or a custom layer chain
 * given on the command line) into a FlexFlow configuration program
 * and writes the assembly to stdout or a file.
 *
 * Usage:
 *     flexcc <workload> [-d D] [-o out.s] [-b out.bin] [--report]
 *            [--explain] [--faults SPEC]
 *     flexcc --layers M,N,S,K,stride[,P] ... [options]
 *
 * --faults compiles for the array surviving the fault plan's dead
 * rows/columns/PEs (fault::degradeLineCover): the factor search is
 * bounded by the surviving geometry while utilization stays priced
 * against the full fabric, so --report shows the remapping cost and
 * the emitted program runs cleanly under the same plan in flexrun.
 *
 * Examples:
 *     flexcc LeNet-5 --report --explain
 *     flexcc AlexNet -d 32 -o alexnet.s -b alexnet.bin
 *     flexcc --layers 6,1,28,5,1,2 --layers 16,6,10,5,1
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/processing_style.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "fault/degrade.hh"
#include "fault/fault_plan.hh"
#include "flexflow/schedule.hh"
#include "nn/workloads.hh"

#include "cli.hh"

using namespace flexsim;

namespace {

int
usage()
{
    std::cerr
        << "usage: flexcc <workload> [-d D] [-o out.s] [-b out.bin] "
           "[--report] [--explain] [--faults SPEC]\n"
           "       flexcc --layers M,N,S,K,stride[,P] ... [options]\n"
           "workloads: PV FR LeNet-5 HG AlexNet VGG-11 LeNet-5+FC\n";
    return cli::kExitUsage;
}

/** Parse one --layers clause through the typed LayerSpec validators;
 * on failure the guard::Error (or field-count complaint) is printed
 * and false returned — never an abort. */
bool
parseLayer(const std::string &text, NetworkSpec &net)
{
    const std::vector<std::string> fields = split(text, ',');
    if (fields.size() != 5 && fields.size() != 6) {
        std::cerr << "flexcc: --layers needs 5 or 6 comma-separated "
                     "fields (M,N,S,K,stride[,P])\n";
        return false;
    }
    std::vector<int> values;
    for (const std::string &field : fields) {
        try {
            values.push_back(std::stoi(field));
        } catch (const std::exception &) {
            std::cerr << "flexcc: bad --layers field '" << field
                      << "' (not an integer)\n";
            return false;
        }
    }
    NetworkSpec::Stage stage;
    auto conv = ConvLayerSpec::tryMake(
        "L" + std::to_string(net.stages.size()), values[1], values[0],
        values[2], values[3], values[4]);
    if (!conv) {
        std::cerr << "flexcc: " << conv.error().str() << "\n";
        return false;
    }
    stage.conv = std::move(conv.value());
    if (values.size() == 6) {
        PoolLayerSpec pool;
        pool.window = values[5];
        pool.stride = pool.window;
        if (auto valid = pool.checked(); !valid) {
            std::cerr << "flexcc: " << valid.error().str() << "\n";
            return false;
        }
        stage.poolAfter = pool;
    }
    net.stages.push_back(stage);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    NetworkSpec net;
    net.name = "custom";
    std::string workload_name;
    std::string out_path;
    std::string bin_path;
    unsigned d = 16;
    bool report = false;
    bool explain = false;
    std::string fault_spec;

    cli::ArgStream args("flexcc", argc, argv);
    while (args.next()) {
        std::string layer_spec;
        if (args.value("-d", d, 1u)) {
        } else if (args.value("--faults", fault_spec)) {
        } else if (args.value("-o", out_path)) {
        } else if (args.value("-b", bin_path)) {
        } else if (args.flag("--report")) {
            report = true;
        } else if (args.flag("--explain")) {
            explain = true;
        } else if (args.value("--layers", layer_spec)) {
            if (!parseLayer(layer_spec, net))
                return cli::kExitUsage;
        } else if (args.positional(workload_name)) {
        } else {
            return usage();
        }
    }
    if (args.failed())
        return usage();

    if (!workload_name.empty()) {
        bool found = false;
        std::vector<NetworkSpec> candidates = workloads::all();
        candidates.push_back(workloads::lenet5WithClassifier());
        for (const auto &w : candidates) {
            if (toLower(w.name) == toLower(workload_name)) {
                net = w;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "flexcc: unknown workload '" << workload_name
                      << "'\n";
            return usage();
        }
    } else if (net.stages.empty()) {
        return usage();
    }

    FlexFlowConfig config = FlexFlowConfig::forScale(d);
    if (!fault_spec.empty()) {
        auto parsed = fault::tryParseFaultSpec(fault_spec);
        if (!parsed) {
            std::cerr << "flexcc: " << parsed.error().str() << "\n";
            return cli::kExitUsage;
        }
        const fault::FaultPlan plan = std::move(parsed.value());
        if (auto valid = plan.check(static_cast<int>(d)); !valid) {
            std::cerr << "flexcc: " << valid.error().str() << "\n";
            return cli::kExitUsage;
        }
        if (plan.affectsGeometry()) {
            const fault::DegradedGeometry geom = fault::degradeLineCover(
                fault::ArrayAvailability::fromPlan(
                    plan, static_cast<int>(d)));
            if (geom.pes() == 0) {
                std::cerr << "flexcc: the fault plan leaves no "
                             "usable PEs\n";
                return cli::kExitRuntime;
            }
            config.availRows = geom.rows;
            config.availCols = geom.cols;
            std::cout << "flexcc: compiling for the degraded array ("
                      << geom.rows << "x" << geom.cols << " of " << d
                      << "x" << d << " PEs survive the fault plan)\n";
        }
    }
    FlexFlowCompiler compiler(config);
    const CompilationResult result = compiler.compile(net);

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "flexcc: cannot write " << out_path << "\n";
            return cli::kExitRuntime;
        }
        out << result.assembly;
        std::cout << "flexcc: wrote "
                  << result.program.instructions.size()
                  << " instructions to " << out_path << "\n";
    } else {
        std::cout << result.assembly;
    }
    if (!bin_path.empty()) {
        saveBinary(result.program, bin_path);
        std::cout << "flexcc: wrote binary program to " << bin_path
                  << "\n";
    }

    if (explain) {
        std::cout << "\nSchedule detail:\n\n";
        TextTable table;
        table.setHeader({"Layer", "Batches", "Steps", "Passes",
                         "Kernel slice/PE", "Band words/col",
                         "Retention", "Style"});
        for (const LayerPlan &plan : result.layers) {
            const FlexFlowSchedule sched =
                planSchedule(plan.spec, plan.factors, config);
            table.addRow(
                {plan.spec.name,
                 std::to_string(sched.mBlocks * sched.rBlocks *
                                sched.cBlocks),
                 std::to_string(sched.stepsTotal),
                 std::to_string(sched.splits()),
                 std::to_string(sched.sliceWords) + "w",
                 std::to_string(sched.bandWordsPerColumn) + "w",
                 sched.bandRetention ? "bands" : "columns",
                 processingStyleName(
                     classifyProcessingStyle(plan.factors))});
        }
        table.print(std::cout);
    }

    if (report) {
        std::cout << "\n";
        TextTable table;
        table.setHeader({"Layer", "Factors", "Utilization", "Coupled",
                         "DRAM reads", "DRAM writes"});
        for (const LayerPlan &plan : result.layers) {
            table.addRow({plan.spec.name, plan.factors.toString(),
                          formatPercent(plan.utilization),
                          plan.coupled ? "yes" : "no",
                          formatCount(plan.dram.traffic.reads),
                          formatCount(plan.dram.traffic.writes)});
        }
        table.print(std::cout);
        const DramTraffic total = result.totalDram();
        std::cout << "\ntotal DRAM words: " << formatCount(total.total())
                  << "  (" << formatDouble(
                         static_cast<double>(total.total()) /
                             (2.0 * static_cast<double>(
                                        net.totalMacs())),
                         4)
                  << " Acc/Op)\n";
    }
    return cli::kExitOk;
}
