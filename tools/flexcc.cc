/**
 * @file
 * flexcc — the FlexFlow workload compiler driver.
 *
 * Compiles one of the built-in workloads (or a custom layer chain
 * given on the command line) into a FlexFlow configuration program
 * and writes the assembly to stdout or a file.
 *
 * Usage:
 *     flexcc <workload> [-d D] [-o out.s] [-b out.bin] [--report]
 *            [--explain] [--faults SPEC]
 *     flexcc --layers M,N,S,K,stride[,P] ... [options]
 *
 * --faults compiles for the array surviving the fault plan's dead
 * rows/columns/PEs (fault::degradeLineCover): the factor search is
 * bounded by the surviving geometry while utilization stays priced
 * against the full fabric, so --report shows the remapping cost and
 * the emitted program runs cleanly under the same plan in flexrun.
 *
 * Examples:
 *     flexcc LeNet-5 --report --explain
 *     flexcc AlexNet -d 32 -o alexnet.s -b alexnet.bin
 *     flexcc --layers 6,1,28,5,1,2 --layers 16,6,10,5,1
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/processing_style.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "fault/degrade.hh"
#include "fault/fault_plan.hh"
#include "flexflow/schedule.hh"
#include "nn/workloads.hh"

using namespace flexsim;

namespace {

int
usage()
{
    std::cerr
        << "usage: flexcc <workload> [-d D] [-o out.s] [-b out.bin] "
           "[--report] [--explain] [--faults SPEC]\n"
           "       flexcc --layers M,N,S,K,stride[,P] ... [options]\n"
           "workloads: PV FR LeNet-5 HG AlexNet VGG-11 LeNet-5+FC\n";
    return 2;
}

bool
parseLayer(const std::string &text, NetworkSpec &net)
{
    const std::vector<std::string> fields = split(text, ',');
    if (fields.size() != 5 && fields.size() != 6)
        return false;
    try {
        NetworkSpec::Stage stage;
        stage.conv = ConvLayerSpec::make(
            "L" + std::to_string(net.stages.size()),
            std::stoi(fields[1]), std::stoi(fields[0]),
            std::stoi(fields[2]), std::stoi(fields[3]),
            std::stoi(fields[4]));
        if (fields.size() == 6) {
            PoolLayerSpec pool;
            pool.window = std::stoi(fields[5]);
            pool.stride = pool.window;
            stage.poolAfter = pool;
        }
        net.stages.push_back(stage);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    NetworkSpec net;
    net.name = "custom";
    std::string workload_name;
    std::string out_path;
    std::string bin_path;
    unsigned d = 16;
    bool report = false;
    bool explain = false;
    std::string fault_spec;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-d" && i + 1 < argc) {
            d = std::stoul(argv[++i]);
        } else if (arg == "--faults" && i + 1 < argc) {
            fault_spec = argv[++i];
        } else if (startsWith(arg, "--faults=")) {
            fault_spec = arg.substr(9);
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "-b" && i + 1 < argc) {
            bin_path = argv[++i];
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--explain") {
            explain = true;
        } else if (arg == "--layers" && i + 1 < argc) {
            if (!parseLayer(argv[++i], net)) {
                std::cerr << "flexcc: bad --layers spec '" << argv[i]
                          << "'\n";
                return 2;
            }
        } else if (!startsWith(arg, "-") && workload_name.empty()) {
            workload_name = arg;
        } else {
            return usage();
        }
    }

    if (!workload_name.empty()) {
        bool found = false;
        std::vector<NetworkSpec> candidates = workloads::all();
        candidates.push_back(workloads::lenet5WithClassifier());
        for (const auto &w : candidates) {
            if (toLower(w.name) == toLower(workload_name)) {
                net = w;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "flexcc: unknown workload '" << workload_name
                      << "'\n";
            return usage();
        }
    } else if (net.stages.empty()) {
        return usage();
    }

    FlexFlowConfig config = FlexFlowConfig::forScale(d);
    if (!fault_spec.empty()) {
        const fault::FaultPlan plan = fault::parseFaultSpec(fault_spec);
        plan.validate(static_cast<int>(d));
        if (plan.affectsGeometry()) {
            const fault::DegradedGeometry geom = fault::degradeLineCover(
                fault::ArrayAvailability::fromPlan(
                    plan, static_cast<int>(d)));
            if (geom.pes() == 0) {
                std::cerr << "flexcc: the fault plan leaves no "
                             "usable PEs\n";
                return 1;
            }
            config.availRows = geom.rows;
            config.availCols = geom.cols;
            std::cout << "flexcc: compiling for the degraded array ("
                      << geom.rows << "x" << geom.cols << " of " << d
                      << "x" << d << " PEs survive the fault plan)\n";
        }
    }
    FlexFlowCompiler compiler(config);
    const CompilationResult result = compiler.compile(net);

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "flexcc: cannot write " << out_path << "\n";
            return 1;
        }
        out << result.assembly;
        std::cout << "flexcc: wrote "
                  << result.program.instructions.size()
                  << " instructions to " << out_path << "\n";
    } else {
        std::cout << result.assembly;
    }
    if (!bin_path.empty()) {
        saveBinary(result.program, bin_path);
        std::cout << "flexcc: wrote binary program to " << bin_path
                  << "\n";
    }

    if (explain) {
        std::cout << "\nSchedule detail:\n\n";
        TextTable table;
        table.setHeader({"Layer", "Batches", "Steps", "Passes",
                         "Kernel slice/PE", "Band words/col",
                         "Retention", "Style"});
        for (const LayerPlan &plan : result.layers) {
            const FlexFlowSchedule sched =
                planSchedule(plan.spec, plan.factors, config);
            table.addRow(
                {plan.spec.name,
                 std::to_string(sched.mBlocks * sched.rBlocks *
                                sched.cBlocks),
                 std::to_string(sched.stepsTotal),
                 std::to_string(sched.splits()),
                 std::to_string(sched.sliceWords) + "w",
                 std::to_string(sched.bandWordsPerColumn) + "w",
                 sched.bandRetention ? "bands" : "columns",
                 processingStyleName(
                     classifyProcessingStyle(plan.factors))});
        }
        table.print(std::cout);
    }

    if (report) {
        std::cout << "\n";
        TextTable table;
        table.setHeader({"Layer", "Factors", "Utilization", "Coupled",
                         "DRAM reads", "DRAM writes"});
        for (const LayerPlan &plan : result.layers) {
            table.addRow({plan.spec.name, plan.factors.toString(),
                          formatPercent(plan.utilization),
                          plan.coupled ? "yes" : "no",
                          formatCount(plan.dram.traffic.reads),
                          formatCount(plan.dram.traffic.writes)});
        }
        table.print(std::cout);
        const DramTraffic total = result.totalDram();
        std::cout << "\ntotal DRAM words: " << formatCount(total.total())
                  << "  (" << formatDouble(
                         static_cast<double>(total.total()) /
                             (2.0 * static_cast<double>(
                                        net.totalMacs())),
                         4)
                  << " Acc/Op)\n";
    }
    return 0;
}
