/**
 * @file
 * Shared command-line parsing for the flexsim tools (flexrun,
 * flexserve, flexcc, bench_report).
 *
 * Every tool historically hand-rolled its argv loop around std::stoul
 * and friends, which throw on garbage ("--seed banana" aborted the
 * process with an uncaught exception).  ArgStream centralizes the
 * idiom: a cursor over argv where each option either matches (and
 * parses its value with bounds checking) or does not, and any parse
 * failure prints a one-line diagnostic and latches failed() instead
 * of throwing.  Both "--flag value" and "--flag=value" spellings are
 * accepted for every valued option.
 *
 * Exit codes, shared by all tools (see DESIGN.md §3.7):
 *
 *   kExitOk      (0)  success
 *   kExitRuntime (1)  valid invocation that failed at runtime: host
 *                     I/O errors, golden-reference mismatch,
 *                     perf-gate regression, watchdog timeout
 *   kExitUsage   (2)  rejected input: unknown/malformed flags, value
 *                     out of range, or an input file that failed
 *                     typed validation (guard::Error)
 *   kExitSkip    (77) the environment cannot support the run (ctest's
 *                     skip convention, e.g. too few hardware threads)
 */

#ifndef FLEXSIM_TOOLS_CLI_HH
#define FLEXSIM_TOOLS_CLI_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

namespace flexsim {
namespace cli {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitSkip = 77;

class ArgStream
{
  public:
    ArgStream(std::string tool, int argc, char **argv)
        : tool_(std::move(tool)), argc_(argc), argv_(argv)
    {
    }

    /** Advance to the next token; false once argv is exhausted. */
    bool
    next()
    {
        if (index_ + 1 >= argc_)
            return false;
        arg_ = argv_[++index_];
        return true;
    }

    /** The current token (unsplit, as given on the command line). */
    const std::string &arg() const { return arg_; }

    /** True once any option value failed to parse; the tool should
     * print its usage and exit kExitUsage. */
    bool failed() const { return failed_; }

    /** Boolean flag: exact match, consumes nothing else. */
    bool
    flag(const std::string &name)
    {
        return arg_ == name;
    }

    /** Free-form string option ("--x v" or "--x=v"). */
    bool
    value(const std::string &name, std::string &out)
    {
        std::string raw;
        if (!take(name, raw))
            return false;
        out = raw;
        return true;
    }

    /** Floating-point option with inclusive bounds. */
    bool
    value(const std::string &name, double &out,
          double min = std::numeric_limits<double>::lowest(),
          double max = std::numeric_limits<double>::max())
    {
        std::string raw;
        if (!take(name, raw))
            return false;
        errno = 0;
        char *end = nullptr;
        const double parsed = std::strtod(raw.c_str(), &end);
        if (raw.empty() || end == nullptr || *end != '\0' ||
            errno == ERANGE) {
            reject(name, raw, "not a number");
        } else if (parsed < min || parsed > max) {
            reject(name, raw, "out of range");
        } else {
            out = parsed;
        }
        return true;
    }

    /** Signed integer option with inclusive bounds. */
    bool
    value(const std::string &name, std::int64_t &out,
          std::int64_t min = std::numeric_limits<std::int64_t>::min(),
          std::int64_t max = std::numeric_limits<std::int64_t>::max())
    {
        std::string raw;
        if (!take(name, raw))
            return false;
        errno = 0;
        char *end = nullptr;
        const long long parsed = std::strtoll(raw.c_str(), &end, 10);
        if (raw.empty() || end == nullptr || *end != '\0' ||
            errno == ERANGE) {
            reject(name, raw, "not an integer");
        } else if (parsed < min || parsed > max) {
            reject(name, raw, "out of range");
        } else {
            out = parsed;
        }
        return true;
    }

    bool
    value(const std::string &name, int &out,
          int min = std::numeric_limits<int>::min(),
          int max = std::numeric_limits<int>::max())
    {
        std::int64_t wide = out;
        if (!value(name, wide, min, max))
            return false;
        if (!failed_)
            out = static_cast<int>(wide);
        return true;
    }

    bool
    value(const std::string &name, unsigned &out, unsigned min = 0,
          unsigned max = std::numeric_limits<unsigned>::max())
    {
        std::int64_t wide = out;
        if (!value(name, wide, static_cast<std::int64_t>(min),
                   static_cast<std::int64_t>(max)))
            return false;
        if (!failed_)
            out = static_cast<unsigned>(wide);
        return true;
    }

    /** Unsigned 64-bit option (seeds, cycle budgets). */
    bool
    value(const std::string &name, std::uint64_t &out)
    {
        std::string raw;
        if (!take(name, raw))
            return false;
        errno = 0;
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(raw.c_str(), &end, 10);
        if (raw.empty() || end == nullptr || *end != '\0' ||
            errno == ERANGE || raw[0] == '-') {
            reject(name, raw, "not an unsigned integer");
        } else {
            out = parsed;
        }
        return true;
    }

    /** Bare (non-option) token; claims it into @p out if @p out is
     * still empty. */
    bool
    positional(std::string &out)
    {
        if (!arg_.empty() && arg_[0] == '-')
            return false;
        if (!out.empty())
            return false;
        out = arg_;
        return true;
    }

  private:
    /** Match a valued option: "--x v" (value in the next token) or
     * "--x=v".  A matched option missing its value latches failed(). */
    bool
    take(const std::string &name, std::string &raw)
    {
        if (arg_ == name) {
            if (index_ + 1 >= argc_) {
                std::cerr << tool_ << ": " << name
                          << " needs a value\n";
                failed_ = true;
                raw.clear();
                return true;
            }
            raw = argv_[++index_];
            return true;
        }
        if (arg_.size() > name.size() + 1 &&
            arg_.compare(0, name.size(), name) == 0 &&
            arg_[name.size()] == '=') {
            raw = arg_.substr(name.size() + 1);
            return true;
        }
        return false;
    }

    void
    reject(const std::string &name, const std::string &raw,
           const char *why)
    {
        std::cerr << tool_ << ": invalid value for " << name << ": '"
                  << raw << "' (" << why << ")\n";
        failed_ = true;
    }

    std::string tool_;
    int argc_;
    char **argv_;
    int index_ = 0;
    std::string arg_;
    bool failed_ = false;
};

} // namespace cli
} // namespace flexsim

#endif // FLEXSIM_TOOLS_CLI_HH
