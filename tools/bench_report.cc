/**
 * @file
 * Simulator-throughput benchmark reporter and regression gate.
 *
 * Times the cycle-level simulators on fixed Table-1 layers and writes
 * BENCH_flexsim.json (ns per runLayer call, minimum over the timed
 * iterations).  With --check BASELINE it instead compares the fresh
 * measurements against a committed baseline and exits non-zero when
 * any shared entry regressed by more than --factor (default 3x) --
 * this backs the perf-labelled ctest, so the gate is deliberately
 * loose: it catches accidental de-optimization of a hot path, not
 * machine-to-machine noise.
 *
 * Usage:
 *   bench_report [--out FILE]
 *   bench_report --check BASELINE [--factor F] [--out FILE]
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "flexflow/conv_unit.hh"
#include "mapping2d/mapping2d_array.hh"
#include "nn/tensor_init.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

namespace {

using namespace flexsim;

struct BenchEntry
{
    std::string name;
    double nsPerIter = 0.0;
};

/**
 * Time @p fn (one full runLayer call) and return the minimum
 * nanoseconds per call.  Minimum-of-N is the stablest point estimate
 * for a regression gate; the warm-up call also faults in the operand
 * tensors.
 */
template <typename Fn>
double
timeBench(Fn &&fn, int min_iters, double min_seconds)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm-up
    double best_ns = 0.0;
    double total_s = 0.0;
    for (int it = 0; it < 1000; ++it) {
        const auto begin = clock::now();
        fn();
        const std::chrono::duration<double> d = clock::now() - begin;
        const double ns = d.count() * 1e9;
        if (it == 0 || ns < best_ns)
            best_ns = ns;
        total_s += d.count();
        if (it + 1 >= min_iters && total_s >= min_seconds)
            break;
    }
    return best_ns;
}

std::vector<BenchEntry>
runBenches()
{
    std::vector<BenchEntry> entries;

    const ConvLayerSpec c3 = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    Rng rng_c3(1234);
    const Tensor3<> c3_in = makeRandomInput(rng_c3, c3);
    const Tensor4<> c3_k = makeRandomKernels(rng_c3, c3);
    const UnrollFactors c3_t{16, 3, 1, 1, 1, 5};

    const ConvLayerSpec conv5 =
        ConvLayerSpec::make("C5", 256, 192, 13, 3);
    Rng rng_c5(5678);
    const Tensor3<> c5_in = makeRandomInput(rng_c5, conv5);
    const Tensor4<> c5_k = makeRandomKernels(rng_c5, conv5);
    const UnrollFactors c5_t{16, 16, 1, 1, 1, 1};

    const auto flexflow = [&](const ConvLayerSpec &spec,
                              const UnrollFactors &t,
                              const Tensor3<> &in, const Tensor4<> &k,
                              int threads,
                              const fault::FaultPlan *plan = nullptr) {
        FlexFlowConfig cfg;
        cfg.threads = threads;
        FlexFlowConvUnit unit(cfg);
        if (plan != nullptr)
            unit.setFaultPlan(plan);
        Tensor3<> out = unit.runLayer(spec, t, in, k);
        // Keep the optimizer honest about the result.
        volatile Fixed16 sink = out.at(0, 0, 0);
        (void)sink;
    };

    // A fault plan with no datapath faults (serving-level events
    // only): the conv unit must take the zero-fault fast path, so
    // this bench is gated against the *same* flexflow_c3 baseline.
    fault::FaultPlan benign_plan;
    benign_plan.accelEvents.push_back(
        {fault::AccelEvent::Kind::FailStop, 0, 1000, 1.0});

    std::cerr << "bench_report: timing flexflow_c3...\n";
    entries.push_back(
        {"flexflow_c3", timeBench(
                            [&] {
                                flexflow(c3, c3_t, c3_in, c3_k, 1);
                            },
                            20, 0.25)});
    std::cerr << "bench_report: timing flexflow_c3_t4...\n";
    entries.push_back(
        {"flexflow_c3_t4", timeBench(
                               [&] {
                                   flexflow(c3, c3_t, c3_in, c3_k, 4);
                               },
                               20, 0.25)});
    std::cerr << "bench_report: timing flexflow_c3_faultplan...\n";
    entries.push_back({"flexflow_c3_faultplan",
                       timeBench(
                           [&] {
                               flexflow(c3, c3_t, c3_in, c3_k, 1,
                                        &benign_plan);
                           },
                           20, 0.25)});
    std::cerr << "bench_report: timing flexflow_conv5...\n";
    entries.push_back(
        {"flexflow_conv5", timeBench(
                               [&] {
                                   flexflow(conv5, c5_t, c5_in, c5_k,
                                            1);
                               },
                               3, 0.25)});
    std::cerr << "bench_report: timing flexflow_conv5_t4...\n";
    entries.push_back(
        {"flexflow_conv5_t4", timeBench(
                                  [&] {
                                      flexflow(conv5, c5_t, c5_in,
                                               c5_k, 4);
                                  },
                                  3, 0.25)});

    std::cerr << "bench_report: timing systolic_c3...\n";
    entries.push_back({"systolic_c3", timeBench(
                                          [&] {
                                              SystolicArraySim sim;
                                              sim.runLayer(c3, c3_in,
                                                           c3_k);
                                          },
                                          10, 0.25)});
    std::cerr << "bench_report: timing mapping2d_c3...\n";
    entries.push_back({"mapping2d_c3", timeBench(
                                           [&] {
                                               Mapping2DArraySim sim;
                                               sim.runLayer(c3, c3_in,
                                                            c3_k);
                                           },
                                           10, 0.25)});
    std::cerr << "bench_report: timing tiling_c3...\n";
    entries.push_back({"tiling_c3", timeBench(
                                        [&] {
                                            TilingArraySim sim;
                                            sim.runLayer(c3, c3_in,
                                                         c3_k);
                                        },
                                        10, 0.25)});
    return entries;
}

void
writeJson(const std::vector<BenchEntry> &entries, std::ostream &os)
{
    os << "{\n  \"schema\": \"flexsim-bench-v1\",\n  \"benches\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        os << "    {\"name\": \"" << entries[i].name
           << "\", \"ns_per_iter\": "
           << static_cast<std::uint64_t>(entries[i].nsPerIter) << "}"
           << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

/**
 * Minimal parser for the JSON this tool itself writes: scans for
 * "name"/"ns_per_iter" pairs.  Not a general JSON parser.
 */
std::vector<BenchEntry>
parseJson(const std::string &text)
{
    std::vector<BenchEntry> entries;
    std::size_t pos = 0;
    while (true) {
        const std::size_t n = text.find("\"name\"", pos);
        if (n == std::string::npos)
            break;
        const std::size_t q0 = text.find('"', text.find(':', n));
        const std::size_t q1 = text.find('"', q0 + 1);
        const std::size_t v = text.find("\"ns_per_iter\"", q1);
        if (q0 == std::string::npos || q1 == std::string::npos ||
            v == std::string::npos)
            break;
        BenchEntry e;
        e.name = text.substr(q0 + 1, q1 - q0 - 1);
        e.nsPerIter =
            std::strtod(text.c_str() + text.find(':', v) + 1, nullptr);
        entries.push_back(e);
        pos = v;
    }
    return entries;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string baseline_path;
    double factor = 3.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--factor" && i + 1 < argc) {
            factor = std::strtod(argv[++i], nullptr);
        } else {
            std::cerr << "usage: bench_report [--out FILE] "
                         "[--check BASELINE [--factor F]]\n";
            return 2;
        }
    }

    const std::vector<BenchEntry> entries = runBenches();

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "bench_report: cannot write " << out_path
                      << "\n";
            return 2;
        }
        writeJson(entries, os);
    } else if (baseline_path.empty()) {
        writeJson(entries, std::cout);
    }

    if (baseline_path.empty())
        return 0;

    std::ifstream is(baseline_path);
    if (!is) {
        std::cerr << "bench_report: cannot read " << baseline_path
                  << "\n";
        return 2;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const std::vector<BenchEntry> baseline = parseJson(buf.str());
    if (baseline.empty()) {
        std::cerr << "bench_report: no benches in " << baseline_path
                  << "\n";
        return 2;
    }

    bool ok = true;
    const auto gate = [&](const std::string &cur_name,
                          const BenchEntry &base) {
        const BenchEntry *cur = nullptr;
        for (const BenchEntry &e : entries)
            if (e.name == cur_name)
                cur = &e;
        if (cur == nullptr)
            return;
        const bool fail = cur->nsPerIter > base.nsPerIter * factor;
        std::cout << (fail ? "FAIL " : "ok   ") << cur_name << ": "
                  << static_cast<std::uint64_t>(cur->nsPerIter)
                  << " ns/iter vs baseline "
                  << static_cast<std::uint64_t>(base.nsPerIter);
        if (cur_name != base.name)
            std::cout << " (" << base.name << ")";
        std::cout << " (limit " << factor << "x)\n";
        if (fail)
            ok = false;
    };
    for (const BenchEntry &base : baseline) {
        gate(base.name, base);
        // The zero-fault hot path (benign plan attached) must not
        // regress against the committed no-plan C3 baseline.
        if (base.name == "flexflow_c3")
            gate("flexflow_c3_faultplan", base);
    }
    return ok ? 0 : 1;
}
