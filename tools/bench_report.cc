/**
 * @file
 * Simulator-throughput benchmark reporter and regression gate.
 *
 * Times the cycle-level simulators on fixed Table-1 layers and writes
 * BENCH_flexsim.json (ns per runLayer call, minimum over the timed
 * iterations).  Each simulator is timed at 1 and 4 host threads; the
 * report also carries derived "*_scaling" ratio entries (t1/t4
 * speedup) and microbenches of the contiguous-span MAC kernels.
 *
 * With --check BASELINE it compares the fresh measurements against a
 * committed baseline and exits non-zero when any shared timing entry
 * regressed by more than --factor (default 3x) -- this backs the
 * perf-labelled ctest, so the gate is deliberately loose: it catches
 * accidental de-optimization of a hot path, not machine-to-machine
 * noise.  Entries present on only one side (a freshly added bench, or
 * an old baseline) produce a warning, never a failure, so the schema
 * can grow without invalidating stored baselines.  Ratio entries are
 * reported but not factor-gated: thread scaling is a property of the
 * host, not of the code alone.
 *
 * With --scaling-gate it times only the thread sweeps and enforces
 * minimum t1/t4 speedups (conv5 >= 2.5x, the C3-sized layers >=
 * 1.2x).  On hosts with fewer than 4 hardware threads the gate is
 * meaningless and exits 77 (the ctest skip code).
 *
 * Usage:
 *   bench_report [--out FILE]
 *   bench_report --check BASELINE [--factor F] [--out FILE]
 *   bench_report --scaling-gate
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.hh"
#include "flexflow/conv_unit.hh"
#include "mapping2d/mapping2d_array.hh"
#include "nn/mac_kernels.hh"
#include "nn/tensor_init.hh"
#include "systolic/systolic_array.hh"
#include "tiling/tiling_array.hh"

#include "cli.hh"

namespace {

using namespace flexsim;

struct BenchEntry
{
    std::string name;
    double value = 0.0;    ///< ns/iter, or the ratio itself
    bool isRatio = false;  ///< derived t1/t4 speedup, not a timing
};

/**
 * Time @p fn (one full runLayer call) and return the minimum
 * nanoseconds per call.  Minimum-of-N is the stablest point estimate
 * for a regression gate; the warm-up call also faults in the operand
 * tensors.
 */
template <typename Fn>
double
timeBench(Fn &&fn, int min_iters, double min_seconds)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm-up
    double best_ns = 0.0;
    double total_s = 0.0;
    for (int it = 0; it < 1000; ++it) {
        const auto begin = clock::now();
        fn();
        const std::chrono::duration<double> d = clock::now() - begin;
        const double ns = d.count() * 1e9;
        if (it == 0 || ns < best_ns)
            best_ns = ns;
        total_s += d.count();
        if (it + 1 >= min_iters && total_s >= min_seconds)
            break;
    }
    return best_ns;
}

double
findNs(const std::vector<BenchEntry> &entries, const std::string &name)
{
    for (const BenchEntry &e : entries)
        if (e.name == name)
            return e.value;
    return 0.0;
}

/** Append a derived t1/t4 speedup entry when both timings exist. */
void
addScaling(std::vector<BenchEntry> &entries, const std::string &base)
{
    const double t1 = findNs(entries, base);
    const double t4 = findNs(entries, base + "_t4");
    if (t1 > 0.0 && t4 > 0.0)
        entries.push_back({base + "_scaling", t1 / t4, true});
}

std::vector<BenchEntry>
runBenches(bool scaling_only)
{
    std::vector<BenchEntry> entries;

    const ConvLayerSpec c3 = ConvLayerSpec::make("C3", 6, 16, 10, 5);
    Rng rng_c3(1234);
    const Tensor3<> c3_in = makeRandomInput(rng_c3, c3);
    const Tensor4<> c3_k = makeRandomKernels(rng_c3, c3);
    const UnrollFactors c3_t{16, 3, 1, 1, 1, 5};

    const ConvLayerSpec conv5 =
        ConvLayerSpec::make("C5", 256, 192, 13, 3);
    Rng rng_c5(5678);
    const Tensor3<> c5_in = makeRandomInput(rng_c5, conv5);
    const Tensor4<> c5_k = makeRandomKernels(rng_c5, conv5);
    const UnrollFactors c5_t{16, 16, 1, 1, 1, 1};

    const auto flexflow = [&](const ConvLayerSpec &spec,
                              const UnrollFactors &t,
                              const Tensor3<> &in, const Tensor4<> &k,
                              int threads,
                              const fault::FaultPlan *plan = nullptr) {
        FlexFlowConfig cfg;
        cfg.threads = threads;
        FlexFlowConvUnit unit(cfg);
        if (plan != nullptr)
            unit.setFaultPlan(plan);
        Tensor3<> out = unit.runLayer(spec, t, in, k);
        // Keep the optimizer honest about the result.
        volatile Fixed16 sink = out.at(0, 0, 0);
        (void)sink;
    };
    const auto systolic = [&](int threads) {
        SystolicConfig cfg;
        cfg.threads = threads;
        SystolicArraySim sim(cfg);
        sim.runLayer(c3, c3_in, c3_k);
    };
    const auto mapping2d = [&](int threads) {
        Mapping2DConfig cfg;
        cfg.threads = threads;
        Mapping2DArraySim sim(cfg);
        sim.runLayer(c3, c3_in, c3_k);
    };
    const auto tiling = [&](int threads) {
        TilingConfig cfg;
        cfg.threads = threads;
        TilingArraySim sim(cfg);
        sim.runLayer(c3, c3_in, c3_k);
    };
    const auto run = [&](const std::string &name, auto &&fn,
                         int min_iters) {
        std::cerr << "bench_report: timing " << name << "...\n";
        entries.push_back({name, timeBench(fn, min_iters, 0.25)});
    };

    // A fault plan with no datapath faults (serving-level events
    // only): the conv unit must take the zero-fault fast path, so
    // this bench is gated against the *same* flexflow_c3 baseline.
    fault::FaultPlan benign_plan;
    benign_plan.accelEvents.push_back(
        {fault::AccelEvent::Kind::FailStop, 0, 1000, 1.0});

    run("flexflow_c3",
        [&] { flexflow(c3, c3_t, c3_in, c3_k, 1); }, 20);
    run("flexflow_c3_t4",
        [&] { flexflow(c3, c3_t, c3_in, c3_k, 4); }, 20);
    if (!scaling_only) {
        run("flexflow_c3_faultplan",
            [&] { flexflow(c3, c3_t, c3_in, c3_k, 1, &benign_plan); },
            20);
    }
    run("flexflow_conv5",
        [&] { flexflow(conv5, c5_t, c5_in, c5_k, 1); }, 3);
    run("flexflow_conv5_t4",
        [&] { flexflow(conv5, c5_t, c5_in, c5_k, 4); }, 3);

    run("systolic_c3", [&] { systolic(1); }, 10);
    run("systolic_c3_t4", [&] { systolic(4); }, 10);
    run("mapping2d_c3", [&] { mapping2d(1); }, 10);
    run("mapping2d_c3_t4", [&] { mapping2d(4); }, 10);
    run("tiling_c3", [&] { tiling(1); }, 10);
    run("tiling_c3_t4", [&] { tiling(4); }, 10);

    if (!scaling_only) {
        // Contiguous-span MAC kernels over a 4K-element operand pair:
        // the unit all four vectorized inner loops are built from.
        constexpr int kSpan = 4096;
        std::vector<Fixed16> a(kSpan), b(kSpan);
        std::vector<Acc> accs(kSpan);
        Rng rng_span(91);
        for (int i = 0; i < kSpan; ++i) {
            a[i] = Fixed16::fromRaw(
                static_cast<std::int16_t>(rng_span.next()));
            b[i] = Fixed16::fromRaw(
                static_cast<std::int16_t>(rng_span.next()));
        }
        run("dot_span_4k",
            [&] {
                volatile Acc sink =
                    dotSpan(a.data(), b.data(), kSpan);
                (void)sink;
            },
            1000);
        run("scale_accum_span_4k",
            [&] {
                scaleAccumSpan(accs.data(), 3, b.data(), kSpan);
                volatile Acc sink = accs[0];
                (void)sink;
            },
            1000);
    }

    addScaling(entries, "flexflow_c3");
    addScaling(entries, "flexflow_conv5");
    addScaling(entries, "systolic_c3");
    addScaling(entries, "mapping2d_c3");
    addScaling(entries, "tiling_c3");
    return entries;
}

void
writeJson(const std::vector<BenchEntry> &entries, std::ostream &os)
{
    os << "{\n  \"schema\": \"flexsim-bench-v2\",\n  \"benches\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        os << "    {\"name\": \"" << entries[i].name << "\", ";
        if (entries[i].isRatio) {
            std::ostringstream ratio;
            ratio.precision(3);
            ratio << std::fixed << entries[i].value;
            os << "\"ratio\": " << ratio.str();
        } else {
            os << "\"ns_per_iter\": "
               << static_cast<std::uint64_t>(entries[i].value);
        }
        os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

/**
 * Minimal parser for the JSON this tool itself writes: scans for
 * "name" followed by either "ns_per_iter" (a timing) or "ratio" (a
 * derived scaling entry).  Accepts both the v1 and v2 schema.  Not a
 * general JSON parser.
 */
std::vector<BenchEntry>
parseJson(const std::string &text)
{
    std::vector<BenchEntry> entries;
    std::size_t pos = 0;
    while (true) {
        const std::size_t n = text.find("\"name\"", pos);
        if (n == std::string::npos)
            break;
        const std::size_t q0 = text.find('"', text.find(':', n));
        const std::size_t q1 = text.find('"', q0 + 1);
        if (q0 == std::string::npos || q1 == std::string::npos)
            break;
        const std::size_t next_n = text.find("\"name\"", q1);
        const std::size_t ns = text.find("\"ns_per_iter\"", q1);
        const std::size_t ratio = text.find("\"ratio\"", q1);
        BenchEntry e;
        e.name = text.substr(q0 + 1, q1 - q0 - 1);
        std::size_t v = std::string::npos;
        if (ns < next_n)
            v = ns;
        else if (ratio < next_n) {
            v = ratio;
            e.isRatio = true;
        }
        if (v == std::string::npos)
            break;
        e.value =
            std::strtod(text.c_str() + text.find(':', v) + 1, nullptr);
        entries.push_back(e);
        pos = v;
    }
    return entries;
}

int
checkAgainstBaseline(const std::vector<BenchEntry> &entries,
                     const std::vector<BenchEntry> &baseline,
                     double factor)
{
    bool ok = true;
    const auto find = [](const std::vector<BenchEntry> &in,
                         const std::string &name) -> const BenchEntry * {
        for (const BenchEntry &e : in)
            if (e.name == name)
                return &e;
        return nullptr;
    };
    const auto gate = [&](const std::string &cur_name,
                          const BenchEntry &base) {
        const BenchEntry *cur = find(entries, cur_name);
        if (cur == nullptr) {
            std::cout << "warn " << cur_name
                      << ": in baseline but not measured here "
                         "(schema drift, not a failure)\n";
            return;
        }
        if (base.isRatio || cur->isRatio) {
            // Thread scaling is a host property; report, don't gate
            // (the dedicated --scaling-gate mode enforces it).
            std::ostringstream fmt;
            fmt.precision(2);
            fmt << std::fixed << cur->value << "x vs baseline "
                << base.value << "x";
            std::cout << "info " << cur_name << ": " << fmt.str()
                      << " (not gated)\n";
            return;
        }
        const bool fail = cur->value > base.value * factor;
        std::cout << (fail ? "FAIL " : "ok   ") << cur_name << ": "
                  << static_cast<std::uint64_t>(cur->value)
                  << " ns/iter vs baseline "
                  << static_cast<std::uint64_t>(base.value);
        if (cur_name != base.name)
            std::cout << " (" << base.name << ")";
        std::cout << " (limit " << factor << "x)\n";
        if (fail)
            ok = false;
    };
    for (const BenchEntry &base : baseline) {
        gate(base.name, base);
        // The zero-fault hot path (benign plan attached) must not
        // regress against the committed no-plan C3 baseline.
        if (base.name == "flexflow_c3")
            gate("flexflow_c3_faultplan", base);
    }
    for (const BenchEntry &e : entries) {
        if (e.name == "flexflow_c3_faultplan")
            continue; // gated above against flexflow_c3
        if (find(baseline, e.name) == nullptr)
            std::cout << "warn " << e.name
                      << ": not in the stored baseline (new bench; "
                         "regenerate with --out to adopt it)\n";
    }
    return ok ? 0 : 1;
}

/**
 * Thread-sweep gate: the tile decomposition must actually scale.
 * conv5 has thousands of (mb, rb, cb) tiles and a sequential share
 * under 10%, so 4 threads must buy >= 2.5x; the C3-sized layers have
 * tens of tiles and real per-call fixed costs, so only a loose 1.2x
 * floor applies.  Skipped (exit 77) without >= 4 hardware threads.
 */
int
runScalingGate(const std::vector<BenchEntry> &entries)
{
    struct Gate
    {
        const char *name;
        double minRatio;
    };
    const Gate gates[] = {
        {"flexflow_conv5_scaling", 2.5},
        {"flexflow_c3_scaling", 1.2},
        {"systolic_c3_scaling", 1.2},
        {"mapping2d_c3_scaling", 1.2},
        {"tiling_c3_scaling", 1.2},
    };
    bool ok = true;
    for (const Gate &g : gates) {
        const BenchEntry *cur = nullptr;
        for (const BenchEntry &e : entries)
            if (e.name == g.name)
                cur = &e;
        if (cur == nullptr) {
            std::cout << "FAIL " << g.name << ": not measured\n";
            ok = false;
            continue;
        }
        const bool fail = cur->value < g.minRatio;
        std::ostringstream fmt;
        fmt.precision(2);
        fmt << std::fixed << cur->value << "x (want >= " << g.minRatio
            << "x)";
        std::cout << (fail ? "FAIL " : "ok   ") << g.name << ": "
                  << fmt.str() << "\n";
        if (fail)
            ok = false;
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string baseline_path;
    bool scaling_gate = false;
    double factor = 3.0;

    cli::ArgStream args("bench_report", argc, argv);
    bool bad = false;
    while (args.next()) {
        if (args.value("--out", out_path)) {
        } else if (args.value("--check", baseline_path)) {
        } else if (args.value("--factor", factor, 1e-9)) {
        } else if (args.flag("--scaling-gate")) {
            scaling_gate = true;
        } else {
            bad = true;
            break;
        }
    }
    if (bad || args.failed()) {
        std::cerr << "usage: bench_report [--out FILE] "
                     "[--check BASELINE [--factor F]] "
                     "[--scaling-gate]\n";
        return cli::kExitUsage;
    }

    if (scaling_gate &&
        std::thread::hardware_concurrency() < 4) {
        std::cout << "bench_report: host has "
                  << std::thread::hardware_concurrency()
                  << " hardware thread(s); the scaling gate needs 4 "
                     "-- skipping\n";
        return cli::kExitSkip;
    }

    const std::vector<BenchEntry> entries = runBenches(scaling_gate);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "bench_report: cannot write " << out_path
                      << "\n";
            return cli::kExitRuntime;
        }
        writeJson(entries, os);
    } else if (baseline_path.empty() && !scaling_gate) {
        writeJson(entries, std::cout);
    }

    if (scaling_gate)
        return runScalingGate(entries);

    if (baseline_path.empty())
        return cli::kExitOk;

    std::ifstream is(baseline_path);
    if (!is) {
        std::cerr << "bench_report: cannot read " << baseline_path
                  << "\n";
        return cli::kExitRuntime;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const std::vector<BenchEntry> baseline = parseJson(buf.str());
    if (baseline.empty()) {
        std::cerr << "bench_report: no benches in " << baseline_path
                  << "\n";
        return cli::kExitRuntime;
    }
    return checkAgainstBaseline(entries, baseline, factor);
}
