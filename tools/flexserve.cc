/**
 * @file
 * flexserve — serve synthetic inference traffic on a pool of
 * simulated accelerators and report throughput / tail latency / SLO
 * compliance.
 *
 * Usage:
 *     flexserve [--arch A] [--pool N] [--rps R] [--traffic M]
 *               [--duration T] [--seed S] [--workload W[,W...]]
 *               [--scale D] [--batch B] [--queue Q] [--window-ms W]
 *               [--slo-ms L] [--deadline-ms L] [--dram-wpc BW]
 *               [--trace FILE] [--faults SPEC] [--fault-trace FILE]
 *               [--watchdog-ms W] [--quarantine-strikes N]
 *               [--poison-rate P]
 *
 * --poison-rate injects malformed (unserviceable) requests into the
 * synthetic traffic; admission control quarantines them instead of
 * queueing.  --watchdog-ms kills batches whose service time exceeds
 * the budget; a request killed --quarantine-strikes times is
 * quarantined.  See DESIGN.md §3.7.
 *
 * Runs are deterministic: the same seed and configuration print a
 * byte-identical report — including runs with injected faults.
 *
 * --faults takes a fault::parseFaultSpec plan.  Its failstop /
 * slowdown / recover events drive the pool's health state machine,
 * and when the plan degrades the PE array geometry (dead rows /
 * columns) the flexflow architecture builds a second service-time
 * table compiled for the surviving sub-array — degraded instances
 * reroute to it instead of shedding.  --fault-trace appends events
 * from a file ("<time> failstop|slowdown|recover <accel> [factor]").
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fault/degrade.hh"
#include "fault/fault_plan.hh"
#include "flexflow/flexflow_model.hh"
#include "mapping2d/mapping2d_model.hh"
#include "nn/workloads.hh"
#include "rowstationary/rs_model.hh"
#include "serve/runtime.hh"
#include "serve/service_model.hh"
#include "serve/traffic.hh"
#include "sim/thread_pool.hh"
#include "systolic/systolic_model.hh"
#include "tiling/tiling_model.hh"

#include "cli.hh"

using namespace flexsim;
using namespace flexsim::serve;

namespace {

int
usage()
{
    std::cerr
        << "usage: flexserve [options]\n"
           "  --arch A         flexflow | systolic | mapping2d | "
           "tiling | rowstationary (default flexflow)\n"
           "  --pool N         accelerator instances (default 4)\n"
           "  --rps R          mean offered load (default 2000)\n"
           "  --traffic M      poisson | bursty | replay "
           "(default poisson)\n"
           "  --duration T     e.g. 10s, 500ms (default 10s)\n"
           "  --seed S         traffic seed (default 1)\n"
           "  --workload W     comma list of table-1 workloads "
           "(default alexnet)\n"
           "  --scale D        engine scale, PEs = DxD (default 16)\n"
           "  --batch B        max batch per dispatch (default 8)\n"
           "  --queue Q        admission-queue capacity "
           "(default 256)\n"
           "  --window-ms W    batching window (default 2)\n"
           "  --slo-ms L       latency SLO (default 50)\n"
           "  --deadline-ms L  queue deadline; 0 disables "
           "(default 0)\n"
           "  --dram-wpc BW    DRAM words/cycle (default 4)\n"
           "  --faults SPEC    fault plan (see fault_plan.hh "
           "grammar)\n"
           "  --fault-trace F  accelerator event file: \"<time> "
           "failstop|slowdown|recover <accel> [factor]\"\n"
           "  --sim-threads N  host threads for the cycle "
           "simulators (default $FLEXSIM_THREADS or 1; results are "
           "identical for any value)\n"
           "  --trace FILE     replay trace, one arrival us per "
           "line\n"
           "  --watchdog-ms W  per-batch service-time budget; "
           "0 disables (default 0)\n"
           "  --quarantine-strikes N  watchdog kills before a "
           "request is quarantined (default 3)\n"
           "  --poison-rate P  fraction of malformed requests in "
           "synthetic traffic (default 0)\n";
    return cli::kExitUsage;
}

/** Parse "10s" / "500ms" / "250us" into nanoseconds. */
std::optional<TimeNs>
parseDuration(const std::string &text)
{
    double scale = 0.0;
    std::string digits;
    if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
        scale = 1e6;
        digits = text.substr(0, text.size() - 2);
    } else if (text.size() > 2 &&
               text.substr(text.size() - 2) == "us") {
        scale = 1e3;
        digits = text.substr(0, text.size() - 2);
    } else if (text.size() > 1 && text.back() == 's') {
        scale = 1e9;
        digits = text.substr(0, text.size() - 1);
    } else {
        return std::nullopt;
    }
    try {
        const double value = std::stod(digits);
        if (value <= 0.0)
            return std::nullopt;
        return static_cast<TimeNs>(value * scale);
    } catch (...) {
        return std::nullopt;
    }
}

std::unique_ptr<AcceleratorModel>
makeModel(const std::string &arch, unsigned scale, int sim_threads)
{
    const std::string lower = toLower(arch);
    if (lower == "flexflow") {
        FlexFlowConfig cfg = FlexFlowConfig::forScale(scale);
        cfg.threads = sim_threads;
        return std::make_unique<FlexFlowModel>(cfg);
    }
    if (lower == "systolic") {
        SystolicConfig cfg = SystolicConfig::forScale(scale);
        cfg.threads = sim_threads;
        return std::make_unique<SystolicModel>(cfg);
    }
    if (lower == "mapping2d") {
        Mapping2DConfig cfg = Mapping2DConfig::forScale(scale);
        cfg.threads = sim_threads;
        return std::make_unique<Mapping2DModel>(cfg);
    }
    if (lower == "tiling") {
        TilingConfig cfg = TilingConfig::forScale(scale);
        cfg.threads = sim_threads;
        return std::make_unique<TilingModel>(cfg);
    }
    if (lower == "rowstationary") {
        return std::make_unique<RowStationaryModel>(
            RowStationaryConfig::eyeriss());
    }
    return nullptr;
}

/** Lower-case, dashes stripped: "LeNet-5" matches "lenet5". */
std::string
canonicalName(const std::string &name)
{
    std::string out;
    for (char c : toLower(name)) {
        if (c != '-')
            out.push_back(c);
    }
    return out;
}

std::optional<NetworkSpec>
findWorkload(const std::string &name)
{
    for (const NetworkSpec &net : workloads::all()) {
        if (canonicalName(net.name) == canonicalName(name))
            return net;
    }
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string arch = "flexflow";
    std::string traffic_name = "poisson";
    std::string workload_list = "alexnet";
    std::string trace_path;
    unsigned pool = 4;
    unsigned scale = 16;
    double rps = 2000.0;
    TimeNs duration_ns = 10'000'000'000ull;
    std::uint64_t seed = 1;
    ServeConfig config;
    double window_ms = 2.0;
    double slo_ms = 50.0;
    double deadline_ms = 0.0;
    double dram_wpc = 4.0;
    int sim_threads = sim::ThreadPool::defaultThreads();
    std::string fault_spec;
    std::string fault_trace_path;
    double watchdog_ms = 0.0;
    double poison_rate = 0.0;
    unsigned quarantine_strikes = 3;

    unsigned queue_capacity =
        static_cast<unsigned>(config.queueCapacity);
    cli::ArgStream args("flexserve", argc, argv);
    while (args.next()) {
        std::string duration_text;
        if (args.value("--arch", arch)) {
        } else if (args.value("--pool", pool, 1u)) {
        } else if (args.value("--rps", rps, 1e-9)) {
        } else if (args.value("--traffic", traffic_name)) {
        } else if (args.value("--duration", duration_text)) {
            const auto parsed = parseDuration(duration_text);
            if (!parsed) {
                std::cerr << "flexserve: invalid value for "
                             "--duration: '"
                          << duration_text << "'\n";
                return usage();
            }
            duration_ns = *parsed;
        } else if (args.value("--seed", seed)) {
        } else if (args.value("--workload", workload_list)) {
        } else if (args.value("--scale", scale, 1u)) {
        } else if (args.value("--batch", config.maxBatch, 1u)) {
        } else if (args.value("--queue", queue_capacity, 1u)) {
        } else if (args.value("--window-ms", window_ms, 0.0)) {
        } else if (args.value("--slo-ms", slo_ms, 0.0)) {
        } else if (args.value("--deadline-ms", deadline_ms, 0.0)) {
        } else if (args.value("--faults", fault_spec)) {
        } else if (args.value("--fault-trace", fault_trace_path)) {
        } else if (args.value("--dram-wpc", dram_wpc, 1e-9)) {
        } else if (args.value("--sim-threads", sim_threads, 1)) {
        } else if (args.value("--trace", trace_path)) {
        } else if (args.value("--watchdog-ms", watchdog_ms, 0.0)) {
        } else if (args.value("--quarantine-strikes",
                              quarantine_strikes, 1u)) {
        } else if (args.value("--poison-rate", poison_rate, 0.0,
                              1.0)) {
        } else {
            return usage();
        }
    }
    if (args.failed())
        return usage();
    const auto traffic_model = parseTrafficModel(traffic_name);
    if (!traffic_model) {
        std::cerr << "flexserve: unknown traffic model '"
                  << traffic_name << "'\n";
        return usage();
    }
    const auto model = makeModel(arch, scale, sim_threads);
    if (!model) {
        std::cerr << "flexserve: unknown architecture '" << arch
                  << "'\n";
        return usage();
    }
    std::vector<NetworkSpec> nets;
    for (const std::string &name : split(workload_list, ',')) {
        const auto net = findWorkload(trim(name));
        if (!net) {
            std::cerr << "flexserve: unknown workload '" << name
                      << "' (try pv, fr, lenet-5, hg, alexnet, "
                         "vgg)\n";
            return usage();
        }
        nets.push_back(*net);
    }

    config.poolSize = pool;
    config.queueCapacity = queue_capacity;
    config.batchWindowNs = static_cast<TimeNs>(window_ms * 1e6);
    config.sloNs = static_cast<TimeNs>(slo_ms * 1e6);
    if (deadline_ms > 0.0)
        config.deadlineNs = static_cast<TimeNs>(deadline_ms * 1e6);
    config.watchdogNs = static_cast<TimeNs>(watchdog_ms * 1e6);
    config.quarantineStrikes = quarantine_strikes;

    fault::FaultPlan plan;
    if (!fault_spec.empty()) {
        auto parsed = fault::tryParseFaultSpec(fault_spec);
        if (!parsed) {
            std::cerr << "flexserve: " << parsed.error().str()
                      << "\n";
            return cli::kExitUsage;
        }
        plan = std::move(parsed.value());
        if (auto valid = plan.check(static_cast<int>(scale));
            !valid) {
            std::cerr << "flexserve: " << valid.error().str() << "\n";
            return cli::kExitUsage;
        }
    }
    std::vector<fault::AccelEvent> events = plan.accelEvents;
    if (!fault_trace_path.empty()) {
        std::ifstream in(fault_trace_path);
        if (!in) {
            std::cerr << "flexserve: cannot read " << fault_trace_path
                      << "\n";
            return cli::kExitRuntime;
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto traced = fault::tryParseFaultTrace(text.str());
        if (!traced) {
            std::cerr << "flexserve: " << traced.error().str()
                      << "\n";
            return cli::kExitUsage;
        }
        events.insert(events.end(), traced.value().begin(),
                      traced.value().end());
    }

    TrafficConfig traffic;
    traffic.model = *traffic_model;
    traffic.rps = rps;
    traffic.durationNs = duration_ns;
    traffic.seed = seed;
    traffic.numWorkloads = static_cast<int>(nets.size());
    traffic.poisonRate = poison_rate;
    if (traffic.model == TrafficModel::Replay) {
        if (trace_path.empty()) {
            std::cerr
                << "flexserve: --traffic replay needs --trace\n";
            return usage();
        }
        std::ifstream in(trace_path);
        if (!in) {
            std::cerr << "flexserve: cannot read " << trace_path
                      << "\n";
            return cli::kExitRuntime;
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto replay = tryParseReplayTrace(text.str());
        if (!replay) {
            std::cerr << "flexserve: " << replay.error().str()
                      << "\n";
            return cli::kExitUsage;
        }
        traffic.replayNs = std::move(replay.value());
    }

    const ServiceTimeModel service(*model, nets, dram_wpc);
    const std::vector<InferenceRequest> requests =
        generateTraffic(traffic);

    // When the fault plan degrades the PE array, price Degraded
    // instances with a service table compiled for the surviving
    // sub-array (flexflow remaps its unroll factors; the other
    // architectures have no equivalent flexibility and keep the
    // healthy table).
    std::unique_ptr<AcceleratorModel> degraded_model;
    std::unique_ptr<ServiceTimeModel> degraded_service;
    if (plan.affectsGeometry() && toLower(arch) == "flexflow") {
        const fault::DegradedGeometry geom = fault::degradeLineCover(
            fault::ArrayAvailability::fromPlan(
                plan, static_cast<int>(scale)));
        FlexFlowConfig cfg = FlexFlowConfig::forScale(scale);
        cfg.threads = sim_threads;
        cfg.availRows = geom.rows;
        cfg.availCols = geom.cols;
        degraded_model = std::make_unique<FlexFlowModel>(cfg);
        degraded_service = std::make_unique<ServiceTimeModel>(
            *degraded_model, nets, dram_wpc);
    }

    ServeRuntime runtime(service, config, events,
                         degraded_service.get());
    const ServeReport report = runtime.run(requests);

    std::cout << "flexserve: " << service.archName() << " x " << pool
              << " (scale " << scale << "), "
              << trafficModelName(traffic.model) << " traffic at "
              << formatDouble(rps, 0) << " rps for "
              << formatDouble(static_cast<double>(duration_ns) / 1e9,
                              2)
              << " s, seed " << seed << "\n";
    std::cout << "workloads:";
    for (std::size_t w = 0; w < service.numWorkloads(); ++w) {
        std::cout << " " << service.workloadName(static_cast<int>(w))
                  << " ("
                  << formatDouble(
                         static_cast<double>(service.frameServiceNs(
                             static_cast<int>(w))) /
                             1e6,
                         3)
                  << " ms/frame)";
    }
    std::cout << "\n";
    if (!plan.empty() || !events.empty()) {
        std::cout << "faults: " << events.size()
                  << " accelerator event(s)";
        if (degraded_service) {
            std::cout << "; degraded instances serve at "
                      << formatDouble(
                             static_cast<double>(
                                 degraded_service->frameServiceNs(0)) /
                                 1e6,
                             3)
                      << " ms/frame";
        }
        std::cout << "\n";
    }
    std::cout << "\n";

    TextTable table;
    table.setHeader({"Metric", "Value"});
    table.addRow({"requests offered",
                  formatCount(report.arrived)});
    table.addRow({"requests completed",
                  formatCount(report.completed)});
    table.addRow({"requests shed", formatCount(report.shed)});
    if (!events.empty() || config.deadlineNs > 0) {
        table.addRow({"requests timed out",
                      formatCount(report.timedOut)});
        table.addRow({"requests failed",
                      formatCount(report.failed)});
        table.addRow({"retries", formatCount(report.retries)});
        table.addRow({"ejections", formatCount(report.ejections)});
        table.addRow({"readmissions",
                      formatCount(report.readmissions)});
        table.addRow({"degraded reroutes",
                      formatCount(report.degradedReroutes)});
    }
    if (poison_rate > 0.0 || config.watchdogNs > 0 ||
        report.quarantined > 0) {
        table.addRow({"requests quarantined",
                      formatCount(report.quarantined)});
        table.addRow({"watchdog trips",
                      formatCount(report.watchdogTrips)});
    }
    table.addRow({"throughput",
                  formatDouble(report.throughputRps, 1) + " rps"});
    table.addRow({"latency p50",
                  formatDouble(report.p50LatencyMs, 3) + " ms"});
    table.addRow({"latency p95",
                  formatDouble(report.p95LatencyMs, 3) + " ms"});
    table.addRow({"latency p99",
                  formatDouble(report.p99LatencyMs, 3) + " ms"});
    table.addRow({"SLO (" + formatDouble(slo_ms, 1) + " ms) misses",
                  formatCount(report.sloViolations)});
    double mean_util = 0.0;
    for (double u : report.utilization)
        mean_util += u;
    if (!report.utilization.empty())
        mean_util /= static_cast<double>(report.utilization.size());
    table.addRow({"pool utilization", formatPercent(mean_util)});
    table.print(std::cout);

    std::cout << "\n";
    runtime.dumpStats(std::cout);
    return cli::kExitOk;
}
