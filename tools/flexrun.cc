/**
 * @file
 * flexrun — execute a FlexFlow assembly program on the cycle-level
 * accelerator with synthetic data.
 *
 * The program's cfg_layer instructions define the layer chain; flexrun
 * generates deterministic pseudo-random inputs/kernels for it, runs
 * the program, verifies the result against the golden reference, and
 * dumps the accelerator statistics.
 *
 * Usage:
 *     flexrun <program.s> [-d D] [--seed S] [--stats]
 *             [--dram-wpc BW] [--faults SPEC] [--threads N]
 *             [--watchdog-ms MS] [--cycle-budget C]
 *
 * --faults injects a deterministic fault plan (see
 * fault::parseFaultSpec for the grammar).  Corrupting faults (stuck
 * or flipping MACs, unprotected buffer flips) make the output
 * legitimately diverge from the golden reference; flexrun reports the
 * divergence as expected and still exits 0.
 *
 * --threads spreads the cycle simulation over the shared host thread
 * pool (default: the FLEXSIM_THREADS environment variable, else 1).
 * Results are bit-identical at any value.
 *
 * --watchdog-ms / --cycle-budget arm the per-CONV-layer execution
 * watchdog (guard::Watchdog): a layer that exceeds the host
 * wall-clock or modelled-cycle budget is abandoned at the next tile
 * boundary and flexrun exits kExitRuntime with the typed Timeout
 * error instead of hanging.  Exit codes follow tools/cli.hh.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/system_timing.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fault/degrade.hh"
#include "fault/fault_plan.hh"
#include "flexflow/accelerator.hh"
#include "nn/golden.hh"
#include "nn/tensor_init.hh"
#include "sim/thread_pool.hh"

#include "cli.hh"

using namespace flexsim;

namespace {

int
usage()
{
    std::cerr << "usage: flexrun <program.s> [-d D] [--seed S] "
                 "[--stats] [--dram-wpc BW] [--faults SPEC] "
                 "[--threads N] [--watchdog-ms MS] "
                 "[--cycle-budget C]\n";
    return cli::kExitUsage;
}

/** Layer chain implied by a program's cfg_layer/pool instructions. */
struct ProgramShape
{
    std::vector<ConvLayerSpec> convs;
    std::vector<std::optional<PoolLayerSpec>> pools;
};

ProgramShape
extractShape(const Program &program)
{
    ProgramShape shape;
    std::optional<ConvLayerSpec> pending;
    for (const Instruction &inst : program.instructions) {
        switch (inst.op) {
          case Opcode::CfgLayer:
            pending = ConvLayerSpec::make(
                "L" + std::to_string(shape.convs.size()),
                static_cast<int>(inst.args[1]),
                static_cast<int>(inst.args[0]),
                static_cast<int>(inst.args[2]),
                static_cast<int>(inst.args[3]),
                static_cast<int>(inst.args[4]));
            break;
          case Opcode::Conv:
            if (!pending)
                fatal("program has conv before cfg_layer");
            shape.convs.push_back(*pending);
            shape.pools.emplace_back();
            break;
          case Opcode::Pool:
            if (shape.convs.empty())
                fatal("program has pool before any conv");
            shape.pools.back() = PoolLayerSpec{
                static_cast<int>(inst.args[0]),
                static_cast<int>(inst.args[1]),
                inst.args[2] == 0 ? PoolOp::Max : PoolOp::Average};
            break;
          default:
            break;
        }
    }
    if (shape.convs.empty())
        fatal("program contains no conv instructions");
    return shape;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string path;
    unsigned d = 16;
    std::uint64_t seed = 2017;
    bool dump_stats = false;
    double dram_wpc = 4.0;
    int threads = sim::ThreadPool::defaultThreads();
    std::string fault_spec;
    double watchdog_ms = 0.0;
    std::uint64_t cycle_budget = 0;
    cli::ArgStream args("flexrun", argc, argv);
    while (args.next()) {
        if (args.value("-d", d, 1u)) {
        } else if (args.value("--seed", seed)) {
        } else if (args.flag("--stats")) {
            dump_stats = true;
        } else if (args.value("--dram-wpc", dram_wpc, 1e-9)) {
        } else if (args.value("--threads", threads, 1)) {
        } else if (args.value("--faults", fault_spec)) {
        } else if (args.value("--watchdog-ms", watchdog_ms, 0.0)) {
        } else if (args.value("--cycle-budget", cycle_budget)) {
        } else if (args.positional(path)) {
        } else {
            return usage();
        }
    }
    if (args.failed() || path.empty())
        return usage();

    // Binary programs (written by `flexcc -b`) start with the "FFSM"
    // magic; anything else is treated as assembly text.  Both decode
    // through the typed parsers, so corrupt input is a diagnostic and
    // kExitUsage, never an abort.
    Program program;
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe) {
            std::cerr << "flexrun: cannot read " << path << "\n";
            return cli::kExitRuntime;
        }
        char magic[4] = {};
        probe.read(magic, 4);
        probe.close();
        guard::Expected<Program> parsed = [&] {
            if (std::string(magic, 4) == "FFSM")
                return tryLoadBinary(path);
            std::ifstream in(path);
            std::ostringstream source;
            source << in.rdbuf();
            return tryAssemble(source.str());
        }();
        if (!parsed) {
            std::cerr << "flexrun: " << parsed.error().str() << "\n";
            return cli::kExitUsage;
        }
        program = std::move(parsed.value());
    }
    const ProgramShape shape = extractShape(program);

    // Synthesize deterministic data for the program's layer chain.
    Rng rng(seed);
    const Tensor3<> input = makeRandomInput(rng, shape.convs.front());
    std::vector<Tensor4<>> kernels;
    for (const ConvLayerSpec &spec : shape.convs)
        kernels.push_back(makeRandomKernels(rng, spec));

    fault::FaultPlan plan;
    if (!fault_spec.empty()) {
        auto parsed = fault::tryParseFaultSpec(fault_spec);
        if (!parsed) {
            std::cerr << "flexrun: " << parsed.error().str() << "\n";
            return cli::kExitUsage;
        }
        plan = std::move(parsed.value());
        if (auto valid = plan.check(static_cast<int>(d)); !valid) {
            std::cerr << "flexrun: " << valid.error().str() << "\n";
            return cli::kExitUsage;
        }
    }
    if (plan.affectsGeometry()) {
        // The program's factors were fixed at compile time; check
        // them against the surviving geometry up front so a mismatch
        // is a clean diagnostic, not a mid-run panic.
        const fault::DegradedGeometry geom = fault::degradeLineCover(
            fault::ArrayAvailability::fromPlan(plan,
                                               static_cast<int>(d)));
        for (const Instruction &inst : program.instructions) {
            if (inst.op != Opcode::CfgFactors)
                continue;
            const int rows = static_cast<int>(inst.args[0] *
                                              inst.args[2] *
                                              inst.args[3]);
            const int cols = static_cast<int>(inst.args[1] *
                                              inst.args[4] *
                                              inst.args[5]);
            if (rows > geom.rows || cols > geom.cols) {
                std::cerr << "flexrun: the program needs " << rows
                          << "x" << cols
                          << " PEs but the fault plan leaves only "
                          << geom.rows << "x" << geom.cols
                          << "; recompile for the plan with "
                             "`flexcc ... --faults '"
                          << fault_spec << "'`\n";
                return cli::kExitUsage;
            }
        }
    }
    // Corrupting faults legitimately change the computed output; the
    // golden mismatch is then the expected result, not a failure.
    const bool corrupting =
        plan.affectsMacs() ||
        (plan.affectsBuffers() && !plan.parityDetect);

    FlexFlowConfig cfg = FlexFlowConfig::forScale(d);
    cfg.threads = threads;
    FlexFlowAccelerator accelerator(cfg);
    if (!plan.empty())
        accelerator.setFaultPlan(&plan);
    accelerator.bindInput(input);
    accelerator.bindKernels(kernels);
    guard::Watchdog::Budget budget;
    budget.wallNs = static_cast<std::uint64_t>(watchdog_ms * 1e6);
    budget.cycles = cycle_budget;
    if (!budget.unlimited())
        accelerator.setWatchdogBudget(budget);
    NetworkResult result;
    auto ran = accelerator.tryRun(program, &result);
    if (!ran) {
        std::cerr << "flexrun: " << ran.error().str() << "\n";
        return cli::kExitRuntime;
    }
    const Tensor3<> output = std::move(ran.value());

    // Golden verification of the same chain (with border cropping).
    Tensor3<> golden = input;
    for (std::size_t i = 0; i < shape.convs.size(); ++i) {
        golden = cropTopLeft(golden, shape.convs[i].inSize);
        golden = goldenConv(shape.convs[i], golden, kernels[i]);
        if (shape.pools[i])
            golden = goldenPool(golden, *shape.pools[i]);
    }
    const bool matches = output == golden;
    const bool ok = corrupting || matches;
    std::cout << "flexrun: " << shape.convs.size()
              << " CONV layer(s), output ";
    if (matches)
        std::cout << "matches the golden reference";
    else if (corrupting)
        std::cout << "diverges from the golden reference "
                     "(expected under the injected faults)";
    else
        std::cout << "DOES NOT match the golden reference";
    std::cout << "\n\n";

    if (!plan.empty()) {
        const fault::FaultDiagnostics &fd =
            accelerator.faultDiagnostics();
        std::cout << "Injected faults: " << fd.stuckMacs
                  << " stuck MACs, " << fd.flippedMacs
                  << " flipped MACs, " << fd.corruptedWords
                  << " corrupted words, " << fd.paritiesDetected
                  << " parity hits (" << fd.scrubbedWords
                  << " words scrubbed)\n\n";
    }

    TextTable table;
    table.setHeader(
        {"Layer", "Cycles", "Utilization", "GOPs@1GHz"});
    for (const LayerResult &layer : result.layers) {
        table.addRow({layer.layerName, formatCount(layer.cycles),
                      formatPercent(layer.utilization()),
                      formatDouble(layer.gops(1.0), 1)});
    }
    table.print(std::cout);

    if (dump_stats) {
        // System roofline: the same per-layer decomposition the
        // serving runtime (src/serve/) prices batches with.  An
        // injected DRAM slowdown divides the channel bandwidth.
        const double effective_wpc = dram_wpc / plan.dramSlowdown;
        std::cout << "\nSystem roofline ("
                  << formatDouble(effective_wpc, 1)
                  << " DRAM words/cycle, double-buffered):\n";
        TextTable roofline;
        roofline.setHeader({"Layer", "ComputeCycles", "DramCycles",
                            "TotalCycles", "Bound"});
        for (const LayerResult &layer : result.layers) {
            const SystemTiming timing =
                overlapTiming(layer, effective_wpc);
            roofline.addRow(
                {layer.layerName, formatCount(timing.computeCycles),
                 formatCount(timing.dramCycles),
                 formatCount(timing.totalCycles),
                 timing.memoryBound ? "memory" : "compute"});
        }
        roofline.print(std::cout);

        std::cout << "\n";
        accelerator.dumpStats(std::cout);
    }
    return ok ? cli::kExitOk : cli::kExitRuntime;
}
