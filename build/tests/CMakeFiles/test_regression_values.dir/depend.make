# Empty dependencies file for test_regression_values.
# This may be replaced when dependencies are built.
