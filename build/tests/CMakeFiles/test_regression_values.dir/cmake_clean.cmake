file(REMOVE_RECURSE
  "CMakeFiles/test_regression_values.dir/test_regression_values.cc.o"
  "CMakeFiles/test_regression_values.dir/test_regression_values.cc.o.d"
  "test_regression_values"
  "test_regression_values.pdb"
  "test_regression_values[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regression_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
