file(REMOVE_RECURSE
  "CMakeFiles/test_rowstationary.dir/test_rowstationary.cc.o"
  "CMakeFiles/test_rowstationary.dir/test_rowstationary.cc.o.d"
  "test_rowstationary"
  "test_rowstationary.pdb"
  "test_rowstationary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rowstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
