# Empty dependencies file for test_rowstationary.
# This may be replaced when dependencies are built.
