
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/test_fuzz.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/test_fuzz.dir/test_fuzz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serve/CMakeFiles/flexsim_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/rowstationary/CMakeFiles/flexsim_rowstationary.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/flexsim_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/flexflow/CMakeFiles/flexsim_flexflow.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/flexsim_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping2d/CMakeFiles/flexsim_mapping2d.dir/DependInfo.cmake"
  "/root/repo/build/src/tiling/CMakeFiles/flexsim_tiling.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/flexsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/flexsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
