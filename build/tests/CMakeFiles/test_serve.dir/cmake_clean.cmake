file(REMOVE_RECURSE
  "CMakeFiles/test_serve.dir/test_serve.cc.o"
  "CMakeFiles/test_serve.dir/test_serve.cc.o.d"
  "test_serve"
  "test_serve.pdb"
  "test_serve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
