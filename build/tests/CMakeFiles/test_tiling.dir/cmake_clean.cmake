file(REMOVE_RECURSE
  "CMakeFiles/test_tiling.dir/test_tiling.cc.o"
  "CMakeFiles/test_tiling.dir/test_tiling.cc.o.d"
  "test_tiling"
  "test_tiling.pdb"
  "test_tiling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
