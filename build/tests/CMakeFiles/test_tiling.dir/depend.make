# Empty dependencies file for test_tiling.
# This may be replaced when dependencies are built.
