# Empty dependencies file for test_system_sim.
# This may be replaced when dependencies are built.
