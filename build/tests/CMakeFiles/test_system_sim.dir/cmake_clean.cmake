file(REMOVE_RECURSE
  "CMakeFiles/test_system_sim.dir/test_system_sim.cc.o"
  "CMakeFiles/test_system_sim.dir/test_system_sim.cc.o.d"
  "test_system_sim"
  "test_system_sim.pdb"
  "test_system_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
