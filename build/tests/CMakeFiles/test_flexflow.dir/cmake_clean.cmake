file(REMOVE_RECURSE
  "CMakeFiles/test_flexflow.dir/test_flexflow.cc.o"
  "CMakeFiles/test_flexflow.dir/test_flexflow.cc.o.d"
  "test_flexflow"
  "test_flexflow.pdb"
  "test_flexflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flexflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
