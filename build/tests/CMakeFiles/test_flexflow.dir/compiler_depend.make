# Empty compiler generated dependencies file for test_flexflow.
# This may be replaced when dependencies are built.
