file(REMOVE_RECURSE
  "CMakeFiles/test_network_fuzz.dir/test_network_fuzz.cc.o"
  "CMakeFiles/test_network_fuzz.dir/test_network_fuzz.cc.o.d"
  "test_network_fuzz"
  "test_network_fuzz.pdb"
  "test_network_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
