# Empty compiler generated dependencies file for test_network_fuzz.
# This may be replaced when dependencies are built.
