file(REMOVE_RECURSE
  "CMakeFiles/test_mapping2d.dir/test_mapping2d.cc.o"
  "CMakeFiles/test_mapping2d.dir/test_mapping2d.cc.o.d"
  "test_mapping2d"
  "test_mapping2d.pdb"
  "test_mapping2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
