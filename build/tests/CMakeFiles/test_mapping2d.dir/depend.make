# Empty dependencies file for test_mapping2d.
# This may be replaced when dependencies are built.
