# Empty dependencies file for test_table1.
# This may be replaced when dependencies are built.
