file(REMOVE_RECURSE
  "CMakeFiles/test_table1.dir/test_table1.cc.o"
  "CMakeFiles/test_table1.dir/test_table1.cc.o.d"
  "test_table1"
  "test_table1.pdb"
  "test_table1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
