# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_systolic[1]_include.cmake")
include("/root/repo/build/tests/test_mapping2d[1]_include.cmake")
include("/root/repo/build/tests/test_tiling[1]_include.cmake")
include("/root/repo/build/tests/test_flexflow[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_rowstationary[1]_include.cmake")
include("/root/repo/build/tests/test_system_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_regression_values[1]_include.cmake")
include("/root/repo/build/tests/test_table1[1]_include.cmake")
include("/root/repo/build/tests/test_network_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_serve[1]_include.cmake")
