# Empty compiler generated dependencies file for classifier_inference.
# This may be replaced when dependencies are built.
