file(REMOVE_RECURSE
  "CMakeFiles/classifier_inference.dir/classifier_inference.cpp.o"
  "CMakeFiles/classifier_inference.dir/classifier_inference.cpp.o.d"
  "classifier_inference"
  "classifier_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
