# Empty compiler generated dependencies file for compare_architectures.
# This may be replaced when dependencies are built.
