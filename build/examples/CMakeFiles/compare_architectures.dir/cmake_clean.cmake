file(REMOVE_RECURSE
  "CMakeFiles/compare_architectures.dir/compare_architectures.cpp.o"
  "CMakeFiles/compare_architectures.dir/compare_architectures.cpp.o.d"
  "compare_architectures"
  "compare_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
