# Empty compiler generated dependencies file for area_layout.
# This may be replaced when dependencies are built.
