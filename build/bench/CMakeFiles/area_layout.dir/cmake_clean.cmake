file(REMOVE_RECURSE
  "CMakeFiles/area_layout.dir/area_layout.cc.o"
  "CMakeFiles/area_layout.dir/area_layout.cc.o.d"
  "area_layout"
  "area_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
