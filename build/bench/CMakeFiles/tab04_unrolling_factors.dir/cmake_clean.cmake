file(REMOVE_RECURSE
  "CMakeFiles/tab04_unrolling_factors.dir/tab04_unrolling_factors.cc.o"
  "CMakeFiles/tab04_unrolling_factors.dir/tab04_unrolling_factors.cc.o.d"
  "tab04_unrolling_factors"
  "tab04_unrolling_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_unrolling_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
