# Empty dependencies file for tab04_unrolling_factors.
# This may be replaced when dependencies are built.
