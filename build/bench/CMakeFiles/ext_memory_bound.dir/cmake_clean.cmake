file(REMOVE_RECURSE
  "CMakeFiles/ext_memory_bound.dir/ext_memory_bound.cc.o"
  "CMakeFiles/ext_memory_bound.dir/ext_memory_bound.cc.o.d"
  "ext_memory_bound"
  "ext_memory_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
