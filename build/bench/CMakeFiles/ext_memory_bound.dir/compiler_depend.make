# Empty compiler generated dependencies file for ext_memory_bound.
# This may be replaced when dependencies are built.
