file(REMOVE_RECURSE
  "CMakeFiles/microbench_simulators.dir/microbench_simulators.cc.o"
  "CMakeFiles/microbench_simulators.dir/microbench_simulators.cc.o.d"
  "microbench_simulators"
  "microbench_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
