# Empty dependencies file for microbench_simulators.
# This may be replaced when dependencies are built.
