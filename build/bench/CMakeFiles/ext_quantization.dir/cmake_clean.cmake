file(REMOVE_RECURSE
  "CMakeFiles/ext_quantization.dir/ext_quantization.cc.o"
  "CMakeFiles/ext_quantization.dir/ext_quantization.cc.o.d"
  "ext_quantization"
  "ext_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
