# Empty dependencies file for ext_rowstationary.
# This may be replaced when dependencies are built.
