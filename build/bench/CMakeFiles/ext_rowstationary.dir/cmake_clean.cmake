file(REMOVE_RECURSE
  "CMakeFiles/ext_rowstationary.dir/ext_rowstationary.cc.o"
  "CMakeFiles/ext_rowstationary.dir/ext_rowstationary.cc.o.d"
  "ext_rowstationary"
  "ext_rowstationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rowstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
