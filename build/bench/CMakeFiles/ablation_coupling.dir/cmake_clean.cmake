file(REMOVE_RECURSE
  "CMakeFiles/ablation_coupling.dir/ablation_coupling.cc.o"
  "CMakeFiles/ablation_coupling.dir/ablation_coupling.cc.o.d"
  "ablation_coupling"
  "ablation_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
