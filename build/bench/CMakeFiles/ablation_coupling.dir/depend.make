# Empty dependencies file for ablation_coupling.
# This may be replaced when dependencies are built.
