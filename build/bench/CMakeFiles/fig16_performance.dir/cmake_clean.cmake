file(REMOVE_RECURSE
  "CMakeFiles/fig16_performance.dir/fig16_performance.cc.o"
  "CMakeFiles/fig16_performance.dir/fig16_performance.cc.o.d"
  "fig16_performance"
  "fig16_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
