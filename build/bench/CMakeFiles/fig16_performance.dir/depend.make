# Empty dependencies file for fig16_performance.
# This may be replaced when dependencies are built.
