# Empty dependencies file for ext_serving.
# This may be replaced when dependencies are built.
