file(REMOVE_RECURSE
  "CMakeFiles/ext_serving.dir/ext_serving.cc.o"
  "CMakeFiles/ext_serving.dir/ext_serving.cc.o.d"
  "ext_serving"
  "ext_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
