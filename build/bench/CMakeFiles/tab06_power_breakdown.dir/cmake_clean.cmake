file(REMOVE_RECURSE
  "CMakeFiles/tab06_power_breakdown.dir/tab06_power_breakdown.cc.o"
  "CMakeFiles/tab06_power_breakdown.dir/tab06_power_breakdown.cc.o.d"
  "tab06_power_breakdown"
  "tab06_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
