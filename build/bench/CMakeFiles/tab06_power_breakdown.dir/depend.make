# Empty dependencies file for tab06_power_breakdown.
# This may be replaced when dependencies are built.
