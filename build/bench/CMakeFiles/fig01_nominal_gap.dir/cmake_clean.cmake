file(REMOVE_RECURSE
  "CMakeFiles/fig01_nominal_gap.dir/fig01_nominal_gap.cc.o"
  "CMakeFiles/fig01_nominal_gap.dir/fig01_nominal_gap.cc.o.d"
  "fig01_nominal_gap"
  "fig01_nominal_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_nominal_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
