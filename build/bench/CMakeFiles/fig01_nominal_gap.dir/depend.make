# Empty dependencies file for fig01_nominal_gap.
# This may be replaced when dependencies are built.
