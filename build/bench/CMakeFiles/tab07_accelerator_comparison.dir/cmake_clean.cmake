file(REMOVE_RECURSE
  "CMakeFiles/tab07_accelerator_comparison.dir/tab07_accelerator_comparison.cc.o"
  "CMakeFiles/tab07_accelerator_comparison.dir/tab07_accelerator_comparison.cc.o.d"
  "tab07_accelerator_comparison"
  "tab07_accelerator_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_accelerator_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
