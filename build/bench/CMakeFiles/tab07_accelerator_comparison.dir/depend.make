# Empty dependencies file for tab07_accelerator_comparison.
# This may be replaced when dependencies are built.
