# Empty compiler generated dependencies file for fig19_scalability.
# This may be replaced when dependencies are built.
