file(REMOVE_RECURSE
  "CMakeFiles/fig19_scalability.dir/fig19_scalability.cc.o"
  "CMakeFiles/fig19_scalability.dir/fig19_scalability.cc.o.d"
  "fig19_scalability"
  "fig19_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
