# Empty dependencies file for fig18_power_energy.
# This may be replaced when dependencies are built.
