file(REMOVE_RECURSE
  "CMakeFiles/fig18_power_energy.dir/fig18_power_energy.cc.o"
  "CMakeFiles/fig18_power_energy.dir/fig18_power_energy.cc.o.d"
  "fig18_power_energy"
  "fig18_power_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_power_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
