# Empty dependencies file for tab03_cross_layer_utilization.
# This may be replaced when dependencies are built.
