file(REMOVE_RECURSE
  "CMakeFiles/tab03_cross_layer_utilization.dir/tab03_cross_layer_utilization.cc.o"
  "CMakeFiles/tab03_cross_layer_utilization.dir/tab03_cross_layer_utilization.cc.o.d"
  "tab03_cross_layer_utilization"
  "tab03_cross_layer_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_cross_layer_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
