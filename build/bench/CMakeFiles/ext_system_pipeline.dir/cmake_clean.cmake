file(REMOVE_RECURSE
  "CMakeFiles/ext_system_pipeline.dir/ext_system_pipeline.cc.o"
  "CMakeFiles/ext_system_pipeline.dir/ext_system_pipeline.cc.o.d"
  "ext_system_pipeline"
  "ext_system_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_system_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
