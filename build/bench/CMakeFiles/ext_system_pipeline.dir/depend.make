# Empty dependencies file for ext_system_pipeline.
# This may be replaced when dependencies are built.
