# Empty dependencies file for fig17_data_volume.
# This may be replaced when dependencies are built.
