file(REMOVE_RECURSE
  "CMakeFiles/fig17_data_volume.dir/fig17_data_volume.cc.o"
  "CMakeFiles/fig17_data_volume.dir/fig17_data_volume.cc.o.d"
  "fig17_data_volume"
  "fig17_data_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_data_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
