file(REMOVE_RECURSE
  "CMakeFiles/ablation_localstore.dir/ablation_localstore.cc.o"
  "CMakeFiles/ablation_localstore.dir/ablation_localstore.cc.o.d"
  "ablation_localstore"
  "ablation_localstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_localstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
