# Empty compiler generated dependencies file for ablation_localstore.
# This may be replaced when dependencies are built.
