# Empty dependencies file for flexrun.
# This may be replaced when dependencies are built.
