file(REMOVE_RECURSE
  "CMakeFiles/flexrun.dir/flexrun.cc.o"
  "CMakeFiles/flexrun.dir/flexrun.cc.o.d"
  "flexrun"
  "flexrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
