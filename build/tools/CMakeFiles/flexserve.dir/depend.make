# Empty dependencies file for flexserve.
# This may be replaced when dependencies are built.
