file(REMOVE_RECURSE
  "CMakeFiles/flexserve.dir/flexserve.cc.o"
  "CMakeFiles/flexserve.dir/flexserve.cc.o.d"
  "flexserve"
  "flexserve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexserve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
