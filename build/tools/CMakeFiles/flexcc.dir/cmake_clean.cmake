file(REMOVE_RECURSE
  "CMakeFiles/flexcc.dir/flexcc.cc.o"
  "CMakeFiles/flexcc.dir/flexcc.cc.o.d"
  "flexcc"
  "flexcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
