# Empty dependencies file for flexcc.
# This may be replaced when dependencies are built.
