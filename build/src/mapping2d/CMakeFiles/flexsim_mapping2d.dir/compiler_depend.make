# Empty compiler generated dependencies file for flexsim_mapping2d.
# This may be replaced when dependencies are built.
