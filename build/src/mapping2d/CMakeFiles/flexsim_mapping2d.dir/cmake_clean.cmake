file(REMOVE_RECURSE
  "CMakeFiles/flexsim_mapping2d.dir/mapping2d_array.cc.o"
  "CMakeFiles/flexsim_mapping2d.dir/mapping2d_array.cc.o.d"
  "CMakeFiles/flexsim_mapping2d.dir/mapping2d_model.cc.o"
  "CMakeFiles/flexsim_mapping2d.dir/mapping2d_model.cc.o.d"
  "libflexsim_mapping2d.a"
  "libflexsim_mapping2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_mapping2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
