file(REMOVE_RECURSE
  "libflexsim_mapping2d.a"
)
