# Empty dependencies file for flexsim_arch.
# This may be replaced when dependencies are built.
