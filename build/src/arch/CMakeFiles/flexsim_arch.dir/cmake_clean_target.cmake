file(REMOVE_RECURSE
  "libflexsim_arch.a"
)
