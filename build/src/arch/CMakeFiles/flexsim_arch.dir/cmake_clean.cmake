file(REMOVE_RECURSE
  "CMakeFiles/flexsim_arch.dir/dram_planner.cc.o"
  "CMakeFiles/flexsim_arch.dir/dram_planner.cc.o.d"
  "CMakeFiles/flexsim_arch.dir/factor_search.cc.o"
  "CMakeFiles/flexsim_arch.dir/factor_search.cc.o.d"
  "CMakeFiles/flexsim_arch.dir/processing_style.cc.o"
  "CMakeFiles/flexsim_arch.dir/processing_style.cc.o.d"
  "CMakeFiles/flexsim_arch.dir/result.cc.o"
  "CMakeFiles/flexsim_arch.dir/result.cc.o.d"
  "CMakeFiles/flexsim_arch.dir/system_timing.cc.o"
  "CMakeFiles/flexsim_arch.dir/system_timing.cc.o.d"
  "CMakeFiles/flexsim_arch.dir/unroll.cc.o"
  "CMakeFiles/flexsim_arch.dir/unroll.cc.o.d"
  "libflexsim_arch.a"
  "libflexsim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
