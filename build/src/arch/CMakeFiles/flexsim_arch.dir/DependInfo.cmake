
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/dram_planner.cc" "src/arch/CMakeFiles/flexsim_arch.dir/dram_planner.cc.o" "gcc" "src/arch/CMakeFiles/flexsim_arch.dir/dram_planner.cc.o.d"
  "/root/repo/src/arch/factor_search.cc" "src/arch/CMakeFiles/flexsim_arch.dir/factor_search.cc.o" "gcc" "src/arch/CMakeFiles/flexsim_arch.dir/factor_search.cc.o.d"
  "/root/repo/src/arch/processing_style.cc" "src/arch/CMakeFiles/flexsim_arch.dir/processing_style.cc.o" "gcc" "src/arch/CMakeFiles/flexsim_arch.dir/processing_style.cc.o.d"
  "/root/repo/src/arch/result.cc" "src/arch/CMakeFiles/flexsim_arch.dir/result.cc.o" "gcc" "src/arch/CMakeFiles/flexsim_arch.dir/result.cc.o.d"
  "/root/repo/src/arch/system_timing.cc" "src/arch/CMakeFiles/flexsim_arch.dir/system_timing.cc.o" "gcc" "src/arch/CMakeFiles/flexsim_arch.dir/system_timing.cc.o.d"
  "/root/repo/src/arch/unroll.cc" "src/arch/CMakeFiles/flexsim_arch.dir/unroll.cc.o" "gcc" "src/arch/CMakeFiles/flexsim_arch.dir/unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
