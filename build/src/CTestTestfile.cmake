# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("sim")
subdirs("nn")
subdirs("mem")
subdirs("energy")
subdirs("arch")
subdirs("systolic")
subdirs("mapping2d")
subdirs("tiling")
subdirs("rowstationary")
subdirs("flexflow")
subdirs("compiler")
subdirs("serve")
