# Empty compiler generated dependencies file for flexsim_flexflow.
# This may be replaced when dependencies are built.
