file(REMOVE_RECURSE
  "CMakeFiles/flexsim_flexflow.dir/accelerator.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/accelerator.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/address_fsm.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/address_fsm.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/conv_unit.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/conv_unit.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/flexflow_model.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/flexflow_model.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/iadp_layout.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/iadp_layout.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/isa.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/isa.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/pooling_unit.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/pooling_unit.cc.o.d"
  "CMakeFiles/flexsim_flexflow.dir/schedule.cc.o"
  "CMakeFiles/flexsim_flexflow.dir/schedule.cc.o.d"
  "libflexsim_flexflow.a"
  "libflexsim_flexflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_flexflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
