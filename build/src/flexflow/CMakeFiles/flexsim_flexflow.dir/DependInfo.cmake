
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flexflow/accelerator.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/accelerator.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/accelerator.cc.o.d"
  "/root/repo/src/flexflow/address_fsm.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/address_fsm.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/address_fsm.cc.o.d"
  "/root/repo/src/flexflow/conv_unit.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/conv_unit.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/conv_unit.cc.o.d"
  "/root/repo/src/flexflow/flexflow_model.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/flexflow_model.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/flexflow_model.cc.o.d"
  "/root/repo/src/flexflow/iadp_layout.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/iadp_layout.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/iadp_layout.cc.o.d"
  "/root/repo/src/flexflow/isa.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/isa.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/isa.cc.o.d"
  "/root/repo/src/flexflow/pooling_unit.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/pooling_unit.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/pooling_unit.cc.o.d"
  "/root/repo/src/flexflow/schedule.cc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/schedule.cc.o" "gcc" "src/flexflow/CMakeFiles/flexsim_flexflow.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/flexsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
