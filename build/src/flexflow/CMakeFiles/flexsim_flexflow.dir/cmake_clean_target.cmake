file(REMOVE_RECURSE
  "libflexsim_flexflow.a"
)
