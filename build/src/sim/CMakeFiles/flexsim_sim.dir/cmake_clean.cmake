file(REMOVE_RECURSE
  "CMakeFiles/flexsim_sim.dir/simulator.cc.o"
  "CMakeFiles/flexsim_sim.dir/simulator.cc.o.d"
  "libflexsim_sim.a"
  "libflexsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
