# Empty compiler generated dependencies file for flexsim_sim.
# This may be replaced when dependencies are built.
