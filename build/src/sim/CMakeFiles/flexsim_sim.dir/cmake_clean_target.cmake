file(REMOVE_RECURSE
  "libflexsim_sim.a"
)
