# Empty compiler generated dependencies file for flexsim_stats.
# This may be replaced when dependencies are built.
