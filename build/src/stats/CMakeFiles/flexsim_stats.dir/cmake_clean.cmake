file(REMOVE_RECURSE
  "CMakeFiles/flexsim_stats.dir/stats.cc.o"
  "CMakeFiles/flexsim_stats.dir/stats.cc.o.d"
  "libflexsim_stats.a"
  "libflexsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
