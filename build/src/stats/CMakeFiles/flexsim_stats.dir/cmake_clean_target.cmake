file(REMOVE_RECURSE
  "libflexsim_stats.a"
)
