file(REMOVE_RECURSE
  "CMakeFiles/flexsim_systolic.dir/systolic_array.cc.o"
  "CMakeFiles/flexsim_systolic.dir/systolic_array.cc.o.d"
  "CMakeFiles/flexsim_systolic.dir/systolic_model.cc.o"
  "CMakeFiles/flexsim_systolic.dir/systolic_model.cc.o.d"
  "libflexsim_systolic.a"
  "libflexsim_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
