# Empty dependencies file for flexsim_systolic.
# This may be replaced when dependencies are built.
