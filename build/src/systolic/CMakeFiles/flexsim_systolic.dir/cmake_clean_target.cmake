file(REMOVE_RECURSE
  "libflexsim_systolic.a"
)
