
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/systolic_array.cc" "src/systolic/CMakeFiles/flexsim_systolic.dir/systolic_array.cc.o" "gcc" "src/systolic/CMakeFiles/flexsim_systolic.dir/systolic_array.cc.o.d"
  "/root/repo/src/systolic/systolic_model.cc" "src/systolic/CMakeFiles/flexsim_systolic.dir/systolic_model.cc.o" "gcc" "src/systolic/CMakeFiles/flexsim_systolic.dir/systolic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/flexsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
