file(REMOVE_RECURSE
  "libflexsim_nn.a"
)
