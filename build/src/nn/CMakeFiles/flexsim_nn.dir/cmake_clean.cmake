file(REMOVE_RECURSE
  "CMakeFiles/flexsim_nn.dir/golden.cc.o"
  "CMakeFiles/flexsim_nn.dir/golden.cc.o.d"
  "CMakeFiles/flexsim_nn.dir/layer_spec.cc.o"
  "CMakeFiles/flexsim_nn.dir/layer_spec.cc.o.d"
  "CMakeFiles/flexsim_nn.dir/tensor_init.cc.o"
  "CMakeFiles/flexsim_nn.dir/tensor_init.cc.o.d"
  "CMakeFiles/flexsim_nn.dir/workloads.cc.o"
  "CMakeFiles/flexsim_nn.dir/workloads.cc.o.d"
  "libflexsim_nn.a"
  "libflexsim_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
