# Empty dependencies file for flexsim_nn.
# This may be replaced when dependencies are built.
