
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/golden.cc" "src/nn/CMakeFiles/flexsim_nn.dir/golden.cc.o" "gcc" "src/nn/CMakeFiles/flexsim_nn.dir/golden.cc.o.d"
  "/root/repo/src/nn/layer_spec.cc" "src/nn/CMakeFiles/flexsim_nn.dir/layer_spec.cc.o" "gcc" "src/nn/CMakeFiles/flexsim_nn.dir/layer_spec.cc.o.d"
  "/root/repo/src/nn/tensor_init.cc" "src/nn/CMakeFiles/flexsim_nn.dir/tensor_init.cc.o" "gcc" "src/nn/CMakeFiles/flexsim_nn.dir/tensor_init.cc.o.d"
  "/root/repo/src/nn/workloads.cc" "src/nn/CMakeFiles/flexsim_nn.dir/workloads.cc.o" "gcc" "src/nn/CMakeFiles/flexsim_nn.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
