
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/external_memory.cc" "src/mem/CMakeFiles/flexsim_mem.dir/external_memory.cc.o" "gcc" "src/mem/CMakeFiles/flexsim_mem.dir/external_memory.cc.o.d"
  "/root/repo/src/mem/local_store.cc" "src/mem/CMakeFiles/flexsim_mem.dir/local_store.cc.o" "gcc" "src/mem/CMakeFiles/flexsim_mem.dir/local_store.cc.o.d"
  "/root/repo/src/mem/sram_buffer.cc" "src/mem/CMakeFiles/flexsim_mem.dir/sram_buffer.cc.o" "gcc" "src/mem/CMakeFiles/flexsim_mem.dir/sram_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
