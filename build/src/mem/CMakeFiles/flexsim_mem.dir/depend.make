# Empty dependencies file for flexsim_mem.
# This may be replaced when dependencies are built.
