file(REMOVE_RECURSE
  "libflexsim_mem.a"
)
