file(REMOVE_RECURSE
  "CMakeFiles/flexsim_mem.dir/external_memory.cc.o"
  "CMakeFiles/flexsim_mem.dir/external_memory.cc.o.d"
  "CMakeFiles/flexsim_mem.dir/local_store.cc.o"
  "CMakeFiles/flexsim_mem.dir/local_store.cc.o.d"
  "CMakeFiles/flexsim_mem.dir/sram_buffer.cc.o"
  "CMakeFiles/flexsim_mem.dir/sram_buffer.cc.o.d"
  "libflexsim_mem.a"
  "libflexsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
