file(REMOVE_RECURSE
  "libflexsim_rowstationary.a"
)
