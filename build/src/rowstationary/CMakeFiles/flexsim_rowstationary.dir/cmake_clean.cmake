file(REMOVE_RECURSE
  "CMakeFiles/flexsim_rowstationary.dir/rs_array.cc.o"
  "CMakeFiles/flexsim_rowstationary.dir/rs_array.cc.o.d"
  "CMakeFiles/flexsim_rowstationary.dir/rs_model.cc.o"
  "CMakeFiles/flexsim_rowstationary.dir/rs_model.cc.o.d"
  "libflexsim_rowstationary.a"
  "libflexsim_rowstationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_rowstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
