# Empty compiler generated dependencies file for flexsim_rowstationary.
# This may be replaced when dependencies are built.
