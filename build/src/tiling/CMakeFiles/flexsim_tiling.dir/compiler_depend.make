# Empty compiler generated dependencies file for flexsim_tiling.
# This may be replaced when dependencies are built.
