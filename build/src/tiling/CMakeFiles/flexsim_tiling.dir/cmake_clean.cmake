file(REMOVE_RECURSE
  "CMakeFiles/flexsim_tiling.dir/tiling_array.cc.o"
  "CMakeFiles/flexsim_tiling.dir/tiling_array.cc.o.d"
  "CMakeFiles/flexsim_tiling.dir/tiling_model.cc.o"
  "CMakeFiles/flexsim_tiling.dir/tiling_model.cc.o.d"
  "libflexsim_tiling.a"
  "libflexsim_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
