file(REMOVE_RECURSE
  "libflexsim_tiling.a"
)
