# Empty dependencies file for flexsim_serve.
# This may be replaced when dependencies are built.
