
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/runtime.cc" "src/serve/CMakeFiles/flexsim_serve.dir/runtime.cc.o" "gcc" "src/serve/CMakeFiles/flexsim_serve.dir/runtime.cc.o.d"
  "/root/repo/src/serve/service_model.cc" "src/serve/CMakeFiles/flexsim_serve.dir/service_model.cc.o" "gcc" "src/serve/CMakeFiles/flexsim_serve.dir/service_model.cc.o.d"
  "/root/repo/src/serve/traffic.cc" "src/serve/CMakeFiles/flexsim_serve.dir/traffic.cc.o" "gcc" "src/serve/CMakeFiles/flexsim_serve.dir/traffic.cc.o.d"
  "/root/repo/src/serve/worker_pool.cc" "src/serve/CMakeFiles/flexsim_serve.dir/worker_pool.cc.o" "gcc" "src/serve/CMakeFiles/flexsim_serve.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/flexsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
