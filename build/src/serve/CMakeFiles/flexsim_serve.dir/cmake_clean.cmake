file(REMOVE_RECURSE
  "CMakeFiles/flexsim_serve.dir/runtime.cc.o"
  "CMakeFiles/flexsim_serve.dir/runtime.cc.o.d"
  "CMakeFiles/flexsim_serve.dir/service_model.cc.o"
  "CMakeFiles/flexsim_serve.dir/service_model.cc.o.d"
  "CMakeFiles/flexsim_serve.dir/traffic.cc.o"
  "CMakeFiles/flexsim_serve.dir/traffic.cc.o.d"
  "CMakeFiles/flexsim_serve.dir/worker_pool.cc.o"
  "CMakeFiles/flexsim_serve.dir/worker_pool.cc.o.d"
  "libflexsim_serve.a"
  "libflexsim_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
