file(REMOVE_RECURSE
  "libflexsim_serve.a"
)
