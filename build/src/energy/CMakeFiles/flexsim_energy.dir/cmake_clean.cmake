file(REMOVE_RECURSE
  "CMakeFiles/flexsim_energy.dir/area.cc.o"
  "CMakeFiles/flexsim_energy.dir/area.cc.o.d"
  "CMakeFiles/flexsim_energy.dir/power.cc.o"
  "CMakeFiles/flexsim_energy.dir/power.cc.o.d"
  "CMakeFiles/flexsim_energy.dir/tech.cc.o"
  "CMakeFiles/flexsim_energy.dir/tech.cc.o.d"
  "libflexsim_energy.a"
  "libflexsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
