# Empty compiler generated dependencies file for flexsim_energy.
# This may be replaced when dependencies are built.
