file(REMOVE_RECURSE
  "libflexsim_energy.a"
)
