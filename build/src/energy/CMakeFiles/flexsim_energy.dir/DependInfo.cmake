
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/area.cc" "src/energy/CMakeFiles/flexsim_energy.dir/area.cc.o" "gcc" "src/energy/CMakeFiles/flexsim_energy.dir/area.cc.o.d"
  "/root/repo/src/energy/power.cc" "src/energy/CMakeFiles/flexsim_energy.dir/power.cc.o" "gcc" "src/energy/CMakeFiles/flexsim_energy.dir/power.cc.o.d"
  "/root/repo/src/energy/tech.cc" "src/energy/CMakeFiles/flexsim_energy.dir/tech.cc.o" "gcc" "src/energy/CMakeFiles/flexsim_energy.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/flexsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
