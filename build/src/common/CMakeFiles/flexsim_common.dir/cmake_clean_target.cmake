file(REMOVE_RECURSE
  "libflexsim_common.a"
)
