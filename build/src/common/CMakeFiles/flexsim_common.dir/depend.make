# Empty dependencies file for flexsim_common.
# This may be replaced when dependencies are built.
