file(REMOVE_RECURSE
  "CMakeFiles/flexsim_common.dir/logging.cc.o"
  "CMakeFiles/flexsim_common.dir/logging.cc.o.d"
  "CMakeFiles/flexsim_common.dir/random.cc.o"
  "CMakeFiles/flexsim_common.dir/random.cc.o.d"
  "CMakeFiles/flexsim_common.dir/strutil.cc.o"
  "CMakeFiles/flexsim_common.dir/strutil.cc.o.d"
  "CMakeFiles/flexsim_common.dir/table.cc.o"
  "CMakeFiles/flexsim_common.dir/table.cc.o.d"
  "CMakeFiles/flexsim_common.dir/trace.cc.o"
  "CMakeFiles/flexsim_common.dir/trace.cc.o.d"
  "libflexsim_common.a"
  "libflexsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
