# Empty dependencies file for flexsim_compiler.
# This may be replaced when dependencies are built.
