
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compiler.cc" "src/compiler/CMakeFiles/flexsim_compiler.dir/compiler.cc.o" "gcc" "src/compiler/CMakeFiles/flexsim_compiler.dir/compiler.cc.o.d"
  "/root/repo/src/compiler/system_sim.cc" "src/compiler/CMakeFiles/flexsim_compiler.dir/system_sim.cc.o" "gcc" "src/compiler/CMakeFiles/flexsim_compiler.dir/system_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/flexsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/flexflow/CMakeFiles/flexsim_flexflow.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flexsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/flexsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
