file(REMOVE_RECURSE
  "libflexsim_compiler.a"
)
