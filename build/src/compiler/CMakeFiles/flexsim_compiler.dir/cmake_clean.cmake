file(REMOVE_RECURSE
  "CMakeFiles/flexsim_compiler.dir/compiler.cc.o"
  "CMakeFiles/flexsim_compiler.dir/compiler.cc.o.d"
  "CMakeFiles/flexsim_compiler.dir/system_sim.cc.o"
  "CMakeFiles/flexsim_compiler.dir/system_sim.cc.o.d"
  "libflexsim_compiler.a"
  "libflexsim_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsim_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
