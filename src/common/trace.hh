/**
 * @file
 * gem5-DPRINTF-flavoured debug tracing.
 *
 * Components emit trace lines under named flags; nothing is formatted
 * unless the flag is enabled, so tracing is free in benchmarking
 * runs.  Flags are enabled programmatically (tests) or through the
 * FLEXSIM_TRACE environment variable, a comma-separated flag list
 * ("ConvUnit,Dma" or "all"):
 *
 *     FLEXSIM_TRACE=ConvUnit,Compiler ./build/examples/quickstart
 *
 * Output goes to a redirectable stream (stderr by default):
 *
 *     trace::printf("ConvUnit", "batch ", batch, " steps ", steps);
 */

#ifndef FLEXSIM_COMMON_TRACE_HH
#define FLEXSIM_COMMON_TRACE_HH

#include <sstream>
#include <string>
#include <vector>

namespace flexsim {
namespace trace {

/** Enable one flag (or "all"). */
void enable(const std::string &flag);

/** Disable one flag (or "all", which also clears the all-flags mode). */
void disable(const std::string &flag);

/** True when @p flag (or "all") is enabled. */
bool enabled(const std::string &flag);

/** Parse a comma-separated flag list (the FLEXSIM_TRACE format). */
void enableFromSpec(const std::string &spec);

/** Redirect trace output (nullptr restores stderr). */
void setStream(std::ostream *stream);

/** Flags registered by emitters so far (diagnostics/--help output). */
std::vector<std::string> knownFlags();

namespace detail {
void emit(const std::string &flag, const std::string &message);
void registerFlag(const std::string &flag);
} // namespace detail

/** Emit one trace line under @p flag. */
template <typename... Args>
void
printf(const std::string &flag, Args &&...args)
{
    detail::registerFlag(flag);
    if (!enabled(flag))
        return;
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    detail::emit(flag, oss.str());
}

} // namespace trace
} // namespace flexsim

#endif // FLEXSIM_COMMON_TRACE_HH
