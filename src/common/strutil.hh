/**
 * @file
 * Small string helpers used by reports and the assembler.
 */

#ifndef FLEXSIM_COMMON_STRUTIL_HH
#define FLEXSIM_COMMON_STRUTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flexsim {

/** Split @p text on @p delim; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char delim);

/** Split on arbitrary whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(const std::string &text);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &text);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &text);

/** True when @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Format a double with @p digits significant decimals. */
std::string formatDouble(double value, int digits = 2);

/** Format a fraction as a percentage string, e.g. 0.873 -> "87.3%". */
std::string formatPercent(double fraction, int digits = 1);

/** Group thousands for readability, e.g. 1234567 -> "1,234,567". */
std::string formatCount(std::uint64_t value);

} // namespace flexsim

#endif // FLEXSIM_COMMON_STRUTIL_HH
