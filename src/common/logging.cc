#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace flexsim {
namespace logging_detail {

namespace {

/** Throwing hook used by unit tests to intercept panic/fatal. */
thread_local bool throwOnError = false;

} // namespace

/** Exception raised instead of aborting when test interception is on. */
void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

bool
getThrowOnError()
{
    return throwOnError;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " [" << file << ":" << line << "]\n";
    if (throwOnError)
        throw std::runtime_error("panic: " + msg);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " [" << file << ":" << line << "]\n";
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << "\n";
}

} // namespace logging_detail
} // namespace flexsim
