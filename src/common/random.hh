/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in flexsim (synthetic tensor contents, test
 * sweeps) goes through Rng so that every run is reproducible from a
 * seed.  The generator is xoshiro256** seeded through SplitMix64.
 */

#ifndef FLEXSIM_COMMON_RANDOM_HH
#define FLEXSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace flexsim {

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eedf1ef10f1ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace flexsim

#endif // FLEXSIM_COMMON_RANDOM_HH
