/**
 * @file
 * gem5-flavoured status/error reporting: panic(), fatal(), warn(),
 * inform().
 *
 * panic() is for internal simulator bugs ("should never happen") and
 * aborts; fatal() is for user/configuration errors and exits with an
 * error code; warn()/inform() report conditions without stopping the
 * simulation.
 *
 * All four accept any sequence of ostream-printable arguments which are
 * concatenated into the message:
 *
 *     panic("bank index ", bank, " out of range [0, ", numBanks, ")");
 */

#ifndef FLEXSIM_COMMON_LOGGING_HH
#define FLEXSIM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace flexsim {

namespace logging_detail {

/** Concatenate printable arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

// Both may exit via exception when the test hook below is enabled;
// they never return normally.
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Test hook: when enabled, panic()/fatal() throw std::runtime_error
 * instead of terminating the process, so death paths are unit-testable.
 */
void setThrowOnError(bool enable);
bool getThrowOnError();
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/**
 * Abort the simulation due to an internal simulator bug.  Never returns.
 */
#define panic(...)                                                         \
    ::flexsim::logging_detail::panicImpl(                                  \
        __FILE__, __LINE__, ::flexsim::logging_detail::concat(__VA_ARGS__))

/**
 * Terminate the simulation due to a user error (bad configuration,
 * invalid arguments).  Never returns.
 */
#define fatal(...)                                                         \
    ::flexsim::logging_detail::fatalImpl(                                  \
        __FILE__, __LINE__, ::flexsim::logging_detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define warn(...)                                                          \
    ::flexsim::logging_detail::warnImpl(                                   \
        ::flexsim::logging_detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...)                                                        \
    ::flexsim::logging_detail::informImpl(                                 \
        ::flexsim::logging_detail::concat(__VA_ARGS__))

/**
 * Internal invariant check that survives NDEBUG builds.  Use for
 * simulator self-checks that must hold in release benchmarking runs.
 */
#define flexsim_assert(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::flexsim::logging_detail::panicImpl(                          \
                __FILE__, __LINE__,                                        \
                ::flexsim::logging_detail::concat(                         \
                    "assertion '" #cond "' failed: ", ##__VA_ARGS__));     \
        }                                                                  \
    } while (0)

/**
 * Per-operand invariant check on a simulator's innermost (per-MAC)
 * path.  Compiled out by default so the hot loops stay branch-free;
 * the FLEXSIM_PARANOID CMake option turns it back into a
 * flexsim_assert for the paranoid CI configuration.
 */
#ifdef FLEXSIM_PARANOID
#define flexsim_paranoid_assert(cond, ...) flexsim_assert(cond, ##__VA_ARGS__)
#else
#define flexsim_paranoid_assert(cond, ...) ((void)0)
#endif

} // namespace flexsim

#endif // FLEXSIM_COMMON_LOGGING_HH
