/**
 * @file
 * Fundamental scalar type aliases shared by every flexsim subsystem.
 */

#ifndef FLEXSIM_COMMON_TYPES_HH
#define FLEXSIM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace flexsim {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Count of data words (one word == one 16-bit operand). */
using WordCount = std::uint64_t;

/** Count of multiply-accumulate operations. */
using MacCount = std::uint64_t;

/** Energy in picojoules. */
using PicoJoule = double;

/** Area in square millimetres. */
using SquareMm = double;

/** Bytes occupied by one accelerator data word (16-bit fixed point). */
inline constexpr std::size_t bytesPerWord = 2;

} // namespace flexsim

#endif // FLEXSIM_COMMON_TYPES_HH
