#include "common/random.hh"

#include "common/logging.hh"

namespace flexsim {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    flexsim_assert(lo <= hi, "uniformInt range [", lo, ", ", hi,
                   "] is empty");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::uniformReal()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Rng::chance(double p)
{
    return uniformReal() < p;
}

} // namespace flexsim
