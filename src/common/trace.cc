#include "common/trace.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

#include "common/strutil.hh"

namespace flexsim {
namespace trace {

namespace {

struct TraceState
{
    std::set<std::string> enabled;
    std::set<std::string> known;
    bool all = false;
    std::ostream *stream = &std::cerr;
    std::mutex mutex;

    TraceState()
    {
        if (const char *spec = std::getenv("FLEXSIM_TRACE")) {
            for (const std::string &flag : split(spec, ',')) {
                const std::string trimmed = trim(flag);
                if (trimmed == "all")
                    all = true;
                else if (!trimmed.empty())
                    enabled.insert(trimmed);
            }
        }
    }
};

TraceState &
state()
{
    static TraceState instance;
    return instance;
}

} // namespace

void
enable(const std::string &flag)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (flag == "all")
        s.all = true;
    else
        s.enabled.insert(flag);
}

void
disable(const std::string &flag)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (flag == "all") {
        s.all = false;
        s.enabled.clear();
    } else {
        s.enabled.erase(flag);
    }
}

bool
enabled(const std::string &flag)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.all || s.enabled.count(flag) > 0;
}

void
enableFromSpec(const std::string &spec)
{
    for (const std::string &flag : split(spec, ',')) {
        const std::string trimmed = trim(flag);
        if (!trimmed.empty())
            enable(trimmed);
    }
}

void
setStream(std::ostream *stream)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.stream = stream != nullptr ? stream : &std::cerr;
}

std::vector<std::string>
knownFlags()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return {s.known.begin(), s.known.end()};
}

namespace detail {

void
registerFlag(const std::string &flag)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.known.insert(flag);
}

void
emit(const std::string &flag, const std::string &message)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    (*s.stream) << flag << ": " << message << "\n";
}

} // namespace detail

} // namespace trace
} // namespace flexsim
