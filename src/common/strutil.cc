#include "common/strutil.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>

namespace flexsim {

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string field;
    std::istringstream iss(text);
    while (std::getline(iss, field, delim))
        out.push_back(field);
    if (!text.empty() && text.back() == delim)
        out.push_back("");
    if (text.empty())
        out.push_back("");
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream iss(text);
    std::string field;
    while (iss >> field)
        out.push_back(field);
    return out;
}

std::string
trim(const std::string &text)
{
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto begin = std::find_if_not(text.begin(), text.end(), is_space);
    auto end = std::find_if_not(text.rbegin(), text.rend(), is_space).base();
    return begin < end ? std::string(begin, end) : std::string();
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatDouble(double value, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << value;
    return oss.str();
}

std::string
formatPercent(double fraction, int digits)
{
    return formatDouble(fraction * 100.0, digits) + "%";
}

std::string
formatCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace flexsim
