#include "common/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace flexsim {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(Row{std::move(cells), false});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row.cells);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << "\n";
    };

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    if (!widths.empty())
        total += 2 * (widths.size() - 1);

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_) {
        if (row.separator)
            os << std::string(total, '-') << "\n";
        else
            emit(row.cells);
    }
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << ',';
            const std::string &cell = cells[i];
            if (cell.find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char c : cell) {
                    if (c == '"')
                        os << '"';
                    os << c;
                }
                os << '"';
            } else {
                os << cell;
            }
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const Row &row : rows_) {
        if (!row.separator)
            emit(row.cells);
    }
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n\n";
}

} // namespace flexsim
