/**
 * @file
 * Console table renderer used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */

#ifndef FLEXSIM_COMMON_TABLE_HH
#define FLEXSIM_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace flexsim {

/**
 * A simple text table.  Columns are sized to fit the widest cell; the
 * first row added with setHeader() is underlined.  Numeric cells should
 * be pre-formatted by the caller (see strutil.hh helpers).
 */
class TextTable
{
  public:
    /** Set (or replace) the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append one body row. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Number of body rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180 quoting; separators are skipped). */
    void printCsv(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/** Print a titled section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace flexsim

#endif // FLEXSIM_COMMON_TABLE_HH
