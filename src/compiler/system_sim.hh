/**
 * @file
 * Dynamic system-level simulation of a compiled workload.
 *
 * The analytic roofline (arch/system_timing.hh) bounds each layer in
 * isolation; this module simulates the *dynamic* interaction on the
 * cycle-stepped kernel (sim/): a DMA engine streams kernel/input
 * loads and output stores at a finite bandwidth while the compute
 * engine runs the current layer, and the controller prefetches the
 * next layer's data into the ping-pong buffers behind the running
 * convolution (double buffering).  Imperfect overlap — a store queued
 * ahead of a prefetch, a short layer finishing before its successor's
 * kernels arrive — emerges from the component interaction instead of
 * being assumed away.
 */

#ifndef FLEXSIM_COMPILER_SYSTEM_SIM_HH
#define FLEXSIM_COMPILER_SYSTEM_SIM_HH

#include <deque>
#include <vector>

#include "common/types.hh"
#include "compiler/compiler.hh"
#include "sim/clocked.hh"

namespace flexsim {

/** One DMA transfer belonging to a layer. */
struct DmaRequest
{
    enum class Kind
    {
        Load,  ///< DRAM -> on-chip buffer (kernels or inputs)
        Store, ///< on-chip buffer -> DRAM (outputs)
    };

    Kind kind = Kind::Load;
    int layer = 0;
    WordCount words = 0;
};

/**
 * A word-granular DMA engine: services queued requests in order at a
 * fixed words-per-cycle bandwidth.
 */
class DmaEngine : public Clocked
{
  public:
    explicit DmaEngine(double words_per_cycle);

    void submit(const DmaRequest &request);

    /** Loads completed so far for @p layer. */
    int loadsComplete(int layer) const;

    /** True when every queued request has been serviced. */
    bool idle() const override;

    void evaluate(Cycle cycle) override;
    void commit(Cycle cycle) override;

    Cycle busyCycles() const { return busyCycles_; }

  private:
    double wordsPerCycle_;
    double credit_ = 0.0;
    std::deque<DmaRequest> queue_;
    double remaining_ = 0.0;
    std::vector<int> loadsDone_;
    Cycle busyCycles_ = 0;
    bool advance_ = false;
};

/** A compute engine running one layer's cycle count at a time. */
class ComputeEngine : public Clocked
{
  public:
    ComputeEngine();

    /** Begin a job of @p cycles; the engine must be idle. */
    void start(int layer, Cycle cycles);

    bool idle() const override { return remaining_ == 0; }

    /** Layers whose compute has fully finished. */
    int layersComplete() const { return layersComplete_; }

    void evaluate(Cycle cycle) override;
    void commit(Cycle cycle) override;

    Cycle busyCycles() const { return busyCycles_; }

  private:
    Cycle remaining_ = 0;
    bool finishing_ = false;
    bool ticked_ = false;
    int layersComplete_ = 0;
    Cycle busyCycles_ = 0;
};

/** Outcome of a dynamic system run. */
struct SystemRunResult
{
    Cycle totalCycles = 0;
    Cycle computeBusyCycles = 0;
    Cycle dmaBusyCycles = 0;
    /** Cycles the compute engine waited on data. */
    Cycle computeStallCycles = 0;
    /** Per-layer compute start cycle. */
    std::vector<Cycle> layerStart;
    /** Wall-clock of a fully serialized (no-overlap) execution. */
    Cycle serializedCycles = 0;

    double
    overlapSpeedup() const
    {
        return totalCycles > 0
                   ? static_cast<double>(serializedCycles) /
                         static_cast<double>(totalCycles)
                   : 0.0;
    }
};

/**
 * Run a compiled workload through the dynamic system model.
 *
 * @param compiled       compiler output (factors + DRAM plan per layer)
 * @param config         the engine configuration the program targets
 * @param dram_words_per_cycle DMA bandwidth in 16-bit words/cycle
 */
SystemRunResult runSystem(const CompilationResult &compiled,
                          const FlexFlowConfig &config,
                          double dram_words_per_cycle);

/**
 * Run @p frames back-to-back frames of the same compiled workload:
 * frame f+1's layer-0 data prefetches behind frame f's tail layers,
 * so steady-state throughput exceeds a single frame's (the
 * video_surveillance deployment pattern).
 */
SystemRunResult runSystemBatch(const CompilationResult &compiled,
                               const FlexFlowConfig &config,
                               double dram_words_per_cycle,
                               int frames);

} // namespace flexsim

#endif // FLEXSIM_COMPILER_SYSTEM_SIM_HH
