#include "compiler/system_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/trace.hh"
#include "flexflow/flexflow_model.hh"
#include "sim/simulator.hh"

namespace flexsim {

// --------------------------------------------------------------- DmaEngine

DmaEngine::DmaEngine(double words_per_cycle)
    : Clocked("dma"), wordsPerCycle_(words_per_cycle)
{
    flexsim_assert(words_per_cycle > 0.0,
                   "DMA bandwidth must be positive");
}

void
DmaEngine::submit(const DmaRequest &request)
{
    if (request.layer >= static_cast<int>(loadsDone_.size()))
        loadsDone_.resize(request.layer + 1, 0);
    if (request.words == 0) {
        // Zero-word transfers (on-chip activations) complete
        // immediately.
        if (request.kind == DmaRequest::Kind::Load)
            ++loadsDone_[request.layer];
        return;
    }
    if (queue_.empty())
        remaining_ = static_cast<double>(request.words);
    queue_.push_back(request);
}

int
DmaEngine::loadsComplete(int layer) const
{
    if (layer >= static_cast<int>(loadsDone_.size()))
        return 0;
    return loadsDone_[layer];
}

bool
DmaEngine::idle() const
{
    return queue_.empty();
}

void
DmaEngine::evaluate(Cycle cycle)
{
    (void)cycle;
    advance_ = false;
    if (queue_.empty())
        return;
    ++busyCycles_;
    remaining_ -= wordsPerCycle_;
    if (remaining_ <= 1e-9)
        advance_ = true;
}

void
DmaEngine::commit(Cycle cycle)
{
    (void)cycle;
    if (!advance_)
        return;
    const DmaRequest done = queue_.front();
    queue_.pop_front();
    if (done.kind == DmaRequest::Kind::Load)
        ++loadsDone_[done.layer];
    if (!queue_.empty()) {
        // Bandwidth left over from finishing the previous request
        // (remaining_ <= 0 here) carries into the next one.
        remaining_ += static_cast<double>(queue_.front().words);
    }
}

// ------------------------------------------------------------ ComputeEngine

ComputeEngine::ComputeEngine() : Clocked("conv-engine")
{
}

void
ComputeEngine::start(int layer, Cycle cycles)
{
    flexsim_assert(idle(), "compute engine started while busy");
    flexsim_assert(cycles > 0, "compute job needs cycles");
    (void)layer;
    remaining_ = cycles;
}

void
ComputeEngine::evaluate(Cycle cycle)
{
    (void)cycle;
    finishing_ = false;
    ticked_ = remaining_ > 0;
    if (!ticked_)
        return;
    ++busyCycles_;
    if (remaining_ == 1)
        finishing_ = true;
}

void
ComputeEngine::commit(Cycle cycle)
{
    (void)cycle;
    // Only retire work evaluate() saw this cycle: a job started by
    // the controller's commit phase begins next cycle.
    if (ticked_)
        --remaining_;
    if (finishing_)
        ++layersComplete_;
    ticked_ = false;
}

// ----------------------------------------------------------------- runSystem

namespace {

/** The controller sequencing the program's layers. */
class SystemController : public Clocked
{
  public:
    SystemController(const std::vector<LayerPlan> &plans,
                     const std::vector<Cycle> &compute_cycles,
                     DmaEngine &dma, ComputeEngine &engine)
        : Clocked("controller"), plans_(plans),
          computeCycles_(compute_cycles), dma_(dma), engine_(engine),
          layerStart_(plans.size(), 0)
    {
        // Kick off layer 0's loads; later layers prefetch when their
        // predecessor starts computing (ping-pong buffers hold two
        // layers' working sets).
        issueLoads(0);
    }

    bool
    idle() const override
    {
        return nextCompute_ >= static_cast<int>(plans_.size()) &&
               storesIssued_ >= static_cast<int>(plans_.size());
    }

    void
    evaluate(Cycle cycle) override
    {
        startLayer_ = -1;
        issueStoreFor_ = -1;
        const int done = engine_.layersComplete();
        // Output store for a finished layer.
        if (storesIssued_ < done)
            issueStoreFor_ = storesIssued_;
        // Start the next layer when the engine is free, its data has
        // arrived, and its predecessor finished.
        if (nextCompute_ < static_cast<int>(plans_.size()) &&
            engine_.idle() && done == nextCompute_ &&
            dma_.loadsComplete(nextCompute_) >= 1) {
            startLayer_ = nextCompute_;
            startCycle_ = cycle;
        }
    }

    void
    commit(Cycle cycle) override
    {
        (void)cycle;
        if (issueStoreFor_ >= 0) {
            const LayerPlan &plan = plans_[issueStoreFor_];
            dma_.submit({DmaRequest::Kind::Store, issueStoreFor_,
                         plan.dram.traffic.writes});
            ++storesIssued_;
        }
        if (startLayer_ >= 0) {
            trace::printf("System", "cycle ", startCycle_,
                          ": layer ", startLayer_, " compute starts (",
                          computeCycles_[startLayer_], " cycles)");
            engine_.start(startLayer_, computeCycles_[startLayer_]);
            layerStart_[startLayer_] = startCycle_;
            ++nextCompute_;
            // Prefetch the successor behind this layer's compute.
            if (nextCompute_ < static_cast<int>(plans_.size()))
                issueLoads(nextCompute_);
        }
    }

    const std::vector<Cycle> &layerStart() const { return layerStart_; }

  private:
    void
    issueLoads(int layer)
    {
        const LayerPlan &plan = plans_[layer];
        // One combined load request per layer (kernels plus any
        // off-chip input stream).
        dma_.submit({DmaRequest::Kind::Load, layer,
                     plan.dram.kernelReadWords +
                         plan.dram.inputReadWords});
    }

    const std::vector<LayerPlan> &plans_;
    const std::vector<Cycle> &computeCycles_;
    DmaEngine &dma_;
    ComputeEngine &engine_;
    std::vector<Cycle> layerStart_;
    int nextCompute_ = 0;
    int storesIssued_ = 0;
    int startLayer_ = -1;
    int issueStoreFor_ = -1;
    Cycle startCycle_ = 0;
};

} // namespace

namespace {

SystemRunResult
runPlans(const std::vector<LayerPlan> &plans,
         const FlexFlowConfig &config, double dram_words_per_cycle)
{
    flexsim_assert(!plans.empty(), "cannot run an empty program");
    const FlexFlowModel model(config);
    std::vector<Cycle> compute_cycles;
    Cycle serialized = 0;
    for (const LayerPlan &plan : plans) {
        const LayerResult r = model.runLayer(plan.spec, plan.factors);
        compute_cycles.push_back(r.cycles);
        serialized +=
            r.cycles +
            static_cast<Cycle>(std::ceil(
                static_cast<double>(plan.dram.traffic.total()) /
                dram_words_per_cycle));
    }

    DmaEngine dma(dram_words_per_cycle);
    ComputeEngine engine;
    SystemController controller(plans, compute_cycles, dma, engine);

    CycleSimulator sim;
    sim.add(&controller);
    sim.add(&engine);
    sim.add(&dma);

    // Generous backstop: everything serialized plus slack.
    const Cycle budget = 2 * serialized + 1000;
    sim.runUntilIdle(budget);
    flexsim_assert(sim.allIdle(),
                   "system simulation did not quiesce (budget ",
                   budget, " cycles)");

    SystemRunResult result;
    result.totalCycles = sim.now();
    result.computeBusyCycles = engine.busyCycles();
    result.dmaBusyCycles = dma.busyCycles();
    result.computeStallCycles =
        result.totalCycles - result.computeBusyCycles;
    result.layerStart = controller.layerStart();
    result.serializedCycles = serialized;
    return result;
}

} // namespace

SystemRunResult
runSystem(const CompilationResult &compiled,
          const FlexFlowConfig &config, double dram_words_per_cycle)
{
    return runPlans(compiled.layers, config, dram_words_per_cycle);
}

SystemRunResult
runSystemBatch(const CompilationResult &compiled,
               const FlexFlowConfig &config,
               double dram_words_per_cycle, int frames)
{
    flexsim_assert(frames >= 1, "batch needs at least one frame");
    std::vector<LayerPlan> plans;
    plans.reserve(compiled.layers.size() * frames);
    for (int f = 0; f < frames; ++f)
        plans.insert(plans.end(), compiled.layers.begin(),
                     compiled.layers.end());
    return runPlans(plans, config, dram_words_per_cycle);
}

} // namespace flexsim
