/**
 * @file
 * The FlexFlow workload analyzer / compiler (paper Section 5).
 *
 * For every CONV layer the compiler:
 *
 *  1. determines the unrolling factors <Tm,Tn,Tr,Tc,Ti,Tj> maximizing
 *     Ur * Uc under Constraint (1), with Tr/Tc bounded by P * K' of
 *     the following POOL/CONV layers;
 *  2. applies the IADP inter-layer coupling — the producing layer's
 *     <Tm,Tr,Tc> should equal the consuming layer's <Tn,Ti,Tj> so
 *     results land in the next layer's buffer format.  compile() runs
 *     a dynamic program over the whole layer chain: each layer's
 *     row-side factors are chosen jointly with the next layer's
 *     coupled column side, minimizing total cycles; breaking the
 *     coupling is allowed but charged a data-relayout penalty (one
 *     extra pass of the activation through the distribution layer);
 *  3. plans DRAM traffic under the finite buffers, keeping
 *     intermediate activations on chip when they fit the ping-pong
 *     neuron buffers;
 *  4. emits the configuration program (assembly + binary) the
 *     FlexFlowAccelerator's decoder executes.
 */

#ifndef FLEXSIM_COMPILER_COMPILER_HH
#define FLEXSIM_COMPILER_COMPILER_HH

#include <optional>
#include <string>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/factor_search.hh"
#include "flexflow/flexflow_config.hh"
#include "flexflow/isa.hh"
#include "nn/layer_spec.hh"

namespace flexsim {

/** The compiler's decisions for one CONV stage. */
struct LayerPlan
{
    ConvLayerSpec spec;
    UnrollFactors factors;
    /** Predicted computing-resource utilization (Ur * Uc). */
    double utilization = 0.0;
    /** True when the IADP coupling to the previous layer was kept. */
    bool coupled = false;
    /** Pooling applied to this layer's output, if any. */
    std::optional<PoolLayerSpec> poolAfter;
    /** Output words after optional pooling. */
    WordCount outputWordsAfterPool = 0;
    /** True when this layer's input activation stays on chip. */
    bool inputOnChip = false;
    /** True when this layer's output activation stays on chip. */
    bool outputOnChip = false;
    /** DRAM plan (input reads zeroed when the input is on chip). */
    DramPlan dram;
};

/** Everything the compiler produces for one workload. */
struct CompilationResult
{
    std::string networkName;
    std::vector<LayerPlan> layers;
    Program program;
    /** The emitted assembly text. */
    std::string assembly;

    /** Total DRAM words across the network. */
    DramTraffic totalDram() const;
};

class FlexFlowCompiler
{
  public:
    /**
     * @param config             target accelerator
     * @param coupling_margin    max relative per-layer utilization
     *                           loss the chain optimizer may spend in
     *                           pursuit of a better whole-network
     *                           schedule (0 = every layer locally
     *                           optimal, coupling only on exact ties)
     */
    explicit FlexFlowCompiler(FlexFlowConfig config = FlexFlowConfig{},
                              double coupling_margin = 0.15);

    /** Compile a whole workload. */
    CompilationResult compile(const NetworkSpec &net) const;

    /** Factor determination for one stage (no program emission). */
    FactorChoice
    chooseFactors(const NetworkSpec &net, std::size_t stage_index,
                  const std::optional<UnrollFactors> &prev) const;

    const FlexFlowConfig &config() const { return config_; }

  private:
    FlexFlowConfig config_;
    double couplingMargin_;
};

} // namespace flexsim

#endif // FLEXSIM_COMPILER_COMPILER_HH
