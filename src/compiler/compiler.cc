#include "compiler/compiler.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "arch/unroll.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "nn/golden.hh"

namespace flexsim {

namespace {

/** A row-side candidate <Tm, Tr, Tc> with its column utilization. */
struct RowCandidate
{
    int tm = 1;
    int tr = 1;
    int tc = 1;
    double uc = 0.0;
    /** Output-position batches per output-map block sweep. */
    long long batches = 0;
};

/** Sequential steps per batch for a column side <Tn, Ti, Tj>. */
long long
stepsOf(const ConvLayerSpec &spec, int tn, int ti, int tj)
{
    return ceilDiv(spec.inMaps, tn) * ceilDiv(spec.kernel, ti) *
           ceilDiv(spec.kernel, tj);
}

/** Tr/Tc bound for stage @p idx: P * K' of the next POOL/CONV pair. */
int
trTcBound(const NetworkSpec &net, std::size_t idx)
{
    const ConvLayerSpec &spec = net.stages[idx].conv;
    int bound = spec.outSize;
    if (const auto next_k = net.nextKernel(idx))
        bound = std::min(bound, net.poolWindowAfter(idx) * *next_k);
    return bound;
}

/**
 * Enumerate row-side candidates within @p margin of the best Uc,
 * fitting the @p rows_avail surviving PE rows (utilization still
 * measured against the full edge @p d).
 */
std::vector<RowCandidate>
rowCandidates(const ConvLayerSpec &spec, int d, int bound,
              double margin, int rows_avail)
{
    std::vector<RowCandidate> all;
    double best_uc = 0.0;
    const int max_trc =
        std::min({bound, spec.outSize, rows_avail});
    for (int tm = 1; tm <= std::min(spec.outMaps, rows_avail); ++tm) {
        for (int tr = 1; tr <= max_trc && tm * tr <= rows_avail;
             ++tr) {
            for (int tc = 1;
                 tc <= max_trc && tm * tr * tc <= rows_avail; ++tc) {
                UnrollFactors t;
                t.tm = tm;
                t.tr = tr;
                t.tc = tc;
                RowCandidate cand;
                cand.tm = tm;
                cand.tr = tr;
                cand.tc = tc;
                cand.uc = utilizationCols(t, spec, d);
                cand.batches = ceilDiv(spec.outMaps, tm) *
                               ceilDiv(spec.outSize, tr) *
                               ceilDiv(spec.outSize, tc);
                best_uc = std::max(best_uc, cand.uc);
                all.push_back(cand);
            }
        }
    }
    std::vector<RowCandidate> kept;
    for (const RowCandidate &cand : all) {
        if (cand.uc + 1e-12 >= best_uc * (1.0 - margin))
            kept.push_back(cand);
    }
    return kept;
}

/** Column side coupled to the previous layer's row side. */
void
coupledColSide(const ConvLayerSpec &spec, const RowCandidate &prev,
               int &tn, int &ti, int &tj)
{
    tn = std::min(prev.tm, spec.inMaps);
    ti = std::min(prev.tr, spec.kernel);
    tj = std::min(prev.tc, spec.kernel);
}

} // namespace

DramTraffic
CompilationResult::totalDram() const
{
    DramTraffic total;
    for (const LayerPlan &layer : layers)
        total += layer.dram.traffic;
    return total;
}

FlexFlowCompiler::FlexFlowCompiler(FlexFlowConfig config,
                                   double coupling_margin)
    : config_(config), couplingMargin_(coupling_margin)
{
    flexsim_assert(coupling_margin >= 0.0,
                   "coupling margin must be non-negative");
}

FactorChoice
FlexFlowCompiler::chooseFactors(
    const NetworkSpec &net, std::size_t stage_index,
    const std::optional<UnrollFactors> &prev) const
{
    flexsim_assert(stage_index < net.stages.size(),
                   "stage index out of range");
    const ConvLayerSpec &spec = net.stages[stage_index].conv;
    const int bound = trTcBound(net, stage_index);

    FactorChoice best =
        searchBestFactors(spec, config_.d, bound,
                          config_.usableRows(), config_.usableCols());

    // Greedy variant of the IADP coupling: adopt the previous layer's
    // <Tm,Tr,Tc> as this layer's <Tn,Ti,Tj> when the Ur loss stays
    // within the margin.
    if (prev) {
        UnrollFactors coupled = best.factors;
        coupled.tn = std::min(prev->tm, spec.inMaps);
        coupled.ti = std::min(prev->tr, spec.kernel);
        coupled.tj = std::min(prev->tc, spec.kernel);
        if (feasible(coupled, spec, config_.d, bound,
                     config_.usableRows(), config_.usableCols())) {
            const double coupled_ur =
                utilizationRows(coupled, spec, config_.d);
            if (coupled_ur + 1e-12 >=
                best.utilizationRows * (1.0 - couplingMargin_)) {
                best.factors = coupled;
                best.utilizationRows = coupled_ur;
            }
        }
    }
    return best;
}

CompilationResult
FlexFlowCompiler::compile(const NetworkSpec &net) const
{
    net.validate();
    const std::size_t num_layers = net.stages.size();
    const int d = config_.d;

    // --- chain optimization ---------------------------------------
    // dp[i][ri]: minimum total cycles through layer i when layer i
    // uses row candidate ri.  Column sides are either coupled to the
    // previous layer's row side (free) or re-optimized (charged a
    // relayout penalty of one activation pass).
    std::vector<std::vector<RowCandidate>> rows(num_layers);
    std::vector<long long> free_steps(num_layers);
    std::vector<UnrollFactors> free_cols(num_layers);
    for (std::size_t i = 0; i < num_layers; ++i) {
        const ConvLayerSpec &spec = net.stages[i].conv;
        rows[i] = rowCandidates(spec, d, trTcBound(net, i),
                                couplingMargin_, config_.usableRows());
        flexsim_assert(!rows[i].empty(), "no row candidates for ",
                       spec.name);
        const FactorChoice free =
            searchBestFactors(spec, d, trTcBound(net, i),
                              config_.usableRows(),
                              config_.usableCols());
        free_cols[i] = free.factors;
        free_steps[i] = stepsOf(spec, free.factors.tn, free.factors.ti,
                                free.factors.tj);
    }

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dp(num_layers);
    std::vector<std::vector<int>> prev_choice(num_layers);
    std::vector<std::vector<bool>> used_coupling(num_layers);

    for (std::size_t i = 0; i < num_layers; ++i) {
        const ConvLayerSpec &spec = net.stages[i].conv;
        dp[i].assign(rows[i].size(), kInf);
        prev_choice[i].assign(rows[i].size(), -1);
        used_coupling[i].assign(rows[i].size(), false);
        for (std::size_t ri = 0; ri < rows[i].size(); ++ri) {
            const double batches =
                static_cast<double>(rows[i][ri].batches);
            if (i == 0) {
                dp[i][ri] =
                    batches * static_cast<double>(free_steps[i]);
                continue;
            }
            const double relayout =
                static_cast<double>(spec.inputWords());
            for (std::size_t pj = 0; pj < rows[i - 1].size(); ++pj) {
                if (dp[i - 1][pj] == kInf)
                    continue;
                int tn, ti, tj;
                coupledColSide(spec, rows[i - 1][pj], tn, ti, tj);
                double coupled_cost = kInf;
                if (tn * ti * tj <= config_.usableCols()) {
                    const long long csteps = stepsOf(spec, tn, ti, tj);
                    // The margin bounds the per-layer slowdown the
                    // coupling may introduce.
                    if (static_cast<double>(csteps) <=
                        static_cast<double>(free_steps[i]) *
                                (1.0 + couplingMargin_) +
                            1e-9) {
                        coupled_cost =
                            batches * static_cast<double>(csteps);
                    }
                }
                const double free_cost =
                    batches * static_cast<double>(free_steps[i]) +
                    relayout;
                const bool couple = coupled_cost <= free_cost;
                const double cost = dp[i - 1][pj] +
                                    std::min(coupled_cost, free_cost);
                if (cost < dp[i][ri]) {
                    dp[i][ri] = cost;
                    prev_choice[i][ri] = static_cast<int>(pj);
                    used_coupling[i][ri] = couple;
                }
            }
        }
    }

    // Backtrack the cheapest chain.
    std::vector<int> chosen(num_layers, 0);
    {
        const std::size_t last = num_layers - 1;
        double best = kInf;
        for (std::size_t ri = 0; ri < rows[last].size(); ++ri) {
            if (dp[last][ri] < best) {
                best = dp[last][ri];
                chosen[last] = static_cast<int>(ri);
            }
        }
        for (std::size_t i = last; i > 0; --i)
            chosen[i - 1] = prev_choice[i][chosen[i]];
    }

    // Materialize per-layer factors.
    std::vector<UnrollFactors> factors(num_layers);
    std::vector<bool> coupled(num_layers, false);
    for (std::size_t i = 0; i < num_layers; ++i) {
        const ConvLayerSpec &spec = net.stages[i].conv;
        const RowCandidate &row = rows[i][chosen[i]];
        UnrollFactors t;
        t.tm = row.tm;
        t.tr = row.tr;
        t.tc = row.tc;
        if (i > 0 && used_coupling[i][chosen[i]]) {
            coupledColSide(spec, rows[i - 1][chosen[i - 1]], t.tn,
                           t.ti, t.tj);
            coupled[i] = true;
        } else {
            t.tn = free_cols[i].tn;
            t.ti = free_cols[i].ti;
            t.tj = free_cols[i].tj;
        }
        flexsim_assert(feasible(t, spec, d, trTcBound(net, i),
                                config_.usableRows(),
                                config_.usableCols()),
                       "chain optimizer produced infeasible factors ",
                       t.toString(), " for ", spec.name);
        trace::printf("Compiler", net.name, " ", spec.name, " -> ",
                      t.toString(), coupled[i] ? " (coupled)" : "",
                      " Ut=", utilizationTotal(t, spec, d));
        factors[i] = t;
    }

    // --- planning and program emission ------------------------------
    CompilationResult result;
    result.networkName = net.name;

    std::ostringstream assembly;
    assembly << "; FlexFlow program for " << net.name << " on a "
             << config_.d << "x" << config_.d << " engine\n";

    bool prev_output_on_chip = false;

    for (std::size_t idx = 0; idx < num_layers; ++idx) {
        const NetworkSpec::Stage &stage = net.stages[idx];
        const ConvLayerSpec &spec = stage.conv;

        LayerPlan plan;
        plan.spec = spec;
        plan.factors = factors[idx];
        plan.utilization = utilizationTotal(plan.factors, spec, d);
        plan.coupled = coupled[idx];
        plan.poolAfter = stage.poolAfter;

        // Output footprint after the in-flight pooling unit.
        if (stage.poolAfter) {
            const int pooled = pooledSize(spec.outSize,
                                          *stage.poolAfter);
            plan.outputWordsAfterPool =
                static_cast<WordCount>(spec.outMaps) * pooled * pooled;
        } else {
            plan.outputWordsAfterPool = spec.outputWords();
        }

        plan.dram = planDramTraffic(spec, config_.neuronBufWords,
                                    config_.kernelBufWords,
                                    plan.outputWordsAfterPool);

        // Inter-layer residency: the previous layer's pooled output
        // sits in the other neuron buffer; if it covered the whole
        // activation and this layer streams it only once, no DRAM
        // reads are needed for inputs.
        plan.inputOnChip =
            prev_output_on_chip && plan.dram.inputStripes == 1;
        if (plan.inputOnChip) {
            plan.dram.inputReadWords = 0;
            plan.dram.traffic.reads = plan.dram.kernelReadWords;
        }

        // This layer's output stays on chip when it fits a neuron
        // buffer and a consumer exists.
        plan.outputOnChip =
            idx + 1 < net.stages.size() &&
            plan.outputWordsAfterPool <= config_.neuronBufWords;
        if (plan.outputOnChip)
            plan.dram.traffic.writes = 0;

        // --- program emission ---
        assembly << "\n; " << spec.name << ": " << spec.inMaps << "x"
                 << spec.outMaps << "@" << spec.kernel << "x"
                 << spec.kernel << " -> " << spec.outMaps << "@"
                 << spec.outSize << "x" << spec.outSize
                 << "  util=" << plan.utilization
                 << (plan.coupled ? "  (IADP-coupled)" : "") << "\n";
        assembly << "cfg_layer " << spec.outMaps << " " << spec.inMaps
                 << " " << spec.outSize << " " << spec.kernel << " "
                 << spec.stride << "\n";
        const UnrollFactors &t = plan.factors;
        assembly << "cfg_factors " << t.tm << " " << t.tn << " " << t.tr
                 << " " << t.tc << " " << t.ti << " " << t.tj << "\n";
        assembly << "load_kernels " << plan.dram.kernelReadWords << "\n";
        if (!plan.inputOnChip)
            assembly << "load_input " << plan.dram.inputReadWords
                     << "\n";
        assembly << "conv\n";
        if (stage.poolAfter) {
            assembly << "pool " << stage.poolAfter->window << " "
                     << stage.poolAfter->stride << " "
                     << (stage.poolAfter->op == PoolOp::Max ? "max"
                                                            : "avg")
                     << "\n";
        }
        if (!plan.outputOnChip)
            assembly << "store_output " << plan.dram.traffic.writes
                     << "\n";
        if (idx + 1 < net.stages.size())
            assembly << "swap\n";

        result.layers.push_back(plan);
        prev_output_on_chip = plan.outputOnChip;
    }
    assembly << "halt\n";

    result.assembly = assembly.str();
    result.program = assemble(result.assembly);
    return result;
}

} // namespace flexsim
