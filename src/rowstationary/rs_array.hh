/**
 * @file
 * Cycle-level data simulator of the Row-Stationary extension
 * baseline.
 *
 * Simulates the 1-D convolution primitives directly: for each
 * (output-map group, kernel-row group, strip, input map) unit, every
 * PE (filter row i, output row e) slides its stationary filter row
 * over its input row one MAC per cycle, and the set's column reduces
 * the partial rows into the output row.  Outputs are bit-exact
 * against goldenConv(); cycles and traffic match RowStationaryModel
 * exactly.
 */

#ifndef FLEXSIM_ROWSTATIONARY_RS_ARRAY_HH
#define FLEXSIM_ROWSTATIONARY_RS_ARRAY_HH

#include "arch/result.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "rowstationary/rs_config.hh"

namespace flexsim {

class RowStationaryArraySim
{
  public:
    explicit RowStationaryArraySim(
        RowStationaryConfig config = RowStationaryConfig{});

    /** Execute one CONV layer cycle by cycle; see SystolicArraySim. */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const Tensor3<> &input,
                       const Tensor4<> &kernels,
                       LayerResult *result = nullptr);

    const RowStationaryConfig &config() const { return config_; }

  private:
    RowStationaryConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_ROWSTATIONARY_RS_ARRAY_HH
