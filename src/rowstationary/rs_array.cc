#include "rowstationary/rs_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"
#include "rowstationary/rs_model.hh"

namespace flexsim {

RowStationaryArraySim::RowStationaryArraySim(RowStationaryConfig config)
    : config_(config)
{
    flexsim_assert(config_.physRows >= 1 && config_.physCols >= 1,
                   "bad row-stationary configuration");
}

Tensor3<>
RowStationaryArraySim::runLayer(const ConvLayerSpec &spec,
                                const Tensor3<> &input,
                                const Tensor4<> &kernels,
                                LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);

    const RowStationaryModel model(config_);
    const int k = spec.kernel;
    const int s = spec.outSize;
    const int stride = spec.stride;
    const int e = model.stripWidth(spec);
    const int row_groups = static_cast<int>(
        ceilDiv(k, config_.physRows));

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    std::vector<Acc> acc(
        static_cast<std::size_t>(spec.outMaps) * s * s, 0);

    for (int g = 0; g < row_groups; ++g) {
        const int i0 = g * config_.physRows;
        const int kg = std::min(config_.physRows, k - i0);
        const int conc = model.concurrentSets(kg);
        for (int m0 = 0; m0 < spec.outMaps; m0 += conc) {
            const int m_valid = std::min(conc, spec.outMaps - m0);
            for (int n = 0; n < spec.inMaps; ++n) {
                // The filter rows of this group become stationary in
                // the PE spads of each concurrent set: kg rows of K
                // taps per (m, n), retained across the strips.
                record.traffic.kernelIn +=
                    static_cast<WordCount>(m_valid) * kg * k;
                for (int strip = 0; strip * e < s; ++strip) {
                    const int rows_valid =
                        std::min(e, s - strip * e);
                    // Diagonal input-row delivery, shared by the
                    // concurrent sets: `span` input rows of the full
                    // map width.
                    const int span = (rows_valid - 1) * stride + kg;
                    record.traffic.neuronIn +=
                        static_cast<WordCount>(span) * spec.inSize;

                    // Every PE slides its K-tap filter row across its
                    // input row: one MAC per cycle, s * k cycles for
                    // the whole unit; the concurrent sets process
                    // their own output maps in lockstep.
                    for (int mo = 0; mo < m_valid; ++mo) {
                        const int m = m0 + mo;
                        for (int el = 0; el < rows_valid; ++el) {
                            const int r = strip * e + el;
                            for (int i = 0; i < kg; ++i) {
                                const int x = r * stride + i0 + i;
                                for (int c = 0; c < s; ++c) {
                                    Acc pe_acc = 0;
                                    for (int j = 0; j < k; ++j) {
                                        pe_acc += mulRaw(
                                            input.at(n, x,
                                                     c * stride + j),
                                            kernels.at(m, n, i0 + i,
                                                       j));
                                        ++record.activeMacCycles;
                                        record.localStoreReads += 3;
                                        ++record.localStoreWrites;
                                    }
                                    acc[(static_cast<std::size_t>(m) *
                                             s +
                                         r) *
                                            s +
                                        c] += pe_acc;
                                }
                            }
                        }
                    }
                    record.cycles += static_cast<Cycle>(s) * k;
                }
            }
        }
    }

    // Partial sums cross the output buffer only between kernel-row
    // groups.
    const WordCount out_words = spec.outputWords();
    record.traffic.neuronOut = out_words;
    record.traffic.psumWrite = out_words * (row_groups - 1);
    record.traffic.psumRead = out_words * (row_groups - 1);

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;

    if (result != nullptr)
        *result = record;

    Tensor3<> output(spec.outMaps, s, s);
    for (int m = 0; m < spec.outMaps; ++m)
        for (int r = 0; r < s; ++r)
            for (int c = 0; c < s; ++c)
                output.at(m, r, c) = quantizeAcc(
                    acc[(static_cast<std::size_t>(m) * s + r) * s +
                        c]);
    return output;
}

} // namespace flexsim
