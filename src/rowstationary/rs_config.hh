/**
 * @file
 * Configuration of the Row-Stationary (Eyeriss-style) extension
 * baseline.
 *
 * The paper's related work (Section 7) discusses Eyeriss's row
 * stationary dataflow as the closest contemporary design; this module
 * adds it as a fifth architecture beyond the paper's three baselines
 * so the Table-7 comparison can be made quantitative.  The model
 * follows the published RS mapping at the 1-D-convolution-primitive
 * level: each PE convolves one filter row with one input row,
 * producing one partial output row; a K-row PE set accumulates
 * vertically into one output row; sets replicate vertically across
 * output maps and output-row strips fold horizontally.
 */

#ifndef FLEXSIM_ROWSTATIONARY_RS_CONFIG_HH
#define FLEXSIM_ROWSTATIONARY_RS_CONFIG_HH

#include <cstddef>

namespace flexsim {

struct RowStationaryConfig
{
    /** Physical PE rows (Eyeriss: 12). */
    int physRows = 12;
    /** Physical PE columns (Eyeriss: 14). */
    int physCols = 14;
    std::size_t neuronBufWords = 16 * 1024; ///< 32 KiB
    std::size_t kernelBufWords = 16 * 1024; ///< 32 KiB

    unsigned
    peCount() const
    {
        return static_cast<unsigned>(physRows) * physCols;
    }

    /** Eyeriss's published 12x14 array. */
    static RowStationaryConfig
    eyeriss()
    {
        return RowStationaryConfig{};
    }
};

} // namespace flexsim

#endif // FLEXSIM_ROWSTATIONARY_RS_CONFIG_HH
