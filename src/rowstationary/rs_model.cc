#include "rowstationary/rs_model.hh"

#include <algorithm>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

RowStationaryModel::RowStationaryModel(RowStationaryConfig config)
    : config_(config)
{
    flexsim_assert(config_.physRows >= 1 && config_.physCols >= 1,
                   "bad row-stationary configuration");
}

int
RowStationaryModel::stripWidth(const ConvLayerSpec &spec) const
{
    return std::min(spec.outSize, config_.physCols);
}

int
RowStationaryModel::concurrentSets(int kg) const
{
    return std::max(1, config_.physRows / kg);
}

LayerResult
RowStationaryModel::runLayer(const ConvLayerSpec &spec) const
{
    spec.validate();
    const int k = spec.kernel;
    const int s = spec.outSize;
    const int e = stripWidth(spec);
    const long long strips = ceilDiv(s, e);
    const int row_groups = static_cast<int>(
        ceilDiv(k, config_.physRows));

    LayerResult result;
    result.layerName = spec.name;
    result.peCount = config_.peCount();
    result.macs = spec.macs();
    result.activeMacCycles = result.macs;

    Cycle cycles = 0;
    for (int g = 0; g < row_groups; ++g) {
        const int kg = std::min(config_.physRows,
                                k - g * config_.physRows);
        const long long m_groups =
            ceilDiv(spec.outMaps, concurrentSets(kg));
        // One unit: each PE runs the 1-D convolution of its
        // stationary K-tap filter row over its input row, producing
        // one S-element output row in s * k cycles (one MAC/cycle).
        (void)kg;
        cycles += static_cast<Cycle>(m_groups) * spec.inMaps * strips *
                  static_cast<Cycle>(s) * k;
    }
    result.cycles = cycles;
    result.fillCycles = 0;

    // Input rows are delivered once per (map-group, strip, input map)
    // and shared diagonally by the concurrent sets.
    WordCount neuron_in = 0;
    for (int g = 0; g < row_groups; ++g) {
        const int kg = std::min(config_.physRows,
                                k - g * config_.physRows);
        const long long m_groups =
            ceilDiv(spec.outMaps, concurrentSets(kg));
        for (long long strip = 0; strip < strips; ++strip) {
            const int rows_valid = static_cast<int>(std::min<long long>(
                e, s - strip * e));
            const int span = (rows_valid - 1) * spec.stride + kg;
            neuron_in += static_cast<WordCount>(m_groups) *
                         spec.inMaps * span * spec.inSize;
        }
    }
    result.traffic.neuronIn = neuron_in;

    // Filter rows stay stationary in the spads across strips; each
    // synapse is loaded once per (m, n).
    result.traffic.kernelIn = spec.kernelWords();

    // Partial sums only cross the buffer when the kernel folds.
    const WordCount out_words = spec.outputWords();
    result.traffic.neuronOut = out_words;
    result.traffic.psumWrite = out_words * (row_groups - 1);
    result.traffic.psumRead = out_words * (row_groups - 1);

    // Per MAC: filter spad read, input spad read, psum spad
    // read+write.
    result.localStoreReads = 3 * result.macs;
    result.localStoreWrites = result.macs;

    result.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;
    return result;
}

} // namespace flexsim
