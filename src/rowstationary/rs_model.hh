/**
 * @file
 * Analytic timing/traffic model of the Row-Stationary extension
 * baseline (see rs_config.hh).
 *
 * Schedule: a logical PE set is Kg rows (one filter-row group) by E
 * columns (E output rows, E = min(S, physCols)); each PE performs the
 * 1-D convolution of its filter row with its input row, one MAC per
 * cycle, so one (output map, input map, strip, row group) unit takes
 * S*K... more precisely S*Kg cycles for a group of Kg filter rows.
 * floor(physRows / Kg) sets run concurrently on different output maps
 * and share the diagonal input-row broadcast.  Filter rows stay
 * stationary in the PE spads; input rows are delivered once per
 * (map-group, strip, input map); partial sums cross the output buffer
 * only when the kernel folds into more than one row group.
 */

#ifndef FLEXSIM_ROWSTATIONARY_RS_MODEL_HH
#define FLEXSIM_ROWSTATIONARY_RS_MODEL_HH

#include "arch/accelerator.hh"
#include "rowstationary/rs_config.hh"

namespace flexsim {

class RowStationaryModel : public AcceleratorModel
{
  public:
    explicit RowStationaryModel(
        RowStationaryConfig config = RowStationaryConfig{});

    std::string name() const override { return "Row-Stationary"; }
    unsigned peCount() const override { return config_.peCount(); }
    LayerResult runLayer(const ConvLayerSpec &spec) const override;

    const RowStationaryConfig &config() const { return config_; }

    /** Output rows processed per strip. */
    int stripWidth(const ConvLayerSpec &spec) const;

    /** Concurrent PE sets for a kernel-row group of height @p kg. */
    int concurrentSets(int kg) const;

  private:
    RowStationaryConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_ROWSTATIONARY_RS_MODEL_HH
