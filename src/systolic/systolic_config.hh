/**
 * @file
 * Configuration of the Systolic (SFSNMS) baseline.
 *
 * The paper's Systolic baseline (DC-CNN style) is a set of identical
 * Ka x Ka PE pipelines; each array convolves one input map into one
 * output map, and the arrays split the output feature maps between
 * them in a Tiling-like mode.  The paper's 16x16-scale configuration
 * is seven 6x6 arrays (252 PEs), with 11x11 arrays for AlexNet.
 */

#ifndef FLEXSIM_SYSTOLIC_SYSTOLIC_CONFIG_HH
#define FLEXSIM_SYSTOLIC_SYSTOLIC_CONFIG_HH

#include <cstddef>

namespace flexsim {

struct SystolicConfig
{
    /** Array edge Ka: each array has Ka x Ka PEs (<Ti, Tj> = Ka). */
    int arrayEdge = 6;
    /** Number of identical arrays working DC-CNN style. */
    unsigned numArrays = 7;
    /** One neuron buffer, in words (32 KiB). */
    std::size_t neuronBufWords = 16 * 1024;
    /** Kernel buffer, in words (32 KiB). */
    std::size_t kernelBufWords = 16 * 1024;
    /** Host worker threads simulating output maps in parallel on the
     * shared sim::ThreadPool (simulation throughput only — results
     * are bit-identical for any value). */
    int threads = 1;

    unsigned
    peCount() const
    {
        return numArrays * arrayEdge * arrayEdge;
    }

    /**
     * Configuration matching a D x D computing-engine scale:
     * round(D^2 / Ka^2) arrays.  D = 16, Ka = 6 reproduces the paper's
     * 7-array baseline.
     */
    static SystolicConfig
    forScale(unsigned d, int array_edge = 6)
    {
        SystolicConfig config;
        config.arrayEdge = array_edge;
        const unsigned per_array =
            static_cast<unsigned>(array_edge) * array_edge;
        config.numArrays =
            (d * d + per_array / 2) / per_array;
        if (config.numArrays == 0)
            config.numArrays = 1;
        return config;
    }
};

} // namespace flexsim

#endif // FLEXSIM_SYSTOLIC_SYSTOLIC_CONFIG_HH
