#include "systolic/systolic_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

SystolicArraySim::SystolicArraySim(SystolicConfig config)
    : config_(config)
{
    flexsim_assert(config_.arrayEdge >= 1 && config_.numArrays >= 1,
                   "bad systolic configuration");
}

void
SystolicArraySim::setFaultPlan(const fault::FaultPlan *plan)
{
    faults_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
    stuckMap_.clear();
    macFaultsActive_ = false;
    if (faults_ == nullptr)
        return;
    const int ka = config_.arrayEdge;
    stuckMap_.assign(static_cast<std::size_t>(ka) * ka, 0);
    for (const fault::PeCoord &pe : faults_->stuckPes) {
        // Coordinates outside this array's edge belong to another
        // geometry (the plan is shared across architectures).
        if (pe.row >= 0 && pe.row < ka && pe.col >= 0 && pe.col < ka) {
            stuckMap_[static_cast<std::size_t>(pe.row) * ka + pe.col] =
                1;
            macFaultsActive_ = true;
        }
    }
    if (faults_->flipRate > 0.0)
        macFaultsActive_ = true;
}

SystolicArraySim::PassStats
SystolicArraySim::simulatePass(const ConvLayerSpec &spec,
                               const Tensor3<> &input,
                               const Tensor4<> &kernels, int m, int n,
                               int i0, int j0, std::vector<Acc> &accs,
                               std::vector<Token> &chain)
{
    const int ka = config_.arrayEdge;
    const int w = input.width();
    const int h = input.height();
    const int k = spec.kernel;
    const int s = spec.outSize;
    const int stride = spec.stride;
    const int ti_span = std::min(ka, k - i0);
    const int tj_span = std::min(ka, k - j0);
    const int depth = (ka - 1) * w + ka;

    PassStats stats;
    stats.kernelLoads =
        static_cast<WordCount>(ti_span) * tj_span;

    // The PE chain is modelled as a ring buffer: the per-cycle chain
    // shift becomes a head decrement instead of moving `depth` tokens.
    chain.assign(depth, Token{});
    int head = 0;
    const int stream = h * w;

    // This pass's operands stream linearly: the broadcast walks the
    // input map in raster order and every PE holds one synapse of the
    // resident ti_span x tj_span sub-kernel.
    const Fixed16 *in_map =
        input.data() + static_cast<std::size_t>(n) * h * w;
    const Fixed16 *k_tile =
        kernels.data() +
        ((static_cast<std::size_t>(m) * spec.inMaps + n) * k + i0) * k +
        j0;
    Acc *out_map = accs.data() + static_cast<std::size_t>(m) * s * s;

    for (int t = 0; t < stream + depth; ++t) {
        const bool have_input = t < stream;

        // Sequential phase first: emit the tail token, shift the
        // chain, and inject this cycle's new token at the head.
        {
            int tail = head + depth - 1;
            if (tail >= depth)
                tail -= depth;
            const Token &leaving = chain[tail];
            if (leaving.valid) {
                out_map[leaving.outR * s + leaving.outC] += leaving.acc;
                ++stats.validEmissions;
            }
        }
        head = head == 0 ? depth - 1 : head - 1;
        chain[head] = Token{};
        if (have_input) {
            const int a = t / w;
            const int b = t % w;
            const int orig_r = a - i0;
            const int orig_c = b - j0;
            if (orig_r >= 0 && orig_c >= 0 && orig_r % stride == 0 &&
                orig_c % stride == 0 && orig_r / stride < s &&
                orig_c / stride < s) {
                chain[head].valid = true;
                chain[head].outR = orig_r / stride;
                chain[head].outC = orig_c / stride;
            }
        }

        // Combinational phase: every PE multiplies the broadcast
        // neuron by its resident synapse and accumulates into the
        // token currently in its stage.
        if (have_input && !macFaultsActive_) {
            const Fixed16 broadcast = in_map[t];
            for (int i = 0; i < ti_span; ++i) {
                for (int j = 0; j < tj_span; ++j) {
                    int stage = head + i * w + j;
                    if (stage >= depth)
                        stage -= depth;
                    Token &token = chain[stage];
                    if (!token.valid)
                        continue;
                    // Self-check: the broadcast must be the operand
                    // this token needs at this stage.
                    flexsim_paranoid_assert(
                        t / w == token.outR * stride + i0 + i &&
                            t % w == token.outC * stride + j0 + j,
                        "systolic pipeline misalignment at cycle ", t);
                    token.acc += mulRaw(broadcast, k_tile[i * k + j]);
                    ++stats.activeMacs;
                }
            }
        } else if (have_input) {
            // Faulty datapath variant: the draw depends only on the
            // logical site (pass, cycle, PE), never on iteration
            // order, so injection is replay-identical.
            const std::uint64_t pass_prefix = fault::mixKey(
                faults_->seed,
                ((static_cast<std::uint64_t>(m) * spec.inMaps + n) *
                     spec.kernel +
                 i0) *
                        spec.kernel +
                    j0);
            const Fixed16 broadcast = in_map[t];
            for (int i = 0; i < ti_span; ++i) {
                for (int j = 0; j < tj_span; ++j) {
                    int stage = head + i * w + j;
                    if (stage >= depth)
                        stage -= depth;
                    Token &token = chain[stage];
                    if (!token.valid)
                        continue;
                    Acc prod =
                        mulRaw(broadcast, k_tile[i * k + j]);
                    if (stuckMap_[static_cast<std::size_t>(i) * ka +
                                  j]) {
                        prod = 0;
                        ++faultDiag_.stuckMacs;
                    } else if (fault::transientFires(
                                   pass_prefix,
                                   (static_cast<std::uint64_t>(t) *
                                        ka +
                                    i) *
                                           ka +
                                       j,
                                   faults_->flipRate)) {
                        prod ^= static_cast<Acc>(faults_->flipMask);
                        ++faultDiag_.flippedMacs;
                    }
                    token.acc += prod;
                    ++stats.activeMacs;
                }
            }
        }
    }
    return stats;
}

Tensor3<>
SystolicArraySim::runLayer(const ConvLayerSpec &spec,
                           const Tensor3<> &input,
                           const Tensor4<> &kernels, LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);
    flexsim_assert(spec.inSize >= config_.arrayEdge,
                   "input map edge ", spec.inSize,
                   " smaller than the systolic array edge ",
                   config_.arrayEdge,
                   "; configure a smaller array for layer ", spec.name);

    faultDiag_ = fault::FaultDiagnostics{};
    const int ka = config_.arrayEdge;
    const unsigned arrays = config_.numArrays;
    const int s = spec.outSize;
    const long long stream =
        static_cast<long long>(spec.inSize) * spec.inSize;
    const Cycle depth =
        static_cast<Cycle>(ka - 1) * spec.inSize + ka;

    std::vector<Acc> accs(
        static_cast<std::size_t>(spec.outMaps) * s * s, 0);
    std::vector<Token> chain;
    chain.reserve(static_cast<std::size_t>(depth));

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    const long long slots = ceilDiv(spec.outMaps, arrays);
    std::uint64_t emissions = 0;

    for (long long slot = 0; slot < slots; ++slot) {
        for (int n = 0; n < spec.inMaps; ++n) {
            for (int i0 = 0; i0 < spec.kernel; i0 += ka) {
                for (int j0 = 0; j0 < spec.kernel; j0 += ka) {
                    // All arrays run this pass concurrently on their
                    // assigned output maps, sharing the broadcast.
                    for (unsigned a = 0; a < arrays; ++a) {
                        const long long m = slot * arrays + a;
                        if (m >= spec.outMaps)
                            break;
                        const PassStats stats = simulatePass(
                            spec, input, kernels,
                            static_cast<int>(m), n, i0, j0, accs,
                            chain);
                        record.activeMacCycles += stats.activeMacs;
                        record.traffic.kernelIn += stats.kernelLoads;
                        emissions += stats.validEmissions;
                        record.localStoreReads += 2 * stats.activeMacs;
                        record.localStoreWrites += stats.activeMacs;
                        record.localStoreReads +=
                            static_cast<WordCount>(ka - 1) *
                            (stream + depth);
                        record.localStoreWrites +=
                            static_cast<WordCount>(ka - 1) *
                            (stream + depth);
                    }
                    record.cycles += stream + depth;
                    record.fillCycles += depth;
                    record.traffic.neuronIn += stream;
                }
            }
        }
    }

    // Partial-sum accounting: every emission lands in the output
    // buffer; all but the final write per output neuron are partial.
    const WordCount out_words = spec.outputWords();
    flexsim_assert(emissions % out_words == 0,
                   "ragged emission count ", emissions);
    record.traffic.neuronOut = out_words;
    record.traffic.psumWrite = emissions - out_words;
    record.traffic.psumRead = emissions - out_words;

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;

    if (result != nullptr)
        *result = record;

    Tensor3<> output(spec.outMaps, s, s);
    for (int m = 0; m < spec.outMaps; ++m) {
        for (int r = 0; r < s; ++r) {
            for (int c = 0; c < s; ++c) {
                output.at(m, r, c) = quantizeAcc(
                    accs[(static_cast<std::size_t>(m) * s + r) * s +
                         c]);
            }
        }
    }
    return output;
}

} // namespace flexsim
