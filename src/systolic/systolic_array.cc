#include "systolic/systolic_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"
#include "nn/mac_kernels.hh"
#include "sim/thread_pool.hh"

namespace flexsim {

SystolicArraySim::SystolicArraySim(SystolicConfig config)
    : config_(config)
{
    flexsim_assert(config_.arrayEdge >= 1 && config_.numArrays >= 1,
                   "bad systolic configuration");
}

void
SystolicArraySim::setFaultPlan(const fault::FaultPlan *plan)
{
    faults_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
    stuckMap_.clear();
    macFaultsActive_ = false;
    if (faults_ == nullptr)
        return;
    const int ka = config_.arrayEdge;
    stuckMap_.assign(static_cast<std::size_t>(ka) * ka, 0);
    for (const fault::PeCoord &pe : faults_->stuckPes) {
        // Coordinates outside this array's edge belong to another
        // geometry (the plan is shared across architectures).
        if (pe.row >= 0 && pe.row < ka && pe.col >= 0 && pe.col < ka) {
            stuckMap_[static_cast<std::size_t>(pe.row) * ka + pe.col] =
                1;
            macFaultsActive_ = true;
        }
    }
    if (faults_->flipRate > 0.0)
        macFaultsActive_ = true;
}

SystolicArraySim::PassStats
SystolicArraySim::simulatePass(const ConvLayerSpec &spec,
                               const Tensor3<> &input,
                               const Tensor4<> &kernels, int m, int n,
                               int i0, int j0, std::vector<Acc> &accs,
                               Chain &chain,
                               fault::FaultDiagnostics &diag) const
{
    const int ka = config_.arrayEdge;
    const int w = input.width();
    const int h = input.height();
    const int k = spec.kernel;
    const int s = spec.outSize;
    const int stride = spec.stride;
    const int ti_span = std::min(ka, k - i0);
    const int tj_span = std::min(ka, k - j0);
    const int depth = (ka - 1) * w + ka;

    PassStats stats;
    stats.kernelLoads =
        static_cast<WordCount>(ti_span) * tj_span;

    // The PE chain is modelled as a ring buffer: the per-cycle chain
    // shift becomes a head decrement instead of moving `depth` tokens.
    chain.reset(depth);
    int head = 0;
    const int stream = h * w;

    // This pass's operands stream linearly: the broadcast walks the
    // input map in raster order and every PE holds one synapse of the
    // resident ti_span x tj_span sub-kernel.
    const Fixed16 *in_map =
        input.data() + static_cast<std::size_t>(n) * h * w;
    const Fixed16 *k_tile =
        kernels.data() +
        ((static_cast<std::size_t>(m) * spec.inMaps + n) * k + i0) * k +
        j0;
    Acc *out_map = accs.data() + static_cast<std::size_t>(m) * s * s;

    std::uint8_t *valid = chain.valid.data();
    std::int32_t *out_pos = chain.outPos.data();
    Acc *acc = chain.acc.data();

    for (int t = 0; t < stream + depth; ++t) {
        const bool have_input = t < stream;

        // Sequential phase first: emit the tail token, shift the
        // chain, and inject this cycle's new token at the head.
        {
            int tail = head + depth - 1;
            if (tail >= depth)
                tail -= depth;
            if (valid[tail]) {
                out_map[out_pos[tail]] += acc[tail];
                ++stats.validEmissions;
            }
        }
        head = head == 0 ? depth - 1 : head - 1;
        valid[head] = 0;
        if (have_input) {
            const int a = t / w;
            const int b = t % w;
            const int orig_r = a - i0;
            const int orig_c = b - j0;
            if (orig_r >= 0 && orig_c >= 0 && orig_r % stride == 0 &&
                orig_c % stride == 0 && orig_r / stride < s &&
                orig_c / stride < s) {
                valid[head] = 1;
                out_pos[head] =
                    (orig_r / stride) * s + orig_c / stride;
                acc[head] = 0;
            }
        }

        // Combinational phase: every PE multiplies the broadcast
        // neuron by its resident synapse and accumulates into the
        // token currently in its stage.
        if (have_input && !macFaultsActive_) {
#ifdef FLEXSIM_PARANOID
            // Checked scalar variant: walk tokens one by one so the
            // alignment self-check can fire per operand.
            const Fixed16 broadcast = in_map[t];
            for (int i = 0; i < ti_span; ++i) {
                for (int j = 0; j < tj_span; ++j) {
                    int stage = head + i * w + j;
                    if (stage >= depth)
                        stage -= depth;
                    if (!valid[stage])
                        continue;
                    // Self-check: the broadcast must be the operand
                    // this token needs at this stage.
                    flexsim_paranoid_assert(
                        t / w == (out_pos[stage] / s) * stride + i0 +
                                     i &&
                            t % w ==
                                (out_pos[stage] % s) * stride + j0 + j,
                        "systolic pipeline misalignment at cycle ", t);
                    acc[stage] += mulRaw(broadcast, k_tile[i * k + j]);
                    ++stats.activeMacs;
                }
            }
#else
            // Vectorized variant: accumulate unconditionally over the
            // (at most two, on ring wrap) contiguous stage runs each
            // kernel row touches, and tally active MACs from the
            // valid bytes separately.  An invalid slot's acc is never
            // read (it is zeroed when the slot is next injected
            // valid), and the garbage it collects meanwhile is
            // bounded by ~2^41 — far below Acc's range — so outputs
            // and counters stay bit-identical to the checked loop.
            const std::int32_t braw = in_map[t].raw();
            for (int i = 0; i < ti_span; ++i) {
                int base = head + i * w;
                if (base >= depth)
                    base -= depth;
                const Fixed16 *k_row = k_tile + i * k;
                const int first = std::min(tj_span, depth - base);
                scaleAccumSpan(acc + base, braw, k_row, first);
                stats.activeMacs += sumBytes(valid + base, first);
                const int rest = tj_span - first;
                if (rest > 0) {
                    scaleAccumSpan(acc, braw, k_row + first, rest);
                    stats.activeMacs += sumBytes(valid, rest);
                }
            }
#endif
        } else if (have_input) {
            // Faulty datapath variant: the draw depends only on the
            // logical site (pass, cycle, PE), never on iteration
            // order, so injection is replay-identical.
            const std::uint64_t pass_prefix = fault::mixKey(
                faults_->seed,
                ((static_cast<std::uint64_t>(m) * spec.inMaps + n) *
                     spec.kernel +
                 i0) *
                        spec.kernel +
                    j0);
            const Fixed16 broadcast = in_map[t];
            for (int i = 0; i < ti_span; ++i) {
                for (int j = 0; j < tj_span; ++j) {
                    int stage = head + i * w + j;
                    if (stage >= depth)
                        stage -= depth;
                    if (!valid[stage])
                        continue;
                    Acc prod =
                        mulRaw(broadcast, k_tile[i * k + j]);
                    if (stuckMap_[static_cast<std::size_t>(i) * ka +
                                  j]) {
                        prod = 0;
                        ++diag.stuckMacs;
                    } else if (fault::transientFires(
                                   pass_prefix,
                                   (static_cast<std::uint64_t>(t) *
                                        ka +
                                    i) *
                                           ka +
                                       j,
                                   faults_->flipRate)) {
                        prod ^= static_cast<Acc>(faults_->flipMask);
                        ++diag.flippedMacs;
                    }
                    acc[stage] += prod;
                    ++stats.activeMacs;
                }
            }
        }
    }
    return stats;
}

Tensor3<>
SystolicArraySim::runLayer(const ConvLayerSpec &spec,
                           const Tensor3<> &input,
                           const Tensor4<> &kernels, LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);
    flexsim_assert(spec.inSize >= config_.arrayEdge,
                   "input map edge ", spec.inSize,
                   " smaller than the systolic array edge ",
                   config_.arrayEdge,
                   "; configure a smaller array for layer ", spec.name);

    faultDiag_ = fault::FaultDiagnostics{};
    const int ka = config_.arrayEdge;
    const unsigned arrays = config_.numArrays;
    const int s = spec.outSize;
    const long long stream =
        static_cast<long long>(spec.inSize) * spec.inSize;
    const Cycle depth =
        static_cast<Cycle>(ka - 1) * spec.inSize + ka;

    std::vector<Acc> accs(
        static_cast<std::size_t>(spec.outMaps) * s * s, 0);

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    const long long slots = ceilDiv(spec.outMaps, arrays);
    const long long sub_tiles =
        static_cast<long long>(ceilDiv(spec.kernel, ka)) *
        ceilDiv(spec.kernel, ka);

    // Broadcast-group timing is independent of which maps compute:
    // every (slot, n, sub-tile) group streams the input once and
    // drains the pipeline, whether or not all arrays have a map.
    const long long groups = slots * spec.inMaps * sub_tiles;
    record.cycles += static_cast<Cycle>(groups) *
                     (static_cast<Cycle>(stream) + depth);
    record.fillCycles += static_cast<Cycle>(groups) * depth;
    record.traffic.neuronIn +=
        static_cast<WordCount>(groups) * stream;

    // The layer's modelled cycle count is fully analytic up front, so
    // the cycle budget is charged in one step before any host work;
    // the wall-clock budget is polled at tile boundaries below.
    if (watchdog_)
        watchdog_->chargeCycles(record.cycles);

    // Output maps are independent tiles: each lane owns a disjoint
    // accs slice and private counters, merged in lane order below.
    struct LaneState
    {
        LayerResult rec;
        std::uint64_t emissions = 0;
        fault::FaultDiagnostics diag;
        Chain chain;
    };
    const int threads = std::max(1, config_.threads);
    std::vector<LaneState> lanes(std::max(
        1, std::min<int>(threads, std::max(spec.outMaps, 1))));
    sim::ThreadPool::CancelFn cancel;
    if (watchdog_) {
        cancel = [wd = watchdog_] { return wd->expired(); };
    }
    sim::ThreadPool::shared().parallelFor(
        spec.outMaps, threads,
        [&](int lane, std::int64_t tile) {
            LaneState &ls = lanes[lane];
            const int m = static_cast<int>(tile);
            for (int n = 0; n < spec.inMaps; ++n) {
                for (int i0 = 0; i0 < spec.kernel; i0 += ka) {
                    for (int j0 = 0; j0 < spec.kernel; j0 += ka) {
                        const PassStats stats = simulatePass(
                            spec, input, kernels, m, n, i0, j0, accs,
                            ls.chain, ls.diag);
                        ls.rec.activeMacCycles += stats.activeMacs;
                        ls.rec.traffic.kernelIn += stats.kernelLoads;
                        ls.emissions += stats.validEmissions;
                        ls.rec.localStoreReads += 2 * stats.activeMacs;
                        ls.rec.localStoreWrites += stats.activeMacs;
                        ls.rec.localStoreReads +=
                            static_cast<WordCount>(ka - 1) *
                            (stream + depth);
                        ls.rec.localStoreWrites +=
                            static_cast<WordCount>(ka - 1) *
                            (stream + depth);
                    }
                }
            }
        },
        cancel);
    if (watchdog_ && watchdog_->expired())
        throw guard::GuardException(
            watchdog_->tripError("sim.systolic"));

    std::uint64_t emissions = 0;
    for (const LaneState &ls : lanes) {
        record.activeMacCycles += ls.rec.activeMacCycles;
        record.traffic += ls.rec.traffic;
        record.localStoreReads += ls.rec.localStoreReads;
        record.localStoreWrites += ls.rec.localStoreWrites;
        emissions += ls.emissions;
        faultDiag_ += ls.diag;
    }

    // Partial-sum accounting: every emission lands in the output
    // buffer; all but the final write per output neuron are partial.
    const WordCount out_words = spec.outputWords();
    flexsim_assert(emissions % out_words == 0,
                   "ragged emission count ", emissions);
    record.traffic.neuronOut = out_words;
    record.traffic.psumWrite = emissions - out_words;
    record.traffic.psumRead = emissions - out_words;

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;

    if (result != nullptr)
        *result = record;

    Tensor3<> output(spec.outMaps, s, s);
    for (int m = 0; m < spec.outMaps; ++m) {
        for (int r = 0; r < s; ++r) {
            for (int c = 0; c < s; ++c) {
                output.at(m, r, c) = quantizeAcc(
                    accs[(static_cast<std::size_t>(m) * s + r) * s +
                         c]);
            }
        }
    }
    return output;
}

} // namespace flexsim
