#include "systolic/systolic_model.hh"

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

SystolicModel::SystolicModel(SystolicConfig config) : config_(config)
{
    flexsim_assert(config_.arrayEdge >= 1 && config_.numArrays >= 1,
                   "bad systolic configuration");
}

Cycle
SystolicModel::pipelineDepth(int in_size) const
{
    const int ka = config_.arrayEdge;
    return static_cast<Cycle>(ka - 1) * in_size + ka;
}

int
SystolicModel::subtilePasses(int kernel) const
{
    const int per_edge =
        static_cast<int>(ceilDiv(kernel, config_.arrayEdge));
    return per_edge * per_edge;
}

LayerResult
SystolicModel::runLayer(const ConvLayerSpec &spec) const
{
    spec.validate();
    const int ka = config_.arrayEdge;
    const unsigned arrays = config_.numArrays;
    const long long h = spec.inSize;
    const long long stream = h * h;
    const Cycle depth = pipelineDepth(spec.inSize);

    const long long map_groups = ceilDiv(spec.outMaps, arrays);
    const int subtiles = subtilePasses(spec.kernel);
    const long long passes =
        map_groups * spec.inMaps * subtiles;

    LayerResult result;
    result.layerName = spec.name;
    result.peCount = config_.peCount();
    result.macs = spec.macs();
    result.activeMacCycles = result.macs;
    result.cycles = static_cast<Cycle>(passes) * (stream + depth);
    result.fillCycles = static_cast<Cycle>(passes) * depth;

    // Input neurons are broadcast once per pass and shared by all
    // arrays; each synapse is loaded into its PE register once per
    // pass set.
    result.traffic.neuronIn =
        static_cast<WordCount>(passes) * stream;
    result.traffic.kernelIn = spec.kernelWords();

    // Each (output map, input map, sub-tile) pass emits S^2 partial
    // outputs; all but the final pass per output map cycle through the
    // output buffer as partial sums.
    const WordCount out_words = spec.outputWords();
    const long long passes_per_map =
        static_cast<long long>(spec.inMaps) * subtiles;
    result.traffic.neuronOut = out_words;
    result.traffic.psumWrite = out_words * (passes_per_map - 1);
    result.traffic.psumRead = out_words * (passes_per_map - 1);

    // Per-MAC register activity: read the synapse register and the
    // partial-sum register, write the partial sum back.
    result.localStoreReads = 2 * result.macs;
    result.localStoreWrites = result.macs;
    // Each of the ka-1 inter-row FIFOs of an *active* array takes one
    // push and one pop per pipeline cycle (idle arrays in a ragged
    // final map-group are clock gated).
    const long long array_passes =
        static_cast<long long>(spec.outMaps) * spec.inMaps * subtiles;
    const WordCount fifo_words = static_cast<WordCount>(array_passes) *
                                 (ka - 1) * (stream + depth);
    result.localStoreReads += fifo_words;
    result.localStoreWrites += fifo_words;

    const DramPlan plan = planDramTraffic(
        spec, config_.neuronBufWords, config_.kernelBufWords);
    result.dram = plan.traffic;
    return result;
}

} // namespace flexsim
