/**
 * @file
 * Cycle-level data simulator of the Systolic (SFSNMS) baseline.
 *
 * The simulator moves real Q7.8 operands through the PE pipeline: one
 * input neuron is broadcast to all PEs per cycle, partial outputs shift
 * through the PE chain and the inter-row FIFOs, and finished neurons
 * emerge from the last stage after the pipeline depth.  Outputs are
 * bit-exact against goldenConv(); cycle counts and traffic match
 * SystolicModel exactly (asserted by the integration tests).
 *
 * Output maps are independent (DC-CNN assigns one array per map), so
 * `SystolicConfig::threads` spreads them over the shared
 * sim::ThreadPool; all per-map state is lane-private and the merge is
 * a sum/max in lane order, keeping results bit-identical at any
 * thread count.
 */

#ifndef FLEXSIM_SYSTOLIC_SYSTOLIC_ARRAY_HH
#define FLEXSIM_SYSTOLIC_SYSTOLIC_ARRAY_HH

#include "arch/result.hh"
#include "fault/fault_plan.hh"
#include "guard/watchdog.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "systolic/systolic_config.hh"

namespace flexsim {

class SystolicArraySim
{
  public:
    explicit SystolicArraySim(SystolicConfig config = SystolicConfig{});

    /**
     * Execute one CONV layer cycle by cycle.
     *
     * @param spec    layer description (validated against the tensors)
     * @param input   N maps of inSize x inSize
     * @param kernels M x N kernels
     * @param result  optional execution record (cycles, traffic, ...)
     * @return the M output feature maps
     */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const Tensor3<> &input,
                       const Tensor4<> &kernels,
                       LayerResult *result = nullptr);

    const SystolicConfig &config() const { return config_; }

    /**
     * Attach a fault plan (must outlive the simulator; nullptr or an
     * empty plan restores the healthy fast path).  Stuck/transient
     * MAC faults apply at array-local PE coordinates in
     * [0, arrayEdge); geometry faults (dead rows/columns) are
     * modelled at the capacity level by fault::degradeTopLeftSquare,
     * not by this data simulator.
     */
    void setFaultPlan(const fault::FaultPlan *plan);

    /**
     * Attach a per-layer execution watchdog (must outlive the
     * simulator; nullptr detaches).  runLayer() charges its modelled
     * cycles, polls expired() at tile boundaries, and throws
     * guard::GuardException (category Timeout) once a budget trips —
     * see DESIGN.md §3.7.  Arming is the caller's job.
     */
    void setWatchdog(const guard::Watchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

    /** Fault activity of the last runLayer(). */
    const fault::FaultDiagnostics &faultDiagnostics() const
    {
        return faultDiag_;
    }

  private:
    /**
     * The PE chain as a struct-of-arrays ring buffer: the per-cycle
     * chain shift is a head decrement, and the combinational MAC
     * phase updates contiguous acc runs the compiler can vectorize
     * (outPos = outR * outSize + outC is precomputed at injection).
     */
    struct Chain
    {
        std::vector<std::uint8_t> valid;
        std::vector<std::int32_t> outPos;
        std::vector<Acc> acc;

        void
        reset(int depth)
        {
            valid.assign(depth, 0);
            outPos.assign(depth, 0);
            acc.assign(depth, 0);
        }
    };

    /** Counters from one (m, n, sub-tile) pass of a single array. */
    struct PassStats
    {
        std::uint64_t activeMacs = 0;
        std::uint64_t validEmissions = 0;
        WordCount kernelLoads = 0;
    };

    /** Pure function of its arguments plus const fault state — safe
     * to call concurrently for distinct output maps m. */
    PassStats simulatePass(const ConvLayerSpec &spec,
                           const Tensor3<> &input,
                           const Tensor4<> &kernels, int m, int n,
                           int i0, int j0, std::vector<Acc> &accs,
                           Chain &chain,
                           fault::FaultDiagnostics &diag) const;

    SystolicConfig config_;

    const fault::FaultPlan *faults_ = nullptr;
    /** Stuck-at-zero map over the ka x ka PEs (empty = none). */
    std::vector<std::uint8_t> stuckMap_;
    bool macFaultsActive_ = false;
    fault::FaultDiagnostics faultDiag_;
    const guard::Watchdog *watchdog_ = nullptr;
};

} // namespace flexsim

#endif // FLEXSIM_SYSTOLIC_SYSTOLIC_ARRAY_HH
