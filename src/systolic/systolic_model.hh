/**
 * @file
 * Analytic timing/traffic model of the Systolic (SFSNMS) baseline.
 *
 * Schedule (paper Section 3.1): each Ka x Ka array is a deep pipeline
 * whose depth is roughly the input map width times Ka.  One pass
 * streams all inSize^2 input neurons of one (output map, input map,
 * kernel sub-tile) combination; kernels larger than the array take
 * ceil(K/Ka)^2 sub-tile passes with partial-sum read-back.  The arrays
 * split the output maps DC-CNN style and share the input broadcast.
 */

#ifndef FLEXSIM_SYSTOLIC_SYSTOLIC_MODEL_HH
#define FLEXSIM_SYSTOLIC_SYSTOLIC_MODEL_HH

#include "arch/accelerator.hh"
#include "systolic/systolic_config.hh"

namespace flexsim {

class SystolicModel : public AcceleratorModel
{
  public:
    explicit SystolicModel(SystolicConfig config = SystolicConfig{});

    std::string name() const override { return "Systolic"; }
    unsigned peCount() const override { return config_.peCount(); }
    LayerResult runLayer(const ConvLayerSpec &spec) const override;

    const SystolicConfig &config() const { return config_; }

    /** Pipeline depth for an input map of edge @p in_size. */
    Cycle pipelineDepth(int in_size) const;

    /** Kernel sub-tile passes for a K x K kernel. */
    int subtilePasses(int kernel) const;

  private:
    SystolicConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_SYSTOLIC_SYSTOLIC_MODEL_HH
