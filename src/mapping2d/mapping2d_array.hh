/**
 * @file
 * Cycle-level data simulator of the 2D-Mapping (SFMNSS) baseline.
 *
 * Every PE owns one output neuron of the current block and carries a
 * neuron register; per cycle one synapse is broadcast to all PEs and
 * the neuron registers shift between neighbours (right-to-left on
 * kernel-column steps, bottom-to-top on kernel-row steps via the
 * row-start values the FIFOs retain).  Edge PEs load new neurons from
 * the buffer.  Every register read is self-checked against the
 * functionally required operand; outputs are bit-exact against
 * goldenConv() and cycles/traffic match Mapping2DModel exactly.
 */

#ifndef FLEXSIM_MAPPING2D_MAPPING2D_ARRAY_HH
#define FLEXSIM_MAPPING2D_MAPPING2D_ARRAY_HH

#include "arch/result.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "mapping2d/mapping2d_config.hh"

namespace flexsim {

class Mapping2DArraySim
{
  public:
    explicit Mapping2DArraySim(
        Mapping2DConfig config = Mapping2DConfig{});

    /** Execute one CONV layer cycle by cycle; see SystolicArraySim. */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const Tensor3<> &input,
                       const Tensor4<> &kernels,
                       LayerResult *result = nullptr);

    const Mapping2DConfig &config() const { return config_; }

  private:
    Mapping2DConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_MAPPING2D_MAPPING2D_ARRAY_HH
