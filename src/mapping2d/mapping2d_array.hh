/**
 * @file
 * Cycle-level data simulator of the 2D-Mapping (SFMNSS) baseline.
 *
 * Every PE owns one output neuron of the current block and carries a
 * neuron register; per cycle one synapse is broadcast to all PEs and
 * the neuron registers shift between neighbours (right-to-left on
 * kernel-column steps, bottom-to-top on kernel-row steps via the
 * row-start values the FIFOs retain).  Edge PEs load new neurons from
 * the buffer.  Every register read is self-checked against the
 * functionally required operand; outputs are bit-exact against
 * goldenConv() and cycles/traffic match Mapping2DModel exactly.
 */

#ifndef FLEXSIM_MAPPING2D_MAPPING2D_ARRAY_HH
#define FLEXSIM_MAPPING2D_MAPPING2D_ARRAY_HH

#include "arch/result.hh"
#include "fault/fault_plan.hh"
#include "guard/watchdog.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "mapping2d/mapping2d_config.hh"

namespace flexsim {

class Mapping2DArraySim
{
  public:
    explicit Mapping2DArraySim(
        Mapping2DConfig config = Mapping2DConfig{});

    /** Execute one CONV layer cycle by cycle; see SystolicArraySim. */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const Tensor3<> &input,
                       const Tensor4<> &kernels,
                       LayerResult *result = nullptr);

    const Mapping2DConfig &config() const { return config_; }

    /**
     * Attach a fault plan (must outlive the simulator; nullptr or an
     * empty plan restores the healthy fast path).  Stuck/transient
     * MAC faults apply at PE grid coordinates in [0, rows) x
     * [0, cols); geometry faults are modelled at the capacity level
     * by fault::degradeMaxRectangle, not by this data simulator.
     */
    void setFaultPlan(const fault::FaultPlan *plan);

    /** Attach a per-layer execution watchdog; see
     * SystolicArraySim::setWatchdog (DESIGN.md §3.7). */
    void setWatchdog(const guard::Watchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

    /** Fault activity of the last runLayer(). */
    const fault::FaultDiagnostics &faultDiagnostics() const
    {
        return faultDiag_;
    }

  private:
    Mapping2DConfig config_;

    const fault::FaultPlan *faults_ = nullptr;
    /** Stuck-at-zero map over the rows x cols PEs (empty = none). */
    std::vector<std::uint8_t> stuckMap_;
    bool macFaultsActive_ = false;
    fault::FaultDiagnostics faultDiag_;
    const guard::Watchdog *watchdog_ = nullptr;
};

} // namespace flexsim

#endif // FLEXSIM_MAPPING2D_MAPPING2D_ARRAY_HH
