#include "mapping2d/mapping2d_model.hh"

#include <algorithm>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

Mapping2DModel::Mapping2DModel(Mapping2DConfig config) : config_(config)
{
    flexsim_assert(config_.rows >= 1 && config_.cols >= 1,
                   "bad 2D-Mapping configuration");
}

WordCount
Mapping2DModel::blockNeuronLoads(const ConvLayerSpec &spec, int rows,
                                 int cols) const
{
    const long long k = spec.kernel;
    if (spec.stride == 1) {
        // Initial window, one new column of `rows` neurons per
        // kernel-column step, one new bottom row of `cols` neurons per
        // kernel-row step (the single-FIFO shift network re-fetches
        // the right-edge columns on every kernel row).
        return static_cast<WordCount>(rows) * cols +
               static_cast<WordCount>(k) * (k - 1) * rows +
               static_cast<WordCount>(k - 1) * cols;
    }
    // Stride > 1 defeats neighbour shifting; every operand is fetched.
    return static_cast<WordCount>(rows) * cols * k * k;
}

LayerResult
Mapping2DModel::runLayer(const ConvLayerSpec &spec) const
{
    spec.validate();
    const int tr = config_.rows;
    const int tc = config_.cols;
    const long long blocks_r = ceilDiv(spec.outSize, tr);
    const long long blocks_c = ceilDiv(spec.outSize, tc);
    const long long kk =
        static_cast<long long>(spec.kernel) * spec.kernel;

    LayerResult result;
    result.layerName = spec.name;
    result.peCount = config_.peCount();
    result.macs = spec.macs();
    result.activeMacCycles = result.macs;

    Cycle cycles = 0;
    Cycle fill = 0;
    for (long long rb = 0; rb < blocks_r; ++rb) {
        const int rows = std::min<long long>(
            tr, spec.outSize - rb * tr);
        for (long long cb = 0; cb < blocks_c; ++cb) {
            const int cols = std::min<long long>(
                tc, spec.outSize - cb * tc);
            for (int m = 0; m < spec.outMaps; ++m) {
                cycles += static_cast<Cycle>(spec.inMaps) * kk;
                // Initial window load for the first input map; later
                // maps preload behind the running computation.
                cycles += cols;
                fill += cols;
                result.traffic.neuronIn +=
                    static_cast<WordCount>(spec.inMaps) *
                    blockNeuronLoads(spec, rows, cols);
            }
        }
    }
    result.cycles = cycles;
    result.fillCycles = fill;

    result.traffic.kernelIn =
        static_cast<WordCount>(blocks_r) * blocks_c * spec.outMaps *
        spec.inMaps * kk;
    result.traffic.neuronOut = spec.outputWords();
    // One register read and one shift-network write per MAC.
    result.localStoreReads = result.macs;
    result.localStoreWrites = result.macs;

    result.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;
    return result;
}

} // namespace flexsim
