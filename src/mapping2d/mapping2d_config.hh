/**
 * @file
 * Configuration of the 2D-Mapping (SFMNSS) baseline.
 *
 * A ShiDiannao-style Tr x Tc PE array: each PE owns one output neuron
 * of a Tr x Tc block of one output feature map; one synapse is
 * broadcast per cycle while input neurons shift between neighbour PEs
 * through small FIFOs.
 */

#ifndef FLEXSIM_MAPPING2D_MAPPING2D_CONFIG_HH
#define FLEXSIM_MAPPING2D_MAPPING2D_CONFIG_HH

#include <cstddef>

namespace flexsim {

struct Mapping2DConfig
{
    int rows = 16; ///< Tr
    int cols = 16; ///< Tc
    std::size_t neuronBufWords = 16 * 1024; ///< 32 KiB
    std::size_t kernelBufWords = 16 * 1024; ///< 32 KiB
    /** Host worker threads simulating (block, map) tiles in parallel
     * on the shared sim::ThreadPool (simulation throughput only —
     * results are bit-identical for any value). */
    int threads = 1;

    unsigned
    peCount() const
    {
        return static_cast<unsigned>(rows) * cols;
    }

    /** D x D output-neuron array, the paper's 16x16 configuration. */
    static Mapping2DConfig
    forScale(unsigned d)
    {
        Mapping2DConfig config;
        config.rows = static_cast<int>(d);
        config.cols = static_cast<int>(d);
        return config;
    }
};

} // namespace flexsim

#endif // FLEXSIM_MAPPING2D_MAPPING2D_CONFIG_HH
