#include "mapping2d/mapping2d_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

Mapping2DArraySim::Mapping2DArraySim(Mapping2DConfig config)
    : config_(config)
{
    flexsim_assert(config_.rows >= 1 && config_.cols >= 1,
                   "bad 2D-Mapping configuration");
}

void
Mapping2DArraySim::setFaultPlan(const fault::FaultPlan *plan)
{
    faults_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
    stuckMap_.clear();
    macFaultsActive_ = false;
    if (faults_ == nullptr)
        return;
    stuckMap_.assign(
        static_cast<std::size_t>(config_.rows) * config_.cols, 0);
    for (const fault::PeCoord &pe : faults_->stuckPes) {
        // Coordinates outside this grid belong to another geometry
        // (the plan is shared across architectures).
        if (pe.row >= 0 && pe.row < config_.rows && pe.col >= 0 &&
            pe.col < config_.cols) {
            stuckMap_[static_cast<std::size_t>(pe.row) * config_.cols +
                      pe.col] = 1;
            macFaultsActive_ = true;
        }
    }
    if (faults_->flipRate > 0.0)
        macFaultsActive_ = true;
}

Tensor3<>
Mapping2DArraySim::runLayer(const ConvLayerSpec &spec,
                            const Tensor3<> &input,
                            const Tensor4<> &kernels, LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);

    const int tr = config_.rows;
    const int tc = config_.cols;
    const int s = spec.outSize;
    const int k = spec.kernel;
    const int stride = spec.stride;

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    faultDiag_ = fault::FaultDiagnostics{};

    Tensor3<> output(spec.outMaps, s, s);

    // Per-PE state for the current block.
    std::vector<Fixed16> regs(static_cast<std::size_t>(tr) * tc);
    std::vector<Fixed16> row_start(regs.size());
    std::vector<Acc> accs(regs.size());
    auto idx = [tc](int r, int c) {
        return static_cast<std::size_t>(r) * tc + c;
    };

    for (int r0 = 0; r0 < s; r0 += tr) {
        const int rows = std::min(tr, s - r0);
        for (int c0 = 0; c0 < s; c0 += tc) {
            const int cols = std::min(tc, s - c0);
            for (int m = 0; m < spec.outMaps; ++m) {
                std::fill(accs.begin(), accs.end(), Acc{0});
                // Initial-window fill cycles for the first input map
                // (later windows preload behind the computation).
                record.cycles += cols;
                record.fillCycles += cols;

                for (int n = 0; n < spec.inMaps; ++n) {
                    auto load = [&](int r, int c, int i, int j) {
                        ++record.traffic.neuronIn;
                        return input.at(n, (r0 + r) * stride + i,
                                        (c0 + c) * stride + j);
                    };

                    if (stride == 1) {
                        // Load the (i=0, j=0) window.
                        for (int r = 0; r < rows; ++r)
                            for (int c = 0; c < cols; ++c)
                                regs[idx(r, c)] = load(r, c, 0, 0);
                    }

                    for (int i = 0; i < k; ++i) {
                        if (stride == 1) {
                            if (i > 0) {
                                // Bottom-to-top shift of the row-start
                                // values; the bottom row loads fresh
                                // neurons.
                                for (int r = 0; r < rows; ++r) {
                                    for (int c = 0; c < cols; ++c) {
                                        regs[idx(r, c)] =
                                            r + 1 < rows
                                                ? row_start[idx(r + 1,
                                                                c)]
                                                : load(r, c, i, 0);
                                    }
                                }
                            }
                            for (int r = 0; r < rows; ++r)
                                for (int c = 0; c < cols; ++c)
                                    row_start[idx(r, c)] =
                                        regs[idx(r, c)];
                        }
                        for (int j = 0; j < k; ++j) {
                            if (stride == 1 && j > 0) {
                                // Right-to-left shift; the rightmost
                                // column loads fresh neurons.
                                for (int r = 0; r < rows; ++r) {
                                    for (int c = 0; c < cols; ++c) {
                                        regs[idx(r, c)] =
                                            c + 1 < cols
                                                ? regs[idx(r, c + 1)]
                                                : load(r, c, i, j);
                                    }
                                }
                            }
                            const Fixed16 synapse =
                                kernels.at(m, n, i, j);
                            ++record.traffic.kernelIn;
                            // The transient draw depends only on the
                            // logical site (m, n, i, j, output
                            // neuron), never on block iteration
                            // order, so injection is replay-identical.
                            const std::uint64_t site_prefix =
                                macFaultsActive_
                                    ? fault::mixKey(
                                          faults_->seed,
                                          ((static_cast<std::uint64_t>(
                                                m) *
                                                spec.inMaps +
                                            n) *
                                               k +
                                           i) *
                                                  k +
                                              j)
                                    : 0;
                            for (int r = 0; r < rows; ++r) {
                                for (int c = 0; c < cols; ++c) {
                                    Fixed16 neuron;
                                    if (stride == 1) {
                                        neuron = regs[idx(r, c)];
                                        // Dataflow self-check: the
                                        // shift network must have
                                        // delivered the right operand.
                                        flexsim_paranoid_assert(
                                            neuron ==
                                                input.at(n, r0 + r + i,
                                                         c0 + c + j),
                                            "2D-Mapping shift network "
                                            "misalignment at block (",
                                            r0, ", ", c0, ")");
                                    } else {
                                        neuron = load(r, c, i, j);
                                    }
                                    Acc prod = mulRaw(neuron, synapse);
                                    if (macFaultsActive_) {
                                        if (!stuckMap_.empty() &&
                                            stuckMap_[idx(r, c)]) {
                                            prod = 0;
                                            ++faultDiag_.stuckMacs;
                                        } else if (
                                            fault::transientFires(
                                                site_prefix,
                                                static_cast<
                                                    std::uint64_t>(
                                                    r0 + r) *
                                                        s +
                                                    (c0 + c),
                                                faults_->flipRate)) {
                                            prod ^= static_cast<Acc>(
                                                faults_->flipMask);
                                            ++faultDiag_.flippedMacs;
                                        }
                                    }
                                    accs[idx(r, c)] += prod;
                                    ++record.activeMacCycles;
                                    ++record.localStoreReads;
                                    ++record.localStoreWrites;
                                }
                            }
                            ++record.cycles;
                        }
                    }
                }

                for (int r = 0; r < rows; ++r) {
                    for (int c = 0; c < cols; ++c) {
                        output.at(m, r0 + r, c0 + c) =
                            quantizeAcc(accs[idx(r, c)]);
                        ++record.traffic.neuronOut;
                    }
                }
            }
        }
    }

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;

    if (result != nullptr)
        *result = record;
    return output;
}

} // namespace flexsim
