#include "mapping2d/mapping2d_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"
#include "sim/thread_pool.hh"

namespace flexsim {

Mapping2DArraySim::Mapping2DArraySim(Mapping2DConfig config)
    : config_(config)
{
    flexsim_assert(config_.rows >= 1 && config_.cols >= 1,
                   "bad 2D-Mapping configuration");
}

void
Mapping2DArraySim::setFaultPlan(const fault::FaultPlan *plan)
{
    faults_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
    stuckMap_.clear();
    macFaultsActive_ = false;
    if (faults_ == nullptr)
        return;
    stuckMap_.assign(
        static_cast<std::size_t>(config_.rows) * config_.cols, 0);
    for (const fault::PeCoord &pe : faults_->stuckPes) {
        // Coordinates outside this grid belong to another geometry
        // (the plan is shared across architectures).
        if (pe.row >= 0 && pe.row < config_.rows && pe.col >= 0 &&
            pe.col < config_.cols) {
            stuckMap_[static_cast<std::size_t>(pe.row) * config_.cols +
                      pe.col] = 1;
            macFaultsActive_ = true;
        }
    }
    if (faults_->flipRate > 0.0)
        macFaultsActive_ = true;
}

Tensor3<>
Mapping2DArraySim::runLayer(const ConvLayerSpec &spec,
                            const Tensor3<> &input,
                            const Tensor4<> &kernels, LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);

    const int tr = config_.rows;
    const int tc = config_.cols;
    const int s = spec.outSize;
    const int k = spec.kernel;
    const int stride = spec.stride;

    LayerResult total;
    total.layerName = spec.name;
    total.peCount = config_.peCount();
    total.macs = spec.macs();

    faultDiag_ = fault::FaultDiagnostics{};

    Tensor3<> output(spec.outMaps, s, s);

    // Each (output block, output map) tile owns a disjoint output
    // slice and fully private PE state, so tiles spread freely over
    // the shared pool; every counter below is a lane-private sum
    // merged in lane order, keeping results bit-identical at any
    // thread count.
    struct LaneState
    {
        std::vector<Fixed16> regs;
        std::vector<Fixed16> rowStart;
        std::vector<Acc> accs;
        LayerResult rec;
        fault::FaultDiagnostics diag;
    };
    auto idx = [tc](int r, int c) {
        return static_cast<std::size_t>(r) * tc + c;
    };

    const auto run_tile = [&](int r0, int c0, int m, LaneState &ls) {
        const int rows = std::min(tr, s - r0);
        const int cols = std::min(tc, s - c0);
        std::vector<Fixed16> &regs = ls.regs;
        std::vector<Fixed16> &row_start = ls.rowStart;
        std::vector<Acc> &accs = ls.accs;
        LayerResult &record = ls.rec;
        fault::FaultDiagnostics &fault_diag = ls.diag;
        {
            {
                std::fill(accs.begin(), accs.end(), Acc{0});
                // Initial-window fill cycles for the first input map
                // (later windows preload behind the computation).
                record.cycles += cols;
                record.fillCycles += cols;

                for (int n = 0; n < spec.inMaps; ++n) {
                    auto load = [&](int r, int c, int i, int j) {
                        ++record.traffic.neuronIn;
                        return input.at(n, (r0 + r) * stride + i,
                                        (c0 + c) * stride + j);
                    };

                    if (stride == 1) {
                        // Load the (i=0, j=0) window.
                        for (int r = 0; r < rows; ++r)
                            for (int c = 0; c < cols; ++c)
                                regs[idx(r, c)] = load(r, c, 0, 0);
                    }

                    for (int i = 0; i < k; ++i) {
                        if (stride == 1) {
                            if (i > 0) {
                                // Bottom-to-top shift of the row-start
                                // values; the bottom row loads fresh
                                // neurons.
                                for (int r = 0; r < rows; ++r) {
                                    for (int c = 0; c < cols; ++c) {
                                        regs[idx(r, c)] =
                                            r + 1 < rows
                                                ? row_start[idx(r + 1,
                                                                c)]
                                                : load(r, c, i, 0);
                                    }
                                }
                            }
                            for (int r = 0; r < rows; ++r)
                                for (int c = 0; c < cols; ++c)
                                    row_start[idx(r, c)] =
                                        regs[idx(r, c)];
                        }
                        for (int j = 0; j < k; ++j) {
                            if (stride == 1 && j > 0) {
                                // Right-to-left shift; the rightmost
                                // column loads fresh neurons.
                                for (int r = 0; r < rows; ++r) {
                                    for (int c = 0; c < cols; ++c) {
                                        regs[idx(r, c)] =
                                            c + 1 < cols
                                                ? regs[idx(r, c + 1)]
                                                : load(r, c, i, j);
                                    }
                                }
                            }
                            const Fixed16 synapse =
                                kernels.at(m, n, i, j);
                            ++record.traffic.kernelIn;
                            // The transient draw depends only on the
                            // logical site (m, n, i, j, output
                            // neuron), never on block iteration
                            // order, so injection is replay-identical.
                            const std::uint64_t site_prefix =
                                macFaultsActive_
                                    ? fault::mixKey(
                                          faults_->seed,
                                          ((static_cast<std::uint64_t>(
                                                m) *
                                                spec.inMaps +
                                            n) *
                                               k +
                                           i) *
                                                  k +
                                              j)
                                    : 0;
                            for (int r = 0; r < rows; ++r) {
                                for (int c = 0; c < cols; ++c) {
                                    Fixed16 neuron;
                                    if (stride == 1) {
                                        neuron = regs[idx(r, c)];
                                        // Dataflow self-check: the
                                        // shift network must have
                                        // delivered the right operand.
                                        flexsim_paranoid_assert(
                                            neuron ==
                                                input.at(n, r0 + r + i,
                                                         c0 + c + j),
                                            "2D-Mapping shift network "
                                            "misalignment at block (",
                                            r0, ", ", c0, ")");
                                    } else {
                                        neuron = load(r, c, i, j);
                                    }
                                    Acc prod = mulRaw(neuron, synapse);
                                    if (macFaultsActive_) {
                                        if (!stuckMap_.empty() &&
                                            stuckMap_[idx(r, c)]) {
                                            prod = 0;
                                            ++fault_diag.stuckMacs;
                                        } else if (
                                            fault::transientFires(
                                                site_prefix,
                                                static_cast<
                                                    std::uint64_t>(
                                                    r0 + r) *
                                                        s +
                                                    (c0 + c),
                                                faults_->flipRate)) {
                                            prod ^= static_cast<Acc>(
                                                faults_->flipMask);
                                            ++fault_diag.flippedMacs;
                                        }
                                    }
                                    accs[idx(r, c)] += prod;
                                    ++record.activeMacCycles;
                                    ++record.localStoreReads;
                                    ++record.localStoreWrites;
                                }
                            }
                            ++record.cycles;
                        }
                    }
                }

                for (int r = 0; r < rows; ++r) {
                    for (int c = 0; c < cols; ++c) {
                        output.at(m, r0 + r, c0 + c) =
                            quantizeAcc(accs[idx(r, c)]);
                        ++record.traffic.neuronOut;
                    }
                }
            }
        }
    };

    const int r_blocks = ceilDiv(s, tr);
    const int c_blocks = ceilDiv(s, tc);
    const std::int64_t tiles = static_cast<std::int64_t>(r_blocks) *
                               c_blocks * spec.outMaps;
    const int threads = std::max(1, config_.threads);
    std::vector<LaneState> lanes(std::max<std::int64_t>(
        1, std::min<std::int64_t>(threads, tiles)));
    for (LaneState &ls : lanes) {
        ls.regs.resize(static_cast<std::size_t>(tr) * tc);
        ls.rowStart.resize(ls.regs.size());
        ls.accs.resize(ls.regs.size());
    }
    sim::ThreadPool::CancelFn cancel;
    if (watchdog_) {
        cancel = [wd = watchdog_] { return wd->expired(); };
    }
    sim::ThreadPool::shared().parallelFor(
        tiles, threads,
        [&](int lane, std::int64_t tile) {
            const int m = static_cast<int>(tile % spec.outMaps);
            const std::int64_t blk = tile / spec.outMaps;
            const int c0_blk = static_cast<int>(blk % c_blocks);
            const int r0_blk = static_cast<int>(blk / c_blocks);
            const Cycle before = lanes[lane].rec.cycles;
            run_tile(r0_blk * tr, c0_blk * tc, m, lanes[lane]);
            if (watchdog_) {
                watchdog_->chargeCycles(lanes[lane].rec.cycles -
                                        before);
            }
        },
        cancel);
    if (watchdog_ && watchdog_->expired())
        throw guard::GuardException(
            watchdog_->tripError("sim.mapping2d"));

    for (const LaneState &ls : lanes) {
        total.cycles += ls.rec.cycles;
        total.fillCycles += ls.rec.fillCycles;
        total.activeMacCycles += ls.rec.activeMacCycles;
        total.traffic += ls.rec.traffic;
        total.localStoreReads += ls.rec.localStoreReads;
        total.localStoreWrites += ls.rec.localStoreWrites;
        faultDiag_ += ls.diag;
    }

    total.dram = planDramTraffic(spec, config_.neuronBufWords,
                                 config_.kernelBufWords)
                     .traffic;

    if (result != nullptr)
        *result = total;
    return output;
}

} // namespace flexsim
