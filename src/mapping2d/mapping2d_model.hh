/**
 * @file
 * Analytic timing/traffic model of the 2D-Mapping (SFMNSS) baseline.
 *
 * Schedule (paper Section 3.2): the array computes one Tr x Tc block
 * of one output map at a time, taking N * K * K cycles per block (one
 * synapse broadcast per cycle).  With stride 1 the neighbour-shift
 * network reuses input neurons: a block loads the initial window, one
 * new column per kernel-column step and one new row per kernel-row
 * step; larger strides defeat the shift network and every operand is
 * fetched.
 */

#ifndef FLEXSIM_MAPPING2D_MAPPING2D_MODEL_HH
#define FLEXSIM_MAPPING2D_MAPPING2D_MODEL_HH

#include "arch/accelerator.hh"
#include "mapping2d/mapping2d_config.hh"

namespace flexsim {

class Mapping2DModel : public AcceleratorModel
{
  public:
    explicit Mapping2DModel(Mapping2DConfig config = Mapping2DConfig{});

    std::string name() const override { return "2D-Mapping"; }
    unsigned peCount() const override { return config_.peCount(); }
    LayerResult runLayer(const ConvLayerSpec &spec) const override;

    const Mapping2DConfig &config() const { return config_; }

    /** Neuron loads for one (block, input map) with @p rows x @p cols
     * valid PEs. */
    WordCount blockNeuronLoads(const ConvLayerSpec &spec, int rows,
                               int cols) const;

  private:
    Mapping2DConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_MAPPING2D_MAPPING2D_MODEL_HH
