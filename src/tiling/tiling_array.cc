#include "tiling/tiling_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "common/logging.hh"

namespace flexsim {

TilingArraySim::TilingArraySim(TilingConfig config) : config_(config)
{
    flexsim_assert(config_.tm >= 1 && config_.tn >= 1,
                   "bad tiling configuration");
}

void
TilingArraySim::setFaultPlan(const fault::FaultPlan *plan)
{
    faults_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
    stuckMap_.clear();
    macFaultsActive_ = false;
    if (faults_ == nullptr)
        return;
    stuckMap_.assign(static_cast<std::size_t>(config_.tm) * config_.tn,
                     0);
    for (const fault::PeCoord &pe : faults_->stuckPes) {
        // Coordinates outside the lane grid belong to another
        // geometry (the plan is shared across architectures).
        if (pe.row >= 0 && pe.row < config_.tm && pe.col >= 0 &&
            pe.col < config_.tn) {
            stuckMap_[static_cast<std::size_t>(pe.row) * config_.tn +
                      pe.col] = 1;
            macFaultsActive_ = true;
        }
    }
    if (faults_->flipRate > 0.0)
        macFaultsActive_ = true;
}

Tensor3<>
TilingArraySim::runLayer(const ConvLayerSpec &spec,
                         const Tensor3<> &input, const Tensor4<> &kernels,
                         LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);

    const int tm = config_.tm;
    const int tn = config_.tn;
    const int s = spec.outSize;
    const int k = spec.kernel;
    const int stride = spec.stride;

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    faultDiag_ = fault::FaultDiagnostics{};

    Tensor3<> output(spec.outMaps, s, s);
    std::vector<Acc> accs(tm);
    // The n_valid broadcast neurons of one cycle, loaded once and
    // shared by every output-map lane (they do not depend on mo).
    std::vector<Fixed16> neurons(tn);

    const Fixed16 *in_data = input.data();
    const Fixed16 *k_data = kernels.data();
    const int in_w = spec.inSize;
    const int n_maps = spec.inMaps;

    for (int m0 = 0; m0 < spec.outMaps; m0 += tm) {
        const int m_valid = std::min(tm, spec.outMaps - m0);
        for (int r = 0; r < s; ++r) {
            for (int c = 0; c < s; ++c) {
                std::fill(accs.begin(), accs.begin() + m_valid, Acc{0});
                for (int n0 = 0; n0 < spec.inMaps; n0 += tn) {
                    const int n_valid =
                        std::min(tn, spec.inMaps - n0);
                    for (int i = 0; i < k; ++i) {
                        for (int j = 0; j < k; ++j) {
                            // Broadcast the n_valid input neurons,
                            // shared by all PEs.
                            record.traffic.neuronIn += n_valid;
                            const std::size_t in_off =
                                (static_cast<std::size_t>(n0) * in_w +
                                 r * stride + i) *
                                    in_w +
                                c * stride + j;
                            const std::size_t in_step =
                                static_cast<std::size_t>(in_w) * in_w;
                            for (int no = 0; no < n_valid; ++no)
                                neurons[no] =
                                    in_data[in_off + no * in_step];
                            for (int mo = 0; mo < m_valid; ++mo) {
                                // The PE's adder tree reduces its
                                // n_valid lane products in one cycle.
                                const Fixed16 *k_lane =
                                    k_data +
                                    ((static_cast<std::size_t>(m0 +
                                                               mo) *
                                          n_maps +
                                      n0) *
                                         k +
                                     i) *
                                        k +
                                    j;
                                const std::size_t k_step =
                                    static_cast<std::size_t>(k) * k;
                                Acc lane_sum = 0;
                                if (!macFaultsActive_) {
                                    for (int no = 0; no < n_valid;
                                         ++no) {
                                        lane_sum += mulRaw(
                                            neurons[no],
                                            k_lane[no * k_step]);
                                    }
                                } else {
                                    // The draw depends only on the
                                    // logical site (m, n, i, j,
                                    // output neuron), never on tile
                                    // iteration order, so injection
                                    // is replay-identical.
                                    const std::uint64_t site_prefix =
                                        fault::mixKey(
                                            faults_->seed,
                                            (static_cast<
                                                 std::uint64_t>(m0 +
                                                                mo) *
                                                 k +
                                             i) *
                                                    k +
                                                j);
                                    for (int no = 0; no < n_valid;
                                         ++no) {
                                        Acc prod = mulRaw(
                                            neurons[no],
                                            k_lane[no * k_step]);
                                        if (stuckMap_
                                                [static_cast<
                                                     std::size_t>(
                                                     mo) *
                                                     tn +
                                                 no]) {
                                            prod = 0;
                                            ++faultDiag_.stuckMacs;
                                        } else if (
                                            fault::transientFires(
                                                site_prefix,
                                                (static_cast<
                                                     std::uint64_t>(
                                                     n0 + no) *
                                                     s +
                                                 r) *
                                                        s +
                                                    c,
                                                faults_->flipRate)) {
                                            prod ^= static_cast<Acc>(
                                                faults_->flipMask);
                                            ++faultDiag_.flippedMacs;
                                        }
                                        lane_sum += prod;
                                    }
                                }
                                record.traffic.kernelIn += n_valid;
                                record.activeMacCycles += n_valid;
                                accs[mo] += lane_sum;
                                ++record.localStoreReads;
                                ++record.localStoreWrites;
                            }
                            ++record.cycles;
                        }
                    }
                }
                for (int mo = 0; mo < m_valid; ++mo) {
                    output.at(m0 + mo, r, c) = quantizeAcc(accs[mo]);
                    ++record.traffic.neuronOut;
                }
            }
        }
    }

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;

    if (result != nullptr)
        *result = record;
    return output;
}

} // namespace flexsim
