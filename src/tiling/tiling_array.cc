#include "tiling/tiling_array.hh"

#include <algorithm>
#include <vector>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"
#include "nn/mac_kernels.hh"
#include "sim/thread_pool.hh"

namespace flexsim {

TilingArraySim::TilingArraySim(TilingConfig config) : config_(config)
{
    flexsim_assert(config_.tm >= 1 && config_.tn >= 1,
                   "bad tiling configuration");
}

void
TilingArraySim::setFaultPlan(const fault::FaultPlan *plan)
{
    faults_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
    stuckMap_.clear();
    macFaultsActive_ = false;
    if (faults_ == nullptr)
        return;
    stuckMap_.assign(static_cast<std::size_t>(config_.tm) * config_.tn,
                     0);
    for (const fault::PeCoord &pe : faults_->stuckPes) {
        // Coordinates outside the lane grid belong to another
        // geometry (the plan is shared across architectures).
        if (pe.row >= 0 && pe.row < config_.tm && pe.col >= 0 &&
            pe.col < config_.tn) {
            stuckMap_[static_cast<std::size_t>(pe.row) * config_.tn +
                      pe.col] = 1;
            macFaultsActive_ = true;
        }
    }
    if (faults_->flipRate > 0.0)
        macFaultsActive_ = true;
}

Tensor3<>
TilingArraySim::runLayer(const ConvLayerSpec &spec,
                         const Tensor3<> &input, const Tensor4<> &kernels,
                         LayerResult *result)
{
    spec.validate();
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);

    const int tm = config_.tm;
    const int tn = config_.tn;
    const int s = spec.outSize;
    const int k = spec.kernel;
    const int stride = spec.stride;

    LayerResult total;
    total.layerName = spec.name;
    total.peCount = config_.peCount();
    total.macs = spec.macs();

    faultDiag_ = fault::FaultDiagnostics{};

    Tensor3<> output(spec.outMaps, s, s);

    const Fixed16 *in_data = input.data();
    const Fixed16 *k_data = kernels.data();
    const int in_w = spec.inSize;
    const int n_maps = spec.inMaps;
    const int n_blocks = static_cast<int>(ceilDiv(spec.inMaps, tn));
    const std::size_t in_step = static_cast<std::size_t>(in_w) * in_w;
    const std::size_t k_step = static_cast<std::size_t>(k) * k;

    // Per-(r, c) counter totals are data-independent: every cycle,
    // traffic word, and local-store access below follows from the
    // loop trip counts alone, so they collapse to closed forms shared
    // by the healthy and faulted paths (identical sums, just not
    // re-counted one increment at a time).
    struct LaneState
    {
        std::vector<Acc> accs;
        std::vector<Fixed16> neurons;
        LayerResult rec;
        fault::FaultDiagnostics diag;
    };

    // One tile per (output-map block, output row): tiles own disjoint
    // output slices and fully private accumulators, so they spread
    // freely over the shared pool; the merge below is sum-only and in
    // lane order, keeping results bit-identical at any thread count.
    const auto run_tile = [&](int m0, int r, LaneState &ls) {
        const int m_valid = std::min(tm, spec.outMaps - m0);
        std::vector<Acc> &accs = ls.accs;
        std::vector<Fixed16> &neurons = ls.neurons;
        for (int c = 0; c < s; ++c) {
            std::fill(accs.begin(), accs.begin() + m_valid, Acc{0});
            if (!macFaultsActive_) {
                // Healthy fast path: for each (lane, input map) the
                // kernel row and the input row under it are both
                // contiguous in j, so the innermost k MACs run as one
                // vectorizable dot product.
                for (int n0 = 0; n0 < spec.inMaps; n0 += tn) {
                    const int n_valid =
                        std::min(tn, spec.inMaps - n0);
                    for (int mo = 0; mo < m_valid; ++mo) {
                        Acc lane_sum = 0;
                        for (int no = 0; no < n_valid; ++no) {
                            const Fixed16 *in_row =
                                in_data +
                                static_cast<std::size_t>(n0 + no) *
                                    in_step +
                                static_cast<std::size_t>(r * stride) *
                                    in_w +
                                c * stride;
                            const Fixed16 *k_lane =
                                k_data +
                                (static_cast<std::size_t>(m0 + mo) *
                                     n_maps +
                                 n0 + no) *
                                    k_step;
                            for (int i = 0; i < k; ++i) {
                                lane_sum +=
                                    dotSpan(in_row +
                                                static_cast<
                                                    std::size_t>(i) *
                                                    in_w,
                                            k_lane + i * k, k);
                            }
                        }
                        accs[mo] += lane_sum;
                    }
                }
            } else {
                // Faulty datapath: the original broadcast-order walk,
                // so each draw hashes the same logical site (m, n, i,
                // j, output neuron) as ever — iteration order and
                // thread partition never reach the hash.
                for (int n0 = 0; n0 < spec.inMaps; n0 += tn) {
                    const int n_valid =
                        std::min(tn, spec.inMaps - n0);
                    for (int i = 0; i < k; ++i) {
                        for (int j = 0; j < k; ++j) {
                            const std::size_t in_off =
                                (static_cast<std::size_t>(n0) * in_w +
                                 r * stride + i) *
                                    in_w +
                                c * stride + j;
                            for (int no = 0; no < n_valid; ++no)
                                neurons[no] =
                                    in_data[in_off + no * in_step];
                            for (int mo = 0; mo < m_valid; ++mo) {
                                const Fixed16 *k_lane =
                                    k_data +
                                    ((static_cast<std::size_t>(m0 +
                                                               mo) *
                                          n_maps +
                                      n0) *
                                         k +
                                     i) *
                                        k +
                                    j;
                                const std::uint64_t site_prefix =
                                    fault::mixKey(
                                        faults_->seed,
                                        (static_cast<
                                             std::uint64_t>(m0 + mo) *
                                             k +
                                         i) *
                                                k +
                                            j);
                                Acc lane_sum = 0;
                                for (int no = 0; no < n_valid;
                                     ++no) {
                                    Acc prod = mulRaw(
                                        neurons[no],
                                        k_lane[no * k_step]);
                                    if (stuckMap_
                                            [static_cast<
                                                 std::size_t>(mo) *
                                                 tn +
                                             no]) {
                                        prod = 0;
                                        ++ls.diag.stuckMacs;
                                    } else if (
                                        fault::transientFires(
                                            site_prefix,
                                            (static_cast<
                                                 std::uint64_t>(n0 +
                                                                no) *
                                                 s +
                                             r) *
                                                    s +
                                                c,
                                            faults_->flipRate)) {
                                        prod ^= static_cast<Acc>(
                                            faults_->flipMask);
                                        ++ls.diag.flippedMacs;
                                    }
                                    lane_sum += prod;
                                }
                                accs[mo] += lane_sum;
                            }
                        }
                    }
                }
            }

            // Counter closed forms for this (r, c) position: one
            // broadcast of n_valid neurons and one cycle per (input
            // block, synapse), each lane latching n_valid kernel
            // words and folding n_valid products per cycle.
            ls.rec.traffic.neuronIn +=
                static_cast<WordCount>(spec.inMaps) * k * k;
            ls.rec.cycles += static_cast<Cycle>(n_blocks) * k * k;
            ls.rec.traffic.kernelIn +=
                static_cast<WordCount>(m_valid) * spec.inMaps * k * k;
            ls.rec.activeMacCycles +=
                static_cast<WordCount>(m_valid) * spec.inMaps * k * k;
            ls.rec.localStoreReads +=
                static_cast<WordCount>(m_valid) * n_blocks * k * k;
            ls.rec.localStoreWrites +=
                static_cast<WordCount>(m_valid) * n_blocks * k * k;

            for (int mo = 0; mo < m_valid; ++mo) {
                output.at(m0 + mo, r, c) = quantizeAcc(accs[mo]);
            }
            ls.rec.traffic.neuronOut +=
                static_cast<WordCount>(m_valid);
        }
    };

    const int m_blocks = static_cast<int>(ceilDiv(spec.outMaps, tm));
    const std::int64_t tiles =
        static_cast<std::int64_t>(m_blocks) * s;
    const int threads = std::max(1, config_.threads);
    std::vector<LaneState> lanes(std::max<std::int64_t>(
        1, std::min<std::int64_t>(threads, tiles)));
    for (LaneState &ls : lanes) {
        ls.accs.resize(tm);
        ls.neurons.resize(tn);
    }
    sim::ThreadPool::CancelFn cancel;
    if (watchdog_) {
        cancel = [wd = watchdog_] { return wd->expired(); };
    }
    sim::ThreadPool::shared().parallelFor(
        tiles, threads,
        [&](int lane, std::int64_t tile) {
            const int r = static_cast<int>(tile % s);
            const int m0 = static_cast<int>(tile / s) * tm;
            const Cycle before = lanes[lane].rec.cycles;
            run_tile(m0, r, lanes[lane]);
            if (watchdog_) {
                watchdog_->chargeCycles(lanes[lane].rec.cycles -
                                        before);
            }
        },
        cancel);
    if (watchdog_ && watchdog_->expired())
        throw guard::GuardException(watchdog_->tripError("sim.tiling"));

    for (const LaneState &ls : lanes) {
        total.cycles += ls.rec.cycles;
        total.activeMacCycles += ls.rec.activeMacCycles;
        total.traffic += ls.rec.traffic;
        total.localStoreReads += ls.rec.localStoreReads;
        total.localStoreWrites += ls.rec.localStoreWrites;
        faultDiag_ += ls.diag;
    }

    total.dram = planDramTraffic(spec, config_.neuronBufWords,
                                 config_.kernelBufWords)
                     .traffic;

    if (result != nullptr)
        *result = total;
    return output;
}

} // namespace flexsim
