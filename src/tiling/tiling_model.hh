/**
 * @file
 * Analytic timing/traffic model of the Tiling (MFSNSS) baseline.
 *
 * Schedule (paper Section 3.3): per cycle, Tn input neurons and
 * Tm x Tn synapses are loaded; each PE sums its Tn products into one
 * output neuron, switching neurons every K*K cycles.  Input-map groups
 * accumulate inside the PE, so no partial sums leave the engine.
 */

#ifndef FLEXSIM_TILING_TILING_MODEL_HH
#define FLEXSIM_TILING_TILING_MODEL_HH

#include "arch/accelerator.hh"
#include "tiling/tiling_config.hh"

namespace flexsim {

class TilingModel : public AcceleratorModel
{
  public:
    explicit TilingModel(TilingConfig config = TilingConfig{});

    std::string name() const override { return "Tiling"; }
    unsigned peCount() const override { return config_.peCount(); }
    LayerResult runLayer(const ConvLayerSpec &spec) const override;

    const TilingConfig &config() const { return config_; }

  private:
    TilingConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_TILING_TILING_MODEL_HH
