/**
 * @file
 * Configuration of the Tiling (MFSNSS) baseline.
 *
 * A DianNao-style engine: Tm PEs, each with Tn multipliers and an
 * adder tree, computing one neuron position of Tm output maps from Tn
 * input maps per cycle.  There is no local storage, so synapses are
 * re-fetched every cycle (the paper's "poorest data sharing").
 */

#ifndef FLEXSIM_TILING_TILING_CONFIG_HH
#define FLEXSIM_TILING_TILING_CONFIG_HH

#include <cstddef>

namespace flexsim {

struct TilingConfig
{
    int tm = 16; ///< output feature maps in parallel
    int tn = 16; ///< input feature maps in parallel
    std::size_t neuronBufWords = 16 * 1024; ///< 32 KiB
    std::size_t kernelBufWords = 16 * 1024; ///< 32 KiB
    /** Host worker threads simulating (map-block, output-row) tiles
     * in parallel on the shared sim::ThreadPool (simulation
     * throughput only — results are bit-identical for any value). */
    int threads = 1;

    unsigned
    peCount() const
    {
        return static_cast<unsigned>(tm) * tn;
    }

    /** Tm = Tn = D, the paper's 16x16 configuration. */
    static TilingConfig
    forScale(unsigned d)
    {
        TilingConfig config;
        config.tm = static_cast<int>(d);
        config.tn = static_cast<int>(d);
        return config;
    }
};

} // namespace flexsim

#endif // FLEXSIM_TILING_TILING_CONFIG_HH
