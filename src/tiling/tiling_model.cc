#include "tiling/tiling_model.hh"

#include <algorithm>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

TilingModel::TilingModel(TilingConfig config) : config_(config)
{
    flexsim_assert(config_.tm >= 1 && config_.tn >= 1,
                   "bad tiling configuration");
}

LayerResult
TilingModel::runLayer(const ConvLayerSpec &spec) const
{
    spec.validate();
    const long long map_groups = ceilDiv(spec.outMaps, config_.tm);
    const long long in_groups = ceilDiv(spec.inMaps, config_.tn);
    const long long positions =
        static_cast<long long>(spec.outSize) * spec.outSize;
    const long long kk =
        static_cast<long long>(spec.kernel) * spec.kernel;

    LayerResult result;
    result.layerName = spec.name;
    result.peCount = config_.peCount();
    result.macs = spec.macs();
    result.activeMacCycles = result.macs;
    result.cycles = static_cast<Cycle>(map_groups) * in_groups *
                    positions * kk;

    // Per cycle the engine loads the valid input-lane neurons (shared
    // across PEs) and one private synapse per valid (m, n) lane.
    result.traffic.neuronIn = static_cast<WordCount>(map_groups) *
                              positions * kk * spec.inMaps;
    result.traffic.kernelIn = result.macs;
    result.traffic.neuronOut = spec.outputWords();

    // The only storage is the per-PE accumulator register, read and
    // written once per cycle by each valid output lane.
    result.localStoreReads = static_cast<WordCount>(spec.outMaps) *
                             in_groups * positions * kk;
    result.localStoreWrites = result.localStoreReads;

    result.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;
    return result;
}

} // namespace flexsim
