/**
 * @file
 * Cycle-level data simulator of the Tiling (MFSNSS) baseline.
 *
 * Per cycle: Tn input neurons are broadcast, each of the Tm PEs
 * fetches its Tn private synapses, multiplies, reduces through its
 * adder tree, and accumulates into its current output neuron.
 * Outputs are bit-exact against goldenConv(); cycles and traffic match
 * TilingModel exactly.
 */

#ifndef FLEXSIM_TILING_TILING_ARRAY_HH
#define FLEXSIM_TILING_TILING_ARRAY_HH

#include "arch/result.hh"
#include "fault/fault_plan.hh"
#include "guard/watchdog.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "tiling/tiling_config.hh"

namespace flexsim {

class TilingArraySim
{
  public:
    explicit TilingArraySim(TilingConfig config = TilingConfig{});

    /** Execute one CONV layer cycle by cycle; see SystolicArraySim. */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const Tensor3<> &input,
                       const Tensor4<> &kernels,
                       LayerResult *result = nullptr);

    const TilingConfig &config() const { return config_; }

    /**
     * Attach a fault plan (must outlive the simulator; nullptr or an
     * empty plan restores the healthy fast path).  Stuck/transient
     * MAC faults apply at lane coordinates (output-map lane mo,
     * input lane no) in [0, tm) x [0, tn); geometry faults are
     * modelled at the capacity level by fault::degradeLineCover, not
     * by this data simulator.
     */
    void setFaultPlan(const fault::FaultPlan *plan);

    /** Attach a per-layer execution watchdog; see
     * SystolicArraySim::setWatchdog (DESIGN.md §3.7). */
    void setWatchdog(const guard::Watchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

    /** Fault activity of the last runLayer(). */
    const fault::FaultDiagnostics &faultDiagnostics() const
    {
        return faultDiag_;
    }

  private:
    TilingConfig config_;

    const fault::FaultPlan *faults_ = nullptr;
    /** Stuck-at-zero map over the tm x tn lanes (empty = none). */
    std::vector<std::uint8_t> stuckMap_;
    bool macFaultsActive_ = false;
    fault::FaultDiagnostics faultDiag_;
    const guard::Watchdog *watchdog_ = nullptr;
};

} // namespace flexsim

#endif // FLEXSIM_TILING_TILING_ARRAY_HH
