/**
 * @file
 * Cycle-level data simulator of the Tiling (MFSNSS) baseline.
 *
 * Per cycle: Tn input neurons are broadcast, each of the Tm PEs
 * fetches its Tn private synapses, multiplies, reduces through its
 * adder tree, and accumulates into its current output neuron.
 * Outputs are bit-exact against goldenConv(); cycles and traffic match
 * TilingModel exactly.
 */

#ifndef FLEXSIM_TILING_TILING_ARRAY_HH
#define FLEXSIM_TILING_TILING_ARRAY_HH

#include "arch/result.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "tiling/tiling_config.hh"

namespace flexsim {

class TilingArraySim
{
  public:
    explicit TilingArraySim(TilingConfig config = TilingConfig{});

    /** Execute one CONV layer cycle by cycle; see SystolicArraySim. */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const Tensor3<> &input,
                       const Tensor4<> &kernels,
                       LayerResult *result = nullptr);

    const TilingConfig &config() const { return config_; }

  private:
    TilingConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_TILING_TILING_ARRAY_HH
