/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is a pure description of what is broken: dead PE
 * rows/columns and individual PEs, stuck-at-zero or transiently
 * flipping MAC datapaths, neuron/kernel buffer bit flips (silent or
 * parity-detected), a slowed DRAM channel, and timed accelerator-level
 * fail-stop / slowdown / recover events for the serving runtime.
 *
 * Every stochastic decision (does MAC site X flip?) is a pure hash of
 * (plan seed, logical site key) — never of execution order — so any
 * thread count, chunking, or replay produces bit-identical faults.
 * An empty plan must leave every consumer on its zero-fault fast path.
 */

#ifndef FLEXSIM_FAULT_FAULT_PLAN_HH
#define FLEXSIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "guard/error.hh"

namespace flexsim {
namespace fault {

/** Virtual nanoseconds (matches serve::TimeNs). */
using TimeNs = std::uint64_t;

/** Physical PE coordinate in a D x D array. */
struct PeCoord
{
    int row = 0;
    int col = 0;

    bool operator==(const PeCoord &) const = default;
};

/** One stuck bit in an on-chip operand buffer. */
struct BufferFault
{
    enum class Target { Neuron, Kernel };

    Target target = Target::Neuron;
    /** Word index into the flattened tensor (wrapped modulo size). */
    std::uint64_t word = 0;
    /** Bit position within the 16-bit word, [0, 16). */
    int bit = 0;

    bool operator==(const BufferFault &) const = default;
};

/** A timed accelerator-level event for the serving runtime. */
struct AccelEvent
{
    enum class Kind { FailStop, Slowdown, Recover };

    Kind kind = Kind::FailStop;
    /** Pool index of the affected accelerator instance. */
    unsigned accel = 0;
    /** Virtual time the event fires. */
    TimeNs atNs = 0;
    /** Service-time multiplier (Slowdown only; >= 1). */
    double factor = 1.0;

    bool operator==(const AccelEvent &) const = default;
};

/** A seeded, immutable description of injected faults. */
struct FaultPlan
{
    /** Seed for every per-site stochastic draw. */
    std::uint64_t seed = 1;

    // --- PE array -----------------------------------------------------
    /** Physical rows disabled outright. */
    std::vector<int> deadRows;
    /** Physical columns disabled outright. */
    std::vector<int> deadCols;
    /** Individually dead PEs (remapped around via line cover). */
    std::vector<PeCoord> deadPes;
    /** PEs whose multiplier output is stuck at zero. */
    std::vector<PeCoord> stuckPes;
    /** Per-MAC probability a product is XOR-ed with flipMask. */
    double flipRate = 0.0;
    /** Bits flipped in a transiently faulty product. */
    std::uint64_t flipMask = 1;

    // --- operand buffers ----------------------------------------------
    std::vector<BufferFault> bufferFaults;
    /** Detect buffer faults by parity and scrub instead of corrupting. */
    bool parityDetect = false;

    // --- memory system ------------------------------------------------
    /** DRAM-channel service-time multiplier (>= 1). */
    double dramSlowdown = 1.0;

    // --- serving-level events -----------------------------------------
    std::vector<AccelEvent> accelEvents;

    /** Any dead/stuck/flipping PE datapath? */
    bool affectsArray() const;
    /** Any dead line or PE forcing a degraded geometry? */
    bool affectsGeometry() const;
    /** Any stuck/flip MAC fault (dataflow corruption)? */
    bool affectsMacs() const;
    /** Any buffer bit fault? */
    bool affectsBuffers() const;
    /** No fault of any kind (consumers must take the fast path). */
    bool empty() const;

    /** Abort with a diagnostic if the plan is out of range for a
     * D x D array or internally inconsistent. */
    void validate(int d) const;

    /** Typed validation against a D x D array: the guarded form of
     * validate() for plans built from untrusted specifications. */
    guard::Expected<void> check(int d) const;
};

/** Fault-activity counters, merged deterministically across threads. */
struct FaultDiagnostics
{
    /** MAC products forced to zero by stuck-at PEs. */
    std::uint64_t stuckMacs = 0;
    /** MAC products XOR-ed by transient flips. */
    std::uint64_t flippedMacs = 0;
    /** Buffer words corrupted silently (no parity). */
    std::uint64_t corruptedWords = 0;
    /** Buffer faults caught by parity checking. */
    std::uint64_t paritiesDetected = 0;
    /** Words re-fetched from DRAM to scrub detected faults. */
    std::uint64_t scrubbedWords = 0;

    FaultDiagnostics &
    operator+=(const FaultDiagnostics &other)
    {
        stuckMacs += other.stuckMacs;
        flippedMacs += other.flippedMacs;
        corruptedWords += other.corruptedWords;
        paritiesDetected += other.paritiesDetected;
        scrubbedWords += other.scrubbedWords;
        return *this;
    }

    bool operator==(const FaultDiagnostics &) const = default;
};

/** SplitMix64-style mix of two keys into one site prefix. */
std::uint64_t mixKey(std::uint64_t a, std::uint64_t b);

/**
 * Deterministic Bernoulli draw for one MAC site.
 *
 * Pure function of (prefix, site, rate): equal inputs fire equally in
 * every run, thread, and chunking, which is what makes transient
 * faults reproducible.
 */
bool transientFires(std::uint64_t prefix, std::uint64_t site,
                    double rate);

/** Parse "50ms" / "2us" / "1s" / "250ns" into nanoseconds. */
std::optional<TimeNs> parseTimeNs(const std::string &text);

/**
 * Parse a --faults specification into a plan; fatal() on bad syntax.
 *
 * Grammar: semicolon-separated clauses
 *   seed=S            draw seed (default 1)
 *   deadrow=R[,R...]  disable physical rows
 *   deadcol=C[,C...]  disable physical columns
 *   deadpe=R.C        disable one PE (repeatable)
 *   stuck=R.C         stuck-at-zero MAC at PE (repeatable)
 *   flip=RATE[:MASK]  transient product flips at RATE with XOR MASK
 *   bufflip=neuron|kernel:WORD:BIT   operand-buffer bit fault
 *   parity            detect buffer faults by parity + scrub
 *   dramslow=F        DRAM-channel slowdown factor (>= 1)
 *   failstop=A@T      accelerator A fail-stops at time T
 *   slowdown=A@T*F    accelerator A slows by F at time T
 *   recover=A@T       accelerator A recovers at time T
 */
FaultPlan parseFaultSpec(const std::string &spec);

/** Guarded parseFaultSpec: a typed Parse error instead of fatal(). */
guard::Expected<FaultPlan> tryParseFaultSpec(const std::string &spec);

/**
 * Parse a --fault-trace file: one event per line,
 * "<time> failstop|slowdown|recover <accel> [factor]", '#' comments.
 */
std::vector<AccelEvent> parseFaultTrace(const std::string &text);

/** Guarded parseFaultTrace: a typed Parse error instead of fatal(). */
guard::Expected<std::vector<AccelEvent>>
tryParseFaultTrace(const std::string &text);

} // namespace fault
} // namespace flexsim

#endif // FLEXSIM_FAULT_FAULT_PLAN_HH
