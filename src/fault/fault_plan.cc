#include "fault/fault_plan.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flexsim {
namespace fault {

namespace {

/** SplitMix64 finalizer: full-avalanche 64-bit hash. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

bool
FaultPlan::affectsGeometry() const
{
    return !deadRows.empty() || !deadCols.empty() || !deadPes.empty();
}

bool
FaultPlan::affectsMacs() const
{
    return !stuckPes.empty() || flipRate > 0.0;
}

bool
FaultPlan::affectsArray() const
{
    return affectsGeometry() || affectsMacs();
}

bool
FaultPlan::affectsBuffers() const
{
    return !bufferFaults.empty();
}

bool
FaultPlan::empty() const
{
    return !affectsArray() && !affectsBuffers() &&
           dramSlowdown == 1.0 && accelEvents.empty();
}

void
FaultPlan::validate(int d) const
{
    if (auto valid = check(d); !valid)
        fatal(valid.error().str());
}

guard::Expected<void>
FaultPlan::check(int d) const
{
    using guard::Category;
    const auto reject = [](Category category, const auto &...parts) {
        return guard::makeError(category, "fault.plan", parts...);
    };
    if (d < 1) {
        return reject(Category::InvalidArgument,
                      "fault plan needs a positive array edge, got ",
                      d);
    }
    for (int r : deadRows) {
        if (r < 0 || r >= d) {
            return reject(Category::OutOfRange, "dead row ", r,
                          " outside array edge ", d);
        }
    }
    for (int c : deadCols) {
        if (c < 0 || c >= d) {
            return reject(Category::OutOfRange, "dead column ", c,
                          " outside array edge ", d);
        }
    }
    for (const PeCoord &pe : deadPes) {
        if (pe.row < 0 || pe.row >= d || pe.col < 0 || pe.col >= d) {
            return reject(Category::OutOfRange, "dead PE (", pe.row,
                          ",", pe.col, ") outside array edge ", d);
        }
    }
    for (const PeCoord &pe : stuckPes) {
        if (pe.row < 0 || pe.row >= d || pe.col < 0 || pe.col >= d) {
            return reject(Category::OutOfRange, "stuck PE (", pe.row,
                          ",", pe.col, ") outside array edge ", d);
        }
    }
    if (!(flipRate >= 0.0 && flipRate <= 1.0)) {
        return reject(Category::InvalidArgument, "flip rate ",
                      flipRate, " outside [0, 1]");
    }
    for (const BufferFault &f : bufferFaults) {
        if (f.bit < 0 || f.bit >= 16) {
            return reject(Category::OutOfRange, "buffer fault bit ",
                          f.bit, " outside a 16-bit word");
        }
    }
    if (!(dramSlowdown >= 1.0)) {
        return reject(Category::InvalidArgument, "DRAM slowdown ",
                      dramSlowdown, " must be >= 1");
    }
    for (const AccelEvent &e : accelEvents) {
        if (e.kind == AccelEvent::Kind::Slowdown && !(e.factor >= 1.0)) {
            return reject(Category::InvalidArgument,
                          "slowdown factor ", e.factor,
                          " must be >= 1");
        }
    }
    return guard::ok();
}

std::uint64_t
mixKey(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ mix64(b));
}

bool
transientFires(std::uint64_t prefix, std::uint64_t site, double rate)
{
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    const std::uint64_t draw = mix64(prefix ^ mix64(site));
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(draw >> 11) * 0x1.0p-53;
    return u < rate;
}

std::optional<TimeNs>
parseTimeNs(const std::string &text)
{
    double scale = 0.0;
    std::string digits;
    auto ends_with = [&](const char *suffix) {
        const std::size_t n = std::string(suffix).size();
        return text.size() > n &&
               text.compare(text.size() - n, n, suffix) == 0;
    };
    if (ends_with("ns")) {
        scale = 1.0;
        digits = text.substr(0, text.size() - 2);
    } else if (ends_with("us")) {
        scale = 1e3;
        digits = text.substr(0, text.size() - 2);
    } else if (ends_with("ms")) {
        scale = 1e6;
        digits = text.substr(0, text.size() - 2);
    } else if (text.size() > 1 && text.back() == 's') {
        scale = 1e9;
        digits = text.substr(0, text.size() - 1);
    } else {
        // Bare numbers are nanoseconds.
        scale = 1.0;
        digits = text;
    }
    try {
        std::size_t used = 0;
        const double value = std::stod(digits, &used);
        if (used != digits.size() || value < 0.0)
            return std::nullopt;
        return static_cast<TimeNs>(value * scale);
    } catch (...) {
        return std::nullopt;
    }
}

namespace {

// The parse helpers below throw GuardException rather than return
// Expected so the clause-dispatch code stays linear; tryParseFaultSpec
// and tryParseFaultTrace convert the exception back into a typed
// error at the boundary (guard::invoke), and the legacy entry points
// into a fatal().

[[noreturn]] void
rejectSyntax(const std::string &message)
{
    throw guard::GuardException(guard::makeError(
        guard::Category::Parse, "fault.parse", message));
}

int
parseInt(const std::string &text, const char *what)
{
    try {
        std::size_t used = 0;
        const int value = std::stoi(text, &used);
        if (used == text.size())
            return value;
    } catch (const guard::GuardException &) {
        throw;
    } catch (...) {
    }
    rejectSyntax("fault spec: bad " + std::string(what) + " '" + text +
                 "'");
}

double
parseDouble(const std::string &text, const char *what)
{
    try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used == text.size())
            return value;
    } catch (const guard::GuardException &) {
        throw;
    } catch (...) {
    }
    rejectSyntax("fault spec: bad " + std::string(what) + " '" + text +
                 "'");
}

PeCoord
parsePe(const std::string &text, const char *what)
{
    const auto dot = text.find('.');
    if (dot == std::string::npos) {
        rejectSyntax("fault spec: " + std::string(what) +
                     " wants ROW.COL, got '" + text + "'");
    }
    PeCoord pe;
    pe.row = parseInt(text.substr(0, dot), what);
    pe.col = parseInt(text.substr(dot + 1), what);
    return pe;
}

TimeNs
parseEventTime(const std::string &text, const char *what)
{
    const auto parsed = parseTimeNs(text);
    if (!parsed) {
        rejectSyntax("fault spec: bad " + std::string(what) +
                     " time '" + text + "'");
    }
    return *parsed;
}

/** "A@T" or "A@T*F" -> (accel, time, factor). */
AccelEvent
parseEvent(const std::string &text, AccelEvent::Kind kind,
           const char *what)
{
    AccelEvent event;
    event.kind = kind;
    const auto at = text.find('@');
    if (at == std::string::npos) {
        rejectSyntax("fault spec: " + std::string(what) +
                     " wants ACCEL@TIME, got '" + text + "'");
    }
    event.accel = static_cast<unsigned>(
        parseInt(text.substr(0, at), what));
    std::string when = text.substr(at + 1);
    if (kind == AccelEvent::Kind::Slowdown) {
        const auto star = when.find('*');
        if (star == std::string::npos) {
            rejectSyntax("fault spec: slowdown wants "
                         "ACCEL@TIME*FACTOR, got '" +
                         text + "'");
        }
        event.factor = parseDouble(when.substr(star + 1), what);
        when = when.substr(0, star);
    }
    event.atNs = parseEventTime(when, what);
    return event;
}

} // namespace

namespace {

/** Core of the spec grammar; throws GuardException on bad syntax. */
FaultPlan
parseFaultSpecImpl(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &raw : split(spec, ';')) {
        const std::string clause = trim(raw);
        if (clause.empty())
            continue;
        const auto eq = clause.find('=');
        const std::string key =
            toLower(eq == std::string::npos ? clause
                                            : clause.substr(0, eq));
        const std::string value =
            eq == std::string::npos ? "" : trim(clause.substr(eq + 1));
        if (key == "seed") {
            plan.seed = static_cast<std::uint64_t>(
                parseDouble(value, "seed"));
        } else if (key == "deadrow") {
            for (const std::string &r : split(value, ','))
                plan.deadRows.push_back(parseInt(trim(r), "deadrow"));
        } else if (key == "deadcol") {
            for (const std::string &c : split(value, ','))
                plan.deadCols.push_back(parseInt(trim(c), "deadcol"));
        } else if (key == "deadpe") {
            plan.deadPes.push_back(parsePe(value, "deadpe"));
        } else if (key == "stuck") {
            plan.stuckPes.push_back(parsePe(value, "stuck"));
        } else if (key == "flip") {
            const auto colon = value.find(':');
            plan.flipRate = parseDouble(
                colon == std::string::npos ? value
                                           : value.substr(0, colon),
                "flip rate");
            if (colon != std::string::npos) {
                plan.flipMask = static_cast<std::uint64_t>(
                    parseDouble(value.substr(colon + 1), "flip mask"));
            }
        } else if (key == "bufflip") {
            const auto parts = split(value, ':');
            if (parts.size() != 3) {
                rejectSyntax("fault spec: bufflip wants "
                             "neuron|kernel:WORD:BIT, got '" +
                             value + "'");
            }
            BufferFault f;
            const std::string target = toLower(trim(parts[0]));
            if (target == "neuron") {
                f.target = BufferFault::Target::Neuron;
            } else if (target == "kernel") {
                f.target = BufferFault::Target::Kernel;
            } else {
                rejectSyntax("fault spec: bufflip target must be "
                             "neuron or kernel, got '" +
                             parts[0] + "'");
            }
            f.word = static_cast<std::uint64_t>(
                parseDouble(trim(parts[1]), "bufflip word"));
            f.bit = parseInt(trim(parts[2]), "bufflip bit");
            plan.bufferFaults.push_back(f);
        } else if (key == "parity") {
            plan.parityDetect = true;
        } else if (key == "dramslow") {
            plan.dramSlowdown = parseDouble(value, "dramslow");
        } else if (key == "failstop") {
            plan.accelEvents.push_back(parseEvent(
                value, AccelEvent::Kind::FailStop, "failstop"));
        } else if (key == "slowdown") {
            plan.accelEvents.push_back(parseEvent(
                value, AccelEvent::Kind::Slowdown, "slowdown"));
        } else if (key == "recover") {
            plan.accelEvents.push_back(parseEvent(
                value, AccelEvent::Kind::Recover, "recover"));
        } else {
            rejectSyntax("fault spec: unknown clause '" + clause +
                         "'");
        }
    }
    return plan;
}

/** Core of the trace grammar; throws GuardException on bad syntax. */
std::vector<AccelEvent>
parseFaultTraceImpl(const std::string &text)
{
    std::vector<AccelEvent> events;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw);
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = trim(line.substr(0, hash));
        if (line.empty())
            continue;
        const std::vector<std::string> fields = splitWhitespace(line);
        const std::string where =
            "fault trace line " + std::to_string(line_no);
        if (fields.size() < 3) {
            rejectSyntax(where +
                         ": want '<time> <event> <accel> [factor]'");
        }
        AccelEvent event;
        event.atNs = parseEventTime(fields[0], "trace");
        const std::string kind = toLower(fields[1]);
        if (kind == "failstop") {
            event.kind = AccelEvent::Kind::FailStop;
        } else if (kind == "slowdown") {
            event.kind = AccelEvent::Kind::Slowdown;
            if (fields.size() < 4)
                rejectSyntax(where + ": slowdown needs a factor");
            event.factor = parseDouble(fields[3], "trace factor");
        } else if (kind == "recover") {
            event.kind = AccelEvent::Kind::Recover;
        } else {
            rejectSyntax(where + ": unknown event '" + fields[1] +
                         "'");
        }
        event.accel =
            static_cast<unsigned>(parseInt(fields[2], "trace accel"));
        events.push_back(event);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const AccelEvent &a, const AccelEvent &b) {
                         return a.atNs < b.atNs;
                     });
    return events;
}

} // namespace

FaultPlan
parseFaultSpec(const std::string &spec)
{
    auto plan = tryParseFaultSpec(spec);
    if (!plan)
        fatal(plan.error().str());
    return plan.value();
}

guard::Expected<FaultPlan>
tryParseFaultSpec(const std::string &spec)
{
    return guard::invoke([&] { return parseFaultSpecImpl(spec); });
}

std::vector<AccelEvent>
parseFaultTrace(const std::string &text)
{
    auto events = tryParseFaultTrace(text);
    if (!events)
        fatal(events.error().str());
    return events.value();
}

guard::Expected<std::vector<AccelEvent>>
tryParseFaultTrace(const std::string &text)
{
    return guard::invoke([&] { return parseFaultTraceImpl(text); });
}

} // namespace fault
} // namespace flexsim
