/**
 * @file
 * Degraded-mode geometry: what usable engine survives a fault plan.
 *
 * Each architecture has a different remapping story, which is the
 * heart of the paper's flexibility claim:
 *
 *  - FlexFlow rows and columns are independent (RA/RS decouple the
 *    two axes), so a dead PE only costs one row OR one column; a
 *    greedy line cover keeps the rest of the grid usable and the
 *    factor search re-optimizes for the surviving rows x cols.
 *  - A systolic array chains operands PE-to-PE, so only a clean
 *    top-left square still streams; one awkward dead PE can halve
 *    the usable edge (the cliff).
 *  - The 2D-mapping array moves neurons between neighbours, so the
 *    survivor must be a contiguous all-healthy rectangle.
 *  - The tiling array broadcasts along rows and columns with no
 *    inter-PE links, so it also takes a line cover, but its rigid
 *    Tm x Tn mapping cannot re-balance around the loss.
 */

#ifndef FLEXSIM_FAULT_DEGRADE_HH
#define FLEXSIM_FAULT_DEGRADE_HH

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hh"

namespace flexsim {
namespace fault {

/** Liveness bitmap of a rows x cols PE grid. */
struct ArrayAvailability
{
    int rows = 0;
    int cols = 0;
    /** Row-major liveness; 1 = healthy. */
    std::vector<std::uint8_t> alive;

    ArrayAvailability() = default;
    ArrayAvailability(int rows, int cols);

    /** Apply a plan's dead rows/columns/PEs to a d x d grid. */
    static ArrayAvailability fromPlan(const FaultPlan &plan, int d);

    /** Seeded Bernoulli PE kill at @p fraction (for sweeps). */
    void killRandomPes(double fraction, std::uint64_t seed);

    bool
    aliveAt(int r, int c) const
    {
        return alive[static_cast<std::size_t>(r) * cols + c] != 0;
    }

    void
    kill(int r, int c)
    {
        alive[static_cast<std::size_t>(r) * cols + c] = 0;
    }

    int aliveCount() const;
    bool fullyAlive() const;
};

/** The usable sub-engine an architecture salvages from a faulty grid. */
struct DegradedGeometry
{
    /** Usable logical rows / columns (0 x 0 = engine unusable). */
    int rows = 0;
    int cols = 0;
    /** Logical index -> surviving physical row / column. */
    std::vector<int> physRows;
    std::vector<int> physCols;

    long long
    pes() const
    {
        return static_cast<long long>(rows) * cols;
    }
};

/**
 * FlexFlow / tiling policy: greedy minimal row-or-column cover of the
 * dead PEs; every uncovered line survives.  Deterministic: ties pick
 * the lowest-index row before the lowest-index column.
 */
DegradedGeometry degradeLineCover(const ArrayAvailability &avail);

/** Systolic policy: the largest all-healthy top-left square. */
DegradedGeometry degradeTopLeftSquare(const ArrayAvailability &avail);

/** 2D-mapping policy: the largest all-healthy contiguous rectangle. */
DegradedGeometry degradeMaxRectangle(const ArrayAvailability &avail);

} // namespace fault
} // namespace flexsim

#endif // FLEXSIM_FAULT_DEGRADE_HH
