#include "fault/degrade.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexsim {
namespace fault {

ArrayAvailability::ArrayAvailability(int rows, int cols)
    : rows(rows), cols(cols),
      alive(static_cast<std::size_t>(rows) * cols, 1)
{
    flexsim_assert(rows >= 1 && cols >= 1,
                   "availability grid needs positive dimensions");
}

ArrayAvailability
ArrayAvailability::fromPlan(const FaultPlan &plan, int d)
{
    plan.validate(d);
    ArrayAvailability avail(d, d);
    for (int r : plan.deadRows) {
        for (int c = 0; c < d; ++c)
            avail.kill(r, c);
    }
    for (int c : plan.deadCols) {
        for (int r = 0; r < d; ++r)
            avail.kill(r, c);
    }
    for (const PeCoord &pe : plan.deadPes)
        avail.kill(pe.row, pe.col);
    return avail;
}

void
ArrayAvailability::killRandomPes(double fraction, std::uint64_t seed)
{
    flexsim_assert(fraction >= 0.0 && fraction <= 1.0,
                   "dead-PE fraction ", fraction, " outside [0, 1]");
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const std::uint64_t site =
                static_cast<std::uint64_t>(r) * cols + c;
            if (transientFires(mixKey(seed, 0xdeadfe5ull), site,
                               fraction))
                kill(r, c);
        }
    }
}

int
ArrayAvailability::aliveCount() const
{
    int count = 0;
    for (std::uint8_t a : alive)
        count += a;
    return count;
}

bool
ArrayAvailability::fullyAlive() const
{
    return aliveCount() == rows * cols;
}

DegradedGeometry
degradeLineCover(const ArrayAvailability &avail)
{
    std::vector<std::uint8_t> row_dead(avail.rows, 0);
    std::vector<std::uint8_t> col_dead(avail.cols, 0);
    // Greedy set cover over lines: repeatedly disable the row or
    // column holding the most not-yet-covered dead PEs.
    while (true) {
        std::vector<int> row_count(avail.rows, 0);
        std::vector<int> col_count(avail.cols, 0);
        int uncovered = 0;
        for (int r = 0; r < avail.rows; ++r) {
            if (row_dead[r])
                continue;
            for (int c = 0; c < avail.cols; ++c) {
                if (col_dead[c] || avail.aliveAt(r, c))
                    continue;
                ++row_count[r];
                ++col_count[c];
                ++uncovered;
            }
        }
        if (uncovered == 0)
            break;
        int best_row = 0, best_col = 0;
        for (int r = 1; r < avail.rows; ++r) {
            if (row_count[r] > row_count[best_row])
                best_row = r;
        }
        for (int c = 1; c < avail.cols; ++c) {
            if (col_count[c] > col_count[best_col])
                best_col = c;
        }
        if (row_count[best_row] >= col_count[best_col])
            row_dead[best_row] = 1;
        else
            col_dead[best_col] = 1;
    }

    DegradedGeometry geom;
    for (int r = 0; r < avail.rows; ++r) {
        if (!row_dead[r])
            geom.physRows.push_back(r);
    }
    for (int c = 0; c < avail.cols; ++c) {
        if (!col_dead[c])
            geom.physCols.push_back(c);
    }
    geom.rows = static_cast<int>(geom.physRows.size());
    geom.cols = static_cast<int>(geom.physCols.size());
    return geom;
}

DegradedGeometry
degradeTopLeftSquare(const ArrayAvailability &avail)
{
    const int max_edge = std::min(avail.rows, avail.cols);
    int edge = 0;
    for (int e = 1; e <= max_edge; ++e) {
        bool clean = true;
        for (int r = 0; r < e && clean; ++r) {
            for (int c = 0; c < e; ++c) {
                if (!avail.aliveAt(r, c)) {
                    clean = false;
                    break;
                }
            }
        }
        if (!clean)
            break;
        edge = e;
    }
    DegradedGeometry geom;
    geom.rows = geom.cols = edge;
    for (int i = 0; i < edge; ++i) {
        geom.physRows.push_back(i);
        geom.physCols.push_back(i);
    }
    return geom;
}

DegradedGeometry
degradeMaxRectangle(const ArrayAvailability &avail)
{
    // Largest all-ones rectangle via the row-histogram method.
    std::vector<int> height(avail.cols, 0);
    long long best_area = 0;
    int best_top = 0, best_left = 0, best_rows = 0, best_cols = 0;
    for (int r = 0; r < avail.rows; ++r) {
        for (int c = 0; c < avail.cols; ++c)
            height[c] = avail.aliveAt(r, c) ? height[c] + 1 : 0;
        for (int left = 0; left < avail.cols; ++left) {
            int min_h = height[left];
            for (int right = left; right < avail.cols; ++right) {
                min_h = std::min(min_h, height[right]);
                if (min_h == 0)
                    break;
                const int width = right - left + 1;
                const long long area =
                    static_cast<long long>(min_h) * width;
                if (area > best_area) {
                    best_area = area;
                    best_rows = min_h;
                    best_cols = width;
                    best_top = r - min_h + 1;
                    best_left = left;
                }
            }
        }
    }
    DegradedGeometry geom;
    geom.rows = best_rows;
    geom.cols = best_cols;
    for (int i = 0; i < best_rows; ++i)
        geom.physRows.push_back(best_top + i);
    for (int j = 0; j < best_cols; ++j)
        geom.physCols.push_back(best_left + j);
    return geom;
}

} // namespace fault
} // namespace flexsim
