/**
 * @file
 * The per-PE random-access local store of the FlexFlow architecture.
 *
 * Unlike the FIFO buffers of 2D-Mapping PEs, FlexFlow local stores are
 * small randomly addressable memories (Section 4.4): data preloaded
 * over the CDBs can be read multiple times, in FSM-generated order,
 * before being replaced.  Reads and writes are counted for the energy
 * model; capacity overflows are hard errors because they would be
 * silently wrong hardware.
 */

#ifndef FLEXSIM_MEM_LOCAL_STORE_HH
#define FLEXSIM_MEM_LOCAL_STORE_HH

#include <vector>

#include "common/types.hh"
#include "nn/fixed_point.hh"

namespace flexsim {

class LocalStore
{
  public:
    /** @param words capacity in 16-bit words (256 B => 128 words). */
    explicit LocalStore(std::size_t words);

    /** Write @p value at @p addr. */
    void write(std::size_t addr, Fixed16 value);

    /** Read the word at @p addr; the slot must have been written. */
    Fixed16 read(std::size_t addr);

    /** True when @p addr holds valid data. */
    bool valid(std::size_t addr) const;

    /** Invalidate all entries (new computation batch). */
    void invalidateAll();

    std::size_t capacityWords() const { return data_.size(); }
    WordCount reads() const { return reads_; }
    WordCount writes() const { return writes_; }
    std::size_t peakValid() const { return peakValid_; }

    /** Zero the access counters (capacity/contents unchanged). */
    void resetCounters();

  private:
    std::vector<Fixed16> data_;
    std::vector<bool> valid_;
    std::size_t numValid_ = 0;
    std::size_t peakValid_ = 0;
    WordCount reads_ = 0;
    WordCount writes_ = 0;
};

} // namespace flexsim

#endif // FLEXSIM_MEM_LOCAL_STORE_HH
