/**
 * @file
 * A bounded FIFO with occupancy accounting, used by the Systolic
 * inter-row links and the 2D-Mapping neuron-reuse buffers.
 */

#ifndef FLEXSIM_MEM_FIFO_HH
#define FLEXSIM_MEM_FIFO_HH

#include <deque>

#include "common/logging.hh"
#include "common/types.hh"

namespace flexsim {

template <typename T>
class Fifo
{
  public:
    /** @param capacity maximum entries; 0 means unbounded. */
    explicit Fifo(std::size_t capacity = 0) : capacity_(capacity) {}

    void
    push(const T &value)
    {
        flexsim_assert(capacity_ == 0 || entries_.size() < capacity_,
                       "push into full FIFO of capacity ", capacity_);
        entries_.push_back(value);
        ++pushes_;
        if (entries_.size() > peak_)
            peak_ = entries_.size();
    }

    T
    pop()
    {
        flexsim_assert(!entries_.empty(), "pop from empty FIFO");
        T value = entries_.front();
        entries_.pop_front();
        ++pops_;
        return value;
    }

    const T &
    front() const
    {
        flexsim_assert(!entries_.empty(), "front of empty FIFO");
        return entries_.front();
    }

    bool empty() const { return entries_.empty(); }
    bool full() const
    {
        return capacity_ != 0 && entries_.size() == capacity_;
    }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::size_t peakOccupancy() const { return peak_; }

    void
    clear()
    {
        entries_.clear();
    }

  private:
    std::size_t capacity_;
    std::deque<T> entries_;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::size_t peak_ = 0;
};

} // namespace flexsim

#endif // FLEXSIM_MEM_FIFO_HH
