/**
 * @file
 * A banked on-chip SRAM buffer.
 *
 * FlexFlow's three buffers (two neuron buffers, one kernel buffer) are
 * D-banked so that D words can feed the D vertical/horizontal bus lanes
 * each cycle (paper Section 4.5, IADP).  The buffer stores real words;
 * address-to-bank mapping is decided by the IADP layout classes in
 * src/flexflow.  Per-cycle bank-conflict accounting is provided via
 * beginCycle(): a second access to the same bank within one cycle is a
 * recorded conflict (it would cost an extra cycle in hardware).
 */

#ifndef FLEXSIM_MEM_SRAM_BUFFER_HH
#define FLEXSIM_MEM_SRAM_BUFFER_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "nn/fixed_point.hh"

namespace flexsim {

class SramBuffer
{
  public:
    /**
     * @param name       for diagnostics
     * @param capacity_bytes  total capacity (e.g. 32 KiB)
     * @param num_banks  independently addressable banks
     */
    SramBuffer(std::string name, std::size_t capacity_bytes,
               unsigned num_banks);

    /** Write one word to @p bank at bank-local @p index. */
    void write(unsigned bank, std::size_t index, Fixed16 value);

    /** Read one word from @p bank at bank-local @p index. */
    Fixed16 read(unsigned bank, std::size_t index);

    /** True when (bank, index) holds valid data. */
    bool valid(unsigned bank, std::size_t index) const;

    /** Mark a new cycle for bank-conflict accounting. */
    void beginCycle();

    /** Invalidate all contents (layer switch). */
    void invalidateAll();

    const std::string &name() const { return name_; }
    unsigned numBanks() const { return numBanks_; }
    std::size_t wordsPerBank() const { return wordsPerBank_; }
    std::size_t capacityWords() const { return numBanks_ * wordsPerBank_; }
    std::size_t capacityBytes() const
    {
        return capacityWords() * bytesPerWord;
    }

    WordCount reads() const { return reads_; }
    WordCount writes() const { return writes_; }
    std::uint64_t bankConflicts() const { return bankConflicts_; }

    /** Zero the access counters. */
    void resetCounters();

  private:
    std::size_t flatIndex(unsigned bank, std::size_t index) const;

    std::string name_;
    unsigned numBanks_;
    std::size_t wordsPerBank_;
    std::vector<Fixed16> data_;
    std::vector<bool> valid_;
    std::vector<std::uint8_t> accessedThisCycle_;
    WordCount reads_ = 0;
    WordCount writes_ = 0;
    std::uint64_t bankConflicts_ = 0;
};

} // namespace flexsim

#endif // FLEXSIM_MEM_SRAM_BUFFER_HH
