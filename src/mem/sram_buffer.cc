#include "mem/sram_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexsim {

SramBuffer::SramBuffer(std::string name, std::size_t capacity_bytes,
                       unsigned num_banks)
    : name_(std::move(name)), numBanks_(num_banks)
{
    flexsim_assert(num_banks > 0, "buffer ", name_, " needs banks");
    const std::size_t total_words = capacity_bytes / bytesPerWord;
    flexsim_assert(total_words >= num_banks, "buffer ", name_,
                   " too small for ", num_banks, " banks");
    wordsPerBank_ = total_words / num_banks;
    data_.resize(numBanks_ * wordsPerBank_);
    valid_.assign(data_.size(), false);
    accessedThisCycle_.assign(numBanks_, 0);
}

std::size_t
SramBuffer::flatIndex(unsigned bank, std::size_t index) const
{
    flexsim_assert(bank < numBanks_, "buffer ", name_, " bank ", bank,
                   " out of range [0, ", numBanks_, ")");
    flexsim_assert(index < wordsPerBank_, "buffer ", name_, " index ",
                   index, " exceeds bank capacity ", wordsPerBank_);
    return static_cast<std::size_t>(bank) * wordsPerBank_ + index;
}

void
SramBuffer::write(unsigned bank, std::size_t index, Fixed16 value)
{
    const std::size_t flat = flatIndex(bank, index);
    if (accessedThisCycle_[bank]++)
        ++bankConflicts_;
    data_[flat] = value;
    valid_[flat] = true;
    ++writes_;
}

Fixed16
SramBuffer::read(unsigned bank, std::size_t index)
{
    const std::size_t flat = flatIndex(bank, index);
    flexsim_assert(valid_[flat], "buffer ", name_,
                   " read of invalid word (bank ", bank, ", index ",
                   index, ")");
    if (accessedThisCycle_[bank]++)
        ++bankConflicts_;
    ++reads_;
    return data_[flat];
}

bool
SramBuffer::valid(unsigned bank, std::size_t index) const
{
    return valid_[flatIndex(bank, index)];
}

void
SramBuffer::beginCycle()
{
    std::fill(accessedThisCycle_.begin(), accessedThisCycle_.end(), 0);
}

void
SramBuffer::invalidateAll()
{
    std::fill(valid_.begin(), valid_.end(), false);
}

void
SramBuffer::resetCounters()
{
    reads_ = 0;
    writes_ = 0;
    bankConflicts_ = 0;
}

} // namespace flexsim
