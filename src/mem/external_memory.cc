#include "mem/external_memory.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexsim {

ExternalMemory::ExternalMemory(double words_per_cycle)
    : wordsPerCycle_(words_per_cycle)
{
    flexsim_assert(words_per_cycle > 0.0,
                   "external memory bandwidth must be positive");
}

void
ExternalMemory::recordRead(WordCount words)
{
    traffic_.reads += words;
}

void
ExternalMemory::recordWrite(WordCount words)
{
    traffic_.writes += words;
}

Cycle
ExternalMemory::transferCycles(WordCount words) const
{
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(words) / wordsPerCycle_));
}

Cycle
ExternalMemory::totalTransferCycles() const
{
    return transferCycles(traffic_.total());
}

void
ExternalMemory::resetCounters()
{
    traffic_ = DramTraffic{};
}

} // namespace flexsim
