/**
 * @file
 * External DRAM model.
 *
 * For a dataflow study the interesting DRAM property is the access
 * count (Table 7 reports "DRAM Accesses Per Operation"), so the model
 * is a word-granular access counter with a simple bandwidth-derived
 * cycle cost that the layer planner can use to reason about transfer
 * time.  Energy is attributed by the energy model from the counters.
 */

#ifndef FLEXSIM_MEM_EXTERNAL_MEMORY_HH
#define FLEXSIM_MEM_EXTERNAL_MEMORY_HH

#include "common/types.hh"
#include "mem/traffic.hh"

namespace flexsim {

class ExternalMemory
{
  public:
    /** @param words_per_cycle peak transfer rate in 16-bit words. */
    explicit ExternalMemory(double words_per_cycle = 4.0);

    /** Record a burst read of @p words. */
    void recordRead(WordCount words);

    /** Record a burst write of @p words. */
    void recordWrite(WordCount words);

    const DramTraffic &traffic() const { return traffic_; }

    /** Cycles to transfer @p words at peak bandwidth. */
    Cycle transferCycles(WordCount words) const;

    /** Cycles to transfer all recorded traffic at peak bandwidth. */
    Cycle totalTransferCycles() const;

    void resetCounters();

  private:
    double wordsPerCycle_;
    DramTraffic traffic_;
};

} // namespace flexsim

#endif // FLEXSIM_MEM_EXTERNAL_MEMORY_HH
