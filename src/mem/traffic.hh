/**
 * @file
 * Data-transmission accounting between on-chip buffers and the PE
 * array.
 *
 * The paper uses "the volume of data transmission as the proxy of data
 * reusability" (Section 6.1.3); every simulator and analytic model
 * fills in a Traffic record with the same category definitions so
 * Figure 17 can be reproduced uniformly.
 */

#ifndef FLEXSIM_MEM_TRAFFIC_HH
#define FLEXSIM_MEM_TRAFFIC_HH

#include "common/types.hh"

namespace flexsim {

/** Word counts moved between on-chip buffers and the computing engine. */
struct Traffic
{
    /** Input neurons delivered to the PE array. */
    WordCount neuronIn = 0;
    /** Finished output neurons written back to a neuron buffer. */
    WordCount neuronOut = 0;
    /** Synapses delivered to the PE array. */
    WordCount kernelIn = 0;
    /** Partial sums read back for re-accumulation. */
    WordCount psumRead = 0;
    /** Partial sums written out mid-computation. */
    WordCount psumWrite = 0;

    WordCount
    total() const
    {
        return neuronIn + neuronOut + kernelIn + psumRead + psumWrite;
    }

    Traffic &
    operator+=(const Traffic &other)
    {
        neuronIn += other.neuronIn;
        neuronOut += other.neuronOut;
        kernelIn += other.kernelIn;
        psumRead += other.psumRead;
        psumWrite += other.psumWrite;
        return *this;
    }

    bool operator==(const Traffic &) const = default;
};

/** Word counts moved between external DRAM and the on-chip buffers. */
struct DramTraffic
{
    WordCount reads = 0;
    WordCount writes = 0;

    WordCount total() const { return reads + writes; }

    DramTraffic &
    operator+=(const DramTraffic &other)
    {
        reads += other.reads;
        writes += other.writes;
        return *this;
    }

    bool operator==(const DramTraffic &) const = default;
};

} // namespace flexsim

#endif // FLEXSIM_MEM_TRAFFIC_HH
