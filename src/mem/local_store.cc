#include "mem/local_store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexsim {

LocalStore::LocalStore(std::size_t words)
    : data_(words), valid_(words, false)
{
    flexsim_assert(words > 0, "local store needs nonzero capacity");
}

void
LocalStore::write(std::size_t addr, Fixed16 value)
{
    flexsim_assert(addr < data_.size(), "local store write address ",
                   addr, " exceeds capacity ", data_.size());
    data_[addr] = value;
    if (!valid_[addr]) {
        valid_[addr] = true;
        ++numValid_;
        if (numValid_ > peakValid_)
            peakValid_ = numValid_;
    }
    ++writes_;
}

Fixed16
LocalStore::read(std::size_t addr)
{
    flexsim_assert(addr < data_.size(), "local store read address ",
                   addr, " exceeds capacity ", data_.size());
    flexsim_assert(valid_[addr], "local store read of invalid slot ",
                   addr);
    ++reads_;
    return data_[addr];
}

bool
LocalStore::valid(std::size_t addr) const
{
    flexsim_assert(addr < data_.size(), "local store valid() address ",
                   addr, " exceeds capacity ", data_.size());
    return valid_[addr];
}

void
LocalStore::invalidateAll()
{
    std::fill(valid_.begin(), valid_.end(), false);
    numValid_ = 0;
}

void
LocalStore::resetCounters()
{
    reads_ = 0;
    writes_ = 0;
    peakValid_ = numValid_;
}

} // namespace flexsim
