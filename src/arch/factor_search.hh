/**
 * @file
 * Exhaustive unrolling-factor optimization (paper Section 5).
 *
 * Ur depends only on the intra-row factors <Tn, Ti, Tj> and Uc only on
 * the inter-row factors <Tm, Tr, Tc>, so the search optimizes the two
 * sides independently over all factor triples whose product fits the
 * array edge D; this is exact and fast (O(D * divisors) per side).
 *
 * The FlexFlow compiler (src/compiler) layers inter-layer IADP
 * coupling and program emission on top of this core search.
 */

#ifndef FLEXSIM_ARCH_FACTOR_SEARCH_HH
#define FLEXSIM_ARCH_FACTOR_SEARCH_HH

#include <vector>

#include "arch/unroll.hh"
#include "nn/layer_spec.hh"

namespace flexsim {

/** Result of a factor search. */
struct FactorChoice
{
    UnrollFactors factors;
    double utilizationRows = 0.0;
    double utilizationCols = 0.0;

    double utilization() const
    {
        return utilizationRows * utilizationCols;
    }
};

/**
 * Find factors maximizing Ur * Uc subject to Constraint (1).
 *
 * @param spec        the CONV layer
 * @param d           PE array edge
 * @param tr_tc_bound upper bound on Tr/Tc (P * K' for the next layer;
 *                    pass spec.outSize when unconstrained)
 *
 * Ties are broken toward larger Tn (fewer sequential input-map steps),
 * then larger Tj/Ti, then larger Tm.
 */
FactorChoice searchBestFactors(const ConvLayerSpec &spec, int d,
                               int tr_tc_bound);

/**
 * Fault-aware remapping search: factors must fit the surviving
 * @p rows_avail PE rows and @p cols_avail live PEs per row of a
 * degraded D x D array.  Utilization is still reported against the
 * full D x D fabric so the choice's utilization() directly measures
 * the degradation cost.  (rows_avail == cols_avail == d reproduces
 * the healthy search exactly.)
 */
FactorChoice searchBestFactors(const ConvLayerSpec &spec, int d,
                               int tr_tc_bound, int rows_avail,
                               int cols_avail);

/** Convenience overload with Tr/Tc bounded only by the layer. */
FactorChoice searchBestFactors(const ConvLayerSpec &spec, int d);

/**
 * Enumerate every feasible factor assignment (test/diagnostic use;
 * exponential in nothing, but large for big D).
 */
std::vector<UnrollFactors> enumerateFeasible(const ConvLayerSpec &spec,
                                             int d, int tr_tc_bound);

} // namespace flexsim

#endif // FLEXSIM_ARCH_FACTOR_SEARCH_HH
