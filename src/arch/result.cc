#include "arch/result.hh"

#include "common/logging.hh"

namespace flexsim {

double
LayerResult::utilization() const
{
    flexsim_assert(fillCycles <= cycles,
                   "fill cycles cannot exceed total cycles");
    const Cycle compute = cycles - fillCycles;
    if (compute == 0 || peCount == 0)
        return 0.0;
    return static_cast<double>(activeMacCycles) /
           (static_cast<double>(compute) * peCount);
}

double
LayerResult::gops(double freq_ghz) const
{
    if (cycles == 0)
        return 0.0;
    // One MAC is two operations (multiply + add); cycles at freq_ghz
    // GHz take cycles / freq_ghz nanoseconds.
    return 2.0 * static_cast<double>(macs) /
           (static_cast<double>(cycles) / freq_ghz);
}

LayerResult &
LayerResult::operator+=(const LayerResult &other)
{
    if (layerName.empty())
        layerName = other.layerName;
    else if (!other.layerName.empty())
        layerName += "+" + other.layerName;
    cycles += other.cycles;
    fillCycles += other.fillCycles;
    macs += other.macs;
    activeMacCycles += other.activeMacCycles;
    if (peCount == 0)
        peCount = other.peCount;
    else if (other.peCount != 0 && other.peCount != peCount)
        warn("aggregating layers with different PE counts (", peCount,
             " vs ", other.peCount, ")");
    traffic += other.traffic;
    dram += other.dram;
    localStoreReads += other.localStoreReads;
    localStoreWrites += other.localStoreWrites;
    return *this;
}

LayerResult
NetworkResult::total() const
{
    LayerResult sum;
    sum.layerName = networkName;
    for (const LayerResult &layer : layers) {
        LayerResult tmp = layer;
        tmp.layerName.clear();
        sum += tmp;
    }
    return sum;
}

} // namespace flexsim
