/**
 * @file
 * Loop-unrolling factors and the utilization model of the paper's
 * Section 5.
 *
 * T = <Tm, Tn, Tr, Tc, Ti, Tj> quantifies the parallel degree of the
 * six CONV loops (Figure 4).  For a D x D FlexFlow convolutional unit
 * the feasible set obeys Constraint (1) and the achieved computing
 * resource utilization is Ur * Uc with Ur and Uc from Equations (2)
 * and (3).
 */

#ifndef FLEXSIM_ARCH_UNROLL_HH
#define FLEXSIM_ARCH_UNROLL_HH

#include <string>

#include "nn/layer_spec.hh"

namespace flexsim {

/** The six unrolling factors <Tm, Tn, Tr, Tc, Ti, Tj>. */
struct UnrollFactors
{
    int tm = 1; ///< output feature maps in parallel
    int tn = 1; ///< input feature maps in parallel
    int tr = 1; ///< output neuron rows in parallel
    int tc = 1; ///< output neuron columns in parallel
    int ti = 1; ///< kernel rows in parallel
    int tj = 1; ///< kernel columns in parallel

    /** PE rows occupied: Tm * Tr * Tc (the inter-row mix). */
    int rowDemand() const { return tm * tr * tc; }

    /** PEs per row occupied: Tn * Ti * Tj (the intra-row mix). */
    int columnDemand() const { return tn * ti * tj; }

    /** "<Tm,Tn,Tr,Tc,Ti,Tj>" for reports. */
    std::string toString() const;

    bool operator==(const UnrollFactors &) const = default;
};

/**
 * Feasibility per the paper's Constraint (1).
 *
 * @param t     candidate factors
 * @param spec  the CONV layer
 * @param d     PE array edge (D x D PEs)
 * @param tr_tc_bound upper bound on Tr and Tc (P * K' of the next
 *              layer; pass spec.outSize when there is no next layer)
 */
bool feasible(const UnrollFactors &t, const ConvLayerSpec &spec, int d,
              int tr_tc_bound);

/**
 * Feasibility on a degraded array: the factors must fit the surviving
 * @p rows_avail PE rows and @p cols_avail PEs per row (fault-aware
 * remapping keeps @p d as the utilization denominator so degradation
 * stays visible).
 */
bool feasible(const UnrollFactors &t, const ConvLayerSpec &spec, int d,
              int tr_tc_bound, int rows_avail, int cols_avail);

/** PE-row utilization Ur (Equation 2). */
double utilizationRows(const UnrollFactors &t, const ConvLayerSpec &spec,
                       int d);

/** PE-column utilization Uc (Equation 3). */
double utilizationCols(const UnrollFactors &t, const ConvLayerSpec &spec,
                       int d);

/** Total utilization Ut = Ur * Uc. */
double utilizationTotal(const UnrollFactors &t, const ConvLayerSpec &spec,
                        int d);

/** Integer ceiling division. */
constexpr long long
ceilDiv(long long a, long long b)
{
    return (a + b - 1) / b;
}

} // namespace flexsim

#endif // FLEXSIM_ARCH_UNROLL_HH
