/**
 * @file
 * DRAM traffic planning under finite on-chip buffers (Table 7's
 * "DRAM Accesses Per Operation").
 *
 * When a layer's kernels exceed the kernel buffer the layer is split
 * into output-map groups; when its inputs exceed a neuron buffer they
 * must be re-streamed per group.  The planner evaluates both loop
 * orders (kernel-resident vs input-resident) and returns the cheaper
 * one, which is what the paper's workload analyzer would configure.
 */

#ifndef FLEXSIM_ARCH_DRAM_PLANNER_HH
#define FLEXSIM_ARCH_DRAM_PLANNER_HH

#include "common/types.hh"
#include "mem/traffic.hh"
#include "nn/layer_spec.hh"

namespace flexsim {

/** The DRAM transfer plan for one CONV layer. */
struct DramPlan
{
    DramTraffic traffic;
    /** DRAM words read for input feature maps (incl. re-streaming). */
    WordCount inputReadWords = 0;
    /** DRAM words read for kernels (incl. re-streaming). */
    WordCount kernelReadWords = 0;
    /** Output-map groups (kernel buffer tiling), >= 1. */
    int kernelGroups = 1;
    /** Input row-stripes (neuron buffer tiling), >= 1. */
    int inputStripes = 1;
    /** True when inputs fully fit one neuron buffer. */
    bool inputsResident = false;
    /** True when the whole kernel stack fits the kernel buffer. */
    bool kernelsResident = false;
};

/**
 * Plan a layer's DRAM traffic.
 *
 * @param spec             the CONV layer
 * @param neuron_buf_words capacity of one neuron buffer in words
 * @param kernel_buf_words capacity of the kernel buffer in words
 * @param output_words     words actually written back (post-pooling
 *                         size when a POOL layer follows; pass
 *                         spec.outputWords() otherwise)
 */
DramPlan planDramTraffic(const ConvLayerSpec &spec,
                         std::size_t neuron_buf_words,
                         std::size_t kernel_buf_words,
                         WordCount output_words);

/** Overload writing the full convolution output. */
DramPlan planDramTraffic(const ConvLayerSpec &spec,
                         std::size_t neuron_buf_words,
                         std::size_t kernel_buf_words);

} // namespace flexsim

#endif // FLEXSIM_ARCH_DRAM_PLANNER_HH
