#include "arch/processing_style.hh"

#include "common/logging.hh"

namespace flexsim {

const char *
processingStyleName(ProcessingStyle style)
{
    switch (style) {
      case ProcessingStyle::SFSNSS:
        return "SFSNSS";
      case ProcessingStyle::SFSNMS:
        return "SFSNMS";
      case ProcessingStyle::SFMNSS:
        return "SFMNSS";
      case ProcessingStyle::SFMNMS:
        return "SFMNMS";
      case ProcessingStyle::MFSNSS:
        return "MFSNSS";
      case ProcessingStyle::MFSNMS:
        return "MFSNMS";
      case ProcessingStyle::MFMNSS:
        return "MFMNSS";
      case ProcessingStyle::MFMNMS:
        return "MFMNMS";
    }
    panic("unknown ProcessingStyle");
}

bool
usesFeatureMapParallelism(const UnrollFactors &t)
{
    return t.tm > 1 || t.tn > 1;
}

bool
usesNeuronParallelism(const UnrollFactors &t)
{
    return t.tr > 1 || t.tc > 1;
}

bool
usesSynapseParallelism(const UnrollFactors &t)
{
    return t.ti > 1 || t.tj > 1;
}

ProcessingStyle
classifyProcessingStyle(const UnrollFactors &t)
{
    const int index = (usesFeatureMapParallelism(t) ? 4 : 0) +
                      (usesNeuronParallelism(t) ? 2 : 0) +
                      (usesSynapseParallelism(t) ? 1 : 0);
    return static_cast<ProcessingStyle>(index);
}

} // namespace flexsim
