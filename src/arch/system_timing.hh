/**
 * @file
 * System-level execution timing: compute overlapped with DRAM
 * transfers.
 *
 * The paper evaluates engine performance assuming the buffers are
 * fed; a deployment also cares where the design goes memory-bound.
 * With double-buffered transfers a layer's wall-clock is
 * max(compute cycles, DRAM transfer cycles); this module derives that
 * roofline from a LayerResult and a DRAM bandwidth.
 */

#ifndef FLEXSIM_ARCH_SYSTEM_TIMING_HH
#define FLEXSIM_ARCH_SYSTEM_TIMING_HH

#include "arch/result.hh"

namespace flexsim {

/** Wall-clock decomposition of one layer (or aggregated network). */
struct SystemTiming
{
    Cycle computeCycles = 0;
    Cycle dramCycles = 0;
    /** max(compute, dram) under double buffering. */
    Cycle totalCycles = 0;
    bool memoryBound = false;

    /** Fraction of the wall-clock the engine computes. */
    double
    computeOccupancy() const
    {
        return totalCycles > 0
                   ? static_cast<double>(computeCycles) / totalCycles
                   : 0.0;
    }
};

/**
 * Overlap @p result's compute with its DRAM traffic at
 * @p dram_words_per_cycle (16-bit words per engine cycle).
 */
SystemTiming overlapTiming(const LayerResult &result,
                           double dram_words_per_cycle);

/**
 * Roofline of @p batch back-to-back frames of one layer.
 *
 * Compute scales linearly with the batch while the kernel stream
 * (@p kernel_words of the layer's DRAM reads, clamped to the recorded
 * read volume) is fetched once and reused by every frame — the
 * batching benefit an inference server exploits.
 */
SystemTiming batchOverlapTiming(const LayerResult &result,
                                WordCount kernel_words,
                                unsigned batch,
                                double dram_words_per_cycle);

/** Effective GOPs at @p freq_ghz including memory stalls. */
double effectiveGops(const LayerResult &result,
                     double dram_words_per_cycle,
                     double freq_ghz = 1.0);

} // namespace flexsim

#endif // FLEXSIM_ARCH_SYSTEM_TIMING_HH
