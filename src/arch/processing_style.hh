/**
 * @file
 * The eight processing styles of the paper's Section 2.2.
 *
 * A computing architecture handles Single/Multiple Feature maps,
 * Single/Multiple Neurons, and Single/Multiple Synapses per cycle
 * depending on which loops its dataflow unrolls; the paper names the
 * eight combinations SFSNSS .. MFMNMS and classifies the prior
 * architectures as SFSNMS (Systolic), SFMNSS (2D-Mapping), and MFSNSS
 * (Tiling).  FlexFlow is the fully general MFMNMS.
 */

#ifndef FLEXSIM_ARCH_PROCESSING_STYLE_HH
#define FLEXSIM_ARCH_PROCESSING_STYLE_HH

#include "arch/unroll.hh"

namespace flexsim {

/** The eight feature-map/neuron/synapse parallelism combinations. */
enum class ProcessingStyle
{
    SFSNSS, ///< fully sequential
    SFSNMS, ///< synapse parallelism only (Systolic)
    SFMNSS, ///< neuron parallelism only (2D-Mapping)
    SFMNMS, ///< neuron + synapse
    MFSNSS, ///< feature-map parallelism only (Tiling)
    MFSNMS, ///< feature-map + synapse
    MFMNSS, ///< feature-map + neuron
    MFMNMS, ///< all three (FlexFlow)
};

/** Printable style name, e.g. "SFSNMS". */
const char *processingStyleName(ProcessingStyle style);

/** True when the factors exploit feature-map parallelism (FP). */
bool usesFeatureMapParallelism(const UnrollFactors &t);

/** True when the factors exploit neuron parallelism (NP). */
bool usesNeuronParallelism(const UnrollFactors &t);

/** True when the factors exploit synapse parallelism (SP). */
bool usesSynapseParallelism(const UnrollFactors &t);

/** Classify a factor assignment into one of the eight styles. */
ProcessingStyle classifyProcessingStyle(const UnrollFactors &t);

} // namespace flexsim

#endif // FLEXSIM_ARCH_PROCESSING_STYLE_HH
