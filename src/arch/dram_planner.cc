#include "arch/dram_planner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "arch/unroll.hh"

namespace flexsim {

DramPlan
planDramTraffic(const ConvLayerSpec &spec, std::size_t neuron_buf_words,
                std::size_t kernel_buf_words, WordCount output_words)
{
    flexsim_assert(neuron_buf_words > 0 && kernel_buf_words > 0,
                   "buffers must have capacity");
    DramPlan plan;
    const WordCount input_words = spec.inputWords();
    const WordCount kernel_words = spec.kernelWords();
    plan.inputsResident = input_words <= neuron_buf_words;
    plan.kernelsResident = kernel_words <= kernel_buf_words;

    // Option A (kernel-resident groups): split M so each group's
    // kernels fit; inputs are loaded once if resident, else re-streamed
    // per group.
    const int groups = static_cast<int>(
        ceilDiv(static_cast<long long>(kernel_words),
                static_cast<long long>(kernel_buf_words)));
    const WordCount reads_a =
        kernel_words +
        input_words * (plan.inputsResident ? 1 : groups);

    // Option B (input-resident stripes): stream input row-stripes that
    // fit a neuron buffer; kernels re-read per stripe unless resident.
    const int stripes = static_cast<int>(
        ceilDiv(static_cast<long long>(input_words),
                static_cast<long long>(neuron_buf_words)));
    const WordCount reads_b =
        input_words +
        kernel_words * (plan.kernelsResident ? 1 : stripes);

    if (reads_a <= reads_b) {
        plan.kernelGroups = groups;
        plan.inputStripes = 1;
        plan.kernelReadWords = kernel_words;
        plan.inputReadWords =
            input_words * (plan.inputsResident ? 1 : groups);
    } else {
        plan.kernelGroups = 1;
        plan.inputStripes = stripes;
        plan.kernelReadWords =
            kernel_words * (plan.kernelsResident ? 1 : stripes);
        plan.inputReadWords = input_words;
    }
    plan.traffic.reads = plan.inputReadWords + plan.kernelReadWords;
    plan.traffic.writes = output_words;
    return plan;
}

DramPlan
planDramTraffic(const ConvLayerSpec &spec, std::size_t neuron_buf_words,
                std::size_t kernel_buf_words)
{
    return planDramTraffic(spec, neuron_buf_words, kernel_buf_words,
                           spec.outputWords());
}

} // namespace flexsim
