#include "arch/factor_search.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexsim {

namespace {

/** One side (row or column) of the separable search. */
struct Triple
{
    int a = 1;
    int b = 1;
    int c = 1;
};

} // namespace

FactorChoice
searchBestFactors(const ConvLayerSpec &spec, int d, int tr_tc_bound)
{
    return searchBestFactors(spec, d, tr_tc_bound, d, d);
}

FactorChoice
searchBestFactors(const ConvLayerSpec &spec, int d, int tr_tc_bound,
                  int rows_avail, int cols_avail)
{
    flexsim_assert(d >= 1, "array edge must be positive");
    flexsim_assert(tr_tc_bound >= 1, "Tr/Tc bound must be positive");
    flexsim_assert(rows_avail >= 1 && rows_avail <= d,
                   "need at least one surviving PE row (have ",
                   rows_avail, " of ", d, ")");
    flexsim_assert(cols_avail >= 1 && cols_avail <= d,
                   "need at least one surviving PE column (have ",
                   cols_avail, " of ", d, ")");
    spec.validate();

    const int max_tn = std::min(spec.inMaps, cols_avail);
    const int max_ti = std::min(spec.kernel, cols_avail);
    const int max_tj = std::min(spec.kernel, cols_avail);
    const int max_tm = std::min(spec.outMaps, rows_avail);
    const int max_trc = std::min({tr_tc_bound, spec.outSize, rows_avail});

    // Intra-row side: maximize Ur over <Tn, Ti, Tj>.
    Triple best_col;
    double best_ur = -1.0;
    for (int tn = 1; tn <= max_tn; ++tn) {
        for (int ti = 1; ti <= max_ti; ++ti) {
            if (tn * ti > cols_avail)
                break;
            for (int tj = 1; tj <= max_tj; ++tj) {
                if (tn * ti * tj > cols_avail)
                    break;
                UnrollFactors t;
                t.tn = tn;
                t.ti = ti;
                t.tj = tj;
                const double ur = utilizationRows(t, spec, d);
                const bool better =
                    ur > best_ur + 1e-12 ||
                    (ur > best_ur - 1e-12 &&
                     (tn > best_col.a ||
                      (tn == best_col.a &&
                       (tj > best_col.c ||
                        (tj == best_col.c && ti > best_col.b)))));
                if (better) {
                    best_ur = ur;
                    best_col = {tn, ti, tj};
                }
            }
        }
    }

    // Inter-row side: maximize Uc over <Tm, Tr, Tc>.
    Triple best_row;
    double best_uc = -1.0;
    for (int tm = 1; tm <= max_tm; ++tm) {
        for (int tr = 1; tr <= max_trc; ++tr) {
            if (tm * tr > rows_avail)
                break;
            for (int tc = 1; tc <= max_trc; ++tc) {
                if (tm * tr * tc > rows_avail)
                    break;
                UnrollFactors t;
                t.tm = tm;
                t.tr = tr;
                t.tc = tc;
                const double uc = utilizationCols(t, spec, d);
                const bool better =
                    uc > best_uc + 1e-12 ||
                    (uc > best_uc - 1e-12 &&
                     (tm > best_row.a ||
                      (tm == best_row.a &&
                       (tc > best_row.c ||
                        (tc == best_row.c && tr > best_row.b)))));
                if (better) {
                    best_uc = uc;
                    best_row = {tm, tr, tc};
                }
            }
        }
    }

    FactorChoice choice;
    choice.factors.tn = best_col.a;
    choice.factors.ti = best_col.b;
    choice.factors.tj = best_col.c;
    choice.factors.tm = best_row.a;
    choice.factors.tr = best_row.b;
    choice.factors.tc = best_row.c;
    choice.utilizationRows = best_ur;
    choice.utilizationCols = best_uc;
    flexsim_assert(
        feasible(choice.factors, spec, d, tr_tc_bound, rows_avail,
                 cols_avail),
        "search produced infeasible factors ", choice.factors.toString(),
        " for layer ", spec.name);
    return choice;
}

FactorChoice
searchBestFactors(const ConvLayerSpec &spec, int d)
{
    return searchBestFactors(spec, d, spec.outSize);
}

std::vector<UnrollFactors>
enumerateFeasible(const ConvLayerSpec &spec, int d, int tr_tc_bound)
{
    std::vector<UnrollFactors> out;
    const int max_trc = std::min({tr_tc_bound, spec.outSize, d});
    for (int tm = 1; tm <= std::min(spec.outMaps, d); ++tm) {
        for (int tr = 1; tr <= max_trc && tm * tr <= d; ++tr) {
            for (int tc = 1; tc <= max_trc && tm * tr * tc <= d; ++tc) {
                for (int tn = 1; tn <= std::min(spec.inMaps, d); ++tn) {
                    for (int ti = 1;
                         ti <= spec.kernel && tn * ti <= d; ++ti) {
                        for (int tj = 1;
                             tj <= spec.kernel && tn * ti * tj <= d;
                             ++tj) {
                            UnrollFactors t{tm, tn, tr, tc, ti, tj};
                            if (feasible(t, spec, d, tr_tc_bound))
                                out.push_back(t);
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace flexsim
