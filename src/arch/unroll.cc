#include "arch/unroll.hh"

#include <sstream>

#include "common/logging.hh"

namespace flexsim {

std::string
UnrollFactors::toString() const
{
    std::ostringstream oss;
    oss << "<Tm=" << tm << ",Tn=" << tn << ",Tr=" << tr << ",Tc=" << tc
        << ",Ti=" << ti << ",Tj=" << tj << ">";
    return oss.str();
}

bool
feasible(const UnrollFactors &t, const ConvLayerSpec &spec, int d,
         int tr_tc_bound)
{
    return feasible(t, spec, d, tr_tc_bound, d, d);
}

bool
feasible(const UnrollFactors &t, const ConvLayerSpec &spec, int d,
         int tr_tc_bound, int rows_avail, int cols_avail)
{
    flexsim_assert(rows_avail >= 0 && rows_avail <= d &&
                       cols_avail >= 0 && cols_avail <= d,
                   "available rows/cols outside the ", d, "x", d,
                   " array");
    if (t.tm < 1 || t.tn < 1 || t.tr < 1 || t.tc < 1 || t.ti < 1 ||
        t.tj < 1) {
        return false;
    }
    if (t.tm > spec.outMaps || t.tn > spec.inMaps)
        return false;
    if (t.ti > spec.kernel || t.tj > spec.kernel)
        return false;
    if (t.tr > tr_tc_bound || t.tc > tr_tc_bound)
        return false;
    if (t.tr > spec.outSize || t.tc > spec.outSize)
        return false;
    if (t.columnDemand() > cols_avail || t.rowDemand() > rows_avail)
        return false;
    return true;
}

double
utilizationRows(const UnrollFactors &t, const ConvLayerSpec &spec, int d)
{
    flexsim_assert(d > 0, "PE array edge must be positive");
    const long long numerator = static_cast<long long>(spec.inMaps) *
                                spec.kernel * spec.kernel;
    const long long denominator = ceilDiv(spec.inMaps, t.tn) *
                                  ceilDiv(spec.kernel, t.ti) *
                                  ceilDiv(spec.kernel, t.tj) * d;
    return static_cast<double>(numerator) /
           static_cast<double>(denominator);
}

double
utilizationCols(const UnrollFactors &t, const ConvLayerSpec &spec, int d)
{
    flexsim_assert(d > 0, "PE array edge must be positive");
    const long long numerator = static_cast<long long>(spec.outMaps) *
                                spec.outSize * spec.outSize;
    const long long denominator = ceilDiv(spec.outMaps, t.tm) *
                                  ceilDiv(spec.outSize, t.tr) *
                                  ceilDiv(spec.outSize, t.tc) * d;
    return static_cast<double>(numerator) /
           static_cast<double>(denominator);
}

double
utilizationTotal(const UnrollFactors &t, const ConvLayerSpec &spec, int d)
{
    return utilizationRows(t, spec, d) * utilizationCols(t, spec, d);
}

} // namespace flexsim
