#include "arch/system_timing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexsim {

SystemTiming
overlapTiming(const LayerResult &result, double dram_words_per_cycle)
{
    flexsim_assert(dram_words_per_cycle > 0.0,
                   "DRAM bandwidth must be positive");
    SystemTiming timing;
    timing.computeCycles = result.cycles;
    timing.dramCycles = static_cast<Cycle>(
        std::ceil(static_cast<double>(result.dram.total()) /
                  dram_words_per_cycle));
    timing.totalCycles =
        std::max(timing.computeCycles, timing.dramCycles);
    timing.memoryBound = timing.dramCycles > timing.computeCycles;
    return timing;
}

SystemTiming
batchOverlapTiming(const LayerResult &result, WordCount kernel_words,
                   unsigned batch, double dram_words_per_cycle)
{
    flexsim_assert(dram_words_per_cycle > 0.0,
                   "DRAM bandwidth must be positive");
    flexsim_assert(batch > 0, "batch must be at least one frame");
    const WordCount kernels = std::min(kernel_words, result.dram.reads);
    const WordCount per_frame =
        (result.dram.reads - kernels) + result.dram.writes;
    const WordCount words =
        kernels + per_frame * static_cast<WordCount>(batch);
    SystemTiming timing;
    timing.computeCycles = result.cycles * batch;
    timing.dramCycles = static_cast<Cycle>(
        std::ceil(static_cast<double>(words) / dram_words_per_cycle));
    timing.totalCycles =
        std::max(timing.computeCycles, timing.dramCycles);
    timing.memoryBound = timing.dramCycles > timing.computeCycles;
    return timing;
}

double
effectiveGops(const LayerResult &result, double dram_words_per_cycle,
              double freq_ghz)
{
    const SystemTiming timing =
        overlapTiming(result, dram_words_per_cycle);
    if (timing.totalCycles == 0)
        return 0.0;
    return 2.0 * static_cast<double>(result.macs) /
           (static_cast<double>(timing.totalCycles) / freq_ghz);
}

} // namespace flexsim
