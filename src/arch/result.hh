/**
 * @file
 * Uniform result records produced by every accelerator model.
 *
 * A LayerResult captures everything the evaluation section derives
 * numbers from: cycle count, useful MACs, busy PE-cycles, buffer/DRAM
 * traffic, and local-store activity.  NetworkResult aggregates a whole
 * workload.
 */

#ifndef FLEXSIM_ARCH_RESULT_HH
#define FLEXSIM_ARCH_RESULT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/traffic.hh"

namespace flexsim {

/** Execution record for one CONV layer on one accelerator. */
struct LayerResult
{
    std::string layerName;
    /** Total execution cycles (compute + unhidden fill/drain). */
    Cycle cycles = 0;
    /**
     * Cycles spent filling/draining pipelines rather than streaming
     * operands.  utilization() measures spatial occupancy over the
     * remaining compute cycles (Figure 15); gops() always uses the
     * full cycle count, which is how the paper's Systolic loses
     * performance without losing utilization (Section 6.2.3).
     */
    Cycle fillCycles = 0;
    /** Useful multiply-accumulates performed. */
    MacCount macs = 0;
    /** PE-cycles spent on useful MACs. */
    std::uint64_t activeMacCycles = 0;
    /** Number of MAC units in the engine. */
    unsigned peCount = 0;
    /** Buffer <-> PE array word traffic (Figure 17). */
    Traffic traffic;
    /** DRAM <-> buffer word traffic (Table 7). */
    DramTraffic dram;
    /** Per-PE local store activity (energy model input). */
    WordCount localStoreReads = 0;
    WordCount localStoreWrites = 0;

    /** Computing resource utilization (PE-cycle definition, Sec. 5). */
    double utilization() const;

    /** Giga-operations per second at @p freq_ghz (1 MAC = 2 ops). */
    double gops(double freq_ghz = 1.0) const;

    /** Accumulate another layer's record (names joined with '+'). */
    LayerResult &operator+=(const LayerResult &other);
};

/** Execution record for a whole workload. */
struct NetworkResult
{
    std::string networkName;
    std::string archName;
    std::vector<LayerResult> layers;

    /** Sum of all per-layer records. */
    LayerResult total() const;
};

} // namespace flexsim

#endif // FLEXSIM_ARCH_RESULT_HH
