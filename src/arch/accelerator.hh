/**
 * @file
 * The common accelerator-model interface.
 *
 * Each of the four architectures (Systolic, 2D-Mapping, Tiling,
 * FlexFlow) provides an AcceleratorModel: an analytic timing/traffic
 * model derived from its dataflow schedule.  The cycle-level data
 * simulators live next to each model and are cross-checked against it
 * by the test suite (see DESIGN.md Section 3.1).
 */

#ifndef FLEXSIM_ARCH_ACCELERATOR_HH
#define FLEXSIM_ARCH_ACCELERATOR_HH

#include <string>

#include "arch/result.hh"
#include "nn/layer_spec.hh"

namespace flexsim {

/** Analytic model of one accelerator configuration. */
class AcceleratorModel
{
  public:
    virtual ~AcceleratorModel() = default;

    /** Human-readable architecture name, e.g. "2D-Mapping". */
    virtual std::string name() const = 0;

    /** Number of MAC units in the computing engine. */
    virtual unsigned peCount() const = 0;

    /** Peak (nominal) MACs per cycle. */
    virtual unsigned nominalMacsPerCycle() const { return peCount(); }

    /** Execute one CONV layer; fills every LayerResult field. */
    virtual LayerResult runLayer(const ConvLayerSpec &spec) const = 0;

    /** Execute a whole workload. */
    NetworkResult
    runNetwork(const NetworkSpec &net) const
    {
        NetworkResult result;
        result.networkName = net.name;
        result.archName = name();
        for (const NetworkSpec::Stage &stage : net.stages)
            result.layers.push_back(runLayer(stage.conv));
        return result;
    }
};

} // namespace flexsim

#endif // FLEXSIM_ARCH_ACCELERATOR_HH
