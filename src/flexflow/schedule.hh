/**
 * @file
 * The FlexFlow layer schedule: everything the dataflow does beyond the
 * raw batch arithmetic, derived once and shared by the analytic model
 * and the cycle simulator so the two stay consistent by construction.
 *
 * Two finite-capacity effects are planned here:
 *
 *  - **Input-map pass splitting** (paper Figure 13(f)): the RA
 *    mechanism replicates each PE's kernel slice into its 256 B kernel
 *    local store.  When the slice exceeds the store, the input maps
 *    are processed in passes whose slice fits; partial results are
 *    written back to the neuron buffer and read back for accumulation
 *    by the following pass.  The total compute cycles are unchanged
 *    (the per-batch steps just split across passes).
 *
 *  - **Row-band retention**: the neuron local stores retain the
 *    sliding input window along the column direction (RS).  When a
 *    whole row band also fits, the window is additionally retained
 *    across row bands and every input word reaches the array exactly
 *    once per output-map block sweep.
 */

#ifndef FLEXSIM_FLEXFLOW_SCHEDULE_HH
#define FLEXSIM_FLEXFLOW_SCHEDULE_HH

#include <vector>

#include "arch/unroll.hh"
#include "flexflow/flexflow_config.hh"
#include "nn/layer_spec.hh"

namespace flexsim {

/** One input-map pass: a contiguous range of n-groups. */
struct SchedulePass
{
    int nBegin = 0;       ///< first input map (inclusive)
    int nEnd = 0;         ///< last input map (exclusive)
    long long steps = 0;  ///< cycles per batch in this pass
};

struct FlexFlowSchedule
{
    UnrollFactors factors;

    // --- batch arithmetic ---
    long long mBlocks = 0;
    long long rBlocks = 0;
    long long cBlocks = 0;
    long long stepsTotal = 0; ///< sum of per-pass steps

    // --- per-PE kernel slice (RA replication) ---
    /** Distinct kernel-row indices one PE touches per (m, n). */
    int spanI = 0;
    /** Distinct kernel-column indices one PE touches per (m, n). */
    int spanJ = 0;
    /** Per-PE slice words for the whole layer: ceil(N/Tn)*spanI*spanJ. */
    long long sliceWords = 0;

    // --- pass splitting (Figure 13(f)) ---
    std::vector<SchedulePass> passes;
    /**
     * True when pass splitting is disabled but the slice does not fit
     * the kernel store: kernels must then stream from the buffer for
     * every batch (the ablation arm; not supported by the cycle
     * simulator).
     */
    bool kernelStreaming = false;

    // --- neuron retention ---
    /** Peak per-column local-store words for one row band. */
    long long bandWordsPerColumn = 0;
    /** True when the window is retained across row bands. */
    bool bandRetention = false;

    int splits() const { return static_cast<int>(passes.size()); }

    /** Total compute cycles (excluding the first-pass fill). */
    long long
    computeCycles() const
    {
        return mBlocks * rBlocks * cBlocks * stepsTotal;
    }

    /** First-batch preload fill cycles. */
    long long
    fillCycles() const
    {
        return passes.empty() ? 0 : passes.front().steps;
    }
};

/**
 * Plan the schedule of @p spec under factors @p t on @p config.
 * fatal()s when even a single n-group's kernel slice cannot fit the
 * kernel local store (no workload in the paper hits this).
 */
FlexFlowSchedule planSchedule(const ConvLayerSpec &spec,
                              const UnrollFactors &t,
                              const FlexFlowConfig &config);

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_SCHEDULE_HH
