#include "flexflow/schedule.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace flexsim {

namespace {

/**
 * Distinct kernel offsets along one axis a single PE touches.
 *
 * A PE's residue class along the i axis is (r*stride + i) mod Ti; as
 * the output row r sweeps the layer the class shifts by multiples of
 * (stride mod Ti), so the PE touches ceil(K/Ti) offsets per shift and
 * Ti/gcd(stride, Ti) distinct shifts (capped at K offsets total).
 */
int
kernelSpan(int kernel, int unroll, int stride)
{
    const int g = std::gcd(stride, unroll);
    const long long shifts = unroll / g;
    const long long per_shift = ceilDiv(kernel, unroll);
    return static_cast<int>(
        std::min<long long>(kernel, per_shift * shifts));
}

} // namespace

FlexFlowSchedule
planSchedule(const ConvLayerSpec &spec, const UnrollFactors &t,
             const FlexFlowConfig &config)
{
    spec.validate();
    flexsim_assert(feasible(t, spec, config.d, spec.outSize),
                   "factors ", t.toString(), " infeasible for layer ",
                   spec.name, " on a ", config.d, "x", config.d,
                   " engine");

    FlexFlowSchedule sched;
    sched.factors = t;
    sched.mBlocks = ceilDiv(spec.outMaps, t.tm);
    sched.rBlocks = ceilDiv(spec.outSize, t.tr);
    sched.cBlocks = ceilDiv(spec.outSize, t.tc);

    sched.spanI = kernelSpan(spec.kernel, t.ti, spec.stride);
    sched.spanJ = kernelSpan(spec.kernel, t.tj, spec.stride);
    const long long n_groups = ceilDiv(spec.inMaps, t.tn);
    const long long words_per_group =
        static_cast<long long>(sched.spanI) * sched.spanJ;
    sched.sliceWords = n_groups * words_per_group;

    if (words_per_group >
        static_cast<long long>(config.kernelStoreWords)) {
        fatal("layer ", spec.name, ": a single n-group kernel slice (",
              words_per_group, " words) exceeds the ",
              config.kernelStoreWords,
              "-word kernel local store; split the kernel (Ti/Tj) "
              "instead");
    }

    // Figure 13(f): split the input maps into passes whose kernel
    // slice fits the local store.  Pass boundaries land on n-group
    // boundaries so the column mapping is preserved and the summed
    // steps stay exactly ceil(N/Tn)*ceil(K/Ti)*ceil(K/Tj).
    long long groups_per_pass = std::max<long long>(
        1, static_cast<long long>(config.kernelStoreWords) /
               words_per_group);
    if (!config.enablePassSplitting) {
        sched.kernelStreaming = groups_per_pass < n_groups;
        groups_per_pass = n_groups;
    }
    const long long step_factor =
        ceilDiv(spec.kernel, t.ti) * ceilDiv(spec.kernel, t.tj);
    for (long long g0 = 0; g0 < n_groups; g0 += groups_per_pass) {
        const long long groups =
            std::min(groups_per_pass, n_groups - g0);
        SchedulePass pass;
        pass.nBegin = static_cast<int>(g0 * t.tn);
        pass.nEnd = static_cast<int>(
            std::min<long long>(spec.inMaps, (g0 + groups) * t.tn));
        pass.steps = groups * step_factor;
        sched.passes.push_back(pass);
        sched.stepsTotal += pass.steps;
    }
    flexsim_assert(!sched.passes.empty(), "schedule with no passes");

    // Neuron retention: the largest pass's row-band footprint per
    // column must fit the neuron local store to retain across bands.
    long long max_pass_groups = 0;
    for (const SchedulePass &pass : sched.passes) {
        max_pass_groups = std::max(
            max_pass_groups,
            ceilDiv(pass.nEnd - pass.nBegin, t.tn));
    }
    const int span_x = (t.tr - 1) * spec.stride + spec.kernel;
    sched.bandWordsPerColumn = max_pass_groups *
                               ceilDiv(span_x, t.ti) *
                               ceilDiv(spec.inSize, t.tj);
    sched.bandRetention =
        config.enableBandRetention &&
        sched.bandWordsPerColumn <=
            static_cast<long long>(config.neuronStoreWords);
    return sched;
}

} // namespace flexsim
