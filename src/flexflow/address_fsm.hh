/**
 * @file
 * The four-state local-store address generator of Figure 11.
 *
 * Read addressing of the per-PE local stores is governed by a small
 * FSM with states M0/INIT, M1/INCR, M2/HOLD and M3/JUMP, parameterized
 * by the feature-map size, kernel size, the counter step (Tc), and the
 * PE's position within its logical group (paper Section 4.4):
 *
 *  - M1/INCR advances the address by `step` inside a computing window;
 *  - once a window (Ti accesses) completes, the FSM moves to M2/HOLD
 *    and repositions at the next window start;
 *  - when a neuron row's windows complete, M3/JUMP moves to the next
 *    stored neuron row.
 *
 * The conv-unit simulator uses equivalent computed addressing with a
 * per-access self-check; this class reproduces the canonical pattern
 * of Figures 10/11 and is exercised directly by the unit tests.
 */

#ifndef FLEXSIM_FLEXFLOW_ADDRESS_FSM_HH
#define FLEXSIM_FLEXFLOW_ADDRESS_FSM_HH

#include <cstddef>

namespace flexsim {

/** FSM states (Figure 11). */
enum class AddrState
{
    Init, ///< M0: start of a new computation
    Incr, ///< M1: advance the address by the step
    Hold, ///< M2: one computing window completed
    Jump, ///< M3: jump to the next neuron row
};

/** Printable state name ("INIT", "INCR", ...). */
const char *addrStateName(AddrState state);

class AddressFsm
{
  public:
    /**
     * @param window        accesses per computing window (= Ti)
     * @param windows_per_row windows before jumping to the next row
     * @param step          address increment inside a window (M1)
     * @param window_stride distance between window start addresses (M2)
     * @param row_stride    distance between row start addresses (M3)
     */
    AddressFsm(int window, int windows_per_row, int step,
               int window_stride, int row_stride);

    /** State entered by the most recent transition. */
    AddrState state() const { return state_; }

    /** Address that next() will return. */
    std::size_t address() const { return addr_; }

    /** Return the address for this access and advance the FSM. */
    std::size_t next();

    /** Restart for a new computation (back to M0/INIT, address 0). */
    void reset();

  private:
    const int window_;
    const int windowsPerRow_;
    const int step_;
    const int windowStride_;
    const int rowStride_;

    AddrState state_ = AddrState::Init;
    std::size_t addr_ = 0;
    int inWindow_ = 0;
    int windowIndex_ = 0;
    int rowIndex_ = 0;
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_ADDRESS_FSM_HH
