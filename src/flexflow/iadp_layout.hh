/**
 * @file
 * In-Advance Data Placement (IADP) buffer layouts (paper Section 4.5,
 * Figures 12/13).
 *
 * Data is pre-arranged in the banked on-chip buffers so the reading
 * controllers can feed one word per bus lane per cycle with no bank
 * conflicts:
 *
 *  - the neuron buffer is divided into Tn groups x Ti subgroups x Tj
 *    banks; input word (n, x, y) lives in the bank matching its column
 *    class, so the D vertical buses each read a distinct bank;
 *  - the kernel buffer is divided into Tm groups x Tr subgroups x Tc
 *    banks; each kernel is row-major within its group and the groups'
 *    reading controllers replicate words Tr*Tc times onto the free
 *    horizontal buses (IPDR).
 *
 * The layouts are pure address math over SramBuffer; unit tests check
 * the conflict-freedom property directly.
 */

#ifndef FLEXSIM_FLEXFLOW_IADP_LAYOUT_HH
#define FLEXSIM_FLEXFLOW_IADP_LAYOUT_HH

#include "arch/unroll.hh"
#include "flexflow/mapping.hh"
#include "nn/layer_spec.hh"

namespace flexsim {

/** Bank/index address inside a banked buffer. */
struct BufferAddress
{
    unsigned bank = 0;
    std::size_t index = 0;

    bool operator==(const BufferAddress &) const = default;
};

/** Neuron-buffer placement for a layer consumed with factors T. */
class NeuronIadpLayout
{
  public:
    /**
     * @param t    the consuming layer's factors (uses <Tn, Ti, Tj>)
     * @param spec the consuming layer
     */
    NeuronIadpLayout(const UnrollFactors &t, const ConvLayerSpec &spec);

    /** Banks used: Tn * Ti * Tj. */
    unsigned numBanks() const { return static_cast<unsigned>(banks_); }

    /** Address of input word (n, x, y). */
    BufferAddress addressOf(int n, int x, int y) const;

    /** Words stored in the fullest bank (capacity planning). */
    std::size_t wordsPerBank() const;

  private:
    LaneMapping map_;
    ConvLayerSpec spec_;
    int banks_;
};

/** Kernel-buffer placement for a layer consumed with factors T. */
class KernelIadpLayout
{
  public:
    /**
     * @param t    the consuming layer's factors (uses <Tm, Tr, Tc>)
     * @param spec the consuming layer
     */
    KernelIadpLayout(const UnrollFactors &t, const ConvLayerSpec &spec);

    /** Banks used: Tm * Tr * Tc. */
    unsigned numBanks() const { return static_cast<unsigned>(banks_); }

    /** Address of synapse (m, n, i, j). */
    BufferAddress addressOf(int m, int n, int i, int j) const;

    /** Words stored in the fullest bank. */
    std::size_t wordsPerBank() const;

    /** IPDR replication factor: each read word is replicated Tr * Tc
     * times onto the horizontal buses of its group. */
    int replicationFactor() const;

  private:
    UnrollFactors t_;
    ConvLayerSpec spec_;
    int banks_;
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_IADP_LAYOUT_HH
