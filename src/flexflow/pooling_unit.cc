#include "flexflow/pooling_unit.hh"

#include "arch/unroll.hh"
#include "common/logging.hh"
#include "nn/golden.hh"

namespace flexsim {

PoolingUnit::PoolingUnit(int lanes) : lanes_(lanes)
{
    flexsim_assert(lanes >= 1, "pooling unit needs at least one lane");
}

Tensor3<>
PoolingUnit::run(const Tensor3<> &input, const PoolLayerSpec &spec,
                 Stats *stats) const
{
    // Functionally the unit computes exactly the golden pooling; the
    // timing model batches the windows over the lanes.
    Tensor3<> output = goldenPool(input, spec);

    if (stats != nullptr) {
        const WordCount windows = static_cast<WordCount>(output.maps()) *
                                  output.height() * output.width();
        const WordCount window_elems =
            static_cast<WordCount>(spec.window) * spec.window;
        stats->reads = windows * window_elems;
        stats->writes = windows;
        // Each lane reduces one window in window_elems cycles.
        stats->cycles = static_cast<Cycle>(
            ceilDiv(static_cast<long long>(windows), lanes_) *
            static_cast<long long>(window_elems));
    }
    return output;
}

} // namespace flexsim
