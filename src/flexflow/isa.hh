/**
 * @file
 * The FlexFlow configuration instruction set.
 *
 * The paper's workload analyzer "produces assemble language code to
 * configure the FlexFlow" (Section 5).  This module defines that
 * interface: a small register-free configuration ISA, a 64-bit binary
 * encoding consumed by the on-chip instruction decoder, and a
 * text assembler/disassembler.
 *
 * Program shape for one CONV stage:
 *
 *     cfg_layer   <M> <N> <S> <K> <stride>
 *     cfg_factors <Tm> <Tn> <Tr> <Tc> <Ti> <Tj>
 *     load_kernels <words>        ; DRAM -> kernel buffer (IADP)
 *     load_input   <words>        ; DRAM -> neuron buffer (IADP)
 *     conv
 *     pool <window> <stride> <max|avg>   ; optional
 *     swap                         ; ping-pong the neuron buffers
 *     store_output <words>         ; buffer -> DRAM (final layer)
 *     halt
 */

#ifndef FLEXSIM_FLEXFLOW_ISA_HH
#define FLEXSIM_FLEXFLOW_ISA_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "guard/error.hh"

namespace flexsim {

enum class Opcode : std::uint8_t
{
    Nop = 0,
    CfgLayer,    ///< M, N, S, K, stride
    CfgFactors,  ///< Tm, Tn, Tr, Tc, Ti, Tj
    LoadInput,   ///< words from DRAM into the active neuron buffer
    LoadKernels, ///< words from DRAM into the kernel buffer
    Conv,        ///< execute the configured CONV layer
    Pool,        ///< window, stride, op (0 = max, 1 = avg)
    Swap,        ///< swap the ping-pong neuron buffers
    StoreOutput, ///< words from the neuron buffer to DRAM
    Halt,
    NumOpcodes,
};

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::array<std::uint32_t, 6> args{};

    bool operator==(const Instruction &) const = default;
};

/** A FlexFlow configuration program. */
struct Program
{
    std::vector<Instruction> instructions;

    bool operator==(const Program &) const = default;
};

/** Encode to the 64-bit binary format (fatal() on field overflow). */
std::uint64_t encode(const Instruction &inst);

/** Decode from the 64-bit binary format (fatal() on bad opcode). */
Instruction decode(std::uint64_t word);

/**
 * Guarded encode for untrusted instructions: a typed Parse error
 * instead of aborting when an operand exceeds its bit field.
 */
guard::Expected<std::uint64_t> tryEncode(const Instruction &inst);

/** Guarded decode: rejects unknown opcodes with a typed error. */
guard::Expected<Instruction> tryDecode(std::uint64_t word);

/** Encode a whole program. */
std::vector<std::uint64_t> encode(const Program &program);

/** Decode a whole program. */
Program decode(const std::vector<std::uint64_t> &words);

/** Render one instruction as assembly text. */
std::string disassemble(const Instruction &inst);

/** Render a whole program as assembly text. */
std::string disassemble(const Program &program);

/**
 * Assemble text into a program.  Supports ';' and '#' comments and
 * blank lines; calls fatal() with the line number on syntax errors.
 */
Program assemble(const std::string &source);

/**
 * Guarded assembler for untrusted text: returns the program or a
 * line-numbered Parse error instead of aborting the process.
 */
guard::Expected<Program> tryAssemble(const std::string &source);

/**
 * Write the binary encoding to a file ("FFSM" magic, version byte,
 * little-endian instruction count, then one 64-bit word per
 * instruction).  fatal()s on I/O errors.
 */
void saveBinary(const Program &program, const std::string &path);

/** Read a program written by saveBinary (fatal() on bad files). */
Program loadBinary(const std::string &path);

/**
 * Guarded decode of an in-memory binary image (the saveBinary byte
 * layout).  Validates magic, version, and that the claimed
 * instruction count matches the bytes actually present — a hostile
 * header cannot trigger a huge allocation.  @p origin names the
 * input in error messages (a path or "<memory>").
 */
guard::Expected<Program> tryParseBinary(const std::string &bytes,
                                        const std::string &origin);

/** Guarded loadBinary: Io/Parse errors instead of fatal(). */
guard::Expected<Program> tryLoadBinary(const std::string &path);

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_ISA_HH
