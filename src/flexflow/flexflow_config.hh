/**
 * @file
 * Configuration of the FlexFlow accelerator (paper Section 4,
 * Figure 6 / Table 5).
 *
 * A D x D convolutional unit of PEs with per-PE neuron and kernel
 * local stores, a 1D pooling unit, two ping-pong neuron buffers and
 * one kernel buffer, fed by vertical (neuron) and horizontal (kernel)
 * common data buses.
 */

#ifndef FLEXSIM_FLEXFLOW_FLEXFLOW_CONFIG_HH
#define FLEXSIM_FLEXFLOW_FLEXFLOW_CONFIG_HH

#include <cstddef>

namespace flexsim {

struct FlexFlowConfig
{
    /** Convolutional unit edge: D x D PEs. */
    int d = 16;
    /** Per-PE neuron local store, words (256 B = 128 words). */
    std::size_t neuronStoreWords = 128;
    /** Per-PE kernel local store, words (256 B = 128 words). */
    std::size_t kernelStoreWords = 128;
    /** Each neuron buffer, words (32 KiB). */
    std::size_t neuronBufWords = 16 * 1024;
    /** Kernel buffer, words (32 KiB). */
    std::size_t kernelBufWords = 16 * 1024;
    /** Pooling unit width (lightweight ALUs). */
    int poolingLanes = 16;

    /**
     * Host-side worker threads the cycle simulator spreads the
     * output-map blocks over.  Purely a simulation-throughput knob:
     * results and every modelled counter are bit-identical for any
     * value (per-thread records merge deterministically).  1 keeps
     * the simulator single-threaded.
     */
    int threads = 1;

    // --- degraded-mode geometry (fault remapping) ---
    /**
     * Surviving PE rows / live PEs per row after a fault remap; 0
     * means the full D.  The factor search fits inside these while
     * utilization stays relative to the full D x D fabric, so a
     * degraded config directly reports its utilization loss.
     */
    int availRows = 0;
    int availCols = 0;

    int usableRows() const { return availRows > 0 ? availRows : d; }
    int usableCols() const { return availCols > 0 ? availCols : d; }

    // --- ablation knobs (default = the paper's design) ---
    /**
     * Retain the input window in the neuron local stores across row
     * bands when it fits (RS retention).  Disabling refetches the
     * sliding window at every row band.
     */
    bool enableBandRetention = true;
    /**
     * Split the input maps into passes when the RA-replicated per-PE
     * kernel slice exceeds the kernel store (Figure 13(f)).
     * Disabling falls back to streaming the kernels per batch, which
     * is what a design without partial-sum write-back would do; only
     * the analytic model supports this arm.
     */
    bool enablePassSplitting = true;

    unsigned
    peCount() const
    {
        return static_cast<unsigned>(d) * d;
    }

    static FlexFlowConfig
    forScale(unsigned scale)
    {
        FlexFlowConfig config;
        config.d = static_cast<int>(scale);
        config.poolingLanes = static_cast<int>(scale);
        return config;
    }
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_FLEXFLOW_CONFIG_HH
