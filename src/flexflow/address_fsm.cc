#include "flexflow/address_fsm.hh"

#include "common/logging.hh"

namespace flexsim {

const char *
addrStateName(AddrState state)
{
    switch (state) {
      case AddrState::Init:
        return "INIT";
      case AddrState::Incr:
        return "INCR";
      case AddrState::Hold:
        return "HOLD";
      case AddrState::Jump:
        return "JUMP";
    }
    panic("unknown AddrState");
}

AddressFsm::AddressFsm(int window, int windows_per_row, int step,
                       int window_stride, int row_stride)
    : window_(window), windowsPerRow_(windows_per_row), step_(step),
      windowStride_(window_stride), rowStride_(row_stride)
{
    flexsim_assert(window >= 1 && windows_per_row >= 1,
                   "address FSM needs nonempty windows");
    flexsim_assert(step >= 0 && window_stride >= 0 && row_stride >= 0,
                   "address FSM strides must be non-negative");
}

std::size_t
AddressFsm::next()
{
    const std::size_t out = addr_;
    ++inWindow_;
    if (inWindow_ < window_) {
        // M1: step within the computing window.
        state_ = AddrState::Incr;
        addr_ += step_;
        return out;
    }
    inWindow_ = 0;
    ++windowIndex_;
    if (windowIndex_ < windowsPerRow_) {
        // M2: one window completed, reposition at the next window.
        state_ = AddrState::Hold;
        addr_ = static_cast<std::size_t>(rowIndex_) * rowStride_ +
                static_cast<std::size_t>(windowIndex_) * windowStride_;
        return out;
    }
    // M3: the neuron row is complete, jump to the next row.
    windowIndex_ = 0;
    ++rowIndex_;
    state_ = AddrState::Jump;
    addr_ = static_cast<std::size_t>(rowIndex_) * rowStride_;
    return out;
}

void
AddressFsm::reset()
{
    state_ = AddrState::Init;
    addr_ = 0;
    inWindow_ = 0;
    windowIndex_ = 0;
    rowIndex_ = 0;
}

} // namespace flexsim
