/**
 * @file
 * The FlexFlow accelerator top: instruction decoder + convolutional
 * unit + pooling unit + ping-pong neuron buffers + external memory
 * (paper Figure 6).
 *
 * The accelerator executes a configuration Program (see isa.hh),
 * normally produced by the compiler (src/compiler).  Feature-map data
 * and kernels are bound by the host before run(); LOAD/STORE
 * instructions carry the DRAM word counts the workload analyzer
 * planned, and CONV/POOL execute on the cycle-level units.
 */

#ifndef FLEXSIM_FLEXFLOW_ACCELERATOR_HH
#define FLEXSIM_FLEXFLOW_ACCELERATOR_HH

#include <optional>
#include <vector>

#include "arch/result.hh"
#include "flexflow/conv_unit.hh"
#include "flexflow/flexflow_config.hh"
#include "flexflow/isa.hh"
#include "flexflow/pooling_unit.hh"
#include "guard/watchdog.hh"
#include "mem/external_memory.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"
#include "stats/stats.hh"

namespace flexsim {

class FlexFlowAccelerator
{
  public:
    explicit FlexFlowAccelerator(
        FlexFlowConfig config = FlexFlowConfig{});

    /** Bind the network's input activation (consumed by the first
     * CONV). */
    void bindInput(Tensor3<> input);

    /** Bind kernel stacks, consumed by CONV instructions in order. */
    void bindKernels(std::vector<Tensor4<>> kernels);

    /**
     * Execute @p program to its halt instruction.
     *
     * @param result optional per-layer execution records
     * @return the final activation tensor
     */
    Tensor3<> run(const Program &program,
                  NetworkResult *result = nullptr);

    /**
     * Guarded run(): a watchdog trip mid-program surfaces as a typed
     * Timeout error instead of an exception unwinding through the
     * caller.  Program-structure faults (conv without cfg_layer, no
     * bound kernels) still fatal() — decode validated the words, and
     * sequencing bugs in compiler output are internal errors.
     */
    guard::Expected<Tensor3<>> tryRun(const Program &program,
                                      NetworkResult *result = nullptr);

    /** DRAM words moved by the last run(). */
    const DramTraffic &dramTraffic() const { return dram_.traffic(); }

    /** Which neuron buffer is currently active (0 or 1). */
    int activeNeuronBuffer() const { return activeBuffer_; }

    const FlexFlowConfig &config() const { return config_; }

    /** Cumulative execution statistics across run() calls. */
    const statistics::StatGroup &stats() const { return statGroup_; }

    /** Write the "name value  # desc" statistics report. */
    void dumpStats(std::ostream &os) const;

    /** Zero the statistics. */
    void resetStats();

    /**
     * Attach a fault plan consumed by the convolutional unit (must
     * outlive the accelerator; nullptr restores healthy operation).
     */
    void
    setFaultPlan(const fault::FaultPlan *plan)
    {
        faultPlan_ = plan;
        convUnit_.setFaultPlan(plan);
    }

    /** Fault activity accumulated over CONV layers of the last run. */
    const fault::FaultDiagnostics &faultDiagnostics() const
    {
        return faultDiag_;
    }

    /**
     * Per-CONV-layer watchdog budget: every CONV instruction arms the
     * accelerator's watchdog with it before entering the cycle
     * simulator (an ideal-utilization cycle bound fast-fails layers
     * that cannot fit).  Zero budgets disable the watchdog.
     */
    void setWatchdogBudget(const guard::Watchdog::Budget &budget);

    /** The accelerator's watchdog (for an external cancel()). */
    guard::Watchdog &watchdog() { return watchdog_; }

  private:
    statistics::StatGroup statGroup_{"flexflow"};
    statistics::Scalar statProgramsRun_;
    statistics::Scalar statConvLayers_;
    statistics::Scalar statPoolLayers_;
    statistics::Scalar statCycles_;
    statistics::Scalar statMacs_;
    statistics::Scalar statActiveMacCycles_;
    statistics::Scalar statFillCycles_;
    statistics::Scalar statNeuronIn_;
    statistics::Scalar statNeuronOut_;
    statistics::Scalar statKernelIn_;
    statistics::Scalar statPsumWords_;
    statistics::Scalar statDramReads_;
    statistics::Scalar statDramWrites_;
    statistics::Scalar statFaultStuckMacs_;
    statistics::Scalar statFaultFlippedMacs_;
    statistics::Scalar statFaultCorruptedWords_;
    statistics::Scalar statFaultParities_;
    statistics::Scalar statFaultScrubbed_;
    statistics::Formula statUtilization_;
    statistics::Formula statGops_;

    FlexFlowConfig config_;
    FlexFlowConvUnit convUnit_;
    PoolingUnit poolUnit_;
    ExternalMemory dram_;

    Tensor3<> boundInput_;
    std::vector<Tensor4<>> boundKernels_;
    int activeBuffer_ = 0;

    const fault::FaultPlan *faultPlan_ = nullptr;
    fault::FaultDiagnostics faultDiag_;

    guard::Watchdog watchdog_;
    guard::Watchdog::Budget wdBudget_{};
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_ACCELERATOR_HH
