/**
 * @file
 * Cycle-level data simulator of the FlexFlow convolutional unit.
 *
 * Per batch, each PE row owns one output neuron (LaneMapping::rowOf)
 * and each PE column owns the input-word residue class
 * LaneMapping::colOf.  Every cycle each PE multiplies a resident
 * neuron by the RA-reordered synapse and the row adder tree folds the
 * row's lane products into the row accumulator; after
 * ceil(N/Tn)*ceil(K/Ti)*ceil(K/Tj) cycles the batch's outputs are
 * complete and written back (MFMNMS: no partial sums leave the
 * engine).
 *
 * Operand delivery is modelled faithfully at the column level: each
 * input word is broadcast on its column's vertical CDB exactly once
 * per (output-map block, row band) — the local stores retain the
 * window sliding along the column direction (RS) — and each kernel
 * word is broadcast to its logical group (IPDR) once per output-map
 * block while the per-PE slice stays resident.  Every operand read is
 * self-checked against the functionally required value; outputs are
 * bit-exact against goldenConv() and cycles/traffic match
 * FlexFlowModel exactly.
 */

#ifndef FLEXSIM_FLEXFLOW_CONV_UNIT_HH
#define FLEXSIM_FLEXFLOW_CONV_UNIT_HH

#include <cstdint>

#include "arch/result.hh"
#include "arch/unroll.hh"
#include "fault/fault_plan.hh"
#include "flexflow/flexflow_config.hh"
#include "guard/watchdog.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"

namespace flexsim {

/** FlexFlow-specific dataflow diagnostics. */
struct ConvUnitDiagnostics
{
    /** Batches executed. */
    std::uint64_t batches = 0;
    /** Peak retained words in any column's local stores. */
    std::size_t peakColumnStoreWords = 0;
    /** Cycles the vertical CDB would stall because a batch needed
     * more new words on one column than it has compute cycles to
     * hide them behind (validates the RS-hiding assumption). */
    std::uint64_t deliveryStallCycles = 0;
    /** Largest per-(PE,batch) task count (must equal the step count). */
    std::size_t maxTasksPerPe = 0;
    /** Injected-fault activity (all zero without a fault plan). */
    fault::FaultDiagnostics faults;
};

class FlexFlowConvUnit
{
  public:
    explicit FlexFlowConvUnit(FlexFlowConfig config = FlexFlowConfig{});

    /**
     * Execute one CONV layer cycle by cycle under explicit factors.
     *
     * @return the M output feature maps, bit-exact vs goldenConv().
     */
    Tensor3<> runLayer(const ConvLayerSpec &spec, const UnrollFactors &t,
                       const Tensor3<> &input, const Tensor4<> &kernels,
                       LayerResult *result = nullptr,
                       ConvUnitDiagnostics *diag = nullptr);

    const FlexFlowConfig &config() const { return config_; }

    /**
     * Attach a fault plan (nullptr or an empty plan restores the
     * healthy fast path, bit-identical to a unit that never had one).
     * The plan must outlive the unit; injected faults are pure
     * functions of (seed, logical MAC site), so outputs and fault
     * counters are identical for any `threads` value.
     */
    void setFaultPlan(const fault::FaultPlan *plan) { faults_ = plan; }

    /** Attach a per-layer execution watchdog; see
     * SystolicArraySim::setWatchdog (DESIGN.md §3.7). */
    void setWatchdog(const guard::Watchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

  private:
    FlexFlowConfig config_;
    const fault::FaultPlan *faults_ = nullptr;
    const guard::Watchdog *watchdog_ = nullptr;
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_CONV_UNIT_HH
