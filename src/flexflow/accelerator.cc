#include "flexflow/accelerator.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "common/trace.hh"
#include "nn/golden.hh"

namespace flexsim {

FlexFlowAccelerator::FlexFlowAccelerator(FlexFlowConfig config)
    : config_(config), convUnit_(config),
      poolUnit_(config.poolingLanes)
{
    statProgramsRun_.init(&statGroup_, "programsRun",
                          "configuration programs executed");
    statConvLayers_.init(&statGroup_, "convLayers",
                         "CONV instructions executed");
    statPoolLayers_.init(&statGroup_, "poolLayers",
                         "POOL instructions executed");
    statCycles_.init(&statGroup_, "cycles",
                     "convolutional-unit cycles");
    statMacs_.init(&statGroup_, "macs", "useful multiply-accumulates");
    statActiveMacCycles_.init(&statGroup_, "activeMacCycles",
                              "PE-cycles spent on useful MACs");
    statFillCycles_.init(&statGroup_, "fillCycles",
                         "unhidden preload cycles");
    statNeuronIn_.init(&statGroup_, "neuronInWords",
                       "input neurons delivered to the array");
    statNeuronOut_.init(&statGroup_, "neuronOutWords",
                        "finished neurons written back");
    statKernelIn_.init(&statGroup_, "kernelInWords",
                       "synapses broadcast to the array");
    statPsumWords_.init(&statGroup_, "psumWords",
                        "partial-sum words cycled through the buffer");
    statDramReads_.init(&statGroup_, "dramReadWords",
                        "words read from external memory");
    statDramWrites_.init(&statGroup_, "dramWriteWords",
                         "words written to external memory");
    statFaultStuckMacs_.init(&statGroup_, "faultStuckMacs",
                             "MAC products zeroed by stuck-at PEs");
    statFaultFlippedMacs_.init(&statGroup_, "faultFlippedMacs",
                               "MAC products hit by transient flips");
    statFaultCorruptedWords_.init(
        &statGroup_, "faultCorruptedWords",
        "buffer words corrupted silently");
    statFaultParities_.init(&statGroup_, "faultParitiesDetected",
                            "buffer faults caught by parity");
    statFaultScrubbed_.init(&statGroup_, "faultScrubbedWords",
                            "words re-fetched to scrub faults");
    statUtilization_.init(
        &statGroup_, "utilization",
        "activeMacCycles / (compute cycles * PEs)", [this] {
            const double compute =
                statCycles_.value() - statFillCycles_.value();
            return compute > 0.0 ? statActiveMacCycles_.value() /
                                       (compute * config_.peCount())
                                 : 0.0;
        });
    statGops_.init(&statGroup_, "gopsAt1GHz",
                   "2 * macs / cycles (GOPs at 1 GHz)", [this] {
                       return statCycles_.value() > 0.0
                                  ? 2.0 * statMacs_.value() /
                                        statCycles_.value()
                                  : 0.0;
                   });
}

void
FlexFlowAccelerator::dumpStats(std::ostream &os) const
{
    statGroup_.dump(os);
}

void
FlexFlowAccelerator::resetStats()
{
    statGroup_.resetAll();
}

void
FlexFlowAccelerator::bindInput(Tensor3<> input)
{
    boundInput_ = std::move(input);
}

void
FlexFlowAccelerator::bindKernels(std::vector<Tensor4<>> kernels)
{
    boundKernels_ = std::move(kernels);
}

Tensor3<>
FlexFlowAccelerator::run(const Program &program, NetworkResult *result)
{
    dram_.resetCounters();
    activeBuffer_ = 0;
    faultDiag_ = fault::FaultDiagnostics{};

    NetworkResult record;
    record.archName = "FlexFlow";

    std::optional<ConvLayerSpec> pending_spec;
    std::optional<UnrollFactors> pending_factors;
    DramTraffic pending_dram;
    Tensor3<> activation = boundInput_;
    std::size_t kernel_index = 0;
    int conv_index = 0;
    bool halted = false;

    for (std::size_t pc = 0; pc < program.instructions.size(); ++pc) {
        const Instruction &inst = program.instructions[pc];
        trace::printf("Decoder", "pc ", pc, ": ", disassemble(inst));
        if (halted)
            fatal("instruction after halt at pc ", pc);
        switch (inst.op) {
          case Opcode::Nop:
            break;
          case Opcode::CfgLayer: {
            ConvLayerSpec spec = ConvLayerSpec::make(
                "L" + std::to_string(conv_index),
                static_cast<int>(inst.args[1]),
                static_cast<int>(inst.args[0]),
                static_cast<int>(inst.args[2]),
                static_cast<int>(inst.args[3]),
                static_cast<int>(inst.args[4]));
            pending_spec = spec;
            break;
          }
          case Opcode::CfgFactors: {
            UnrollFactors t;
            t.tm = static_cast<int>(inst.args[0]);
            t.tn = static_cast<int>(inst.args[1]);
            t.tr = static_cast<int>(inst.args[2]);
            t.tc = static_cast<int>(inst.args[3]);
            t.ti = static_cast<int>(inst.args[4]);
            t.tj = static_cast<int>(inst.args[5]);
            pending_factors = t;
            break;
          }
          case Opcode::LoadInput:
            dram_.recordRead(inst.args[0]);
            pending_dram.reads += inst.args[0];
            break;
          case Opcode::LoadKernels:
            dram_.recordRead(inst.args[0]);
            pending_dram.reads += inst.args[0];
            break;
          case Opcode::StoreOutput:
            dram_.recordWrite(inst.args[0]);
            pending_dram.writes += inst.args[0];
            break;
          case Opcode::Conv: {
            if (!pending_spec)
                fatal("conv at pc ", pc, " without cfg_layer");
            if (!pending_factors)
                fatal("conv at pc ", pc, " without cfg_factors");
            if (kernel_index >= boundKernels_.size())
                fatal("conv at pc ", pc, " has no bound kernels");
            const ConvLayerSpec &spec = *pending_spec;
            flexsim_assert(activation.maps() == spec.inMaps,
                           "activation has ", activation.maps(),
                           " maps, layer ", spec.name, " expects ",
                           spec.inMaps);
            // Published layer tables sometimes leave the pooled map a
            // row/column larger than the next layer consumes; the
            // reading controller drops the border.
            if (activation.height() > spec.inSize)
                activation = cropTopLeft(activation, spec.inSize);
            flexsim_assert(activation.height() == spec.inSize,
                           "activation (", activation.height(), "x",
                           activation.width(),
                           ") smaller than layer ", spec.name,
                           " input (", spec.inSize, ")");
            if (!wdBudget_.unlimited()) {
                // Arm per layer so each CONV gets the full budget,
                // and fast-fail on the ideal-utilization cycle bound
                // (the data simulator can only be slower).
                watchdog_.arm(wdBudget_);
                const std::uint64_t ideal =
                    static_cast<std::uint64_t>(spec.macs()) /
                    std::max<std::uint64_t>(1, config_.peCount());
                auto fits = watchdog_.checkPredictedCycles(
                    ideal, "flexflow.conv");
                if (!fits)
                    throw guard::GuardException(fits.error());
            }
            LayerResult layer;
            ConvUnitDiagnostics conv_diag;
            activation = convUnit_.runLayer(
                spec, *pending_factors, activation,
                boundKernels_[kernel_index], &layer, &conv_diag);
            faultDiag_ += conv_diag.faults;
            statFaultStuckMacs_ +=
                static_cast<double>(conv_diag.faults.stuckMacs);
            statFaultFlippedMacs_ +=
                static_cast<double>(conv_diag.faults.flippedMacs);
            statFaultCorruptedWords_ +=
                static_cast<double>(conv_diag.faults.corruptedWords);
            statFaultParities_ +=
                static_cast<double>(conv_diag.faults.paritiesDetected);
            statFaultScrubbed_ +=
                static_cast<double>(conv_diag.faults.scrubbedWords);
            ++kernel_index;
            ++conv_index;
            // Attribute DRAM words loaded since the previous CONV.
            layer.dram = pending_dram;
            pending_dram = DramTraffic{};
            ++statConvLayers_;
            statCycles_ += static_cast<double>(layer.cycles);
            statFillCycles_ += static_cast<double>(layer.fillCycles);
            statMacs_ += static_cast<double>(layer.macs);
            statActiveMacCycles_ +=
                static_cast<double>(layer.activeMacCycles);
            statNeuronIn_ +=
                static_cast<double>(layer.traffic.neuronIn);
            statNeuronOut_ +=
                static_cast<double>(layer.traffic.neuronOut);
            statKernelIn_ +=
                static_cast<double>(layer.traffic.kernelIn);
            statPsumWords_ += static_cast<double>(
                layer.traffic.psumRead + layer.traffic.psumWrite);
            record.layers.push_back(layer);
            break;
          }
          case Opcode::Pool: {
            if (record.layers.empty())
                fatal("pool at pc ", pc, " before any conv");
            PoolLayerSpec pool;
            pool.window = static_cast<int>(inst.args[0]);
            pool.stride = static_cast<int>(inst.args[1]);
            pool.op = inst.args[2] == 0 ? PoolOp::Max : PoolOp::Average;
            PoolingUnit::Stats stats;
            activation = poolUnit_.run(activation, pool, &stats);
            ++statPoolLayers_;
            // The pooling unit subsamples conv results in flight, so
            // only pooled words reach the neuron buffer; pooling
            // lanes overlap the (much longer) convolution.
            record.layers.back().traffic.neuronOut = stats.writes;
            break;
          }
          case Opcode::Swap:
            activeBuffer_ ^= 1;
            break;
          case Opcode::Halt:
            halted = true;
            break;
          default:
            fatal("unhandled opcode at pc ", pc);
        }
    }
    if (!halted)
        warn("program ended without halt");

    ++statProgramsRun_;
    statDramReads_ += static_cast<double>(dram_.traffic().reads);
    statDramWrites_ += static_cast<double>(dram_.traffic().writes);

    // Trailing stores belong to the final layer.
    if (!record.layers.empty()) {
        record.layers.back().dram += pending_dram;
    }

    if (result != nullptr)
        *result = record;
    return activation;
}

guard::Expected<Tensor3<>>
FlexFlowAccelerator::tryRun(const Program &program,
                            NetworkResult *result)
{
    return guard::invoke([&] { return run(program, result); });
}

void
FlexFlowAccelerator::setWatchdogBudget(
    const guard::Watchdog::Budget &budget)
{
    wdBudget_ = budget;
    convUnit_.setWatchdog(budget.unlimited() ? nullptr : &watchdog_);
}

} // namespace flexsim
