/**
 * @file
 * Analytic timing/traffic model of the FlexFlow architecture.
 *
 * Schedule (paper Section 4): a batch of Tm*Tr*Tc output neurons, one
 * per PE row, completes in ceil(N/Tn)*ceil(K/Ti)*ceil(K/Tj) cycles;
 * every cycle each PE row's adder tree folds up to Tn*Ti*Tj lane
 * products into the row accumulator.  RS preloading hides operand
 * delivery behind the previous batch, so only the first batch pays a
 * fill penalty.  Input words reach the array once per output-map block
 * and row band (local stores retain the sliding window along the
 * column direction); kernels reach the array once per output-map block
 * when the per-PE kernel slice fits the kernel local store.
 */

#ifndef FLEXSIM_FLEXFLOW_FLEXFLOW_MODEL_HH
#define FLEXSIM_FLEXFLOW_FLEXFLOW_MODEL_HH

#include "arch/accelerator.hh"
#include "arch/factor_search.hh"
#include "flexflow/flexflow_config.hh"

namespace flexsim {

class FlexFlowModel : public AcceleratorModel
{
  public:
    explicit FlexFlowModel(FlexFlowConfig config = FlexFlowConfig{});

    std::string name() const override { return "FlexFlow"; }
    unsigned peCount() const override { return config_.peCount(); }

    /** Run with compiler-chosen factors (searchBestFactors). */
    LayerResult runLayer(const ConvLayerSpec &spec) const override;

    /** Run with explicit unrolling factors. */
    LayerResult runLayer(const ConvLayerSpec &spec,
                         const UnrollFactors &t) const;

    /** True when the per-PE kernel slice stays resident across a
     * whole output-map block. */
    bool kernelsResident(const ConvLayerSpec &spec,
                         const UnrollFactors &t) const;

    const FlexFlowConfig &config() const { return config_; }

  private:
    FlexFlowConfig config_;
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_FLEXFLOW_MODEL_HH
