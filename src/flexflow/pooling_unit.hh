/**
 * @file
 * The 1D pooling unit (paper Figure 6).
 *
 * A row of lightweight ALUs subsamples convolution results before they
 * reach the neuron buffer, reducing inter-layer data transmission.
 * Each ALU reduces one pooling window sequentially (one comparison or
 * addition per cycle); the lanes work on different windows in
 * parallel.
 */

#ifndef FLEXSIM_FLEXFLOW_POOLING_UNIT_HH
#define FLEXSIM_FLEXFLOW_POOLING_UNIT_HH

#include "arch/result.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"

namespace flexsim {

class PoolingUnit
{
  public:
    /** @param lanes parallel ALUs. */
    explicit PoolingUnit(int lanes = 16);

    /** Pooling statistics for one layer. */
    struct Stats
    {
        Cycle cycles = 0;
        WordCount reads = 0;
        WordCount writes = 0;
    };

    /**
     * Pool @p input; bit-exact against goldenPool().
     */
    Tensor3<> run(const Tensor3<> &input, const PoolLayerSpec &spec,
                  Stats *stats = nullptr) const;

    int lanes() const { return lanes_; }

  private:
    int lanes_;
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_POOLING_UNIT_HH
