/**
 * @file
 * The FlexFlow data-placement mapping (paper Section 4.3).
 *
 * With unrolling factors T, the D x D PE array is logically divided
 * into Tm x Tn groups.  PE rows serve output neurons:
 *
 *     row((m, r, c)) = (m mod Tm)*Tr*Tc + (r mod Tr)*Tc + (c mod Tc)
 *
 * and PE columns serve input-neuron classes: input word (n, x, y) is
 * assigned to the single column
 *
 *     col((n, x, y)) = (n mod Tn)*Ti*Tj + (x mod Ti)*Tj + (y mod Tj)
 *
 * Relax Alignment reorders each PE's synapse accesses so the column's
 * resident neurons serve whatever kernel offsets they correspond to
 * for that PE's output; Relax Synchronization lets different PEs
 * consume a broadcast word on different cycles.  This header holds the
 * pure mapping math shared by the analytic model, the cycle simulator,
 * and the IADP buffer layouts.
 */

#ifndef FLEXSIM_FLEXFLOW_MAPPING_HH
#define FLEXSIM_FLEXFLOW_MAPPING_HH

#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

/** Decoded identity of one PE row. */
struct RowLane
{
    int mOff = 0; ///< output-map offset within the Tm block
    int rOff = 0; ///< output-row offset within the Tr block
    int cOff = 0; ///< output-column offset within the Tc block
};

/** Decoded identity of one PE column class. */
struct ColLane
{
    int nClass = 0; ///< input-map residue class (mod Tn)
    int xClass = 0; ///< input-row residue class (mod Ti)
    int yClass = 0; ///< input-column residue class (mod Tj)
};

class LaneMapping
{
  public:
    explicit LaneMapping(const UnrollFactors &t) : t_(t)
    {
        flexsim_assert(t.tm >= 1 && t.tn >= 1 && t.tr >= 1 &&
                           t.tc >= 1 && t.ti >= 1 && t.tj >= 1,
                       "bad unrolling factors ", t.toString());
    }

    const UnrollFactors &factors() const { return t_; }

    /** Rows carrying output neurons: Tm * Tr * Tc. */
    int usedRows() const { return t_.rowDemand(); }

    /** Columns carrying input classes: Tn * Ti * Tj. */
    int usedCols() const { return t_.columnDemand(); }

    /** Row index for output neuron (m, r, c). */
    int
    rowOf(int m, int r, int c) const
    {
        return (m % t_.tm) * t_.tr * t_.tc + (r % t_.tr) * t_.tc +
               (c % t_.tc);
    }

    /** Decode a row index into its block offsets. */
    RowLane
    rowLane(int row) const
    {
        flexsim_assert(row >= 0 && row < usedRows(),
                       "row ", row, " outside the used rows");
        RowLane lane;
        lane.mOff = row / (t_.tr * t_.tc);
        lane.rOff = (row % (t_.tr * t_.tc)) / t_.tc;
        lane.cOff = row % t_.tc;
        return lane;
    }

    /** Column index for input word (n, x, y). */
    int
    colOf(int n, int x, int y) const
    {
        return (n % t_.tn) * t_.ti * t_.tj + (x % t_.ti) * t_.tj +
               (y % t_.tj);
    }

    /** Decode a column index into its residue classes. */
    ColLane
    colLane(int col) const
    {
        flexsim_assert(col >= 0 && col < usedCols(),
                       "column ", col, " outside the used columns");
        ColLane lane;
        lane.nClass = col / (t_.ti * t_.tj);
        lane.xClass = (col % (t_.ti * t_.tj)) / t_.tj;
        lane.yClass = col % t_.tj;
        return lane;
    }

  private:
    UnrollFactors t_;
};

} // namespace flexsim

#endif // FLEXSIM_FLEXFLOW_MAPPING_HH
