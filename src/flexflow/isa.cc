#include "flexflow/isa.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flexsim {

namespace {

/** Per-opcode operand bit widths within the 56-bit payload. */
struct OpLayout
{
    const char *mnemonic;
    int numArgs;
    std::array<int, 6> widths;
};

const OpLayout &
layoutOf(Opcode op)
{
    static const OpLayout layouts[] = {
        {"nop", 0, {}},
        {"cfg_layer", 5, {10, 10, 10, 5, 3, 0}},
        {"cfg_factors", 6, {7, 7, 7, 7, 7, 7}},
        {"load_input", 1, {26, 0, 0, 0, 0, 0}},
        {"load_kernels", 1, {26, 0, 0, 0, 0, 0}},
        {"conv", 0, {}},
        {"pool", 3, {4, 4, 1, 0, 0, 0}},
        {"swap", 0, {}},
        {"store_output", 1, {26, 0, 0, 0, 0, 0}},
        {"halt", 0, {}},
    };
    static_assert(sizeof(layouts) / sizeof(layouts[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes));
    const auto index = static_cast<std::size_t>(op);
    flexsim_assert(index < static_cast<std::size_t>(Opcode::NumOpcodes),
                   "bad opcode ", index);
    return layouts[index];
}

} // namespace

const char *
opcodeName(Opcode op)
{
    return layoutOf(op).mnemonic;
}

guard::Expected<std::uint64_t>
tryEncode(const Instruction &inst)
{
    const auto op_index = static_cast<std::size_t>(inst.op);
    if (op_index >= static_cast<std::size_t>(Opcode::NumOpcodes)) {
        return guard::makeError(guard::Category::Parse, "isa.encode",
                                "unknown opcode ", op_index);
    }
    const OpLayout &layout = layoutOf(inst.op);
    std::uint64_t word = static_cast<std::uint64_t>(inst.op) << 56;
    int shift = 0;
    for (int a = 0; a < layout.numArgs; ++a) {
        const int width = layout.widths[a];
        const std::uint32_t value = inst.args[a];
        if (width < 32 && value >= (1u << width)) {
            return guard::makeError(
                guard::Category::OutOfRange, "isa.encode", "operand ",
                a, " of ", layout.mnemonic, " (", value,
                ") exceeds its ", width, "-bit field");
        }
        word |= static_cast<std::uint64_t>(value) << shift;
        shift += width;
    }
    flexsim_assert(shift <= 56, "payload overflow in ",
                   layout.mnemonic);
    return word;
}

std::uint64_t
encode(const Instruction &inst)
{
    auto word = tryEncode(inst);
    if (!word)
        fatal(word.error().str());
    return word.value();
}

guard::Expected<Instruction>
tryDecode(std::uint64_t word)
{
    const auto op_index = static_cast<std::size_t>(word >> 56);
    if (op_index >= static_cast<std::size_t>(Opcode::NumOpcodes)) {
        return guard::makeError(guard::Category::Parse, "isa.decode",
                                "cannot decode unknown opcode ",
                                op_index);
    }
    Instruction inst;
    inst.op = static_cast<Opcode>(op_index);
    const OpLayout &layout = layoutOf(inst.op);
    int shift = 0;
    for (int a = 0; a < layout.numArgs; ++a) {
        const int width = layout.widths[a];
        inst.args[a] = static_cast<std::uint32_t>(
            (word >> shift) & ((std::uint64_t{1} << width) - 1));
        shift += width;
    }
    return inst;
}

Instruction
decode(std::uint64_t word)
{
    auto inst = tryDecode(word);
    if (!inst)
        fatal(inst.error().str());
    return inst.value();
}

std::vector<std::uint64_t>
encode(const Program &program)
{
    std::vector<std::uint64_t> words;
    words.reserve(program.instructions.size());
    for (const Instruction &inst : program.instructions)
        words.push_back(encode(inst));
    return words;
}

Program
decode(const std::vector<std::uint64_t> &words)
{
    Program program;
    program.instructions.reserve(words.size());
    for (std::uint64_t word : words)
        program.instructions.push_back(decode(word));
    return program;
}

std::string
disassemble(const Instruction &inst)
{
    const OpLayout &layout = layoutOf(inst.op);
    std::ostringstream oss;
    oss << layout.mnemonic;
    for (int a = 0; a < layout.numArgs; ++a) {
        if (inst.op == Opcode::Pool && a == 2) {
            oss << ' ' << (inst.args[a] == 0 ? "max" : "avg");
        } else {
            oss << ' ' << inst.args[a];
        }
    }
    return oss.str();
}

std::string
disassemble(const Program &program)
{
    std::string out;
    for (const Instruction &inst : program.instructions) {
        out += disassemble(inst);
        out += '\n';
    }
    return out;
}

namespace {

constexpr char kMagic[4] = {'F', 'F', 'S', 'M'};
constexpr std::uint8_t kBinaryVersion = 1;

void
writeLe64(std::ostream &os, std::uint64_t value)
{
    for (int b = 0; b < 8; ++b)
        os.put(static_cast<char>((value >> (8 * b)) & 0xff));
}

/** Little-endian 64-bit read from an in-memory image (bounds are the
 * caller's job). */
std::uint64_t
readLe64(const std::string &bytes, std::size_t offset)
{
    std::uint64_t value = 0;
    for (int b = 0; b < 8; ++b) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[offset + b]))
                 << (8 * b);
    }
    return value;
}

constexpr std::size_t kHeaderBytes = 4 + 1 + 8; // magic, version, count

} // namespace

void
saveBinary(const Program &program, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write program binary ", path);
    out.write(kMagic, 4);
    out.put(static_cast<char>(kBinaryVersion));
    writeLe64(out, program.instructions.size());
    for (const Instruction &inst : program.instructions)
        writeLe64(out, encode(inst));
    if (!out)
        fatal("I/O error writing program binary ", path);
}

guard::Expected<Program>
tryParseBinary(const std::string &bytes, const std::string &origin)
{
    if (bytes.size() < kHeaderBytes ||
        std::memcmp(bytes.data(), kMagic, 4) != 0) {
        return guard::makeError(guard::Category::Parse, "isa.binary",
                                origin,
                                " is not a FlexFlow binary program");
    }
    const int version = static_cast<unsigned char>(bytes[4]);
    if (version != kBinaryVersion) {
        return guard::makeError(guard::Category::Unsupported,
                                "isa.binary", origin,
                                " has unsupported binary version ",
                                version);
    }
    const std::uint64_t count = readLe64(bytes, 5);
    // Check the claimed count against the bytes actually present
    // before reserving anything: a hostile header saying "2^61
    // instructions" must not drive a huge allocation.
    const std::uint64_t available = (bytes.size() - kHeaderBytes) / 8;
    if (count > available) {
        return guard::makeError(
            guard::Category::Parse, "isa.binary", origin, " claims ",
            count, " instructions but only has bytes for ", available,
            " (truncated or corrupt)");
    }
    if (bytes.size() != kHeaderBytes + count * 8) {
        return guard::makeError(guard::Category::Parse, "isa.binary",
                                origin, " has ",
                                bytes.size() - kHeaderBytes - count * 8,
                                " trailing bytes after ", count,
                                " instructions");
    }
    Program program;
    program.instructions.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        auto inst = tryDecode(readLe64(bytes, kHeaderBytes + i * 8));
        if (!inst) {
            return guard::makeError(guard::Category::Parse,
                                    "isa.binary", origin,
                                    ", instruction ", i, ": ",
                                    inst.error().message);
        }
        program.instructions.push_back(inst.value());
    }
    return program;
}

guard::Expected<Program>
tryLoadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return guard::makeError(guard::Category::Io, "isa.binary",
                                "cannot read program binary ", path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return guard::makeError(guard::Category::Io, "isa.binary",
                                "I/O error reading program binary ",
                                path);
    }
    return tryParseBinary(buffer.str(), path);
}

Program
loadBinary(const std::string &path)
{
    auto program = tryLoadBinary(path);
    if (!program)
        fatal(program.error().str());
    return program.value();
}

guard::Expected<Program>
tryAssemble(const std::string &source)
{
    const auto syntaxError = [](int line_no, const auto &...parts) {
        return guard::makeError(guard::Category::Parse, "isa.assemble",
                                "line ", line_no, ": ", parts...);
    };
    Program program;
    std::istringstream iss(source);
    std::string line;
    int line_no = 0;
    while (std::getline(iss, line)) {
        ++line_no;
        const std::size_t comment = line.find_first_of(";#");
        if (comment != std::string::npos)
            line.erase(comment);
        const std::vector<std::string> fields = splitWhitespace(line);
        if (fields.empty())
            continue;

        const std::string mnemonic = toLower(fields[0]);
        Instruction inst;
        bool found = false;
        for (std::size_t op = 0;
             op < static_cast<std::size_t>(Opcode::NumOpcodes); ++op) {
            if (layoutOf(static_cast<Opcode>(op)).mnemonic == mnemonic) {
                inst.op = static_cast<Opcode>(op);
                found = true;
                break;
            }
        }
        if (!found) {
            return syntaxError(line_no, "unknown mnemonic '", mnemonic,
                               "'");
        }

        const OpLayout &layout = layoutOf(inst.op);
        if (static_cast<int>(fields.size()) - 1 != layout.numArgs) {
            return syntaxError(line_no, mnemonic, " expects ",
                               layout.numArgs, " operands, got ",
                               fields.size() - 1);
        }
        for (int a = 0; a < layout.numArgs; ++a) {
            const std::string &field = fields[a + 1];
            if (inst.op == Opcode::Pool && a == 2) {
                const std::string op_name = toLower(field);
                if (op_name == "max") {
                    inst.args[a] = 0;
                } else if (op_name == "avg") {
                    inst.args[a] = 1;
                } else {
                    return syntaxError(line_no,
                                       "pool op must be max or avg, "
                                       "got '",
                                       field, "'");
                }
                continue;
            }
            try {
                std::size_t pos = 0;
                const unsigned long value = std::stoul(field, &pos);
                if (pos != field.size())
                    throw std::invalid_argument(field);
                inst.args[a] = static_cast<std::uint32_t>(value);
            } catch (const std::exception &) {
                return syntaxError(line_no, "bad operand '", field,
                                   "' for ", mnemonic);
            }
        }
        // Round-trip through the binary encoding so field overflows
        // are caught at assembly time.
        auto word = tryEncode(inst);
        if (!word)
            return syntaxError(line_no, word.error().message);
        program.instructions.push_back(decode(word.value()));
    }
    return program;
}

Program
assemble(const std::string &source)
{
    auto program = tryAssemble(source);
    if (!program)
        fatal(program.error().str());
    return program.value();
}

} // namespace flexsim
