#include "flexflow/iadp_layout.hh"

#include "arch/unroll.hh"
#include "common/logging.hh"

namespace flexsim {

NeuronIadpLayout::NeuronIadpLayout(const UnrollFactors &t,
                                   const ConvLayerSpec &spec)
    : map_(t), spec_(spec), banks_(t.columnDemand())
{
    spec_.validate();
}

BufferAddress
NeuronIadpLayout::addressOf(int n, int x, int y) const
{
    flexsim_assert(n >= 0 && n < spec_.inMaps && x >= 0 &&
                       x < spec_.inSize && y >= 0 && y < spec_.inSize,
                   "neuron coordinate outside layer ", spec_.name);
    BufferAddress addr;
    addr.bank = static_cast<unsigned>(map_.colOf(n, x, y));
    // Within a bank, words are stored in (n, x, y) raster order of the
    // bank's residue class; the local index is the rank of (n, x, y)
    // among same-class words.
    const UnrollFactors &t = map_.factors();
    const long long n_rank = n / t.tn;
    const long long x_rank = x / t.ti;
    const long long y_rank = y / t.tj;
    const long long xs_per_class = ceilDiv(spec_.inSize, t.ti);
    const long long ys_per_class = ceilDiv(spec_.inSize, t.tj);
    addr.index = static_cast<std::size_t>(
        (n_rank * xs_per_class + x_rank) * ys_per_class + y_rank);
    return addr;
}

std::size_t
NeuronIadpLayout::wordsPerBank() const
{
    const UnrollFactors &t = map_.factors();
    return static_cast<std::size_t>(ceilDiv(spec_.inMaps, t.tn)) *
           ceilDiv(spec_.inSize, t.ti) * ceilDiv(spec_.inSize, t.tj);
}

KernelIadpLayout::KernelIadpLayout(const UnrollFactors &t,
                                   const ConvLayerSpec &spec)
    : t_(t), spec_(spec), banks_(t.rowDemand())
{
    spec_.validate();
}

BufferAddress
KernelIadpLayout::addressOf(int m, int n, int i, int j) const
{
    flexsim_assert(m >= 0 && m < spec_.outMaps && n >= 0 &&
                       n < spec_.inMaps && i >= 0 && i < spec_.kernel &&
                       j >= 0 && j < spec_.kernel,
                   "synapse coordinate outside layer ", spec_.name);
    BufferAddress addr;
    // Group by output map; kernels are row-major inside a group and
    // the word's serial position selects the subgroup bank so that a
    // group's sequential reads rotate through its Tr * Tc banks.
    const int group = m % t_.tm;
    const long long serial =
        (static_cast<long long>(n) * spec_.kernel + i) * spec_.kernel +
        j;
    const int banks_per_group = t_.tr * t_.tc;
    addr.bank = static_cast<unsigned>(
        group * banks_per_group +
        static_cast<int>(serial % banks_per_group));
    const long long kernels_per_group =
        ceilDiv(spec_.outMaps, t_.tm);
    const long long m_rank = m / t_.tm;
    const long long words_per_kernel = static_cast<long long>(
        spec_.inMaps) * spec_.kernel * spec_.kernel;
    const long long serial_rank = serial / banks_per_group;
    const long long slots_per_kernel =
        ceilDiv(words_per_kernel, banks_per_group);
    addr.index = static_cast<std::size_t>(
        m_rank * slots_per_kernel + serial_rank);
    (void)kernels_per_group;
    return addr;
}

std::size_t
KernelIadpLayout::wordsPerBank() const
{
    const long long words_per_kernel = static_cast<long long>(
        spec_.inMaps) * spec_.kernel * spec_.kernel;
    return static_cast<std::size_t>(
        ceilDiv(spec_.outMaps, t_.tm) *
        ceilDiv(words_per_kernel, t_.tr * t_.tc));
}

int
KernelIadpLayout::replicationFactor() const
{
    return t_.tr * t_.tc;
}

} // namespace flexsim
