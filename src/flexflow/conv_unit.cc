#include "flexflow/conv_unit.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "arch/dram_planner.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "fault/degrade.hh"
#include "flexflow/mapping.hh"
#include "flexflow/schedule.hh"
#include "nn/mac_kernels.hh"
#include "sim/thread_pool.hh"

namespace flexsim {

namespace {

/**
 * One MAC obligation of a (PE row, PE column) pair, reduced to the two
 * operand offsets the compute loop needs: inRel addresses the input
 * word relative to the batch's window origin, kRel addresses the
 * synapse relative to the row's output map.  Only materialized when a
 * fault plan needs per-task injection sites; the zero-fault path runs
 * on the span form below.
 */
struct HotTask
{
    std::int32_t inRel;
    std::int32_t kRel;
};

/**
 * A maximal run of a row's tasks whose input and kernel operands are
 * both contiguous in memory.  The (n, i, j) task order makes every
 * j-run a span of length `kernel`; adjacent spans merge further when
 * the operand strides happen to continue (e.g. 1x1-output FC-style
 * layers collapse a whole row into a single dot product).  The span
 * form feeds dotSpan(), which the compiler auto-vectorizes — the
 * fixed-point sum is exactly associative, so the result is
 * bit-identical to the task-at-a-time loop.
 */
struct TaskSpan
{
    std::int32_t inRel;
    std::int32_t kRel;
    std::int32_t len;
};

/**
 * One distinct input word a batch delivers on a column's vertical CDB,
 * again relative to the batch's window origin.  dx/dy are kept so the
 * retention bookkeeping can bin the word by absolute input row/column.
 */
struct DeliveryWord
{
    std::int32_t inRel;
    std::int32_t dx;
    std::int32_t dy;
};

/**
 * The complete task pattern of one batch boundary shape.  Two batches
 * share a pattern when they execute the same pass (n-range), have the
 * same number of valid m/r/c lanes (interior block vs layer edge), and
 * their window origins agree mod (Ti, Tj) — nothing else about the
 * (mb, rb, cb) position changes which MAC lands on which PE.  The
 * pattern is precomputed once per distinct shape and shared by every
 * batch of that shape, which hoists the former per-batch task-queue
 * construction out of the hot loop entirely.
 */
struct BatchSchedule
{
    std::vector<std::uint8_t> rowValid;
    /** Contiguous-operand task spans, grouped by row (column order is
     * irrelevant to the summed result; see DESIGN.md §3.6). */
    std::vector<TaskSpan> spans;
    std::vector<std::int32_t> rowSpanBegin; ///< rows + 1 offsets
    /** Task counts by row (rows + 1 prefix offsets); the per-task
     * vectors below exist only when MAC faults need per-task sites. */
    std::vector<std::int32_t> rowTaskBegin;
    std::vector<HotTask> tasks;
    std::vector<std::int32_t> taskCol; ///< per-task logical column
    /** Distinct words per column, grouped contiguously by column. */
    std::vector<DeliveryWord> words;
    std::vector<std::int32_t> colWordBegin; ///< cols + 1 offsets
    /** Largest per-(row, column) task queue — the RS step count. */
    std::size_t maxTasksPerPe = 0;
};

BatchSchedule
buildBatchSchedule(const ConvLayerSpec &spec, const LaneMapping &map,
                   const SchedulePass &pass, int m_valid, int r_valid,
                   int c_valid, int x_phase, int y_phase, int in_h,
                   int in_w, bool record_tasks)
{
    const UnrollFactors &t = map.factors();
    const int rows = map.usedRows();
    const int cols = map.usedCols();
    const int k = spec.kernel;
    const int stride = spec.stride;
    const int n_range = pass.nEnd - pass.nBegin;
    const int span_x = (t.tr - 1) * stride + k;
    const int span_y = (t.tc - 1) * stride + k;

    BatchSchedule sched;
    sched.rowValid.resize(rows);
    sched.rowTaskBegin.assign(rows + 1, 0);
    sched.rowSpanBegin.assign(rows + 1, 0);
    if (record_tasks) {
        sched.tasks.reserve(static_cast<std::size_t>(rows) * n_range *
                            k * k);
    }

    std::vector<std::int32_t> queue_len(
        static_cast<std::size_t>(rows) * cols, 0);
    std::vector<std::uint8_t> seen(
        static_cast<std::size_t>(n_range) * span_x * span_y, 0);
    std::vector<std::vector<DeliveryWord>> col_words(cols);

    std::int32_t task_count = 0;
    for (int row = 0; row < rows; ++row) {
        sched.rowTaskBegin[row] = task_count;
        sched.rowSpanBegin[row] =
            static_cast<std::int32_t>(sched.spans.size());
        const RowLane lane = map.rowLane(row);
        const bool valid = lane.mOff < m_valid && lane.rOff < r_valid &&
                           lane.cOff < c_valid;
        sched.rowValid[row] = valid;
        if (!valid)
            continue;
        for (int n = pass.nBegin; n < pass.nEnd; ++n) {
            for (int i = 0; i < k; ++i) {
                const int dx = lane.rOff * stride + i;
                for (int j = 0; j < k; ++j) {
                    const int dy = lane.cOff * stride + j;
                    const int col = (n % t.tn) * t.ti * t.tj +
                                    ((x_phase + dx) % t.ti) * t.tj +
                                    (y_phase + dy) % t.tj;
                    ++queue_len[static_cast<std::size_t>(row) * cols +
                                col];
                    const std::int32_t in_rel =
                        (n * in_h + dx) * in_w + dy;
                    const std::int32_t k_rel =
                        static_cast<std::int32_t>((n * k + i) * k + j);
                    ++task_count;
                    if (record_tasks) {
                        sched.tasks.push_back(HotTask{in_rel, k_rel});
                        sched.taskCol.push_back(col);
                    }
                    // Extend the current span while both operand
                    // streams stay contiguous; start a new one
                    // otherwise.
                    bool extended = false;
                    if (static_cast<std::size_t>(
                            sched.rowSpanBegin[row]) <
                        sched.spans.size()) {
                        TaskSpan &last = sched.spans.back();
                        if (last.inRel + last.len == in_rel &&
                            last.kRel + last.len == k_rel) {
                            ++last.len;
                            extended = true;
                        }
                    }
                    if (!extended) {
                        sched.spans.push_back(
                            TaskSpan{in_rel, k_rel, 1});
                    }
                    const std::size_t word =
                        (static_cast<std::size_t>(n - pass.nBegin) *
                             span_x +
                         dx) *
                            span_y +
                        dy;
                    if (!seen[word]) {
                        seen[word] = 1;
                        col_words[col].push_back(
                            DeliveryWord{in_rel, dx, dy});
                    }
                }
            }
        }
    }
    sched.rowTaskBegin[rows] = task_count;
    sched.rowSpanBegin[rows] =
        static_cast<std::int32_t>(sched.spans.size());

    sched.colWordBegin.assign(cols + 1, 0);
    for (int col = 0; col < cols; ++col) {
        sched.colWordBegin[col] =
            static_cast<std::int32_t>(sched.words.size());
        sched.words.insert(sched.words.end(), col_words[col].begin(),
                           col_words[col].end());
    }
    sched.colWordBegin[cols] =
        static_cast<std::int32_t>(sched.words.size());

    for (const std::int32_t len : queue_len) {
        sched.maxTasksPerPe = std::max(
            sched.maxTasksPerPe, static_cast<std::size_t>(len));
    }
    // The former per-batch schedule-length self-check, now evaluated
    // once per shape: the RS task queues must exactly fill the pass's
    // step count.
    flexsim_assert(sched.maxTasksPerPe ==
                       static_cast<std::size_t>(pass.steps),
                   "batch task schedule length ", sched.maxTasksPerPe,
                   " != step count ", pass.steps, " in layer ",
                   spec.name);
    return sched;
}

/**
 * The flat generation-stamped window store driving the delivery
 * analysis: one slot per input word (the columns partition the words,
 * so one flat array serves all columns).  A word is resident iff its
 * stamp equals the current epoch; "clear" is an epoch bump, and the
 * sliding-window prunes only adjust the per-column occupancy
 * histograms — no per-word erase work and no hashing anywhere.
 *
 * Residency depends only on (pass, m-boundary class) and the
 * sequential (rb, cb) batch walk — never on which output-map block is
 * computing — so the store now lives in the once-per-class delivery
 * analysis instead of being replicated per worker thread.
 */
struct WindowStore
{
    std::vector<std::uint32_t> gen;
    std::uint32_t epoch = 0;
    std::vector<std::int32_t> colSize; ///< resident words per column
    std::vector<std::int32_t> hist;    ///< per-column occupancy by x or y
    int histBins = 0;

    void
    init(std::size_t input_words, int cols, int hist_bins)
    {
        gen.assign(input_words, 0);
        epoch = 0;
        colSize.assign(cols, 0);
        hist.assign(static_cast<std::size_t>(cols) * hist_bins, 0);
        histBins = hist_bins;
    }

    /** Restart the stores (a new (block, pass) n-chunk). */
    void
    restartStores()
    {
        if (epoch == std::numeric_limits<std::uint32_t>::max()) {
            std::fill(gen.begin(), gen.end(), 0u);
            epoch = 0;
        }
        ++epoch;
        std::fill(colSize.begin(), colSize.end(), 0);
        std::fill(hist.begin(), hist.end(), 0);
    }

    /** Drop retained words whose bin lies in [from, to). */
    void
    prune(int from, int to)
    {
        from = std::max(from, 0);
        to = std::min(to, histBins);
        const int cols = static_cast<int>(colSize.size());
        for (int col = 0; col < cols; ++col) {
            std::int32_t *bins =
                hist.data() + static_cast<std::size_t>(col) * histBins;
            for (int bin = from; bin < to; ++bin) {
                colSize[col] -= bins[bin];
                bins[bin] = 0;
            }
        }
    }
};

/** Delivery-phase totals of one (pass, m-class) batch walk; applied
 * once per output-map block of that class. */
struct DeliveryStats
{
    WordCount neuronIn = 0;
    std::uint64_t stallCycles = 0;
    std::size_t peakColumnStoreWords = 0;
};

/**
 * Per-lane compute-phase state: the private counter records merged
 * deterministically (in lane order, all sums or maxes) after the tile
 * queue drains.  Tiles own disjoint accumulator slices, so lanes
 * share no mutable data at all.
 */
struct WorkerState
{
    LayerResult record;
    ConvUnitDiagnostics diag;
};

} // namespace

FlexFlowConvUnit::FlexFlowConvUnit(FlexFlowConfig config)
    : config_(config)
{
    flexsim_assert(config_.d >= 1, "bad FlexFlow configuration");
}

Tensor3<>
FlexFlowConvUnit::runLayer(const ConvLayerSpec &spec,
                           const UnrollFactors &t, const Tensor3<> &input,
                           const Tensor4<> &kernels, LayerResult *result,
                           ConvUnitDiagnostics *diag)
{
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);
    flexsim_assert(spec.stride <= spec.kernel,
                   "stride larger than the kernel leaves input gaps "
                   "the contiguous IADP layout does not model");

    const FlexFlowSchedule sched = planSchedule(spec, t, config_);
    flexsim_assert(!sched.kernelStreaming,
                   "the cycle simulator models the real design; the "
                   "kernel-streaming ablation arm is analytic only");
    const LaneMapping map(t);
    const int rows_used = map.usedRows();
    const int cols_used = map.usedCols();
    const int s = spec.outSize;
    const int k = spec.kernel;
    const int stride = spec.stride;
    const int splits = sched.splits();
    const int in_h = input.height();
    const int in_w = input.width();
    const int m_blocks = static_cast<int>(sched.mBlocks);
    const int r_blocks = static_cast<int>(sched.rBlocks);
    const int c_blocks = static_cast<int>(sched.cBlocks);

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    ConvUnitDiagnostics diagnostics;

    // ---- fault-plan setup -----------------------------------------
    // An absent or empty plan keeps every code path below identical
    // to the healthy unit: no allocation, no per-task column record,
    // and the span-form compute loop.
    const fault::FaultPlan *plan =
        (faults_ != nullptr && !faults_->empty()) ? faults_ : nullptr;
    std::vector<std::uint8_t> stuck;
    bool stuck_active = false;
    if (plan != nullptr && plan->affectsArray()) {
        plan->validate(config_.d);
        // The deterministic line cover fixes which physical rows and
        // columns survive; the fault-aware factor search uses the
        // same policy, so logical lanes map onto surviving lines in
        // order.
        fault::DegradedGeometry geom;
        if (plan->affectsGeometry()) {
            geom = fault::degradeLineCover(
                fault::ArrayAvailability::fromPlan(*plan, config_.d));
        } else {
            geom.rows = geom.cols = config_.d;
            for (int i = 0; i < config_.d; ++i) {
                geom.physRows.push_back(i);
                geom.physCols.push_back(i);
            }
        }
        flexsim_assert(rows_used <= geom.rows &&
                           cols_used <= geom.cols,
                       "factors ", t.toString(), " need ", rows_used,
                       "x", cols_used,
                       " PEs but the degraded array keeps only ",
                       geom.rows, "x", geom.cols,
                       " (recompile for the fault plan)");
        stuck.assign(static_cast<std::size_t>(rows_used) * cols_used,
                     0);
        for (const fault::PeCoord &pe : plan->stuckPes) {
            // A stuck PE matters iff its physical row and column
            // survive the cover and land inside the used region.
            const auto lr = std::find(geom.physRows.begin(),
                                      geom.physRows.end(), pe.row);
            const auto lc = std::find(geom.physCols.begin(),
                                      geom.physCols.end(), pe.col);
            if (lr == geom.physRows.end() ||
                lc == geom.physCols.end())
                continue;
            const auto row = lr - geom.physRows.begin();
            const auto col = lc - geom.physCols.begin();
            if (row < rows_used && col < cols_used) {
                stuck[static_cast<std::size_t>(row) * cols_used +
                      col] = 1;
                stuck_active = true;
            }
        }
    }
    const bool flip_active = plan != nullptr && plan->flipRate > 0.0;
    const double flip_rate = flip_active ? plan->flipRate : 0.0;
    const Acc flip_mask =
        plan != nullptr ? static_cast<Acc>(plan->flipMask) : 0;
    const std::uint64_t fault_seed = plan != nullptr ? plan->seed : 0;
    const bool mac_faults = stuck_active || flip_active;

    trace::printf("ConvUnit", "layer ", spec.name, " factors ",
                  t.toString(), ": ",
                  sched.mBlocks * sched.rBlocks * sched.cBlocks,
                  " batches x ", sched.stepsTotal, " steps in ",
                  sched.splits(), " pass(es), band retention ",
                  sched.bandRetention ? "on" : "off");

    // The first pass's first preload cannot hide behind earlier
    // compute.
    record.cycles = static_cast<Cycle>(sched.fillCycles());
    record.fillCycles = static_cast<Cycle>(sched.fillCycles());

    const WordCount group_rows = static_cast<WordCount>(t.tr) * t.tc;

    // Full-precision partial results accumulated across passes
    // (cycled through the output neuron buffer between passes).
    std::vector<Acc> acc(static_cast<std::size_t>(spec.outMaps) * s *
                             s,
                         0);

    // ---- batch-shape classification -------------------------------
    // Every (mb, rb, cb, pass) batch maps to one of a handful of
    // boundary shapes; decode the class of each block index once.
    std::vector<RowLane> lanes(rows_used);
    for (int row = 0; row < rows_used; ++row)
        lanes[row] = map.rowLane(row);

    std::map<int, int> m_class_of;
    std::vector<int> m_class(m_blocks), m_class_valid;
    for (int mb = 0; mb < m_blocks; ++mb) {
        const int m_valid =
            std::min<int>(t.tm, spec.outMaps - mb * t.tm);
        auto [it, fresh] = m_class_of.try_emplace(
            m_valid, static_cast<int>(m_class_valid.size()));
        if (fresh)
            m_class_valid.push_back(m_valid);
        m_class[mb] = it->second;
    }
    std::map<std::pair<int, int>, int> r_class_of;
    std::vector<int> r_class(r_blocks);
    std::vector<std::pair<int, int>> r_class_shape;
    for (int rb = 0; rb < r_blocks; ++rb) {
        const std::pair<int, int> shape{
            std::min<int>(t.tr, s - rb * t.tr),
            (rb * t.tr * stride) % t.ti};
        auto [it, fresh] = r_class_of.try_emplace(
            shape, static_cast<int>(r_class_shape.size()));
        if (fresh)
            r_class_shape.push_back(shape);
        r_class[rb] = it->second;
    }
    std::map<std::pair<int, int>, int> c_class_of;
    std::vector<int> c_class(c_blocks);
    std::vector<std::pair<int, int>> c_class_shape;
    for (int cb = 0; cb < c_blocks; ++cb) {
        const std::pair<int, int> shape{
            std::min<int>(t.tc, s - cb * t.tc),
            (cb * t.tc * stride) % t.tj};
        auto [it, fresh] = c_class_of.try_emplace(
            shape, static_cast<int>(c_class_shape.size()));
        if (fresh)
            c_class_shape.push_back(shape);
        c_class[cb] = it->second;
    }

    const int n_mc = static_cast<int>(m_class_valid.size());
    const int n_rc = static_cast<int>(r_class_shape.size());
    const int n_cc = static_cast<int>(c_class_shape.size());
    std::vector<BatchSchedule> schedules(
        static_cast<std::size_t>(splits) * n_mc * n_rc * n_cc);
    const auto schedule_index = [&](int pass, int mc, int rc, int cc) {
        return ((static_cast<std::size_t>(pass) * n_mc + mc) * n_rc +
                rc) *
                   n_cc +
               cc;
    };
    for (int pass = 0; pass < splits; ++pass) {
        for (int mc = 0; mc < n_mc; ++mc) {
            for (int rc = 0; rc < n_rc; ++rc) {
                for (int cc = 0; cc < n_cc; ++cc) {
                    schedules[schedule_index(pass, mc, rc, cc)] =
                        buildBatchSchedule(
                            spec, map, sched.passes[pass],
                            m_class_valid[mc], r_class_shape[rc].first,
                            c_class_shape[cc].first,
                            r_class_shape[rc].second,
                            c_class_shape[cc].second, in_h, in_w,
                            mac_faults);
                }
            }
        }
    }

    // ---- operand-buffer faults ------------------------------------
    // Silent faults corrupt working copies of the operand tensors;
    // parity-protected buffers detect each bad word and scrub it
    // with a DRAM refetch instead, leaving the data clean.
    Tensor3<> patched_input;
    Tensor4<> patched_kernels;
    const Fixed16 *in_data = input.data();
    const Fixed16 *k_data = kernels.data();
    if (plan != nullptr && plan->affectsBuffers()) {
        if (plan->parityDetect) {
            diagnostics.faults.paritiesDetected +=
                plan->bufferFaults.size();
            diagnostics.faults.scrubbedWords +=
                plan->bufferFaults.size();
        } else {
            patched_input = input;
            patched_kernels = kernels;
            for (const fault::BufferFault &f : plan->bufferFaults) {
                const std::int16_t mask =
                    static_cast<std::int16_t>(1 << f.bit);
                if (f.target == fault::BufferFault::Target::Neuron) {
                    const std::size_t idx = f.word % input.size();
                    Fixed16 &word = patched_input.at(
                        static_cast<int>(
                            idx / (static_cast<std::size_t>(in_h) *
                                   in_w)),
                        static_cast<int>((idx / in_w) % in_h),
                        static_cast<int>(idx % in_w));
                    word = Fixed16::fromRaw(
                        static_cast<std::int16_t>(word.raw() ^ mask));
                } else {
                    const std::size_t idx = f.word % kernels.size();
                    const std::size_t kk =
                        static_cast<std::size_t>(k) * k;
                    Fixed16 &word = patched_kernels.at(
                        static_cast<int>(idx / (kk * spec.inMaps)),
                        static_cast<int>((idx / kk) % spec.inMaps),
                        static_cast<int>((idx / k) % k),
                        static_cast<int>(idx % k));
                    word = Fixed16::fromRaw(
                        static_cast<std::int16_t>(word.raw() ^ mask));
                }
            }
            diagnostics.faults.corruptedWords +=
                plan->bufferFaults.size();
            in_data = patched_input.data();
            k_data = patched_kernels.data();
        }
    }

    const std::size_t kernel_map_stride =
        static_cast<std::size_t>(spec.inMaps) * k * k;
    const bool band = sched.bandRetention;
    const int hist_bins = band ? in_h : in_w;

    // ---- delivery analysis (sequential) ---------------------------
    // Vertical-CDB delivery and window-store residency depend only on
    // the pass and the m-boundary class — never on which output-map
    // block is computing — so the former per-thread replay of the
    // window store collapses to one sequential (rb, cb) walk per
    // (pass, m-class), applied once per block of that class.  For a
    // layer like conv5 (12 interior output-map blocks) this removes
    // ~11/12 of all delivery work before any thread even starts.
    std::vector<DeliveryStats> delivery(
        static_cast<std::size_t>(splits) * n_mc);
    {
        WindowStore store;
        store.init(input.size(), cols_used, hist_bins);
        for (int pass = 0; pass < splits; ++pass) {
            const SchedulePass &p = sched.passes[pass];
            for (int mc = 0; mc < n_mc; ++mc) {
                DeliveryStats &stats =
                    delivery[static_cast<std::size_t>(pass) * n_mc +
                             mc];
                store.restartStores();
                int pruned_to = 0;
                for (int rb = 0; rb < r_blocks; ++rb) {
                    const int x_base = rb * t.tr * stride;
                    if (band) {
                        // Retain the window; drop rows that slid out.
                        store.prune(pruned_to, x_base);
                        pruned_to = x_base;
                    } else {
                        store.restartStores();
                        pruned_to = 0;
                    }
                    for (int cb = 0; cb < c_blocks; ++cb) {
                        const int y_base = cb * t.tc * stride;
                        const std::int32_t in_base =
                            x_base * in_w + y_base;
                        const BatchSchedule &bs =
                            schedules[schedule_index(
                                pass, mc, r_class[rb], c_class[cb])];

                        // Each new word reaches its column once; PEs
                        // latch what they will use.
                        std::int32_t max_new = 0;
                        for (int col = 0; col < cols_used; ++col) {
                            std::int32_t new_words = 0;
                            std::int32_t *bins =
                                store.hist.data() +
                                static_cast<std::size_t>(col) *
                                    store.histBins;
                            for (std::int32_t w = bs.colWordBegin[col];
                                 w < bs.colWordBegin[col + 1]; ++w) {
                                const DeliveryWord &word = bs.words[w];
                                const std::size_t slot =
                                    static_cast<std::size_t>(in_base) +
                                    word.inRel;
                                if (store.gen[slot] != store.epoch) {
                                    store.gen[slot] = store.epoch;
                                    ++new_words;
                                    ++bins[band ? x_base + word.dx
                                                : y_base + word.dy];
                                }
                            }
                            store.colSize[col] += new_words;
                            stats.neuronIn +=
                                static_cast<WordCount>(new_words);
                            max_new = std::max(max_new, new_words);
                            stats.peakColumnStoreWords = std::max(
                                stats.peakColumnStoreWords,
                                static_cast<std::size_t>(
                                    store.colSize[col]));
                        }
                        if (max_new > p.steps) {
                            stats.stallCycles +=
                                static_cast<std::uint64_t>(max_new -
                                                           p.steps);
                        }
#ifdef FLEXSIM_PARANOID
                        // RA self-check: every operand the compute
                        // phase will read for this batch must be
                        // resident in the column stores right now.
                        for (int row = 0; row < rows_used; ++row) {
                            if (!bs.rowValid[row])
                                continue;
                            for (std::int32_t sp =
                                     bs.rowSpanBegin[row];
                                 sp < bs.rowSpanBegin[row + 1];
                                 ++sp) {
                                const TaskSpan &span = bs.spans[sp];
                                for (std::int32_t o = 0;
                                     o < span.len; ++o) {
                                    flexsim_paranoid_assert(
                                        store.gen
                                                [static_cast<
                                                     std::size_t>(
                                                     in_base) +
                                                 span.inRel + o] ==
                                            store.epoch,
                                        "FlexFlow column store "
                                        "delivered a stale operand");
                                }
                            }
                        }
#endif
                        if (!band) {
                            // RS retention: prune window columns that
                            // slid out.
                            const int next_y_base =
                                (cb + 1) * t.tc * stride;
                            store.prune(pruned_to, next_y_base);
                            pruned_to = next_y_base;
                        }
                    }
                }
            }
        }
    }

    // Per-(block, pass) aggregates: broadcast kernels latched by each
    // logical group's rows (IPDR), the class's delivery totals, and
    // the batch step cycles — all independent of the compute phase.
    for (int mb = 0; mb < m_blocks; ++mb) {
        const int mc = m_class[mb];
        for (int pass = 0; pass < splits; ++pass) {
            const SchedulePass &p = sched.passes[pass];
            const WordCount kernel_words =
                static_cast<WordCount>(m_class_valid[mc]) *
                (p.nEnd - p.nBegin) * k * k;
            record.traffic.kernelIn += kernel_words;
            record.localStoreWrites += kernel_words * group_rows;
            const DeliveryStats &stats =
                delivery[static_cast<std::size_t>(pass) * n_mc + mc];
            record.traffic.neuronIn += stats.neuronIn;
            diagnostics.deliveryStallCycles += stats.stallCycles;
            diagnostics.peakColumnStoreWords =
                std::max(diagnostics.peakColumnStoreWords,
                         stats.peakColumnStoreWords);
            record.cycles += static_cast<Cycle>(p.steps) * r_blocks *
                             c_blocks;
            diagnostics.batches +=
                static_cast<std::uint64_t>(r_blocks) * c_blocks;
        }
    }

    // ---- compute phase (parallel over flat tiles) -----------------
    // One tile per (mb, rb, cb) batch position; a tile runs all of
    // its passes back to back so the accumulator slice it owns is
    // touched by exactly one lane.  Tiles are claimed from the shared
    // pool's atomic queue, so the lane-to-tile assignment is
    // nondeterministic — but every per-lane counter below is a sum or
    // max merged in lane order, and the fault draws hash only logical
    // sites, so results are bit-identical at any thread count.
    const auto run_tile = [&](int mb, int rb, int cb,
                              WorkerState &ws) {
        const int mc = m_class[mb];
        const int x_base = rb * t.tr * stride;
        const int y_base = cb * t.tc * stride;
        const std::int32_t in_base = x_base * in_w + y_base;
        for (int pass = 0; pass < splits; ++pass) {
            const BatchSchedule &bs = schedules[schedule_index(
                pass, mc, r_class[rb], c_class[cb])];
            ws.diag.maxTasksPerPe = std::max(ws.diag.maxTasksPerPe,
                                             bs.maxTasksPerPe);

            // `steps` cycles of asynchronous (RS) per-PE task
            // execution with row-tree folding.  The fixed-point
            // accumulation is order-independent, so each row's tasks
            // run contiguously as vectorizable operand spans instead
            // of cycle-interleaved.
            for (int row = 0; row < rows_used; ++row) {
                if (!bs.rowValid[row])
                    continue;
                const std::int32_t begin = bs.rowTaskBegin[row];
                const std::int32_t end = bs.rowTaskBegin[row + 1];
                const std::size_t k_base =
                    static_cast<std::size_t>(mb * t.tm +
                                             lanes[row].mOff) *
                    kernel_map_stride;
                Acc row_sum = 0;
                if (!mac_faults) {
                    for (std::int32_t sp = bs.rowSpanBegin[row];
                         sp < bs.rowSpanBegin[row + 1]; ++sp) {
                        const TaskSpan &span = bs.spans[sp];
                        row_sum += dotSpan(
                            in_data + in_base + span.inRel,
                            k_data + k_base + span.kRel, span.len);
                    }
                } else {
                    // Faulty datapath: stuck PEs zero their product,
                    // transient flips XOR it.  The draw is a pure
                    // hash of the logical site (block, pass, band,
                    // row, task), so any thread partition injects
                    // identically.
                    const std::uint64_t site_prefix = fault::mixKey(
                        fault_seed,
                        (((static_cast<std::uint64_t>(mb) * splits +
                           pass) *
                              r_blocks +
                          rb) *
                             c_blocks +
                         cb) *
                                rows_used +
                            row);
                    const std::uint8_t *stuck_row =
                        stuck.data() +
                        static_cast<std::size_t>(row) * cols_used;
                    for (std::int32_t i = begin; i < end; ++i) {
                        const HotTask &task = bs.tasks[i];
                        Acc prod =
                            mulRaw(in_data[in_base + task.inRel],
                                   k_data[k_base + task.kRel]);
                        if (stuck_active &&
                            stuck_row[bs.taskCol[i]]) {
                            prod = 0;
                            ++ws.diag.faults.stuckMacs;
                        } else if (flip_active &&
                                   fault::transientFires(
                                       site_prefix,
                                       static_cast<std::uint64_t>(
                                           i - begin),
                                       flip_rate)) {
                            prod ^= flip_mask;
                            ++ws.diag.faults.flippedMacs;
                        }
                        row_sum += prod;
                    }
                }
                const WordCount n_tasks =
                    static_cast<WordCount>(end - begin);
                ws.record.activeMacCycles += n_tasks;
                ws.record.localStoreReads += 2 * n_tasks;
                ws.record.localStoreWrites += n_tasks;

                // Writeback: one partial (or final) neuron per valid
                // row, accumulated with the buffer-resident partial
                // results of earlier passes (Fig. 13(f)).  The acc
                // slice of a (mb, rb, cb) tile is disjoint from every
                // other tile's, so tiles can run on different lanes.
                acc[(static_cast<std::size_t>(mb * t.tm +
                                              lanes[row].mOff) *
                         s +
                     (rb * t.tr + lanes[row].rOff)) *
                        s +
                    (cb * t.tc + lanes[row].cOff)] += row_sum;
                if (pass > 0)
                    ++ws.record.traffic.psumRead;
                if (pass + 1 < splits)
                    ++ws.record.traffic.psumWrite;
                else
                    ++ws.record.traffic.neuronOut;
            }
        }
    };

    // Tiles flatten the whole (mb, rb, cb) space, so a layer with a
    // single output-map block still spreads its (rb, cb) batches
    // across every lane (the former min(threads, m_blocks) cap is
    // gone).
    const int threads = std::max(1, config_.threads);
    const std::int64_t tiles =
        static_cast<std::int64_t>(m_blocks) * r_blocks * c_blocks;
    std::vector<WorkerState> states(
        std::min<std::int64_t>(threads, std::max<std::int64_t>(
                                            tiles, 1)));
    sim::ThreadPool::CancelFn cancel;
    if (watchdog_) {
        cancel = [wd = watchdog_] { return wd->expired(); };
    }
    // Modelled batch-step cycles live on the outer record (the
    // analytic per-(block, pass) aggregate above), not on the
    // per-lane records, so the watchdog is charged the same per-tile
    // quantum: every (mb, rb, cb) tile runs all passes back to back.
    Cycle tile_cycles = 0;
    for (int pass = 0; pass < splits; ++pass)
        tile_cycles += static_cast<Cycle>(sched.passes[pass].steps);
    sim::ThreadPool::shared().parallelFor(
        tiles, threads,
        [&](int lane, std::int64_t tile) {
            const int mb =
                static_cast<int>(tile / (r_blocks * c_blocks));
            const int rem =
                static_cast<int>(tile % (r_blocks * c_blocks));
            run_tile(mb, rem / c_blocks, rem % c_blocks,
                     states[lane]);
            if (watchdog_)
                watchdog_->chargeCycles(
                    static_cast<std::uint64_t>(tile_cycles));
        },
        cancel);
    if (watchdog_ && watchdog_->expired())
        throw guard::GuardException(
            watchdog_->tripError("flexflow.conv"));

    // Deterministic merge in lane order: every field is a sum or a
    // max, so the totals are independent of the actual interleaving.
    for (const WorkerState &ws : states) {
        record.cycles += ws.record.cycles;
        record.activeMacCycles += ws.record.activeMacCycles;
        record.traffic += ws.record.traffic;
        record.localStoreReads += ws.record.localStoreReads;
        record.localStoreWrites += ws.record.localStoreWrites;
        diagnostics.batches += ws.diag.batches;
        diagnostics.peakColumnStoreWords =
            std::max(diagnostics.peakColumnStoreWords,
                     ws.diag.peakColumnStoreWords);
        diagnostics.deliveryStallCycles += ws.diag.deliveryStallCycles;
        diagnostics.maxTasksPerPe = std::max(
            diagnostics.maxTasksPerPe, ws.diag.maxTasksPerPe);
        diagnostics.faults += ws.diag.faults;
    }

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;
    // Parity scrubs re-fetch the detected words from DRAM.
    record.dram.reads += diagnostics.faults.scrubbedWords;

    if (result != nullptr)
        *result = record;
    if (diag != nullptr)
        *diag = diagnostics;

    Tensor3<> output(spec.outMaps, s, s);
    for (int m = 0; m < spec.outMaps; ++m) {
        for (int r = 0; r < s; ++r) {
            for (int c = 0; c < s; ++c) {
                output.at(m, r, c) = quantizeAcc(
                    acc[(static_cast<std::size_t>(m) * s + r) * s +
                        c]);
            }
        }
    }
    return output;
}

} // namespace flexsim
