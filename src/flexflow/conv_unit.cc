#include "flexflow/conv_unit.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "arch/dram_planner.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "flexflow/mapping.hh"
#include "flexflow/schedule.hh"

namespace flexsim {

namespace {

/** One MAC obligation of a (PE row, PE column) pair within a batch. */
struct Task
{
    std::int32_t n;
    std::int32_t i;
    std::int32_t j;
    std::int32_t x;
    std::int32_t y;
};

/** Pack an input-word coordinate into a hash key. */
std::uint64_t
wordKey(int n, int x, int y)
{
    return (static_cast<std::uint64_t>(n) << 40) |
           (static_cast<std::uint64_t>(x) << 20) |
           static_cast<std::uint64_t>(y);
}

int
keyY(std::uint64_t key)
{
    return static_cast<int>(key & 0xfffff);
}

int
keyX(std::uint64_t key)
{
    return static_cast<int>((key >> 20) & 0xfffff);
}

} // namespace

FlexFlowConvUnit::FlexFlowConvUnit(FlexFlowConfig config)
    : config_(config)
{
    flexsim_assert(config_.d >= 1, "bad FlexFlow configuration");
}

Tensor3<>
FlexFlowConvUnit::runLayer(const ConvLayerSpec &spec,
                           const UnrollFactors &t, const Tensor3<> &input,
                           const Tensor4<> &kernels, LayerResult *result,
                           ConvUnitDiagnostics *diag)
{
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);
    flexsim_assert(spec.stride <= spec.kernel,
                   "stride larger than the kernel leaves input gaps "
                   "the contiguous IADP layout does not model");

    const FlexFlowSchedule sched = planSchedule(spec, t, config_);
    flexsim_assert(!sched.kernelStreaming,
                   "the cycle simulator models the real design; the "
                   "kernel-streaming ablation arm is analytic only");
    const LaneMapping map(t);
    const int rows_used = map.usedRows();
    const int cols_used = map.usedCols();
    const int s = spec.outSize;
    const int k = spec.kernel;
    const int stride = spec.stride;
    const int splits = sched.splits();

    LayerResult record;
    record.layerName = spec.name;
    record.peCount = config_.peCount();
    record.macs = spec.macs();

    ConvUnitDiagnostics diagnostics;

    trace::printf("ConvUnit", "layer ", spec.name, " factors ",
                  t.toString(), ": ",
                  sched.mBlocks * sched.rBlocks * sched.cBlocks,
                  " batches x ", sched.stepsTotal, " steps in ",
                  sched.splits(), " pass(es), band retention ",
                  sched.bandRetention ? "on" : "off");

    // The first pass's first preload cannot hide behind earlier
    // compute.
    record.cycles = static_cast<Cycle>(sched.fillCycles());
    record.fillCycles = static_cast<Cycle>(sched.fillCycles());

    const WordCount group_rows = static_cast<WordCount>(t.tr) * t.tc;

    // Full-precision partial results accumulated across passes
    // (cycled through the output neuron buffer between passes).
    std::vector<Acc> acc(static_cast<std::size_t>(spec.outMaps) * s *
                             s,
                         0);

    // Column-level local store contents: the words currently retained
    // by the PEs of each column.
    std::vector<std::unordered_map<std::uint64_t, Fixed16>> col_store(
        cols_used);

    // Per-(row, column) task queues, rebuilt per batch.
    std::vector<std::vector<Task>> tasks(
        static_cast<std::size_t>(rows_used) * cols_used);
    std::vector<Acc> row_acc(rows_used);
    std::vector<bool> row_valid(rows_used);
    std::vector<int> row_m(rows_used), row_r(rows_used),
        row_c(rows_used);

    for (int mb = 0; mb * t.tm < spec.outMaps; ++mb) {
        const int m_valid =
            std::min<int>(t.tm, spec.outMaps - mb * t.tm);
        for (int pass = 0; pass < splits; ++pass) {
            const SchedulePass &p = sched.passes[pass];
            const long long steps = p.steps;

            // This (block, pass)'s kernels are broadcast once per
            // logical group and latched by the group's rows (IPDR).
            const WordCount kernel_words =
                static_cast<WordCount>(m_valid) *
                (p.nEnd - p.nBegin) * k * k;
            record.traffic.kernelIn += kernel_words;
            record.localStoreWrites += kernel_words * group_rows;

            // A new (block, pass) brings a fresh n-chunk: the neuron
            // stores restart.
            for (auto &store : col_store)
                store.clear();

            for (int rb = 0; rb * t.tr < s; ++rb) {
                if (sched.bandRetention) {
                    // Retain the window; drop rows that slid out.
                    const int x_base = rb * t.tr * stride;
                    for (auto &store : col_store) {
                        for (auto it = store.begin();
                             it != store.end();) {
                            if (keyX(it->first) < x_base)
                                it = store.erase(it);
                            else
                                ++it;
                        }
                    }
                } else {
                    for (auto &store : col_store)
                        store.clear();
                }
                for (int cb = 0; cb * t.tc < s; ++cb) {
                    ++diagnostics.batches;

                    // Decode this batch's rows and build the task
                    // queues for this pass's input maps.
                    for (auto &queue : tasks)
                        queue.clear();
                    for (int row = 0; row < rows_used; ++row) {
                        const RowLane lane = map.rowLane(row);
                        const int m = mb * t.tm + lane.mOff;
                        const int r = rb * t.tr + lane.rOff;
                        const int c = cb * t.tc + lane.cOff;
                        row_valid[row] =
                            m < spec.outMaps && r < s && c < s;
                        row_m[row] = m;
                        row_r[row] = r;
                        row_c[row] = c;
                        row_acc[row] = 0;
                        if (!row_valid[row])
                            continue;
                        for (int n = p.nBegin; n < p.nEnd; ++n) {
                            for (int i = 0; i < k; ++i) {
                                const int x = r * stride + i;
                                for (int j = 0; j < k; ++j) {
                                    const int y = c * stride + j;
                                    const int col =
                                        map.colOf(n, x, y);
                                    tasks[static_cast<std::size_t>(
                                              row) *
                                              cols_used +
                                          col]
                                        .push_back(
                                            Task{n, i, j, x, y});
                                }
                            }
                        }
                    }

                    // Vertical-CDB delivery: each new word reaches
                    // its column once; PEs latch what they will use.
                    std::size_t max_new = 0;
                    for (int col = 0; col < cols_used; ++col) {
                        std::size_t new_words = 0;
                        auto &store = col_store[col];
                        for (int row = 0; row < rows_used; ++row) {
                            for (const Task &task :
                                 tasks[static_cast<std::size_t>(row) *
                                           cols_used +
                                       col]) {
                                const std::uint64_t key = wordKey(
                                    task.n, task.x, task.y);
                                if (store.find(key) == store.end()) {
                                    store.emplace(
                                        key,
                                        input.at(task.n, task.x,
                                                 task.y));
                                    ++record.traffic.neuronIn;
                                    ++new_words;
                                }
                            }
                        }
                        max_new = std::max(max_new, new_words);
                        diagnostics.peakColumnStoreWords =
                            std::max(diagnostics.peakColumnStoreWords,
                                     store.size());
                    }
                    if (max_new > static_cast<std::size_t>(steps)) {
                        diagnostics.deliveryStallCycles +=
                            max_new - static_cast<std::size_t>(steps);
                    }

                    // Compute phase: `steps` cycles of asynchronous
                    // (RS) per-PE task execution with row-tree
                    // folding.
                    std::size_t max_tasks = 0;
                    for (const auto &queue : tasks)
                        max_tasks = std::max(max_tasks, queue.size());
                    flexsim_assert(
                        max_tasks == static_cast<std::size_t>(steps),
                        "batch task schedule length ", max_tasks,
                        " != step count ", steps, " in layer ",
                        spec.name);
                    diagnostics.maxTasksPerPe = std::max(
                        diagnostics.maxTasksPerPe, max_tasks);

                    for (long long step = 0; step < steps; ++step) {
                        for (int row = 0; row < rows_used; ++row) {
                            if (!row_valid[row])
                                continue;
                            Acc tree_sum = 0;
                            for (int col = 0; col < cols_used;
                                 ++col) {
                                const auto &queue = tasks
                                    [static_cast<std::size_t>(row) *
                                         cols_used +
                                     col];
                                if (static_cast<std::size_t>(step) >=
                                    queue.size()) {
                                    continue;
                                }
                                const Task &task = queue[step];
                                const Fixed16 neuron =
                                    col_store[col].at(wordKey(
                                        task.n, task.x, task.y));
                                // RA self-check: the resident word
                                // must be the operand this (output,
                                // synapse) pair needs.
                                flexsim_assert(
                                    neuron == input.at(task.n,
                                                       task.x,
                                                       task.y),
                                    "FlexFlow column store delivered "
                                    "a stale operand");
                                const Fixed16 synapse =
                                    kernels.at(row_m[row], task.n,
                                               task.i, task.j);
                                tree_sum += mulRaw(neuron, synapse);
                                ++record.activeMacCycles;
                                record.localStoreReads += 2;
                                ++record.localStoreWrites;
                            }
                            row_acc[row] += tree_sum;
                        }
                        ++record.cycles;
                    }

                    // Writeback: one partial (or final) neuron per
                    // valid row, accumulated with the buffer-resident
                    // partial results of earlier passes (Fig. 13(f)).
                    for (int row = 0; row < rows_used; ++row) {
                        if (!row_valid[row])
                            continue;
                        acc[(static_cast<std::size_t>(row_m[row]) * s +
                             row_r[row]) *
                                s +
                            row_c[row]] += row_acc[row];
                        if (pass > 0)
                            ++record.traffic.psumRead;
                        if (pass + 1 < splits)
                            ++record.traffic.psumWrite;
                        else
                            ++record.traffic.neuronOut;
                    }

                    if (!sched.bandRetention) {
                        // RS retention: prune window columns that
                        // slid out.
                        const int next_y_base =
                            (cb + 1) * t.tc * stride;
                        for (auto &store : col_store) {
                            for (auto it = store.begin();
                                 it != store.end();) {
                                if (keyY(it->first) < next_y_base)
                                    it = store.erase(it);
                                else
                                    ++it;
                            }
                        }
                    }
                }
            }
        }
    }

    record.dram = planDramTraffic(spec, config_.neuronBufWords,
                                  config_.kernelBufWords)
                      .traffic;

    if (result != nullptr)
        *result = record;
    if (diag != nullptr)
        *diag = diagnostics;

    Tensor3<> output(spec.outMaps, s, s);
    for (int m = 0; m < spec.outMaps; ++m) {
        for (int r = 0; r < s; ++r) {
            for (int c = 0; c < s; ++c) {
                output.at(m, r, c) = quantizeAcc(
                    acc[(static_cast<std::size_t>(m) * s + r) * s +
                        c]);
            }
        }
    }
    return output;
}

} // namespace flexsim
