#include "flexflow/flexflow_model.hh"

#include <algorithm>

#include "arch/dram_planner.hh"
#include "arch/unroll.hh"
#include "common/logging.hh"
#include "flexflow/schedule.hh"

namespace flexsim {

FlexFlowModel::FlexFlowModel(FlexFlowConfig config) : config_(config)
{
    flexsim_assert(config_.d >= 1, "bad FlexFlow configuration");
}

bool
FlexFlowModel::kernelsResident(const ConvLayerSpec &spec,
                               const UnrollFactors &t) const
{
    return planSchedule(spec, t, config_).splits() == 1;
}

LayerResult
FlexFlowModel::runLayer(const ConvLayerSpec &spec) const
{
    const FactorChoice choice =
        searchBestFactors(spec, config_.d, spec.outSize,
                          config_.usableRows(), config_.usableCols());
    return runLayer(spec, choice.factors);
}

LayerResult
FlexFlowModel::runLayer(const ConvLayerSpec &spec,
                        const UnrollFactors &t) const
{
    const FlexFlowSchedule sched = planSchedule(spec, t, config_);

    LayerResult result;
    result.layerName = spec.name;
    result.peCount = config_.peCount();
    result.macs = spec.macs();
    result.activeMacCycles = result.macs;
    result.cycles = static_cast<Cycle>(sched.computeCycles() +
                                       sched.fillCycles());
    result.fillCycles = static_cast<Cycle>(sched.fillCycles());

    // Input words reach the array once per output-map block when the
    // row band is retained in the local stores; otherwise once per
    // (output-map block, row band).
    if (sched.bandRetention) {
        result.traffic.neuronIn = static_cast<WordCount>(
            sched.mBlocks * spec.inputWords());
    } else {
        WordCount row_band_words = 0;
        for (long long rb = 0; rb < sched.rBlocks; ++rb) {
            const int rows_valid = static_cast<int>(
                std::min<long long>(t.tr, spec.outSize - rb * t.tr));
            const int span =
                (rows_valid - 1) * spec.stride + spec.kernel;
            row_band_words +=
                static_cast<WordCount>(span) * spec.inSize;
        }
        result.traffic.neuronIn = static_cast<WordCount>(
            sched.mBlocks * spec.inMaps * row_band_words);
    }

    // Each synapse is broadcast to its logical group exactly once:
    // within a pass the per-PE slice is resident by construction.
    // The no-pass-splitting ablation arm instead streams every
    // batch's kernel words from the buffer.
    result.traffic.kernelIn =
        sched.kernelStreaming
            ? spec.kernelWords() *
                  static_cast<WordCount>(sched.rBlocks * sched.cBlocks)
            : spec.kernelWords();

    // Figure 13(f): each extra input-map pass cycles partial results
    // through the output neuron buffer.
    const WordCount out_words = spec.outputWords();
    result.traffic.neuronOut = out_words;
    result.traffic.psumWrite = out_words * (sched.splits() - 1);
    result.traffic.psumRead = out_words * (sched.splits() - 1);

    // Per MAC: one neuron and one kernel local-store read; each task
    // operand is latched once (streaming write) and every kernel
    // broadcast is latched by its group's rows.
    result.localStoreReads = 2 * result.macs;
    result.localStoreWrites =
        result.macs +
        result.traffic.kernelIn * static_cast<WordCount>(t.tr * t.tc);

    const DramPlan plan = planDramTraffic(
        spec, config_.neuronBufWords, config_.kernelBufWords);
    result.dram = plan.traffic;
    return result;
}

} // namespace flexsim
