#include "energy/area.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexsim {

namespace {

/** Interconnect growth law per architecture (see file comment). */
struct InterconnectLaw
{
    double coef; ///< mm^2 at D^exp == 1
    double exp;  ///< growth exponent in the array edge D
};

InterconnectLaw
interconnectLaw(ArchKind kind)
{
    // Coefficients calibrated at D = 16 against the paper's totals.
    switch (kind) {
      case ArchKind::Systolic:
        return {4.974e-3, 2.05};
      case ArchKind::Mapping2D:
        return {2.642e-3, 2.25};
      case ArchKind::Tiling:
        return {1.731e-3, 2.35};
      case ArchKind::FlexFlow:
        return {5.172e-3, 2.00};
    }
    panic("unknown ArchKind");
}

} // namespace

AreaBreakdown
computeArea(const AreaConfig &config, const TechParams &tech)
{
    flexsim_assert(config.d > 0 && config.peCount > 0,
                   "area config needs a nonzero scale");
    AreaBreakdown area;
    area.peLogic = config.peCount * tech.aPeLogic;
    area.localStores = config.peCount * config.localStoreBytesPerPe *
                       tech.aRegFilePerByte;
    area.buffers = config.bufferKb * tech.aSramPerKb;
    const InterconnectLaw law = interconnectLaw(config.kind);
    area.interconnect =
        law.coef * std::pow(static_cast<double>(config.d), law.exp);
    area.fixedOverhead = tech.aFixedOverhead;
    return area;
}

AreaConfig
defaultAreaConfig(ArchKind kind, unsigned d)
{
    AreaConfig config;
    config.kind = kind;
    config.d = d;
    config.bufferKb = 64.0;
    switch (kind) {
      case ArchKind::Systolic: {
        // round(d^2 / 36) arrays of 6x6 PEs, DC-CNN style; at d = 16
        // this is the paper's 7-array configuration (252 PEs).
        const unsigned arrays =
            std::max(1u, (d * d + 18) / 36);
        config.peCount = arrays * 36;
        // Two registers per PE plus the inter-row FIFO provision.
        config.localStoreBytesPerPe = 4.0 + 24.0;
        break;
      }
      case ArchKind::Mapping2D:
        config.peCount = d * d;
        // Two small neuron-reuse FIFOs per PE.
        config.localStoreBytesPerPe = 64.0;
        break;
      case ArchKind::Tiling:
        config.peCount = d * d;
        config.localStoreBytesPerPe = 0.0;
        break;
      case ArchKind::FlexFlow:
        config.peCount = d * d;
        // 256 B neuron store + 256 B kernel store per PE (Table 5).
        config.localStoreBytesPerPe = 512.0;
        break;
    }
    return config;
}

} // namespace flexsim
