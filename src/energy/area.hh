/**
 * @file
 * Chip-area model for the four architectures (Section 6.2.1 and
 * Figure 19c).
 *
 * Area = PE logic + local stores/FIFOs + SRAM buffers + interconnect +
 * fixed overhead.  Interconnect area follows a per-architecture power
 * law coef * D^exp: FlexFlow's common data buses grow ~quadratically
 * with the array edge D (D lanes x D length), while the neighbour mesh
 * of 2D-Mapping and the broadcast/reduce trees of Tiling grow faster
 * (routing congestion); the coefficients are calibrated so the four
 * 16x16 design points match the paper's published totals (3.52, 3.46,
 * 3.21, 3.89 mm^2).
 */

#ifndef FLEXSIM_ENERGY_AREA_HH
#define FLEXSIM_ENERGY_AREA_HH

#include "common/types.hh"
#include "energy/tech.hh"

namespace flexsim {

/** Physical configuration of one accelerator instance. */
struct AreaConfig
{
    ArchKind kind = ArchKind::FlexFlow;
    /** Engine scale: the equivalent D x D array edge. */
    unsigned d = 16;
    /** MAC units actually instantiated. */
    unsigned peCount = 256;
    /** Total on-chip buffer capacity in KiB (paper: 64). */
    double bufferKb = 64.0;
    /** Local store / pipeline register bytes per PE. */
    double localStoreBytesPerPe = 0.0;
};

/** Per-component area in mm^2. */
struct AreaBreakdown
{
    SquareMm peLogic = 0.0;
    SquareMm localStores = 0.0;
    SquareMm buffers = 0.0;
    SquareMm interconnect = 0.0;
    SquareMm fixedOverhead = 0.0;

    SquareMm
    total() const
    {
        return peLogic + localStores + buffers + interconnect +
               fixedOverhead;
    }
};

/** Compute the area breakdown of @p config under @p tech. */
AreaBreakdown computeArea(const AreaConfig &config,
                          const TechParams &tech);

/** Default physical config for each architecture at scale @p d. */
AreaConfig defaultAreaConfig(ArchKind kind, unsigned d);

} // namespace flexsim

#endif // FLEXSIM_ENERGY_AREA_HH
