#include "energy/tech.hh"

#include "common/logging.hh"

namespace flexsim {

const char *
archName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Systolic:
        return "Systolic";
      case ArchKind::Mapping2D:
        return "2D-Mapping";
      case ArchKind::Tiling:
        return "Tiling";
      case ArchKind::FlexFlow:
        return "FlexFlow";
    }
    panic("unknown ArchKind");
}

TechParams
TechParams::tsmc65()
{
    // Defaults in the struct definition *are* the calibrated 65 nm
    // values; this hook exists so alternative nodes can be added
    // without touching call sites.
    return TechParams{};
}

} // namespace flexsim
