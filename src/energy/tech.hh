/**
 * @file
 * Technology parameters for the 65 nm power/area substitution.
 *
 * The paper derives power and area from a Synopsys DC/PT/ICC flow on
 * TSMC 65 nm.  We substitute an event-energy model: per-event energies
 * follow published 65 nm-era figures (16-bit MAC, small register-file
 * local stores, 32 KiB SRAM macros, LPDDR access) and the remaining
 * free constants are calibrated once so the four 16x16 design points
 * land near the paper's absolute area/power numbers.  Relative results
 * (who wins, crossovers) depend only on the event counts produced by
 * the dataflow models, not on this calibration.
 */

#ifndef FLEXSIM_ENERGY_TECH_HH
#define FLEXSIM_ENERGY_TECH_HH

namespace flexsim {

/** The four modelled architectures. */
enum class ArchKind
{
    Systolic,
    Mapping2D,
    Tiling,
    FlexFlow,
};

/** Printable architecture name. */
const char *archName(ArchKind kind);

/** Per-event energies (pJ) and layout constants for one process. */
struct TechParams
{
    double freqGhz = 1.0;

    // --- dynamic energy per event, picojoules ---
    double eMac = 2.1;             ///< 16-bit multiply + wide add
    double eLocalStoreRead = 0.45; ///< 256 B register-file read
    double eLocalStoreWrite = 0.6; ///< 256 B register-file write
    double eBufferRead = 5.8;      ///< 32 KiB SRAM macro read
    double eBufferWrite = 6.4;     ///< 32 KiB SRAM macro write
    double eDramWord = 220.0;      ///< one 16-bit word from DRAM
    /** On-chip transport: energy per word = eBusBase + eBusPerLane*D. */
    double eBusBase = 0.35;
    double eBusPerLane = 0.045;
    /**
     * Array-internal operand transport per MAC: the row adder trees /
     * neighbour shift chains / broadcast wires that move every
     * operand and product inside the PE array.  This is the bulk of
     * what the paper's Section 6.2.5 calls the routing network (a
     * ~21-28% power share at every scale).
     */
    double eArrayTransportPerMac = 1.3;

    // --- leakage ---
    double leakageMwPerMm2 = 9.0;

    // --- area, square millimetres ---
    double aPeLogic = 3.5e-3;        ///< one multiplier+adder+control
    double aRegFilePerByte = 4.0e-6; ///< small local stores / FIFOs
    double aSramPerKb = 1.4e-2;      ///< 32 KiB-class SRAM macro, per KiB
    double aFixedOverhead = 0.25;    ///< decoder, pooling unit, IO ring

    /** The calibrated TSMC 65 nm instance used everywhere. */
    static TechParams tsmc65();
};

} // namespace flexsim

#endif // FLEXSIM_ENERGY_TECH_HH
