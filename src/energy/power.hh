/**
 * @file
 * Event-energy power model (Figures 18/19b, Table 6).
 *
 * Every dynamic-energy term is (event count) x (per-event energy); the
 * event counts come from a LayerResult produced by a dataflow model or
 * cycle simulator.  Component attribution follows the paper's Table 6:
 * Pnein (input neuron buffer), Pneout (output neuron buffer including
 * partial-sum traffic), Pkerin (kernel buffer), and Pcom (the computing
 * engine: MACs plus local stores).  Interconnect and leakage are
 * modelled separately so the Section 6.2.5 routing-power study can be
 * reproduced.
 */

#ifndef FLEXSIM_ENERGY_POWER_HH
#define FLEXSIM_ENERGY_POWER_HH

#include "arch/result.hh"
#include "energy/area.hh"
#include "energy/tech.hh"

namespace flexsim {

/** Per-component power in milliwatts. */
struct PowerBreakdown
{
    double neuronIn = 0.0;     ///< Pnein: input neuron buffer
    double neuronOut = 0.0;    ///< Pneout: output neuron buffer (+psum)
    double kernelIn = 0.0;     ///< Pkerin: kernel buffer
    double compute = 0.0;      ///< Pcom: MACs + PE local stores
    double interconnect = 0.0; ///< CDB / inter-PE transport
    double leakage = 0.0;      ///< static power over the die area

    double
    total() const
    {
        return neuronIn + neuronOut + kernelIn + compute + interconnect +
               leakage;
    }
};

/** Full power/energy report for one layer or one aggregated network. */
struct PowerReport
{
    PowerBreakdown power; ///< milliwatts
    double timeMs = 0.0;
    double energyUj = 0.0;     ///< on-chip energy, microjoules
    double dramEnergyUj = 0.0; ///< DRAM access energy, microjoules
    double gops = 0.0;
    double gopsPerWatt = 0.0; ///< power efficiency (on-chip power)
};

/**
 * Derive power/energy from @p result.
 *
 * @param result  event counts from a dataflow model
 * @param kind    architecture (selects transport energy law)
 * @param d       engine scale (bus length term)
 * @param tech    process parameters
 * @param area_mm2 die area for the leakage term
 */
PowerReport computePower(const LayerResult &result, ArchKind kind,
                         unsigned d, const TechParams &tech,
                         SquareMm area_mm2);

/** Convenience overload using defaultAreaConfig(kind, d). */
PowerReport computePower(const LayerResult &result, ArchKind kind,
                         unsigned d, const TechParams &tech);

} // namespace flexsim

#endif // FLEXSIM_ENERGY_POWER_HH
