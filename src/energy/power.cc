#include "energy/power.hh"

#include "common/logging.hh"

namespace flexsim {

PowerReport
computePower(const LayerResult &result, ArchKind kind, unsigned d,
             const TechParams &tech, SquareMm area_mm2)
{
    (void)kind;
    flexsim_assert(d > 0, "engine scale must be positive");
    PowerReport report;
    if (result.cycles == 0)
        return report;

    // With 1 pJ / 1 ns == 1 mW, power in mW is energy-pJ / time-ns.
    const double time_ns =
        static_cast<double>(result.cycles) / tech.freqGhz;
    report.timeMs = time_ns * 1e-6;

    const Traffic &t = result.traffic;
    const double e_nein = t.neuronIn * tech.eBufferRead;
    const double e_neout = (t.neuronOut + t.psumWrite) * tech.eBufferWrite +
                           t.psumRead * tech.eBufferRead;
    const double e_kerin = t.kernelIn * tech.eBufferRead;
    const double e_com =
        static_cast<double>(result.macs) * tech.eMac +
        result.localStoreReads * tech.eLocalStoreRead +
        result.localStoreWrites * tech.eLocalStoreWrite;
    const double bus_word = tech.eBusBase + tech.eBusPerLane * d;
    const double e_bus =
        static_cast<double>(t.total()) * bus_word +
        static_cast<double>(result.macs) * tech.eArrayTransportPerMac;

    report.power.neuronIn = e_nein / time_ns;
    report.power.neuronOut = e_neout / time_ns;
    report.power.kernelIn = e_kerin / time_ns;
    report.power.compute = e_com / time_ns;
    report.power.interconnect = e_bus / time_ns;
    report.power.leakage = tech.leakageMwPerMm2 * area_mm2;

    const double dynamic_pj = e_nein + e_neout + e_kerin + e_com + e_bus;
    const double leakage_pj = report.power.leakage * time_ns;
    report.energyUj = (dynamic_pj + leakage_pj) * 1e-6;
    report.dramEnergyUj =
        static_cast<double>(result.dram.total()) * tech.eDramWord * 1e-6;

    report.gops = result.gops(tech.freqGhz);
    const double watts = report.power.total() * 1e-3;
    report.gopsPerWatt = watts > 0.0 ? report.gops / watts : 0.0;
    return report;
}

PowerReport
computePower(const LayerResult &result, ArchKind kind, unsigned d,
             const TechParams &tech)
{
    const AreaBreakdown area =
        computeArea(defaultAreaConfig(kind, d), tech);
    return computePower(result, kind, d, tech, area.total());
}

} // namespace flexsim
