#include "sim/thread_pool.hh"

#include <cstdlib>
#include <string>

namespace flexsim {
namespace sim {

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::parallelFor(std::int64_t tiles, int maxLanes,
                        const TileFn &fn)
{
    parallelFor(tiles, maxLanes, fn, CancelFn{});
}

void
ThreadPool::parallelFor(std::int64_t tiles, int maxLanes,
                        const TileFn &fn, const CancelFn &cancelled)
{
    if (tiles <= 0)
        return;
    int lanes = maxLanes;
    if (lanes > tiles)
        lanes = static_cast<int>(tiles);
    if (lanes <= 1) {
        // Inline fast path: a threads=1 run never touches the pool
        // (no atomics, no locks), so single-thread timing and the
        // serving runtime's own worker threads see zero overhead.
        for (std::int64_t tile = 0; tile < tiles; ++tile) {
            if (cancelled && cancelled())
                return;
            fn(0, tile);
        }
        return;
    }

    // One client at a time; a second threaded caller (e.g. another
    // serve worker) queues up here rather than interleaving jobs.
    std::lock_guard<std::mutex> client(clientMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ensureWorkersLocked(lanes - 1);
        fn_ = &fn;
        cancel_ = cancelled ? &cancelled : nullptr;
        tiles_ = tiles;
        next_.store(0, std::memory_order_relaxed);
        lanes_ = lanes - 1;
        finished_ = 0;
        ++generation_;
        ++jobs_;
    }
    wake_.notify_all();

    // The caller is lane 0 and competes for tiles like any worker.
    for (;;) {
        if (cancelled && cancelled())
            break;
        const std::int64_t tile =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (tile >= tiles)
            break;
        fn(0, tile);
        pooledTiles_.fetch_add(1, std::memory_order_relaxed);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return finished_ == lanes_; });
    fn_ = nullptr;
    cancel_ = nullptr;
}

void
ThreadPool::ensureWorkersLocked(int needed)
{
    while (static_cast<int>(workers_.size()) < needed) {
        const int index = static_cast<int>(workers_.size());
        workers_.emplace_back([this, index] { workerLoop(index); });
    }
}

void
ThreadPool::workerLoop(int index)
{
    std::uint64_t seen = 0;
    for (;;) {
        const TileFn *fn = nullptr;
        const CancelFn *cancel = nullptr;
        std::int64_t tiles = 0;
        bool participating = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            // Lanes beyond this job's width still have to advance
            // their generation and report in, or a later wider job
            // could be miscounted against the stale one.
            participating = index < lanes_;
            fn = fn_;
            cancel = cancel_;
            tiles = tiles_;
        }
        if (participating) {
            for (;;) {
                if (cancel && (*cancel)())
                    break;
                const std::int64_t tile =
                    next_.fetch_add(1, std::memory_order_relaxed);
                if (tile >= tiles)
                    break;
                (*fn)(index + 1, tile);
                pooledTiles_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        bool last = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (participating)
                last = ++finished_ == lanes_;
        }
        if (last)
            done_.notify_one();
    }
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

int
ThreadPool::defaultThreads()
{
    const char *env = std::getenv("FLEXSIM_THREADS");
    if (!env || !*env)
        return 1;
    try {
        const int threads = std::stoi(env);
        if (threads >= 1)
            return threads;
    } catch (...) {
        // fall through: malformed values mean "default"
    }
    return 1;
}

int
ThreadPool::spawnedWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(workers_.size());
}

std::uint64_t
ThreadPool::pooledJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_;
}

std::uint64_t
ThreadPool::pooledTiles() const
{
    return pooledTiles_.load(std::memory_order_relaxed);
}

} // namespace sim
} // namespace flexsim
