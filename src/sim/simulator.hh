/**
 * @file
 * The cycle-stepped simulation driver.
 */

#ifndef FLEXSIM_SIM_SIMULATOR_HH
#define FLEXSIM_SIM_SIMULATOR_HH

#include <vector>

#include "common/types.hh"
#include "sim/clocked.hh"

namespace flexsim {

/**
 * Steps a set of Clocked components in lockstep.  Components are
 * evaluated in registration order, then committed in registration
 * order, once per cycle.
 */
class CycleSimulator
{
  public:
    /** Register a component; not owned. */
    void add(Clocked *component);

    /** Advance one cycle. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until every component reports idle() or @p maxCycles elapse.
     * @return the number of cycles actually executed.
     */
    Cycle runUntilIdle(Cycle maxCycles);

    /** True when every registered component is idle. */
    bool allIdle() const;

    /** Cycles executed since construction. */
    Cycle now() const { return now_; }

  private:
    std::vector<Clocked *> components_;
    Cycle now_ = 0;
};

} // namespace flexsim

#endif // FLEXSIM_SIM_SIMULATOR_HH
