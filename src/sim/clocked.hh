/**
 * @file
 * Interface for cycle-stepped hardware components.
 *
 * flexsim uses a synchronous two-phase cycle model: every cycle the
 * simulator calls evaluate() on all components (combinational work,
 * reading the state published in the previous cycle) and then commit()
 * (latch next-cycle state).  This avoids intra-cycle ordering hazards
 * between components without an event queue.
 */

#ifndef FLEXSIM_SIM_CLOCKED_HH
#define FLEXSIM_SIM_CLOCKED_HH

#include <string>

#include "common/types.hh"

namespace flexsim {

/** A component driven by the global clock. */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Combinational phase: read previous state, compute next. */
    virtual void evaluate(Cycle cycle) = 0;

    /** Sequential phase: latch the state computed by evaluate(). */
    virtual void commit(Cycle cycle) = 0;

    /** True when this component has no pending work. */
    virtual bool idle() const = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace flexsim

#endif // FLEXSIM_SIM_CLOCKED_HH
