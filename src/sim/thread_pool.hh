/**
 * @file
 * The shared host-side simulation thread pool.
 *
 * Every cycle simulator decomposes a layer into independent tiles
 * (disjoint output regions with thread-private bookkeeping) and runs
 * them through one process-wide pool of persistent workers.  Workers
 * are spawned once, on first use, and reused across runLayer() calls,
 * benches, flexrun, and flexserve — the former per-call
 * std::thread spawn/join is gone from the hot path.
 *
 * Tiles are claimed from a shared atomic counter (a degenerate but
 * contention-free work-stealing queue): whichever lane is free next
 * takes the next tile index, so load imbalance between boundary and
 * interior tiles self-corrects.  Because the tile-to-lane assignment
 * is therefore nondeterministic, callers must keep all per-tile state
 * either tile-private (disjoint output slices) or lane-private and
 * merged with commutative/associative reductions (sums, maxes) — the
 * determinism contract is spelled out in DESIGN.md §3.6.
 */

#ifndef FLEXSIM_SIM_THREAD_POOL_HH
#define FLEXSIM_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexsim {
namespace sim {

class ThreadPool
{
  public:
    /** Callback for one tile; lane is in [0, lanes), lane 0 is the
     * calling thread. */
    using TileFn = std::function<void(int lane, std::int64_t tile)>;

    /** Cooperative-cancellation probe, polled between tile claims;
     * returning true stops further tiles from being claimed (tiles
     * already running finish normally).  Must be thread-safe. */
    using CancelFn = std::function<bool()>;

    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(lane, tile) for every tile in [0, tiles) on up to
     * @p maxLanes lanes (the caller participates as lane 0; workers
     * are lanes 1..).  Blocks until every tile completed.
     *
     * With maxLanes <= 1 (or a single tile) the loop runs inline on
     * the calling thread: no atomics, no pool machinery, so a
     * threads=1 configuration behaves exactly like a simulator that
     * never heard of the pool.
     *
     * Concurrent parallelFor() calls from different client threads
     * (e.g. serving workers each running a threaded simulator) are
     * serialized: the second caller blocks until the pool is free.
     *
     * The four-argument form polls @p cancelled before every tile
     * claim on every lane: once it returns true the section drains
     * without starting new tiles and parallelFor returns early.
     * This is how the guard::Watchdog aborts a runaway layer without
     * wedging its worker (DESIGN.md §3.7).
     */
    void parallelFor(std::int64_t tiles, int maxLanes, const TileFn &fn);
    void parallelFor(std::int64_t tiles, int maxLanes, const TileFn &fn,
                     const CancelFn &cancelled);

    /** The process-wide pool every simulator shares. */
    static ThreadPool &shared();

    /**
     * Default host worker-thread count for tools and benches: the
     * FLEXSIM_THREADS environment variable when set to an integer
     * >= 1, else 1.  Purely a simulation-throughput knob — modelled
     * results are bit-identical at any value.
     */
    static int defaultThreads();

    /** Workers spawned so far (grows on demand, never shrinks). */
    int spawnedWorkers() const;

    /** Parallel sections dispatched through the pool (telemetry;
     * inline single-lane runs are not counted). */
    std::uint64_t pooledJobs() const;

    /** Tiles executed by pool workers or a pooled caller lane. */
    std::uint64_t pooledTiles() const;

  private:
    void ensureWorkersLocked(int needed);
    void workerLoop(int index);

    mutable std::mutex mutex_; ///< guards job state + worker spawning
    std::condition_variable wake_; ///< workers wait for a job
    std::condition_variable done_; ///< caller waits for completion
    std::mutex clientMutex_;       ///< serializes client sections
    std::vector<std::thread> workers_;

    // Current job, published under mutex_.
    const TileFn *fn_ = nullptr;
    const CancelFn *cancel_ = nullptr; ///< nullptr = not cancellable
    std::int64_t tiles_ = 0;
    std::atomic<std::int64_t> next_{0};
    std::atomic<std::uint64_t> pooledTiles_{0};
    int lanes_ = 0;    ///< worker lanes participating in this job
    int finished_ = 0; ///< worker lanes done with this job
    std::uint64_t generation_ = 0;
    std::uint64_t jobs_ = 0;
    bool stop_ = false;
};

} // namespace sim
} // namespace flexsim

#endif // FLEXSIM_SIM_THREAD_POOL_HH
