#include "sim/simulator.hh"

#include "common/logging.hh"

namespace flexsim {

void
CycleSimulator::add(Clocked *component)
{
    flexsim_assert(component != nullptr, "cannot register null component");
    components_.push_back(component);
}

void
CycleSimulator::step()
{
    for (Clocked *c : components_)
        c->evaluate(now_);
    for (Clocked *c : components_)
        c->commit(now_);
    ++now_;
}

void
CycleSimulator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

Cycle
CycleSimulator::runUntilIdle(Cycle maxCycles)
{
    Cycle executed = 0;
    while (executed < maxCycles && !allIdle()) {
        step();
        ++executed;
    }
    if (executed == maxCycles && !allIdle())
        warn("simulation did not quiesce within ", maxCycles, " cycles");
    return executed;
}

bool
CycleSimulator::allIdle() const
{
    for (const Clocked *c : components_) {
        if (!c->idle())
            return false;
    }
    return true;
}

} // namespace flexsim
