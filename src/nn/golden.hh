/**
 * @file
 * Bit-exact golden reference for CONV and POOL layers.
 *
 * Every cycle-level accelerator simulator is verified against these
 * functions: identical fixed-point semantics (see fixed_point.hh) mean
 * outputs must match exactly, not approximately.
 */

#ifndef FLEXSIM_NN_GOLDEN_HH
#define FLEXSIM_NN_GOLDEN_HH

#include "nn/layer_spec.hh"
#include "nn/tensor.hh"

namespace flexsim {

/**
 * Valid (unpadded) convolution.
 *
 * @param input   N maps of inSize x inSize
 * @param kernels M x N kernels of K x K
 * @param stride  convolution stride
 * @return M maps of S x S where S = (inSize - K) / stride + 1
 */
Tensor3<> goldenConv(const Tensor3<> &input, const Tensor4<> &kernels,
                     int stride = 1);

/** Convolution checked against an explicit layer spec. */
Tensor3<> goldenConv(const ConvLayerSpec &spec, const Tensor3<> &input,
                     const Tensor4<> &kernels);

/**
 * Independent reference: the same convolution computed by explicit
 * im2col lowering + matrix multiply (a structurally different
 * algorithm that must produce bit-identical results; used by the test
 * suite to cross-check goldenConv itself).
 */
Tensor3<> goldenConvIm2col(const Tensor3<> &input,
                           const Tensor4<> &kernels, int stride = 1);

/**
 * Double-precision reference convolution over the dequantized
 * operands.  Used to quantify the Q7.8 datapath's quantization error
 * (the paper's 16-bit fixed-point design choice); see the
 * ext_quantization bench.
 */
Tensor3<double> goldenConvFloat(const Tensor3<> &input,
                                const Tensor4<> &kernels,
                                int stride = 1);

/** Error statistics of the fixed-point result vs the float reference. */
struct QuantizationError
{
    double maxAbs = 0.0;
    double rms = 0.0;
    /** Largest |float reference| (for relative-error context). */
    double refPeak = 0.0;
};

/** Compare a Q7.8 output tensor against its float reference. */
QuantizationError measureQuantizationError(const Tensor3<> &fixed,
                                           const Tensor3<double> &ref);

/**
 * Pooling over non-overlapping (or strided) windows.  Windows that
 * would run past the input edge are dropped (floor semantics), matching
 * the feature-map sizes in the paper's Table 1.
 */
Tensor3<> goldenPool(const Tensor3<> &input, const PoolLayerSpec &spec);

/** Output edge size of pooling an @p in_size input. */
int pooledSize(int in_size, const PoolLayerSpec &spec);

/**
 * Crop a feature-map stack to @p size x @p size (top-left corner).
 *
 * Some published layer tables (e.g. FR and HG in the paper's Table 1)
 * list a pooled map one row/column larger than the next CONV layer
 * consumes; the extra border is simply dropped, which is what this
 * models.  fatal()s if the input is smaller than the target.
 */
Tensor3<> cropTopLeft(const Tensor3<> &input, int size);

} // namespace flexsim

#endif // FLEXSIM_NN_GOLDEN_HH
