/**
 * @file
 * Deterministic synthetic tensor generation.
 *
 * The paper's experiments use trained networks; utilization, cycle
 * counts, and traffic are data-independent for dense CONV layers, so we
 * substitute reproducible pseudo-random contents (see DESIGN.md,
 * substitution 2).  Values are kept small enough that Q7.8 accumulation
 * does not saturate, so golden-vs-simulator comparisons stay exact.
 */

#ifndef FLEXSIM_NN_TENSOR_INIT_HH
#define FLEXSIM_NN_TENSOR_INIT_HH

#include "common/random.hh"
#include "nn/layer_spec.hh"
#include "nn/tensor.hh"

namespace flexsim {

/** A feature-map stack with values drawn uniformly from [-1, 1). */
Tensor3<> makeRandomInput(Rng &rng, int maps, int size);

/** Input stack sized for @p spec. */
Tensor3<> makeRandomInput(Rng &rng, const ConvLayerSpec &spec);

/** A kernel stack with values drawn uniformly from [-0.25, 0.25). */
Tensor4<> makeRandomKernels(Rng &rng, int out_maps, int in_maps,
                            int kernel);

/** Kernel stack sized for @p spec. */
Tensor4<> makeRandomKernels(Rng &rng, const ConvLayerSpec &spec);

} // namespace flexsim

#endif // FLEXSIM_NN_TENSOR_INIT_HH
