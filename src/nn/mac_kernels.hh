/**
 * @file
 * Contiguous-span MAC kernels shared by the cycle simulators.
 *
 * The inner loops of all four simulators reduce, on their zero-fault
 * fast paths, to multiply-accumulate sweeps over contiguous runs of
 * Q7.8 operands.  Expressed as tight loops over raw int16 payloads
 * with no per-element branches, the compiler auto-vectorizes them
 * (SSE2 pmaddwd-style: 16-bit products widened and summed in wide
 * lanes) — this is where the remaining single-thread headroom lives.
 *
 * Every kernel accumulates through the same `(Acc)a * b` widening as
 * mulRaw(), so results stay bit-identical to the scalar reference:
 * integer addition is exactly associative, reordering is free.
 */

#ifndef FLEXSIM_NN_MAC_KERNELS_HH
#define FLEXSIM_NN_MAC_KERNELS_HH

#include <cstdint>

#include "nn/fixed_point.hh"

namespace flexsim {

/**
 * Dot product of two contiguous spans of n Q7.8 values, returned as a
 * raw Q14.16 accumulator contribution.
 *
 * The i32 intermediate keeps the per-element work in one 32-bit
 * multiply (a 16x16 product cannot overflow int32), which is what the
 * vectorizer wants; the running sum is still the full-width Acc.
 */
inline Acc
dotSpan(const Fixed16 *a, const Fixed16 *b, int n)
{
    Acc sum = 0;
    for (int i = 0; i < n; ++i) {
        sum += static_cast<std::int32_t>(a[i].raw()) *
               static_cast<std::int32_t>(b[i].raw());
    }
    return sum;
}

/**
 * Broadcast-scale accumulate: acc[i] += s_raw * b[i] over a
 * contiguous span (the tiling baseline's one-neuron-to-all-lanes
 * broadcast step, and the systolic chain's per-cycle column update).
 */
inline void
scaleAccumSpan(Acc *acc, std::int32_t s_raw, const Fixed16 *b, int n)
{
    for (int i = 0; i < n; ++i)
        acc[i] += static_cast<Acc>(s_raw * static_cast<std::int32_t>(
                                               b[i].raw()));
}

/**
 * Sum a contiguous span of 0/1 occupancy bytes (the systolic chain's
 * valid-slot tally that rides alongside the unconditional accumulate
 * in scaleAccumSpan).
 */
inline std::uint64_t
sumBytes(const std::uint8_t *v, int n)
{
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
        sum += v[i];
    return sum;
}

} // namespace flexsim

#endif // FLEXSIM_NN_MAC_KERNELS_HH
