#include "nn/tensor_init.hh"

namespace flexsim {

Tensor3<>
makeRandomInput(Rng &rng, int maps, int size)
{
    Tensor3<> t(maps, size, size);
    for (int m = 0; m < maps; ++m) {
        for (int r = 0; r < size; ++r) {
            for (int c = 0; c < size; ++c) {
                t.at(m, r, c) =
                    Fixed16::fromDouble(rng.uniformReal(-1.0, 1.0));
            }
        }
    }
    return t;
}

Tensor3<>
makeRandomInput(Rng &rng, const ConvLayerSpec &spec)
{
    return makeRandomInput(rng, spec.inMaps, spec.inSize);
}

Tensor4<>
makeRandomKernels(Rng &rng, int out_maps, int in_maps, int kernel)
{
    Tensor4<> t(out_maps, in_maps, kernel, kernel);
    for (int m = 0; m < out_maps; ++m) {
        for (int n = 0; n < in_maps; ++n) {
            for (int i = 0; i < kernel; ++i) {
                for (int j = 0; j < kernel; ++j) {
                    t.at(m, n, i, j) = Fixed16::fromDouble(
                        rng.uniformReal(-0.25, 0.25));
                }
            }
        }
    }
    return t;
}

Tensor4<>
makeRandomKernels(Rng &rng, const ConvLayerSpec &spec)
{
    return makeRandomKernels(rng, spec.outMaps, spec.inMaps, spec.kernel);
}

} // namespace flexsim
