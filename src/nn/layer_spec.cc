#include "nn/layer_spec.hh"

#include <cstdint>

#include "common/logging.hh"

namespace flexsim {

namespace {

/**
 * Per-dimension cap for externally supplied layers.  Generous (a
 * million maps / million-pixel edges are far beyond any CNN) while
 * keeping every derived product well inside 64 bits.
 */
constexpr std::int64_t kMaxDim = 1 << 20;

/** Cap on derived word/MAC counts (2^50 ~ one quadrillion). */
constexpr std::int64_t kMaxCount = std::int64_t{1} << 50;

/** a * b, or kMaxCount + 1 if the product would exceed the cap. */
std::int64_t
cappedMul(std::int64_t a, std::int64_t b)
{
    if (b != 0 && a > kMaxCount / b)
        return kMaxCount + 1;
    return a * b;
}

} // namespace

guard::Expected<void>
PoolLayerSpec::checked() const
{
    if (window < 1 || stride < 1) {
        return guard::makeError(
            guard::Category::InvalidArgument, "nn.pool",
            "pooling window ", window, " and stride ", stride,
            " must be positive");
    }
    if (window > kMaxDim || stride > kMaxDim) {
        return guard::makeError(guard::Category::OutOfRange, "nn.pool",
                                "pooling window ", window,
                                " or stride ", stride,
                                " exceeds the supported maximum ",
                                kMaxDim);
    }
    if (op != PoolOp::Max && op != PoolOp::Average) {
        return guard::makeError(guard::Category::InvalidArgument,
                                "nn.pool", "unknown pooling operator ",
                                static_cast<int>(op));
    }
    return guard::ok();
}

ConvLayerSpec
ConvLayerSpec::make(std::string name, int in_maps, int out_maps,
                    int out_size, int kernel_size, int stride)
{
    auto spec = tryMake(std::move(name), in_maps, out_maps, out_size,
                        kernel_size, stride);
    if (!spec)
        fatal(spec.error().str());
    return spec.value();
}

guard::Expected<ConvLayerSpec>
ConvLayerSpec::tryMake(std::string name, int in_maps, int out_maps,
                       int out_size, int kernel_size, int stride)
{
    ConvLayerSpec spec;
    spec.name = std::move(name);
    spec.inMaps = in_maps;
    spec.outMaps = out_maps;
    spec.outSize = out_size;
    spec.kernel = kernel_size;
    spec.stride = stride;
    // Derive inSize in 64-bit and range-check before narrowing so a
    // hostile out_size/stride pair cannot overflow the int field.
    const std::int64_t in_size =
        (static_cast<std::int64_t>(out_size) - 1) * stride +
        kernel_size;
    if (out_size >= 1 && stride >= 1 && in_size > 0 &&
        in_size <= 2 * kMaxDim) {
        spec.inSize = static_cast<int>(in_size);
    }
    if (auto valid = spec.checked(); !valid)
        return valid.error();
    return spec;
}

ConvLayerSpec
ConvLayerSpec::fullyConnected(std::string name, int inputs, int outputs)
{
    return make(std::move(name), inputs, outputs, 1, 1);
}

MacCount
ConvLayerSpec::macs() const
{
    return static_cast<MacCount>(outMaps) * inMaps * outSize * outSize *
           kernel * kernel;
}

WordCount
ConvLayerSpec::inputWords() const
{
    return static_cast<WordCount>(inMaps) * inSize * inSize;
}

WordCount
ConvLayerSpec::kernelWords() const
{
    return static_cast<WordCount>(outMaps) * inMaps * kernel * kernel;
}

WordCount
ConvLayerSpec::outputWords() const
{
    return static_cast<WordCount>(outMaps) * outSize * outSize;
}

void
ConvLayerSpec::validate() const
{
    if (auto valid = checked(); !valid)
        fatal(valid.error().str());
}

guard::Expected<void>
ConvLayerSpec::checked() const
{
    const auto reject = [this](guard::Category category,
                               const std::string &what) {
        return guard::makeError(category, "nn.layer", "layer ", name,
                                ": ", what);
    };
    if (inMaps < 1 || outMaps < 1) {
        return reject(guard::Category::InvalidArgument,
                      "feature map counts must be positive");
    }
    if (outSize < 1 || kernel < 1 || stride < 1) {
        return reject(guard::Category::InvalidArgument,
                      "sizes and stride must be positive");
    }
    if (inMaps > kMaxDim || outMaps > kMaxDim || outSize > kMaxDim ||
        kernel > kMaxDim || stride > kMaxDim ||
        inSize > 2 * kMaxDim) {
        return reject(guard::Category::OutOfRange,
                      "a dimension exceeds the supported maximum " +
                          std::to_string(kMaxDim));
    }
    if (static_cast<std::int64_t>(inSize) <
        (static_cast<std::int64_t>(outSize) - 1) * stride + kernel) {
        std::ostringstream oss;
        oss << "input size " << inSize << " too small for " << outSize
            << " outputs of a " << kernel << "x" << kernel
            << " kernel at stride " << stride;
        return reject(guard::Category::InvalidArgument, oss.str());
    }
    // With individual dimensions capped, only the full MAC product
    // (and the kernel stack) can still overflow a useful range.
    std::int64_t macs = cappedMul(outMaps, inMaps);
    macs = cappedMul(macs, cappedMul(outSize, outSize));
    macs = cappedMul(macs, cappedMul(kernel, kernel));
    const std::int64_t input_words = cappedMul(
        inMaps, cappedMul(inSize, inSize));
    if (macs > kMaxCount || input_words > kMaxCount) {
        return reject(guard::Category::OutOfRange,
                      "tensor/MAC counts overflow the supported "
                      "range (overflow-sized layer)");
    }
    return guard::ok();
}

MacCount
NetworkSpec::totalMacs() const
{
    MacCount total = 0;
    for (const Stage &stage : stages)
        total += stage.conv.macs();
    return total;
}

std::optional<int>
NetworkSpec::nextKernel(std::size_t stage_index) const
{
    if (stage_index + 1 < stages.size())
        return stages[stage_index + 1].conv.kernel;
    return std::nullopt;
}

int
NetworkSpec::poolWindowAfter(std::size_t stage_index) const
{
    if (stage_index < stages.size() && stages[stage_index].poolAfter)
        return stages[stage_index].poolAfter->window;
    return 1;
}

void
NetworkSpec::validate() const
{
    if (auto valid = checked(); !valid)
        fatal(valid.error().str());
}

guard::Expected<void>
NetworkSpec::checked() const
{
    if (stages.empty()) {
        return guard::makeError(guard::Category::InvalidArgument,
                                "nn.network", "network ", name,
                                " has no layers");
    }
    for (const Stage &stage : stages) {
        if (auto valid = stage.conv.checked(); !valid)
            return valid.error();
        if (stage.poolAfter) {
            if (auto valid = stage.poolAfter->checked(); !valid)
                return valid.error();
        }
    }
    return guard::ok();
}

} // namespace flexsim
