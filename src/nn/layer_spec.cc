#include "nn/layer_spec.hh"

#include "common/logging.hh"

namespace flexsim {

ConvLayerSpec
ConvLayerSpec::make(std::string name, int in_maps, int out_maps,
                    int out_size, int kernel_size, int stride)
{
    ConvLayerSpec spec;
    spec.name = std::move(name);
    spec.inMaps = in_maps;
    spec.outMaps = out_maps;
    spec.outSize = out_size;
    spec.kernel = kernel_size;
    spec.stride = stride;
    spec.inSize = (out_size - 1) * stride + kernel_size;
    spec.validate();
    return spec;
}

ConvLayerSpec
ConvLayerSpec::fullyConnected(std::string name, int inputs, int outputs)
{
    return make(std::move(name), inputs, outputs, 1, 1);
}

MacCount
ConvLayerSpec::macs() const
{
    return static_cast<MacCount>(outMaps) * inMaps * outSize * outSize *
           kernel * kernel;
}

WordCount
ConvLayerSpec::inputWords() const
{
    return static_cast<WordCount>(inMaps) * inSize * inSize;
}

WordCount
ConvLayerSpec::kernelWords() const
{
    return static_cast<WordCount>(outMaps) * inMaps * kernel * kernel;
}

WordCount
ConvLayerSpec::outputWords() const
{
    return static_cast<WordCount>(outMaps) * outSize * outSize;
}

void
ConvLayerSpec::validate() const
{
    if (inMaps < 1 || outMaps < 1)
        fatal("layer ", name, ": feature map counts must be positive");
    if (outSize < 1 || kernel < 1 || stride < 1)
        fatal("layer ", name, ": sizes and stride must be positive");
    if (inSize < (outSize - 1) * stride + kernel) {
        fatal("layer ", name, ": input size ", inSize,
              " too small for ", outSize, " outputs of a ", kernel, "x",
              kernel, " kernel at stride ", stride);
    }
}

MacCount
NetworkSpec::totalMacs() const
{
    MacCount total = 0;
    for (const Stage &stage : stages)
        total += stage.conv.macs();
    return total;
}

std::optional<int>
NetworkSpec::nextKernel(std::size_t stage_index) const
{
    if (stage_index + 1 < stages.size())
        return stages[stage_index + 1].conv.kernel;
    return std::nullopt;
}

int
NetworkSpec::poolWindowAfter(std::size_t stage_index) const
{
    if (stage_index < stages.size() && stages[stage_index].poolAfter)
        return stages[stage_index].poolAfter->window;
    return 1;
}

void
NetworkSpec::validate() const
{
    if (stages.empty())
        fatal("network ", name, " has no layers");
    for (const Stage &stage : stages)
        stage.conv.validate();
}

} // namespace flexsim
