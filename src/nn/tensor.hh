/**
 * @file
 * Dense tensor containers for feature maps and kernel stacks.
 *
 * Tensor3 indexes (map, row, col) and stores input/output feature map
 * stacks; Tensor4 indexes (outMap, inMap, row, col) and stores the
 * kernels of one CONV layer.  Both are bounds-checked via
 * flexsim_assert in all build types: the simulators use tensor access
 * as a dataflow self-check.
 */

#ifndef FLEXSIM_NN_TENSOR_HH
#define FLEXSIM_NN_TENSOR_HH

#include <vector>

#include "common/logging.hh"
#include "nn/fixed_point.hh"

namespace flexsim {

/** A stack of 2D feature maps indexed (map, row, col). */
template <typename T = Fixed16>
class Tensor3
{
  public:
    Tensor3() = default;

    Tensor3(int maps, int height, int width)
        : maps_(maps), height_(height), width_(width),
          data_(static_cast<std::size_t>(maps) * height * width)
    {
        flexsim_assert(maps >= 0 && height >= 0 && width >= 0,
                       "negative tensor dimension");
    }

    int maps() const { return maps_; }
    int height() const { return height_; }
    int width() const { return width_; }
    std::size_t size() const { return data_.size(); }

    T &
    at(int map, int row, int col)
    {
        checkBounds(map, row, col);
        return data_[index(map, row, col)];
    }

    const T &
    at(int map, int row, int col) const
    {
        checkBounds(map, row, col);
        return data_[index(map, row, col)];
    }

    /** In-range predicate for window edges. */
    bool
    contains(int map, int row, int col) const
    {
        return map >= 0 && map < maps_ && row >= 0 && row < height_ &&
               col >= 0 && col < width_;
    }

    /**
     * Raw (map, row, col)-major storage for hot loops that index with
     * offsets proven in range when they were precomputed.
     */
    const T *data() const { return data_.data(); }

    bool operator==(const Tensor3 &) const = default;

  private:
    std::size_t
    index(int map, int row, int col) const
    {
        return (static_cast<std::size_t>(map) * height_ + row) * width_ +
               col;
    }

    void
    checkBounds(int map, int row, int col) const
    {
        flexsim_assert(contains(map, row, col), "Tensor3 index (", map,
                       ", ", row, ", ", col, ") outside (", maps_, ", ",
                       height_, ", ", width_, ")");
    }

    int maps_ = 0;
    int height_ = 0;
    int width_ = 0;
    std::vector<T> data_;
};

/** The kernel stack of one CONV layer, indexed (outMap, inMap, i, j). */
template <typename T = Fixed16>
class Tensor4
{
  public:
    Tensor4() = default;

    Tensor4(int outMaps, int inMaps, int height, int width)
        : outMaps_(outMaps), inMaps_(inMaps), height_(height),
          width_(width),
          data_(static_cast<std::size_t>(outMaps) * inMaps * height *
                width)
    {
        flexsim_assert(outMaps >= 0 && inMaps >= 0 && height >= 0 &&
                           width >= 0,
                       "negative tensor dimension");
    }

    int outMaps() const { return outMaps_; }
    int inMaps() const { return inMaps_; }
    int height() const { return height_; }
    int width() const { return width_; }
    std::size_t size() const { return data_.size(); }

    T &
    at(int m, int n, int i, int j)
    {
        checkBounds(m, n, i, j);
        return data_[index(m, n, i, j)];
    }

    const T &
    at(int m, int n, int i, int j) const
    {
        checkBounds(m, n, i, j);
        return data_[index(m, n, i, j)];
    }

    /**
     * Raw (outMap, inMap, row, col)-major storage for hot loops that
     * index with offsets proven in range when they were precomputed.
     */
    const T *data() const { return data_.data(); }

    bool operator==(const Tensor4 &) const = default;

  private:
    std::size_t
    index(int m, int n, int i, int j) const
    {
        return ((static_cast<std::size_t>(m) * inMaps_ + n) * height_ +
                i) *
                   width_ +
               j;
    }

    void
    checkBounds(int m, int n, int i, int j) const
    {
        flexsim_assert(m >= 0 && m < outMaps_ && n >= 0 && n < inMaps_ &&
                           i >= 0 && i < height_ && j >= 0 && j < width_,
                       "Tensor4 index (", m, ", ", n, ", ", i, ", ", j,
                       ") outside (", outMaps_, ", ", inMaps_, ", ",
                       height_, ", ", width_, ")");
    }

    int outMaps_ = 0;
    int inMaps_ = 0;
    int height_ = 0;
    int width_ = 0;
    std::vector<T> data_;
};

} // namespace flexsim

#endif // FLEXSIM_NN_TENSOR_HH
