/**
 * @file
 * The six practical CNN workloads of the paper's Table 1.
 *
 * Only the CONV layers the paper lists are encoded (the paper's
 * evaluation covers exactly those); pooling layers between CONV stages
 * are reconstructed from the published inter-layer feature-map sizes
 * and drive both the pooling-unit simulation and the compiler's
 * <Tr, Tc> bound (P * K').
 */

#ifndef FLEXSIM_NN_WORKLOADS_HH
#define FLEXSIM_NN_WORKLOADS_HH

#include <vector>

#include "nn/layer_spec.hh"

namespace flexsim {
namespace workloads {

/** PV: pedestrian and vehicle recognition [28]. */
NetworkSpec pv();

/** FR: face recognition [5]. */
NetworkSpec fr();

/** LeNet-5 handwriting recognition [16]. */
NetworkSpec lenet5();

/**
 * LeNet-5 including its classifier tail (C5 as a 5x5 CONV producing
 * 120 1x1 maps, then the F6 and OUTPUT fully-connected layers).  The
 * paper's evaluation covers only the Table-1 CONV layers; this
 * variant exercises the accelerator's FC path end to end.
 */
NetworkSpec lenet5WithClassifier();

/** HG: hand gesture recognition [17]. */
NetworkSpec hg();

/** AlexNet [13] (one of the two identical halves, as in the paper). */
NetworkSpec alexnet();

/** VGG-11 [25] (the CONV layers the paper lists). */
NetworkSpec vgg11();

/** All six, in the paper's order: PV, FR, LeNet-5, HG, AlexNet, VGG. */
std::vector<NetworkSpec> all();

/** The four small workloads used by Tables 3 and 4. */
std::vector<NetworkSpec> smallFour();

} // namespace workloads
} // namespace flexsim

#endif // FLEXSIM_NN_WORKLOADS_HH
