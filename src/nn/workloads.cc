#include "nn/workloads.hh"

namespace flexsim {
namespace workloads {

namespace {

PoolLayerSpec
pool(int window, int stride)
{
    PoolLayerSpec p;
    p.window = window;
    p.stride = stride;
    p.op = PoolOp::Max;
    return p;
}

} // namespace

NetworkSpec
pv()
{
    NetworkSpec net;
    net.name = "PV";
    net.stages = {
        {ConvLayerSpec::make("C1", 1, 8, 45, 6), pool(2, 2)},
        {ConvLayerSpec::make("C3", 8, 12, 20, 3), pool(2, 2)},
        {ConvLayerSpec::make("C5", 12, 16, 8, 3), std::nullopt},
        {ConvLayerSpec::make("C6", 16, 10, 6, 3), std::nullopt},
        {ConvLayerSpec::make("C7", 10, 6, 4, 3), std::nullopt},
    };
    net.validate();
    return net;
}

NetworkSpec
fr()
{
    NetworkSpec net;
    net.name = "FR";
    net.stages = {
        {ConvLayerSpec::make("C1", 1, 4, 28, 5), pool(2, 2)},
        {ConvLayerSpec::make("C3", 4, 16, 10, 4), std::nullopt},
    };
    net.validate();
    return net;
}

NetworkSpec
lenet5()
{
    NetworkSpec net;
    net.name = "LeNet-5";
    net.stages = {
        {ConvLayerSpec::make("C1", 1, 6, 28, 5), pool(2, 2)},
        {ConvLayerSpec::make("C3", 6, 16, 10, 5), std::nullopt},
    };
    net.validate();
    return net;
}

NetworkSpec
lenet5WithClassifier()
{
    NetworkSpec net = lenet5();
    net.name = "LeNet-5+FC";
    // The classic LeNet-5 tail: the S4 pooling layer shrinks C3's
    // 16@10x10 output to 16@5x5, C5 consumes it with 5x5 kernels
    // (120 1x1 outputs), then two classifier layers.
    net.stages[1].poolAfter = pool(2, 2);
    net.stages.push_back(
        {ConvLayerSpec::make("C5", 16, 120, 1, 5), std::nullopt});
    net.stages.push_back(
        {ConvLayerSpec::fullyConnected("F6", 120, 84), std::nullopt});
    net.stages.push_back(
        {ConvLayerSpec::fullyConnected("OUTPUT", 84, 10),
         std::nullopt});
    net.validate();
    return net;
}

NetworkSpec
hg()
{
    NetworkSpec net;
    net.name = "HG";
    net.stages = {
        {ConvLayerSpec::make("C1", 1, 6, 24, 5), pool(2, 2)},
        {ConvLayerSpec::make("C3", 6, 12, 8, 4), std::nullopt},
    };
    net.validate();
    return net;
}

NetworkSpec
alexnet()
{
    NetworkSpec net;
    net.name = "AlexNet";
    net.stages = {
        {ConvLayerSpec::make("C1", 3, 48, 55, 11, 4), pool(3, 2)},
        {ConvLayerSpec::make("C3", 48, 128, 27, 5), pool(3, 2)},
        // The paper lists 256 input maps for C5 (the two AlexNet halves
        // merge here).
        {ConvLayerSpec::make("C5", 256, 192, 13, 3), std::nullopt},
        {ConvLayerSpec::make("C6", 192, 192, 13, 3), std::nullopt},
        {ConvLayerSpec::make("C7", 192, 128, 13, 3), pool(3, 2)},
    };
    net.validate();
    return net;
}

NetworkSpec
vgg11()
{
    NetworkSpec net;
    net.name = "VGG-11";
    net.stages = {
        {ConvLayerSpec::make("C1", 3, 64, 222, 3), pool(2, 2)},
        {ConvLayerSpec::make("C3", 64, 128, 109, 3), pool(2, 2)},
        {ConvLayerSpec::make("C5", 128, 256, 52, 3), std::nullopt},
        {ConvLayerSpec::make("C6", 256, 256, 50, 3), pool(2, 2)},
        {ConvLayerSpec::make("C8", 256, 512, 23, 3), std::nullopt},
        // Table 1 prints "128@21x21" for C9's output, which contradicts
        // C11's 512 input maps; we encode the self-consistent 512 and
        // record the deviation in EXPERIMENTS.md.
        {ConvLayerSpec::make("C9", 512, 512, 21, 3), pool(2, 2)},
        {ConvLayerSpec::make("C11", 512, 512, 8, 3), std::nullopt},
        {ConvLayerSpec::make("C12", 512, 512, 6, 3), std::nullopt},
    };
    net.validate();
    return net;
}

std::vector<NetworkSpec>
all()
{
    return {pv(), fr(), lenet5(), hg(), alexnet(), vgg11()};
}

std::vector<NetworkSpec>
smallFour()
{
    return {pv(), fr(), lenet5(), hg()};
}

} // namespace workloads
} // namespace flexsim
