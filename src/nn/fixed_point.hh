/**
 * @file
 * 16-bit fixed-point arithmetic (Q7.8) as used by all four simulated
 * accelerators.
 *
 * The paper evaluates all baselines with 16-bit fixed-point datapaths.
 * Every simulator and the golden reference must use bit-identical
 * arithmetic so cycle-level outputs can be compared exactly:
 *
 *  - operands are Q7.8 (1 sign bit, 7 integer bits, 8 fraction bits);
 *  - a multiply produces a raw Q14.16 product in a wide accumulator;
 *  - accumulation happens at full Q14.16 precision (modelling the wide
 *    accumulator register every PE carries);
 *  - the final value is rounded to nearest and saturated back to Q7.8.
 */

#ifndef FLEXSIM_NN_FIXED_POINT_HH
#define FLEXSIM_NN_FIXED_POINT_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace flexsim {

/** Wide accumulator type holding Q14.16 partial sums. */
using Acc = std::int64_t;

/** A Q7.8 fixed-point value stored in 16 bits. */
class Fixed16
{
  public:
    /** Number of fractional bits. */
    static constexpr int fracBits = 8;

    /** Scale factor 2^fracBits. */
    static constexpr double scale = 256.0;

    constexpr Fixed16() = default;

    /** Build from a raw 16-bit pattern. */
    static constexpr Fixed16
    fromRaw(std::int16_t raw)
    {
        Fixed16 v;
        v.raw_ = raw;
        return v;
    }

    /** Quantize a double to the nearest representable value.  NaN
     * maps to zero; anything beyond the Q7.8 range (including
     * infinities) saturates — casting such a double straight to an
     * integer would be undefined behavior. */
    static Fixed16
    fromDouble(double value)
    {
        if (std::isnan(value))
            return fromRaw(0);
        double scaled = value * scale;
        scaled += scaled >= 0.0 ? 0.5 : -0.5; // round half away from zero
        if (scaled >= 32767.0)
            return fromRaw(std::numeric_limits<std::int16_t>::max());
        if (scaled <= -32768.0)
            return fromRaw(std::numeric_limits<std::int16_t>::min());
        auto wide = static_cast<std::int64_t>(scaled);
        return fromRaw(saturate16(wide));
    }

    constexpr std::int16_t raw() const { return raw_; }

    double toDouble() const { return static_cast<double>(raw_) / scale; }

    constexpr bool operator==(const Fixed16 &) const = default;

    /** Saturating Q7.8 addition. */
    friend Fixed16
    operator+(Fixed16 a, Fixed16 b)
    {
        return fromRaw(saturate16(static_cast<std::int32_t>(a.raw_) +
                                  static_cast<std::int32_t>(b.raw_)));
    }

    /** Saturating Q7.8 subtraction. */
    friend Fixed16
    operator-(Fixed16 a, Fixed16 b)
    {
        return fromRaw(saturate16(static_cast<std::int32_t>(a.raw_) -
                                  static_cast<std::int32_t>(b.raw_)));
    }

    friend constexpr bool
    operator<(Fixed16 a, Fixed16 b)
    {
        return a.raw_ < b.raw_;
    }

    /** Clamp a wide integer into int16 range. */
    static constexpr std::int16_t
    saturate16(std::int64_t wide)
    {
        if (wide > std::numeric_limits<std::int16_t>::max())
            return std::numeric_limits<std::int16_t>::max();
        if (wide < std::numeric_limits<std::int16_t>::min())
            return std::numeric_limits<std::int16_t>::min();
        return static_cast<std::int16_t>(wide);
    }

  private:
    std::int16_t raw_ = 0;
};

/** Raw Q14.16 product of two Q7.8 operands. */
inline Acc
mulRaw(Fixed16 a, Fixed16 b)
{
    return static_cast<Acc>(a.raw()) * static_cast<Acc>(b.raw());
}

/**
 * Round a Q14.16 accumulator to nearest Q7.8 and saturate.  This is the
 * output-quantization step every PE applies when a finished neuron
 * leaves the accumulator.
 */
inline Fixed16
quantizeAcc(Acc acc)
{
    const Acc half = Acc{1} << (Fixed16::fracBits - 1);
    // Accumulators within half a quantum of the int64 extremes would
    // overflow the rounding adjust (or the negation, for INT64_MIN);
    // anything that large saturates regardless.
    if (acc >= std::numeric_limits<Acc>::max() - half)
        return Fixed16::fromRaw(std::numeric_limits<std::int16_t>::max());
    if (acc <= std::numeric_limits<Acc>::min() + half)
        return Fixed16::fromRaw(std::numeric_limits<std::int16_t>::min());
    const Acc rounded =
        acc >= 0 ? (acc + half) >> Fixed16::fracBits
                 : -((-acc + half) >> Fixed16::fracBits);
    return Fixed16::fromRaw(Fixed16::saturate16(rounded));
}

} // namespace flexsim

#endif // FLEXSIM_NN_FIXED_POINT_HH
