#include "nn/golden.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace flexsim {

Tensor3<>
goldenConv(const Tensor3<> &input, const Tensor4<> &kernels, int stride)
{
    flexsim_assert(input.maps() == kernels.inMaps(),
                   "input maps ", input.maps(), " != kernel inMaps ",
                   kernels.inMaps());
    flexsim_assert(kernels.height() == kernels.width(),
                   "only square kernels are supported");
    flexsim_assert(stride >= 1, "stride must be positive");

    const int k = kernels.height();
    const int out_h = (input.height() - k) / stride + 1;
    const int out_w = (input.width() - k) / stride + 1;
    flexsim_assert(out_h >= 1 && out_w >= 1,
                   "kernel larger than input feature map");

    Tensor3<> output(kernels.outMaps(), out_h, out_w);
    for (int m = 0; m < kernels.outMaps(); ++m) {
        for (int r = 0; r < out_h; ++r) {
            for (int c = 0; c < out_w; ++c) {
                Acc acc = 0;
                for (int n = 0; n < kernels.inMaps(); ++n) {
                    for (int i = 0; i < k; ++i) {
                        for (int j = 0; j < k; ++j) {
                            acc += mulRaw(
                                input.at(n, r * stride + i,
                                         c * stride + j),
                                kernels.at(m, n, i, j));
                        }
                    }
                }
                output.at(m, r, c) = quantizeAcc(acc);
            }
        }
    }
    return output;
}

Tensor3<>
goldenConv(const ConvLayerSpec &spec, const Tensor3<> &input,
           const Tensor4<> &kernels)
{
    flexsim_assert(input.maps() == spec.inMaps &&
                       input.height() == spec.inSize &&
                       input.width() == spec.inSize,
                   "input tensor does not match layer ", spec.name);
    flexsim_assert(kernels.outMaps() == spec.outMaps &&
                       kernels.inMaps() == spec.inMaps &&
                       kernels.height() == spec.kernel,
                   "kernel tensor does not match layer ", spec.name);
    Tensor3<> out = goldenConv(input, kernels, spec.stride);
    flexsim_assert(out.height() == spec.outSize,
                   "layer ", spec.name, " produced ", out.height(),
                   " rows, spec says ", spec.outSize);
    return out;
}

Tensor3<>
goldenConvIm2col(const Tensor3<> &input, const Tensor4<> &kernels,
                 int stride)
{
    flexsim_assert(input.maps() == kernels.inMaps(),
                   "input maps mismatch");
    const int k = kernels.height();
    const int out_h = (input.height() - k) / stride + 1;
    const int out_w = (input.width() - k) / stride + 1;
    const int n_maps = kernels.inMaps();
    const int patch = n_maps * k * k;
    const int positions = out_h * out_w;

    // Lower the input into the (positions x patch) column matrix.
    std::vector<Fixed16> columns(
        static_cast<std::size_t>(positions) * patch);
    for (int r = 0; r < out_h; ++r) {
        for (int c = 0; c < out_w; ++c) {
            const std::size_t row_base =
                (static_cast<std::size_t>(r) * out_w + c) * patch;
            std::size_t idx = row_base;
            for (int n = 0; n < n_maps; ++n)
                for (int i = 0; i < k; ++i)
                    for (int j = 0; j < k; ++j)
                        columns[idx++] = input.at(
                            n, r * stride + i, c * stride + j);
        }
    }

    // Multiply by the (M x patch) weight matrix.
    Tensor3<> output(kernels.outMaps(), out_h, out_w);
    for (int m = 0; m < kernels.outMaps(); ++m) {
        std::vector<Fixed16> weights(patch);
        std::size_t widx = 0;
        for (int n = 0; n < n_maps; ++n)
            for (int i = 0; i < k; ++i)
                for (int j = 0; j < k; ++j)
                    weights[widx++] = kernels.at(m, n, i, j);
        for (int pos = 0; pos < positions; ++pos) {
            Acc acc = 0;
            const std::size_t row_base =
                static_cast<std::size_t>(pos) * patch;
            for (int p = 0; p < patch; ++p)
                acc += mulRaw(columns[row_base + p], weights[p]);
            output.at(m, pos / out_w, pos % out_w) = quantizeAcc(acc);
        }
    }
    return output;
}

Tensor3<double>
goldenConvFloat(const Tensor3<> &input, const Tensor4<> &kernels,
                int stride)
{
    flexsim_assert(input.maps() == kernels.inMaps(),
                   "input maps mismatch");
    const int k = kernels.height();
    const int out_h = (input.height() - k) / stride + 1;
    const int out_w = (input.width() - k) / stride + 1;
    Tensor3<double> output(kernels.outMaps(), out_h, out_w);
    for (int m = 0; m < kernels.outMaps(); ++m) {
        for (int r = 0; r < out_h; ++r) {
            for (int c = 0; c < out_w; ++c) {
                double acc = 0.0;
                for (int n = 0; n < kernels.inMaps(); ++n) {
                    for (int i = 0; i < k; ++i) {
                        for (int j = 0; j < k; ++j) {
                            acc += input.at(n, r * stride + i,
                                            c * stride + j)
                                       .toDouble() *
                                   kernels.at(m, n, i, j).toDouble();
                        }
                    }
                }
                output.at(m, r, c) = acc;
            }
        }
    }
    return output;
}

QuantizationError
measureQuantizationError(const Tensor3<> &fixed,
                         const Tensor3<double> &ref)
{
    flexsim_assert(fixed.maps() == ref.maps() &&
                       fixed.height() == ref.height() &&
                       fixed.width() == ref.width(),
                   "error measurement over mismatched tensors");
    QuantizationError err;
    double sum_sq = 0.0;
    std::size_t count = 0;
    for (int m = 0; m < fixed.maps(); ++m) {
        for (int r = 0; r < fixed.height(); ++r) {
            for (int c = 0; c < fixed.width(); ++c) {
                const double delta =
                    fixed.at(m, r, c).toDouble() - ref.at(m, r, c);
                err.maxAbs = std::max(err.maxAbs, std::abs(delta));
                err.refPeak =
                    std::max(err.refPeak, std::abs(ref.at(m, r, c)));
                sum_sq += delta * delta;
                ++count;
            }
        }
    }
    if (count > 0)
        err.rms = std::sqrt(sum_sq / static_cast<double>(count));
    return err;
}

Tensor3<>
cropTopLeft(const Tensor3<> &input, int size)
{
    if (input.height() < size || input.width() < size) {
        fatal("cannot crop a ", input.height(), "x", input.width(),
              " map to ", size, "x", size);
    }
    if (input.height() == size && input.width() == size)
        return input;
    Tensor3<> out(input.maps(), size, size);
    for (int m = 0; m < input.maps(); ++m)
        for (int r = 0; r < size; ++r)
            for (int c = 0; c < size; ++c)
                out.at(m, r, c) = input.at(m, r, c);
    return out;
}

int
pooledSize(int in_size, const PoolLayerSpec &spec)
{
    flexsim_assert(spec.window >= 1 && spec.stride >= 1,
                   "bad pooling spec");
    if (in_size < spec.window)
        return 0;
    return (in_size - spec.window) / spec.stride + 1;
}

Tensor3<>
goldenPool(const Tensor3<> &input, const PoolLayerSpec &spec)
{
    const int out_h = pooledSize(input.height(), spec);
    const int out_w = pooledSize(input.width(), spec);
    Tensor3<> output(input.maps(), out_h, out_w);

    const int window_elems = spec.window * spec.window;
    for (int m = 0; m < input.maps(); ++m) {
        for (int r = 0; r < out_h; ++r) {
            for (int c = 0; c < out_w; ++c) {
                if (spec.op == PoolOp::Max) {
                    Fixed16 best = input.at(m, r * spec.stride,
                                            c * spec.stride);
                    for (int i = 0; i < spec.window; ++i) {
                        for (int j = 0; j < spec.window; ++j) {
                            const Fixed16 v =
                                input.at(m, r * spec.stride + i,
                                         c * spec.stride + j);
                            if (best < v)
                                best = v;
                        }
                    }
                    output.at(m, r, c) = best;
                } else {
                    Acc acc = 0;
                    for (int i = 0; i < spec.window; ++i) {
                        for (int j = 0; j < spec.window; ++j) {
                            acc += input.at(m, r * spec.stride + i,
                                            c * spec.stride + j)
                                       .raw();
                        }
                    }
                    // Average with round-to-nearest on the raw sum.
                    const Acc half = window_elems / 2;
                    const Acc avg =
                        acc >= 0 ? (acc + half) / window_elems
                                 : -((-acc + half) / window_elems);
                    output.at(m, r, c) =
                        Fixed16::fromRaw(Fixed16::saturate16(avg));
                }
            }
        }
    }
    return output;
}

} // namespace flexsim
