/**
 * @file
 * Declarative CNN layer and network descriptions.
 *
 * A ConvLayerSpec captures the four object-related parameters from the
 * paper's Section 2 (M, N, S, K) plus stride and the derived input map
 * size.  A NetworkSpec is the ordered layer list of one workload; the
 * compiler consults the *next* CONV kernel size K' and the intervening
 * pooling window P when bounding <Tr, Tc> (paper Section 5).
 */

#ifndef FLEXSIM_NN_LAYER_SPEC_HH
#define FLEXSIM_NN_LAYER_SPEC_HH

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "guard/error.hh"

namespace flexsim {

/** Pooling operator kinds supported by the 1D pooling unit. */
enum class PoolOp
{
    Max,
    Average,
};

/** A subsampling layer between two CONV layers. */
struct PoolLayerSpec
{
    int window = 2; ///< pooling window edge (P in the paper)
    int stride = 2; ///< subsampling stride
    PoolOp op = PoolOp::Max;

    /** Typed validation of an externally supplied pooling layer. */
    guard::Expected<void> checked() const;
};

/**
 * One convolutional layer.
 *
 * The paper's notation:  N input feature maps, M output feature maps,
 * output maps of size S x S, kernels of size K x K.  inSize is the
 * input feature-map edge consistent with a valid (unpadded)
 * convolution: inSize == (S - 1) * stride + K.
 */
struct ConvLayerSpec
{
    std::string name;  ///< e.g. "C3"
    int inMaps = 1;    ///< N
    int outMaps = 1;   ///< M
    int inSize = 1;    ///< input feature-map edge
    int outSize = 1;   ///< S
    int kernel = 1;    ///< K
    int stride = 1;

    /** Construct with inSize derived for a valid convolution.
     * fatal()s on a bad spec — for trusted (internal) layer tables;
     * untrusted input goes through tryMake(). */
    static ConvLayerSpec make(std::string name, int in_maps, int out_maps,
                              int out_size, int kernel_size,
                              int stride = 1);

    /**
     * The guarded form of make() for externally supplied layer
     * descriptions (flexcc --layers, decoded cfg_layer programs):
     * returns the spec or a typed guard::Error instead of aborting.
     * Rejects non-positive and overflow-sized dimensions (see
     * checked()).
     */
    static guard::Expected<ConvLayerSpec>
    tryMake(std::string name, int in_maps, int out_maps, int out_size,
            int kernel_size, int stride = 1);

    /**
     * A fully-connected (classifier) layer expressed as a CONV layer
     * with 1x1 maps and a 1x1 kernel: every accelerator dataflow then
     * executes it unchanged (N = inputs, M = outputs, S = K = 1).
     */
    static ConvLayerSpec fullyConnected(std::string name, int inputs,
                                        int outputs);

    /** True for layers built by fullyConnected(). */
    bool isFullyConnected() const
    {
        return outSize == 1 && kernel == 1;
    }

    /** Multiply-accumulates to compute the layer. */
    MacCount macs() const;

    /** Words in the input feature-map stack. */
    WordCount inputWords() const;

    /** Words in the kernel stack. */
    WordCount kernelWords() const;

    /** Words in the output feature-map stack. */
    WordCount outputWords() const;

    /** Check internal consistency; calls fatal() on bad specs. */
    void validate() const;

    /**
     * Typed validation: positive dimensions, consistent geometry,
     * and tensors/MAC counts that fit comfortably in 64-bit
     * arithmetic (an overflow-sized layer is rejected here instead
     * of wrapping a WordCount downstream).
     */
    guard::Expected<void> checked() const;
};

/**
 * An ordered network description: CONV layers with optional pooling
 * between them.
 */
struct NetworkSpec
{
    struct Stage
    {
        ConvLayerSpec conv;
        /** Pooling applied to this layer's output, if any. */
        std::optional<PoolLayerSpec> poolAfter;
    };

    std::string name;
    std::vector<Stage> stages;

    /** Total MACs over all CONV layers. */
    MacCount totalMacs() const;

    /** Kernel size of the next CONV layer (K'), if any. */
    std::optional<int> nextKernel(std::size_t stage_index) const;

    /** Pooling window between stage i and i+1 (P; 1 when no pooling). */
    int poolWindowAfter(std::size_t stage_index) const;

    /** Validate every stage. */
    void validate() const;

    /** Typed validation of the whole network (layers and pooling). */
    guard::Expected<void> checked() const;
};

} // namespace flexsim

#endif // FLEXSIM_NN_LAYER_SPEC_HH
