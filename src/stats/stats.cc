#include "stats/stats.hh"

#include <iomanip>
#include <ostream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flexsim {
namespace statistics {

Scalar &
Scalar::init(StatGroup *group, const std::string &name,
             const std::string &desc)
{
    flexsim_assert(group != nullptr, "scalar '", name, "' needs a group");
    flexsim_assert(!name.empty(), "scalar stats must be named");
    name_ = name;
    desc_ = desc;
    group->addScalar(this);
    return *this;
}

Formula &
Formula::init(StatGroup *group, const std::string &name,
              const std::string &desc, Eval eval)
{
    flexsim_assert(group != nullptr, "formula '", name, "' needs a group");
    flexsim_assert(!name.empty(), "formula stats must be named");
    name_ = name;
    desc_ = desc;
    eval_ = std::move(eval);
    group->addFormula(this);
    return *this;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : name_(std::move(name)), parent_(parent)
{
    flexsim_assert(parent_ != nullptr, "child StatGroup needs a parent");
    parent_->addChild(this);
}

std::string
StatGroup::path() const
{
    if (parent_ == nullptr)
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::addScalar(Scalar *stat)
{
    scalars_.push_back(stat);
}

void
StatGroup::addFormula(Formula *stat)
{
    formulas_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path() + ".";
    for (const Scalar *s : scalars_) {
        os << std::left << std::setw(48) << (prefix + s->name())
           << std::right << std::setw(16) << s->value();
        if (!s->desc().empty())
            os << "  # " << s->desc();
        os << "\n";
    }
    for (const Formula *f : formulas_) {
        os << std::left << std::setw(48) << (prefix + f->name())
           << std::right << std::setw(16) << f->value();
        if (!f->desc().empty())
            os << "  # " << f->desc();
        os << "\n";
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (Scalar *s : scalars_)
        s->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

const Scalar *
StatGroup::findScalar(const std::string &dotted) const
{
    const auto parts = split(dotted, '.');
    const StatGroup *group = this;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        const StatGroup *next = nullptr;
        for (const StatGroup *child : group->children_) {
            if (child->name() == parts[i]) {
                next = child;
                break;
            }
        }
        if (next == nullptr)
            return nullptr;
        group = next;
    }
    for (const Scalar *s : group->scalars_) {
        if (s->name() == parts.back())
            return s;
    }
    return nullptr;
}

const Formula *
StatGroup::findFormula(const std::string &dotted) const
{
    const auto parts = split(dotted, '.');
    const StatGroup *group = this;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        const StatGroup *next = nullptr;
        for (const StatGroup *child : group->children_) {
            if (child->name() == parts[i]) {
                next = child;
                break;
            }
        }
        if (next == nullptr)
            return nullptr;
        group = next;
    }
    for (const Formula *f : group->formulas_) {
        if (f->name() == parts.back())
            return f;
    }
    return nullptr;
}

} // namespace statistics
} // namespace flexsim
