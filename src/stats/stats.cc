#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flexsim {
namespace statistics {

Scalar &
Scalar::init(StatGroup *group, const std::string &name,
             const std::string &desc)
{
    flexsim_assert(group != nullptr, "scalar '", name, "' needs a group");
    flexsim_assert(!name.empty(), "scalar stats must be named");
    name_ = name;
    desc_ = desc;
    group->addScalar(this);
    return *this;
}

Formula &
Formula::init(StatGroup *group, const std::string &name,
              const std::string &desc, Eval eval)
{
    flexsim_assert(group != nullptr, "formula '", name, "' needs a group");
    flexsim_assert(!name.empty(), "formula stats must be named");
    name_ = name;
    desc_ = desc;
    eval_ = std::move(eval);
    group->addFormula(this);
    return *this;
}

namespace {

/** SplitMix64 step: the reservoir's deterministic index stream. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Distribution &
Distribution::init(StatGroup *group, const std::string &name,
                   const std::string &desc,
                   std::size_t reservoir_capacity)
{
    flexsim_assert(group != nullptr, "distribution '", name,
                   "' needs a group");
    flexsim_assert(!name.empty(), "distribution stats must be named");
    flexsim_assert(reservoir_capacity > 0,
                   "distribution '", name, "' needs a reservoir");
    name_ = name;
    desc_ = desc;
    capacity_ = reservoir_capacity;
    reservoir_.reserve(capacity_);
    group->addDistribution(this);
    return *this;
}

void
Distribution::sample(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    if (reservoir_.size() < capacity_) {
        reservoir_.push_back(value);
    } else {
        // Algorithm R: sample i replaces a random slot with
        // probability capacity / i.
        const std::uint64_t slot = splitmix64(rngState_) % count_;
        if (slot < capacity_)
            reservoir_[slot] = value;
    }
}

double
Distribution::percentile(double p) const
{
    // Degenerate reservoirs: no samples -> 0.0, one sample -> that
    // sample, for every p (see the header contract).
    if (reservoir_.empty())
        return 0.0;
    if (reservoir_.size() == 1)
        return reservoir_.front();
    std::vector<double> sorted(reservoir_);
    std::sort(sorted.begin(), sorted.end());
    p = std::clamp(p, 0.0, 1.0);
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    reservoir_.clear();
    rngState_ = 0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : name_(std::move(name)), parent_(parent)
{
    flexsim_assert(parent_ != nullptr, "child StatGroup needs a parent");
    parent_->addChild(this);
}

std::string
StatGroup::path() const
{
    if (parent_ == nullptr)
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::addScalar(Scalar *stat)
{
    scalars_.push_back(stat);
}

void
StatGroup::addFormula(Formula *stat)
{
    formulas_.push_back(stat);
}

void
StatGroup::addDistribution(Distribution *stat)
{
    distributions_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path() + ".";
    for (const Scalar *s : scalars_) {
        os << std::left << std::setw(48) << (prefix + s->name())
           << std::right << std::setw(16) << s->value();
        if (!s->desc().empty())
            os << "  # " << s->desc();
        os << "\n";
    }
    for (const Formula *f : formulas_) {
        os << std::left << std::setw(48) << (prefix + f->name())
           << std::right << std::setw(16) << f->value();
        if (!f->desc().empty())
            os << "  # " << f->desc();
        os << "\n";
    }
    for (const Distribution *d : distributions_) {
        const struct
        {
            const char *suffix;
            double value;
        } rows[] = {
            {"count", static_cast<double>(d->count())},
            {"min", d->min()},
            {"mean", d->mean()},
            {"p50", d->percentile(0.50)},
            {"p95", d->percentile(0.95)},
            {"p99", d->percentile(0.99)},
            {"max", d->max()},
        };
        bool first = true;
        for (const auto &row : rows) {
            os << std::left << std::setw(48)
               << (prefix + d->name() + "." + row.suffix)
               << std::right << std::setw(16) << row.value;
            if (first && !d->desc().empty())
                os << "  # " << d->desc();
            first = false;
            os << "\n";
        }
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (Scalar *s : scalars_)
        s->reset();
    for (Distribution *d : distributions_)
        d->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

const StatGroup *
StatGroup::descend(const std::vector<std::string> &parts) const
{
    const StatGroup *group = this;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        const StatGroup *next = nullptr;
        for (const StatGroup *child : group->children_) {
            if (child->name() == parts[i]) {
                next = child;
                break;
            }
        }
        if (next == nullptr)
            return nullptr;
        group = next;
    }
    return group;
}

const Scalar *
StatGroup::findScalar(const std::string &dotted) const
{
    const auto parts = split(dotted, '.');
    const StatGroup *group = descend(parts);
    if (group == nullptr)
        return nullptr;
    for (const Scalar *s : group->scalars_) {
        if (s->name() == parts.back())
            return s;
    }
    return nullptr;
}

const Formula *
StatGroup::findFormula(const std::string &dotted) const
{
    const auto parts = split(dotted, '.');
    const StatGroup *group = descend(parts);
    if (group == nullptr)
        return nullptr;
    for (const Formula *f : group->formulas_) {
        if (f->name() == parts.back())
            return f;
    }
    return nullptr;
}

const Distribution *
StatGroup::findDistribution(const std::string &dotted) const
{
    const auto parts = split(dotted, '.');
    const StatGroup *group = descend(parts);
    if (group == nullptr)
        return nullptr;
    for (const Distribution *d : group->distributions_) {
        if (d->name() == parts.back())
            return d;
    }
    return nullptr;
}

} // namespace statistics
} // namespace flexsim
