/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own a StatGroup and register named Scalar counters and
 * Formula statistics against it.  At the end of a simulation the group
 * renders a name/value/description report.  Formulas are evaluated
 * lazily at dump time so they always reflect final counter values.
 */

#ifndef FLEXSIM_STATS_STATS_HH
#define FLEXSIM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace flexsim {
namespace statistics {

class StatGroup;

/**
 * num / den, or 0.0 when the denominator is not positive.
 *
 * Every rate/ratio statistic in the tree (shed rate, SLO-violation
 * rate, utilization, ...) uses this one guard so an empty run renders
 * 0 everywhere instead of NaN.
 */
inline double
safeRatio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

/** A named scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    /** Register this scalar with @p group under @p name. */
    Scalar &init(StatGroup *group, const std::string &name,
                 const std::string &desc);

    Scalar &operator+=(double delta) { value_ += delta; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Reset the counter to zero. */
    void reset() { value_ = 0.0; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** A derived statistic evaluated at dump time. */
class Formula
{
  public:
    using Eval = std::function<double()>;

    Formula() = default;

    /** Register this formula with @p group under @p name. */
    Formula &init(StatGroup *group, const std::string &name,
                  const std::string &desc, Eval eval);

    double value() const { return eval_ ? eval_() : 0.0; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    Eval eval_;
};

/**
 * A named sample distribution.
 *
 * Tracks streaming count/min/max/mean exactly and keeps a bounded
 * reservoir of samples for percentile queries (p50/p95/p99).  The
 * reservoir uses Vitter's Algorithm R driven by an internal
 * deterministic generator, so a deterministic sample stream always
 * yields a byte-identical report — a property the serving runtime's
 * repeatability guarantee relies on.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Register this distribution with @p group under @p name. */
    Distribution &init(StatGroup *group, const std::string &name,
                       const std::string &desc,
                       std::size_t reservoir_capacity = 4096);

    /** Record one sample. */
    void sample(double value);

    std::uint64_t count() const { return count_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    double mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Percentile estimate from the reservoir (linear interpolation
     * between order statistics); @p p is clamped to [0, 1].
     *
     * Degenerate reservoirs have defined values: with no samples
     * every percentile is 0.0, and with a single sample every
     * percentile is that sample — so p50/p95/p99 are always safe to
     * render, never NaN.
     */
    double percentile(double p) const;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Forget every sample. */
    void reset();

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::size_t capacity_ = 4096;
    std::vector<double> reservoir_;
    std::uint64_t rngState_ = 0;
};

/**
 * A named collection of statistics.  Groups can nest; dump() renders
 * the whole subtree with dotted names (group.sub.stat).
 */
class StatGroup
{
  public:
    /** Root group. */
    explicit StatGroup(std::string name);

    /** Child group registered under @p parent. */
    StatGroup(StatGroup *parent, std::string name);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Fully dotted path from the root. */
    std::string path() const;

    /** Write a "name value  # desc" report for this subtree. */
    void dump(std::ostream &os) const;

    /** Reset every scalar in this subtree. */
    void resetAll();

    /** Look up a scalar by dotted path relative to this group. */
    const Scalar *findScalar(const std::string &dotted) const;

    /** Look up a formula by dotted path relative to this group. */
    const Formula *findFormula(const std::string &dotted) const;

    /** Look up a distribution by dotted path relative to this group. */
    const Distribution *findDistribution(const std::string &dotted) const;

  private:
    friend class Scalar;
    friend class Formula;
    friend class Distribution;

    void addScalar(Scalar *stat);
    void addFormula(Formula *stat);
    void addDistribution(Distribution *stat);
    void addChild(StatGroup *child);

    const StatGroup *descend(const std::vector<std::string> &parts) const;

    std::string name_;
    StatGroup *parent_ = nullptr;
    std::vector<Scalar *> scalars_;
    std::vector<Formula *> formulas_;
    std::vector<Distribution *> distributions_;
    std::vector<StatGroup *> children_;
};

} // namespace statistics
} // namespace flexsim

#endif // FLEXSIM_STATS_STATS_HH
