/**
 * @file
 * Per-layer execution watchdog for the cycle simulators.
 *
 * A hung or fault-slowed layer must return guard::Error (category
 * Timeout) instead of wedging the worker that runs it.  The watchdog
 * is cooperative: a simulator arms it before a layer, checks
 * expired() at every tile boundary of its sim::ThreadPool
 * decomposition (workers stop claiming tiles once it fires), and
 * raises GuardException afterwards, which guard::invoke() converts
 * back into an Expected at the boundary.
 *
 * Two budgets, both optional (0 = unlimited):
 *
 *  - a wall-clock budget in host nanoseconds, enforced against
 *    std::chrono::steady_clock — the backstop against runaway host
 *    time, whatever its cause;
 *  - a modelled-cycle budget, charged by the simulator as it retires
 *    work (chargeCycles) and checkable up front against an analytic
 *    prediction (checkPredictedCycles) since the analytic models are
 *    cycle-exact vs the data simulators — the fast-fail against
 *    layers that are legitimately too big for their slot.
 *
 * cancel() is the external kill switch (e.g. an operator draining a
 * server).  All checks are lock-free and safe from any pool lane;
 * arm()/disarm() must not race a running layer.
 */

#ifndef FLEXSIM_GUARD_WATCHDOG_HH
#define FLEXSIM_GUARD_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "guard/error.hh"

namespace flexsim {
namespace guard {

class Watchdog
{
  public:
    /** Why an expired watchdog fired. */
    enum class Trip
    {
        None = 0,
        WallClock, ///< host wall-clock budget exhausted
        Cycles,    ///< modelled-cycle budget exhausted
        Cancelled, ///< external cancel()
    };

    /** Per-layer budgets; 0 disables that limit. */
    struct Budget
    {
        std::uint64_t wallNs = 0; ///< host wall-clock nanoseconds
        std::uint64_t cycles = 0; ///< modelled engine cycles

        bool
        unlimited() const
        {
            return wallNs == 0 && cycles == 0;
        }
    };

    Watchdog() = default;
    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Start a fresh layer: reset charges and trips, start the wall
     * clock.  An earlier cancel() survives re-arming (a drained
     * simulator stays drained). */
    void arm(const Budget &budget);

    /** Stop guarding (expired() returns false until re-armed). */
    void disarm();

    /** External kill switch; trips every armed check from now on. */
    void cancel();

    /** True once any budget tripped; cheap enough for every tile
     * boundary (one relaxed load on the fast path; the wall clock is
     * only read while still healthy). */
    bool expired() const;

    /** Account @p cycles of modelled work (called per tile); trips
     * the cycle budget when the running sum crosses it. */
    void chargeCycles(std::uint64_t cycles) const;

    /**
     * Fast-fail a layer whose analytically predicted cycle count
     * already exceeds the armed cycle budget — no host time is spent
     * simulating a layer that cannot fit.  Ok when unarmed or within
     * budget.
     */
    Expected<void> checkPredictedCycles(std::uint64_t predicted,
                                        const std::string &site) const;

    Trip trip() const;

    /** The typed Timeout error describing why the watchdog fired
     * (expired() must be true). */
    Error tripError(const std::string &site) const;

  private:
    bool tryTrip(Trip reason) const;

    Budget budget_{};
    bool armed_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    std::atomic<bool> cancelled_{false};
    mutable std::atomic<std::uint64_t> chargedCycles_{0};
    mutable std::atomic<int> trip_{0};
};

} // namespace guard
} // namespace flexsim

#endif // FLEXSIM_GUARD_WATCHDOG_HH
