#include "guard/error.hh"

namespace flexsim {
namespace guard {

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::InvalidArgument:
        return "invalid-argument";
      case Category::Parse:
        return "parse";
      case Category::OutOfRange:
        return "out-of-range";
      case Category::Unsupported:
        return "unsupported";
      case Category::Io:
        return "io";
      case Category::Timeout:
        return "timeout";
      case Category::Internal:
        return "internal";
    }
    return "unknown";
}

std::string
Error::str() const
{
    std::string out = site;
    out += ": ";
    out += message;
    out += " [";
    out += categoryName(category);
    out += "]";
    return out;
}

} // namespace guard
} // namespace flexsim
