#include "guard/watchdog.hh"

namespace flexsim {
namespace guard {

void
Watchdog::arm(const Budget &budget)
{
    budget_ = budget;
    armed_ = !budget.unlimited() ||
             cancelled_.load(std::memory_order_relaxed);
    chargedCycles_.store(0, std::memory_order_relaxed);
    trip_.store(0, std::memory_order_relaxed);
    if (budget_.wallNs > 0) {
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::nanoseconds(budget_.wallNs);
    }
}

void
Watchdog::disarm()
{
    armed_ = false;
    budget_ = Budget{};
    trip_.store(0, std::memory_order_relaxed);
}

void
Watchdog::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
    armed_ = true;
    tryTrip(Trip::Cancelled);
}

bool
Watchdog::tryTrip(Trip reason) const
{
    int expected = 0;
    trip_.compare_exchange_strong(expected,
                                  static_cast<int>(reason),
                                  std::memory_order_relaxed);
    return trip_.load(std::memory_order_relaxed) != 0;
}

bool
Watchdog::expired() const
{
    if (!armed_)
        return false;
    if (trip_.load(std::memory_order_relaxed) != 0)
        return true;
    if (cancelled_.load(std::memory_order_relaxed))
        return tryTrip(Trip::Cancelled);
    if (budget_.wallNs > 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
        return tryTrip(Trip::WallClock);
    }
    return false;
}

void
Watchdog::chargeCycles(std::uint64_t cycles) const
{
    if (!armed_ || budget_.cycles == 0)
        return;
    const std::uint64_t total =
        chargedCycles_.fetch_add(cycles, std::memory_order_relaxed) +
        cycles;
    if (total > budget_.cycles)
        tryTrip(Trip::Cycles);
}

Expected<void>
Watchdog::checkPredictedCycles(std::uint64_t predicted,
                               const std::string &site) const
{
    if (!armed_ || budget_.cycles == 0 || predicted <= budget_.cycles)
        return ok();
    tryTrip(Trip::Cycles);
    return makeError(Category::Timeout, site, "layer needs ",
                     predicted, " modelled cycles, over the ",
                     budget_.cycles, "-cycle watchdog budget");
}

Watchdog::Trip
Watchdog::trip() const
{
    return static_cast<Trip>(trip_.load(std::memory_order_relaxed));
}

Error
Watchdog::tripError(const std::string &site) const
{
    switch (trip()) {
      case Trip::WallClock:
        return makeError(Category::Timeout, site,
                         "layer exceeded its ", budget_.wallNs,
                         " ns wall-clock watchdog budget");
      case Trip::Cycles:
        return makeError(Category::Timeout, site,
                         "layer exceeded its ", budget_.cycles,
                         "-cycle watchdog budget");
      case Trip::Cancelled:
        return makeError(Category::Timeout, site, "run cancelled");
      case Trip::None:
        break;
    }
    return makeError(Category::Internal, site,
                     "tripError() on a healthy watchdog");
}

} // namespace guard
} // namespace flexsim
